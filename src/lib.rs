#![warn(missing_docs)]

//! QMatch — a hybrid match algorithm for XML Schemas (ICDE 2005 reproduction).
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! - [`xml`] — from-scratch XML pull parser and DOM ([`qmatch_xml`]).
//! - [`xsd`] — XSD model, parser, and schema-tree compiler ([`qmatch_xsd`]).
//! - [`lexicon`] — tokenization, string metrics, and the domain thesaurus
//!   ([`qmatch_lexicon`]).
//! - [`core`] — the QoM taxonomy, weight model, and the linguistic,
//!   structural, and hybrid QMatch algorithms ([`qmatch_core`]).
//! - [`datasets`] — the reconstructed evaluation corpus and gold standards
//!   ([`qmatch_datasets`]).
//!
//! # Quickstart
//!
//! ```
//! use qmatch::prelude::*;
//!
//! let source = qmatch::datasets::corpus::po1();
//! let target = qmatch::datasets::corpus::po2();
//! let session = MatchSession::new(MatchConfig::default());
//! let (sp, tp) = (session.prepare(&source), session.prepare(&target));
//! let result = session.run(&Algorithm::Hybrid, &sp, &tp).unwrap();
//! assert!(result.total_qom > 0.0);
//! ```

pub use qmatch_core as core;
pub use qmatch_datasets as datasets;
pub use qmatch_lexicon as lexicon;
pub use qmatch_xml as xml;
pub use qmatch_xsd as xsd;

/// Convenient single-line import for the common workflow.
pub mod prelude {
    #[allow(deprecated)] // re-exported until the one-shot wrappers are removed
    pub use qmatch_core::algorithms::{hybrid_match, linguistic_match, structural_match};
    pub use qmatch_core::algorithms::{
        Aggregation, Algorithm, Component, CompositeError, MatchOutcome,
    };
    pub use qmatch_core::eval::{evaluate, MatchQuality};
    pub use qmatch_core::mapping::{extract_mapping, Mapping};
    pub use qmatch_core::model::{ConfigError, MatchConfig, MatchConfigBuilder, Weights};
    pub use qmatch_core::session::{MatchSession, PreparedSchema};
    pub use qmatch_core::trace::{NullSink, Phase, PhaseStats, Recorder, Span, Trace, TraceSink};
    pub use qmatch_xsd::{parse_schema, SchemaTree};
}
