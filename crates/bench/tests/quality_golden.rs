//! Golden quality numbers for the PO pair, pinned per algorithm.
//!
//! These are the `BENCH_quality.json` cells the CI quality gate defends;
//! pinning them here too means a regression fails fast in `cargo test`
//! with the offending algorithm named, instead of only in the release
//! gate job. If an intentional improvement moves a number, update both
//! this test and the committed `BENCH_quality.json`.

use qmatch_bench::po_pair;
use qmatch_core::model::MatchConfig;
use qmatch_core::quality;
use qmatch_core::session::MatchSession;
use qmatch_core::Algorithm;

#[test]
fn po_pair_quality_is_pinned_per_algorithm() {
    let pair = po_pair();
    let session = MatchSession::new(MatchConfig::default());
    let (sp, tp) = (session.prepare(&pair.source), session.prepare(&pair.target));
    // (algorithm, |R|, |P|, |I|, f1, overall) — the unified report's cells.
    let golden = [
        (Algorithm::Hybrid, 9, 8, 7, 0.823529, 0.666667),
        (Algorithm::Cupid, 9, 3, 3, 0.500000, 0.333333),
        (Algorithm::TreeEdit, 9, 6, 3, 0.400000, 0.000000),
    ];
    for (algorithm, real, predicted, correct, f1, overall) in golden {
        let row = quality::evaluate_algorithm(&session, &algorithm, "PO", &sp, &tp, &pair.gold)
            .expect("evaluated algorithms are infallible");
        let name = row.algorithm.clone();
        assert_eq!(row.quality.real(), real, "{name}: |R|");
        assert_eq!(row.quality.predicted(), predicted, "{name}: |P|");
        assert_eq!(row.quality.true_positives, correct, "{name}: |I|");
        assert!(
            (row.quality.f1() - f1).abs() < 1e-6,
            "{name}: f1 {} != {f1}",
            row.quality.f1()
        );
        assert!(
            (row.quality.overall - overall).abs() < 1e-6,
            "{name}: overall {} != {overall}",
            row.quality.overall
        );
    }
}
