//! Synthetic tree builders shared by the benches and the extension drivers.

use qmatch_xsd::SchemaTree;

/// Builds a balanced tree with the given branching factor and depth, with
/// distinct labels so the label stage cannot collapse comparisons.
pub fn balanced_tree(branch: usize, depth: usize) -> SchemaTree {
    let mut entries: Vec<(String, Option<usize>)> = vec![("root".to_owned(), None)];
    let mut frontier = vec![0usize];
    for level in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for k in 0..branch {
                let idx = entries.len();
                entries.push((format!("n{level}_{parent}_{k}"), Some(parent)));
                next.push(idx);
            }
        }
        frontier = next;
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        entries.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("root", &borrowed)
}

/// Like [`balanced_tree`], but drawing labels from a bounded vocabulary so
/// the precomputed label matrix stays small even for very large trees —
/// the realistic regime (real schemas reuse element names heavily), and the
/// one the large parallel-engine benches use.
pub fn balanced_tree_with_vocab(branch: usize, depth: usize, vocab: &[&str]) -> SchemaTree {
    assert!(!vocab.is_empty(), "vocabulary must be non-empty");
    let mut entries: Vec<(String, Option<usize>)> = vec![("root".to_owned(), None)];
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for _ in 0..branch {
                let idx = entries.len();
                entries.push((vocab[idx % vocab.len()].to_owned(), Some(parent)));
                next.push(idx);
            }
        }
        frontier = next;
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        entries.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("root", &borrowed)
}

/// A small schema-ish vocabulary for [`balanced_tree_with_vocab`].
pub const SCHEMA_VOCAB: &[&str] = &[
    "name",
    "id",
    "code",
    "date",
    "amount",
    "quantity",
    "price",
    "address",
    "city",
    "country",
    "status",
    "type",
    "description",
    "title",
    "author",
    "order",
    "item",
    "line",
    "unit",
    "measure",
    "contact",
    "phone",
    "email",
    "street",
    "zip",
    "region",
    "category",
    "reference",
    "version",
    "comment",
    "entry",
    "record",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_tree_has_geometric_size() {
        // 1 + 3 + 9 + 27 nodes for branch 3, depth 3.
        assert_eq!(balanced_tree(3, 3).len(), 40);
        assert_eq!(balanced_tree(2, 6).len(), 127);
    }

    #[test]
    fn vocab_tree_matches_plain_tree_shape() {
        let plain = balanced_tree(3, 3);
        let vocab = balanced_tree_with_vocab(3, 3, SCHEMA_VOCAB);
        assert_eq!(plain.len(), vocab.len());
        assert_eq!(plain.max_depth(), vocab.max_depth());
    }
}
