//! Figure 9 — overall match quality for two structurally identical but
//! linguistically different schemas (the Library schema of Fig. 7 vs the
//! human schema of Fig. 8).
//!
//! The paper's observation (§5.1): when the component algorithms sit on
//! opposite ends of the quality spectrum, QMatch's score gravitates toward
//! the *higher* one — linguistic scores very low, structural very high, and
//! the hybrid lands well above the midpoint.

use qmatch_bench::{library_human_pair, Algorithm};
use qmatch_core::model::MatchConfig;
use qmatch_core::report::{f3, BarChart, Table};

fn main() {
    let pair = library_human_pair();
    let config = MatchConfig::default();
    println!("Figure 9. Library (Fig. 7) vs human (Fig. 8): structurally identical, linguistically different.\n");
    let mut table = Table::new(["algorithm", "total QoM"]);
    let mut chart = BarChart::new(40);
    let mut scores = Vec::new();
    for algo in Algorithm::PAPER {
        let out = algo.run(&pair.source, &pair.target, &config);
        scores.push(out.total_qom);
        table.row([algo.name().to_owned(), f3(out.total_qom)]);
        chart.bar(algo.name(), out.total_qom);
    }
    print!("{}", table.render());
    println!();
    print!("{}", chart.render());
    let (linguistic, structural, hybrid) = (scores[0], scores[1], scores[2]);
    println!();
    println!("linguistic (low end)  : {}", f3(linguistic));
    println!("structural (high end) : {}", f3(structural));
    println!("hybrid               : {}", f3(hybrid));
    println!(
        "midpoint             : {}",
        f3((linguistic + structural) / 2.0)
    );
    println!(
        "\nexpected shape: hybrid sits between the extremes, gravitating toward the higher one ({})",
        if hybrid >= (linguistic + structural) / 2.0 { "holds" } else { "DOES NOT HOLD" }
    );
}
