//! Perf accounting for the parallel TreeMatch engine: times the sequential
//! fallback against the wavefront engine on synthetic trees of 10²–10⁴
//! nodes (self-matches, bounded label vocabulary) and writes the results to
//! `BENCH_treematch.json` so future changes can track the trajectory.
//!
//! Also splits the session API into its two phases — `prepare_ms` is the
//! once-per-schema cost (interning, tokenization, wave construction) and
//! `match_ms` is the warm-cache per-pair cost, i.e. what a corpus run pays
//! for every pair after the first. Timed matches recycle their outcome back
//! into the session arena, exactly like `match_corpus` / `/v1/match/topk`,
//! so `alloc_ms` (the `Phase::Alloc` wall time) collapses to the pool-pull
//! cost after the first pair. `cache_hit_rate` is the session's label-cache
//! hit fraction at the end of the timed matches.
//!
//! Every shape is measured at both storage precisions; each JSON entry
//! carries a `"precision"` tag ("f64" is the bit-exact default, "f32" the
//! memory-lean mode). `peak_rss_mib` is the resident-set high-water delta
//! (`VmHWM`, reset per measurement via `/proc/self/clear_refs`) across the
//! cold matrix allocation plus the timed matches — the number the f32 mode
//! exists to cut. `skipped_cells` counts child-row cells the band prefilter
//! proved unreachable and never read. Both are 0 where procfs is missing.
//!
//! The timed matches run with no trace sink attached (the `NullSink` fast
//! path); a separate recorder-attached warm run supplies the per-phase
//! breakdown (`phases` in the JSON), whose wall times should sum to within
//! ~10% of `match_ms`.
//!
//! `cargo run --release -p qmatch-bench --bin bench_treematch [OUT.json] [--test] [--trace]`
//!
//! * `--test`  — smoke mode: only the smallest shape, no JSON written
//!   (unless an output path is given explicitly). Used by CI's
//!   trace-overhead check.
//! * `--trace` — attach a [`Recorder`] to the
//!   timed f64 matches and print its per-phase report. This deliberately
//!   puts the recorder on the hot path, so `match_ms` then includes trace
//!   overhead; comparing a `--test` run against a `--test --trace` run
//!   bounds the recorder's cost.
//!
//! The speedup column only exceeds 1.0 on multicore hardware; the `threads`
//! and `cores` fields record what the run had available.

use qmatch_bench::synth_tree::{balanced_tree_with_vocab, SCHEMA_VOCAB};
use qmatch_core::algorithms::Algorithm;
use qmatch_core::matrix::Precision;
use qmatch_core::model::MatchConfig;
use qmatch_core::par;
use qmatch_core::report::Table;
use qmatch_core::session::MatchSession;
use qmatch_core::trace::{Phase, Recorder};
use qmatch_xsd::SchemaTree;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Median wall time of `runs` invocations.
fn time_median<F: FnMut() -> f64>(runs: usize, mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

/// Peak resident set (`VmHWM`) in MiB. `None` off Linux or when procfs is
/// unavailable — callers fall back to reporting 0.
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024.0)
}

/// Resets the RSS high-water mark so each measurement window starts at the
/// current resident set. Writing `5` to `/proc/self/clear_refs` is the
/// documented Linux mechanism; elsewhere this is a no-op and the peak
/// numbers degrade to process-lifetime maxima.
fn reset_peak_rss() {
    let _ = std::fs::write("/proc/self/clear_refs", "5");
}

/// One-shot hybrid match through the session API: prepare + match, the same
/// work the deprecated `hybrid_match` wrapper used to do.
fn one_shot(tree: &SchemaTree, config: &MatchConfig, sequential: bool) -> f64 {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(tree), session.prepare(tree));
    let run = if sequential {
        session.run_sequential(&Algorithm::Hybrid, &sp, &tp)
    } else {
        session.run(&Algorithm::Hybrid, &sp, &tp)
    };
    run.expect("hybrid is infallible").total_qom
}

/// What one (shape, precision) measurement produces.
struct PrecisionRun {
    match_ms: f64,
    labels_ms: f64,
    wave_ms: f64,
    alloc_ms: f64,
    skipped_cells: u64,
    peak_rss_mib: f64,
    cache_hit_rate: f64,
    /// The recorder pinned on the timed session under `--trace`.
    timed_recorder: Option<Arc<Recorder>>,
}

/// Times the warm per-pair match at one storage precision and captures the
/// RSS high-water delta of its working set.
///
/// The traced twin session is warmed (and its matrix recycled) *before* the
/// RSS window opens, so the window covers exactly one cold matrix
/// acquisition — the sink-free session's — plus the arena-warm timed loop.
fn measure_precision(
    tree: &SchemaTree,
    config: &MatchConfig,
    precision: Precision,
    runs: usize,
    trace: bool,
) -> PrecisionRun {
    let pconfig = MatchConfig {
        precision,
        ..*config
    };
    let mut session = MatchSession::new(pconfig);
    let timed_recorder = trace.then(|| Arc::new(Recorder::default()));
    if let Some(rec) = &timed_recorder {
        session.set_trace_sink(rec.clone());
    }
    let (sp, tp) = (session.prepare(tree), session.prepare(tree));

    // Per-phase breakdown from a separate recorder-attached session so the
    // match timings stay sink-free. The sink-free and traced matches are
    // interleaved so both medians sample the same noise regime — their
    // totals must agree to ~10%, which a sequential "time all, then trace
    // all" layout does not guarantee on a busy machine.
    let traced = Arc::new(Recorder::default());
    let mut traced_session = MatchSession::new(pconfig);
    traced_session.set_trace_sink(traced.clone());
    let (tsp, ttp) = (traced_session.prepare(tree), traced_session.prepare(tree));
    let warm = traced_session.hybrid(&tsp, &ttp);
    std::hint::black_box(warm.total_qom);
    traced_session.recycle(warm);

    reset_peak_rss();
    let rss_floor = peak_rss_mib().unwrap_or(0.0);
    let warm = session.hybrid(&sp, &tp);
    std::hint::black_box(warm.total_qom);
    session.recycle(warm);

    let mut match_samples: Vec<Duration> = Vec::with_capacity(runs);
    let mut phase_samples: Vec<(f64, f64, f64)> = Vec::with_capacity(runs);
    for _ in 0..runs {
        let start = Instant::now();
        let outcome = session.hybrid(&sp, &tp);
        std::hint::black_box(outcome.total_qom);
        match_samples.push(start.elapsed());
        session.recycle(outcome);
        traced.reset();
        let outcome = traced_session.hybrid(&tsp, &ttp);
        std::hint::black_box(outcome.total_qom);
        traced_session.recycle(outcome);
        phase_samples.push((
            traced.phase_stats(Phase::Labels).wall_ms(),
            traced.phase_stats(Phase::HybridWave).wall_ms(),
            traced.phase_stats(Phase::Alloc).wall_ms(),
        ));
    }
    let rss_peak = peak_rss_mib().unwrap_or(0.0);
    // The prefilter's skip count is a deterministic function of the pair;
    // the last traced run's stats are as good as any.
    let skipped_cells = traced.phase_stats(Phase::HybridWave).skipped;

    match_samples.sort();
    phase_samples.sort_by(|a, b| (a.0 + a.1).total_cmp(&(b.0 + b.1)));
    let (labels_ms, wave_ms, alloc_ms) = phase_samples[runs / 2];
    PrecisionRun {
        match_ms: match_samples[runs / 2].as_secs_f64() * 1e3,
        labels_ms,
        wave_ms,
        alloc_ms,
        skipped_cells,
        peak_rss_mib: (rss_peak - rss_floor).max(0.0),
        cache_hit_rate: session.cache_stats().hit_rate(),
        timed_recorder,
    }
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut trace = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => smoke = true,
            "--trace" => trace = true,
            other if !other.starts_with('-') => out_path = Some(other.to_owned()),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: bench_treematch [OUT.json] [--test] [--trace]"
                );
                std::process::exit(2);
            }
        }
    }
    // Smoke mode writes no JSON unless a path was given explicitly.
    let out_path = match (out_path, smoke) {
        (Some(p), _) => Some(p),
        (None, false) => Some("BENCH_treematch.json".to_owned()),
        (None, true) => None,
    };
    let config = MatchConfig::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = par::num_threads();

    // (branch, depth) ladders spanning ~10² to ~10⁴ nodes.
    let shapes: &[(usize, usize)] = if smoke {
        &[(4, 3)]
    } else {
        &[(4, 3), (3, 6), (3, 8)]
    };
    let mut table = Table::new([
        "nodes",
        "pairs n*m",
        "seq ms",
        "par ms",
        "speedup",
        "prep ms",
        "match ms",
        "rss MiB",
        "f32 ms",
        "f32 MiB",
    ]);
    let mut entries = Vec::new();
    for &(branch, depth) in shapes {
        let tree = balanced_tree_with_vocab(branch, depth, SCHEMA_VOCAB);
        let n = tree.len();
        // Larger trees get fewer repetitions; the DP dominates either way.
        let runs = if n >= 5000 { 3 } else { 7 };
        // One untimed run per engine: thesaurus construction and allocator
        // warm-up would otherwise land entirely on the first sample.
        std::hint::black_box(one_shot(&tree, &config, true));
        std::hint::black_box(one_shot(&tree, &config, false));
        let seq = time_median(runs, || one_shot(&tree, &config, true));
        let par = time_median(runs, || one_shot(&tree, &config, false));

        // Session split: prepare is the once-per-schema cost; the
        // per-precision runs below measure the warm-cache per-pair cost.
        let session = MatchSession::new(config);
        std::hint::black_box(session.prepare(&tree).distinct_labels());
        let prepare = time_median(runs, || session.prepare(&tree).distinct_labels() as f64);
        drop(session);

        let exact = measure_precision(&tree, &config, Precision::F64, runs, trace);
        let lean = measure_precision(&tree, &config, Precision::F32, runs, false);

        let seq_ms = seq.as_secs_f64() * 1e3;
        let par_ms = par.as_secs_f64() * 1e3;
        let prepare_ms = prepare.as_secs_f64() * 1e3;
        let speedup = seq_ms / par_ms;
        table.row([
            n.to_string(),
            (n * n).to_string(),
            format!("{seq_ms:.2}"),
            format!("{par_ms:.2}"),
            format!("{speedup:.2}x"),
            format!("{prepare_ms:.2}"),
            format!("{:.2}", exact.match_ms),
            format!("{:.1}", exact.peak_rss_mib),
            format!("{:.2}", lean.match_ms),
            format!("{:.1}", lean.peak_rss_mib),
        ]);
        entries.push(format!(
            "    {{\"nodes\": {n}, \"pairs\": {}, \"precision\": \"f64\", \
             \"seq_ms\": {seq_ms:.3}, \
             \"par_ms\": {par_ms:.3}, \"speedup\": {speedup:.3}, \
             \"prepare_ms\": {prepare_ms:.3}, \"match_ms\": {:.3}, \
             \"alloc_ms\": {:.3}, \"peak_rss_mib\": {:.3}, \
             \"skipped_cells\": {}, \"cache_hit_rate\": {:.3}, \
             \"phases\": {{\"labels_ms\": {:.3}, \"hybrid_wave_ms\": {:.3}}}}}",
            n * n,
            exact.match_ms,
            exact.alloc_ms,
            exact.peak_rss_mib,
            exact.skipped_cells,
            exact.cache_hit_rate,
            exact.labels_ms,
            exact.wave_ms,
        ));
        entries.push(format!(
            "    {{\"nodes\": {n}, \"pairs\": {}, \"precision\": \"f32\", \
             \"match_ms\": {:.3}, \
             \"alloc_ms\": {:.3}, \"peak_rss_mib\": {:.3}, \
             \"skipped_cells\": {}, \"cache_hit_rate\": {:.3}, \
             \"phases\": {{\"labels_ms\": {:.3}, \"hybrid_wave_ms\": {:.3}}}}}",
            n * n,
            lean.match_ms,
            lean.alloc_ms,
            lean.peak_rss_mib,
            lean.skipped_cells,
            lean.cache_hit_rate,
            lean.labels_ms,
            lean.wave_ms,
        ));

        if let Some(rec) = &exact.timed_recorder {
            println!("--- trace report ({n} nodes, timed session) ---");
            print!("{}", rec.report());
            println!();
        }
    }

    println!("TreeMatch engine: sequential vs wavefront ({threads} thread(s), {cores} core(s))\n");
    print!("{}", table.render());

    if let Some(out_path) = out_path {
        let json = format!(
            "{{\n  \"bench\": \"treematch\",\n  \"threads\": {threads},\n  \"cores\": {cores},\n  \"sizes\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        println!("\nwrote {out_path}");
    }
}
