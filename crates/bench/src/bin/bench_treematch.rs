//! Perf accounting for the parallel TreeMatch engine: times the sequential
//! fallback against the wavefront engine on synthetic trees of 10²–10⁴
//! nodes (self-matches, bounded label vocabulary) and writes the results to
//! `BENCH_treematch.json` so future changes can track the trajectory.
//!
//! Also splits the session API into its two phases — `prepare_ms` is the
//! once-per-schema cost (interning, tokenization, wave construction) and
//! `match_ms` is the warm-cache per-pair cost, i.e. what a corpus run pays
//! for every pair after the first. `cache_hit_rate` is the session's
//! label-cache hit fraction at the end of the timed matches.
//!
//! `cargo run --release -p qmatch-bench --bin bench_treematch [OUT.json]`
//!
//! The speedup column only exceeds 1.0 on multicore hardware; the `threads`
//! and `cores` fields record what the run had available.

use qmatch_bench::synth_tree::{balanced_tree_with_vocab, SCHEMA_VOCAB};
use qmatch_core::algorithms::{hybrid_match, hybrid_match_sequential};
use qmatch_core::model::MatchConfig;
use qmatch_core::par;
use qmatch_core::report::Table;
use qmatch_core::session::MatchSession;
use std::time::{Duration, Instant};

/// Median wall time of `runs` invocations.
fn time_median<F: FnMut() -> f64>(runs: usize, mut f: F) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_treematch.json".to_owned());
    let config = MatchConfig::default();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = par::num_threads();

    // (branch, depth) ladders spanning ~10² to ~10⁴ nodes.
    let shapes = [(4usize, 3usize), (3, 6), (3, 8)];
    let mut table = Table::new([
        "nodes",
        "pairs n*m",
        "seq ms",
        "par ms",
        "speedup",
        "prep ms",
        "match ms",
    ]);
    let mut entries = Vec::new();
    for (branch, depth) in shapes {
        let tree = balanced_tree_with_vocab(branch, depth, SCHEMA_VOCAB);
        let n = tree.len();
        // Larger trees get fewer repetitions; the DP dominates either way.
        let runs = if n >= 5000 { 3 } else { 7 };
        // One untimed run per engine: thesaurus construction and allocator
        // warm-up would otherwise land entirely on the first sample.
        std::hint::black_box(hybrid_match_sequential(&tree, &tree, &config).total_qom);
        std::hint::black_box(hybrid_match(&tree, &tree, &config).total_qom);
        let seq = time_median(runs, || {
            hybrid_match_sequential(&tree, &tree, &config).total_qom
        });
        let par = time_median(runs, || hybrid_match(&tree, &tree, &config).total_qom);

        // Session split: prepare is the once-per-schema cost; match is the
        // warm-cache per-pair cost (tokenization, waves, and label
        // comparisons all amortized away).
        let session = MatchSession::new(config);
        std::hint::black_box(session.prepare(&tree).distinct_labels());
        let prepare = time_median(runs, || session.prepare(&tree).distinct_labels() as f64);
        let (sp, tp) = (session.prepare(&tree), session.prepare(&tree));
        std::hint::black_box(session.hybrid(&sp, &tp).total_qom);
        let matched = time_median(runs, || session.hybrid(&sp, &tp).total_qom);
        let hit_rate = session.cache_stats().hit_rate();

        let seq_ms = seq.as_secs_f64() * 1e3;
        let par_ms = par.as_secs_f64() * 1e3;
        let prepare_ms = prepare.as_secs_f64() * 1e3;
        let match_ms = matched.as_secs_f64() * 1e3;
        let speedup = seq_ms / par_ms;
        table.row([
            n.to_string(),
            (n * n).to_string(),
            format!("{seq_ms:.2}"),
            format!("{par_ms:.2}"),
            format!("{speedup:.2}x"),
            format!("{prepare_ms:.2}"),
            format!("{match_ms:.2}"),
        ]);
        entries.push(format!(
            "    {{\"nodes\": {n}, \"pairs\": {}, \"seq_ms\": {seq_ms:.3}, \
             \"par_ms\": {par_ms:.3}, \"speedup\": {speedup:.3}, \
             \"prepare_ms\": {prepare_ms:.3}, \"match_ms\": {match_ms:.3}, \
             \"cache_hit_rate\": {hit_rate:.3}}}",
            n * n
        ));
    }

    println!("TreeMatch engine: sequential vs wavefront ({threads} thread(s), {cores} core(s))\n");
    print!("{}", table.render());

    let json = format!(
        "{{\n  \"bench\": \"treematch\",\n  \"threads\": {threads},\n  \"cores\": {cores},\n  \"sizes\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
