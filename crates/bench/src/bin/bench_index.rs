//! Candidate-generation index benchmark and recall harness.
//!
//! Builds drifted synthetic registries (1k/10k schemas by default, 100k
//! with `--full`) from the paper corpus via
//! `qmatch_datasets::drift::synthetic_registry`, then answers top-k
//! queries two ways: exhaustively (the full hybrid DP against every
//! registered schema) and through `qmatch_core::index::CorpusIndex` (DP
//! only for prefilter survivors). For each registry size it records DP
//! invocations, candidates examined, recall@k of the indexed ranking
//! against the exhaustive one, and wall times to `BENCH_index.json`.
//!
//! `cargo run --release -p qmatch-bench --bin bench_index [OUT.json] [--test] [--gate] [--full]`
//!
//! * `--test` — smoke mode: one tiny registry, no JSON written (unless an
//!   output path is given explicitly).
//! * `--gate` — CI accuracy gate: pinned-seed 1k-schema registry, output
//!   restricted to deterministic counts (no wall times, so two runs are
//!   byte-identical), exit 1 if recall@10 under the `auto` policy drops
//!   below 1.0.
//! * `--full` — also measure the 100k-schema registry (slow; not run in
//!   CI).
//!
//! The indexed ranking uses the same total order as the exhaustive one
//! (QoM descending, name ascending), so whenever the candidate set covers
//! the true top-k the two rankings are identical, not merely overlapping.

use qmatch_core::index::{CorpusIndex, IndexParams, IndexPolicy, Signature};
use qmatch_core::model::MatchConfig;
use qmatch_core::report::Table;
use qmatch_core::session::{MatchSession, PreparedSchema};
use qmatch_core::Algorithm;
use qmatch_datasets::drift::{synthetic_registry, GATE_SEED};
use std::collections::HashSet;
use std::time::Instant;

/// Ranked targets for `query` over the prepared schemas at `subset`
/// indices: QoM descending, name ascending, truncated to `k` — the exact
/// order `MatchSession::topk` and `/v1/match/topk` produce.
fn rank_subset(
    session: &MatchSession,
    names: &[String],
    prepared: &[PreparedSchema<'_>],
    query: usize,
    subset: &[usize],
    k: usize,
) -> Vec<(String, f64)> {
    let mut ranking: Vec<(String, f64)> = Vec::with_capacity(subset.len());
    for &i in subset {
        if i == query {
            continue;
        }
        let outcome = session
            .run(&Algorithm::Hybrid, &prepared[query], &prepared[i])
            .expect("hybrid is infallible");
        ranking.push((names[i].clone(), outcome.total_qom));
        session.recycle(outcome);
    }
    ranking.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    ranking.truncate(k);
    ranking
}

/// Everything one registry size produces.
struct SizeStats {
    size: usize,
    queries: usize,
    k: usize,
    index_build_ms: f64,
    exhaustive_dp: u64,
    indexed_dp: u64,
    candidates_mean: f64,
    min_recall: f64,
    mean_recall: f64,
    exhaustive_ms_per_query: f64,
    indexed_ms_per_query: f64,
    /// Per-query `(name, candidates, recall)` lines for `--gate` output.
    per_query: Vec<(String, usize, f64)>,
}

impl SizeStats {
    fn dp_reduction(&self) -> f64 {
        if self.indexed_dp == 0 {
            0.0
        } else {
            self.exhaustive_dp as f64 / self.indexed_dp as f64
        }
    }
}

fn run_size(count: usize, queries: usize, k: usize) -> SizeStats {
    let registry = synthetic_registry(count, GATE_SEED);
    let names: Vec<String> = registry.iter().map(|(n, _)| n.clone()).collect();
    let session = MatchSession::new(MatchConfig::default());
    let prepared: Vec<PreparedSchema<'_>> =
        registry.iter().map(|(_, t)| session.prepare(t)).collect();

    let build_start = Instant::now();
    let signatures: Vec<Signature> = prepared.iter().map(|p| session.signature(p)).collect();
    let mut index = CorpusIndex::default();
    for (name, signature) in names.iter().zip(&signatures) {
        index.insert(name, signature.clone());
    }
    let index_build_ms = build_start.elapsed().as_secs_f64() * 1e3;

    // Warm the session (thesaurus build, arena) outside the timed loops.
    let warm = session
        .run(&Algorithm::Hybrid, &prepared[0], &prepared[0])
        .expect("hybrid is infallible");
    session.recycle(warm);

    let all: Vec<usize> = (0..count).collect();
    let query_set: Vec<usize> = (0..queries).map(|j| j * count / queries).collect();
    let mut exhaustive_dp = 0u64;
    let mut indexed_dp = 0u64;
    let mut candidates_total = 0usize;
    let mut exhaustive_secs = 0.0f64;
    let mut indexed_secs = 0.0f64;
    let mut per_query = Vec::with_capacity(queries);
    for &q in &query_set {
        let start = Instant::now();
        let truth = rank_subset(&session, &names, &prepared, q, &all, k);
        exhaustive_secs += start.elapsed().as_secs_f64();
        exhaustive_dp += (count - 1) as u64;

        let start = Instant::now();
        let candidates = index.candidates(&signatures[q]);
        let subset: Vec<usize> = candidates
            .names
            .iter()
            .map(|n| names.binary_search(n).expect("candidate is registered"))
            .collect();
        let answer = rank_subset(&session, &names, &prepared, q, &subset, k);
        indexed_secs += start.elapsed().as_secs_f64();
        indexed_dp += subset.iter().filter(|&&i| i != q).count() as u64;
        candidates_total += candidates.names.len();

        let truth_names: HashSet<&str> = truth.iter().map(|(n, _)| n.as_str()).collect();
        let hits = answer
            .iter()
            .filter(|(n, _)| truth_names.contains(n.as_str()))
            .count();
        let recall = if truth_names.is_empty() {
            1.0
        } else {
            hits as f64 / truth_names.len() as f64
        };
        per_query.push((names[q].clone(), candidates.names.len(), recall));
    }

    let min_recall = per_query.iter().map(|(_, _, r)| *r).fold(1.0, f64::min);
    let mean_recall = per_query.iter().map(|(_, _, r)| *r).sum::<f64>() / per_query.len() as f64;
    SizeStats {
        size: count,
        queries,
        k,
        index_build_ms,
        exhaustive_dp,
        indexed_dp,
        candidates_mean: candidates_total as f64 / queries as f64,
        min_recall,
        mean_recall,
        exhaustive_ms_per_query: exhaustive_secs * 1e3 / queries as f64,
        indexed_ms_per_query: indexed_secs * 1e3 / queries as f64,
        per_query,
    }
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut gate = false;
    let mut full = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => smoke = true,
            "--gate" => gate = true,
            "--full" => full = true,
            other if !other.starts_with('-') => out_path = Some(other.to_owned()),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: bench_index [OUT.json] [--test] [--gate] [--full]"
                );
                std::process::exit(2);
            }
        }
    }

    if gate {
        // The accuracy gate: deterministic output only (counts, recalls —
        // never wall times), so CI can diff two runs byte-for-byte.
        let k = 10;
        let stats = run_size(1000, 20, k);
        let engages = IndexPolicy::Auto.engages(stats.size, &IndexParams::default());
        println!(
            "accuracy-gate: size={} queries={} k={k} policy=auto engaged={engages} seed={GATE_SEED:#x}",
            stats.size, stats.queries
        );
        for (name, candidates, recall) in &stats.per_query {
            println!("query {name}: candidates={candidates} recall@{k}={recall:.3}");
        }
        println!(
            "recall@{k} min={:.3} mean={:.3} dp_reduction={:.1}x ({} -> {})",
            stats.min_recall,
            stats.mean_recall,
            stats.dp_reduction(),
            stats.exhaustive_dp,
            stats.indexed_dp
        );
        if !engages || stats.min_recall < 1.0 {
            println!("FAIL");
            std::process::exit(1);
        }
        println!("PASS");
        return;
    }

    // Smoke mode writes no JSON unless a path was given explicitly.
    let out_path = match (out_path, smoke) {
        (Some(p), _) => Some(p),
        (None, false) => Some("BENCH_index.json".to_owned()),
        (None, true) => None,
    };
    let sizes: Vec<(usize, usize)> = if smoke {
        vec![(200, 8)]
    } else if full {
        vec![(1000, 20), (10_000, 12), (100_000, 8)]
    } else {
        vec![(1000, 20), (10_000, 12)]
    };

    let mut table = Table::new([
        "size",
        "queries",
        "build ms",
        "exh DP",
        "idx DP",
        "reduction",
        "recall@10",
        "exh ms/q",
        "idx ms/q",
    ]);
    let mut entries = Vec::new();
    for (count, queries) in sizes {
        let stats = run_size(count, queries, 10);
        table.row([
            stats.size.to_string(),
            stats.queries.to_string(),
            format!("{:.1}", stats.index_build_ms),
            stats.exhaustive_dp.to_string(),
            stats.indexed_dp.to_string(),
            format!("{:.1}x", stats.dp_reduction()),
            format!("{:.3}", stats.min_recall),
            format!("{:.1}", stats.exhaustive_ms_per_query),
            format!("{:.1}", stats.indexed_ms_per_query),
        ]);
        entries.push(format!(
            "    {{\"size\": {}, \"queries\": {}, \"k\": {}, \
             \"index_build_ms\": {:.3}, \"exhaustive_dp\": {}, \
             \"indexed_dp\": {}, \"dp_reduction\": {:.3}, \
             \"candidates_mean\": {:.1}, \"recall_at_10_min\": {:.3}, \
             \"recall_at_10_mean\": {:.3}, \"exhaustive_topk_ms\": {:.3}, \
             \"indexed_topk_ms\": {:.3}}}",
            stats.size,
            stats.queries,
            stats.k,
            stats.index_build_ms,
            stats.exhaustive_dp,
            stats.indexed_dp,
            stats.dp_reduction(),
            stats.candidates_mean,
            stats.min_recall,
            stats.mean_recall,
            stats.exhaustive_ms_per_query,
            stats.indexed_ms_per_query,
        ));
    }

    println!("Candidate index: exhaustive vs prefiltered top-k (seed {GATE_SEED:#x})\n");
    print!("{}", table.render());

    if let Some(out_path) = out_path {
        let json = format!(
            "{{\n  \"bench\": \"index\",\n  \"seed\": {GATE_SEED},\n  \"sizes\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        println!("\nwrote {out_path}");
    }
}
