//! Figure 6 — comparison of manual matches (R) vs the matches (P) found by
//! the three algorithms for PO, Book, and XBench (DCMD).
//!
//! The paper plots, per domain, the number of manually determined matches
//! next to the number of matches each algorithm returned (the protein pair
//! is omitted, as in the paper). The shape to check: the hybrid's count is
//! closest to the manual count, and it finds the most true positives.

use qmatch_bench::{figure6_pairs, hybrid_batch, Algorithm};
use qmatch_core::eval::evaluate;
use qmatch_core::model::MatchConfig;
use qmatch_core::report::Table;

fn main() {
    let config = MatchConfig::default();
    println!("Figure 6. Manual (R) vs matches (P) found by the three algorithms.\n");
    let mut table = Table::new([
        "domain",
        "Manual R",
        "Hybrid P",
        "Structural P",
        "Linguistic P",
        "Hybrid TP",
        "Structural TP",
        "Linguistic TP",
    ]);
    let pairs = figure6_pairs();
    // Hybrid runs for the whole corpus go through the batch API.
    let hybrid = hybrid_batch(&pairs, &config);
    for (pair, (_, hybrid_mapping)) in pairs.iter().zip(&hybrid) {
        let mut found = Vec::new();
        let mut correct = Vec::new();
        // Figure order: Hybrid, Structural, Linguistic.
        for algo in [
            Algorithm::Hybrid,
            Algorithm::Structural,
            Algorithm::Linguistic,
        ] {
            let mapping = match algo {
                Algorithm::Hybrid => hybrid_mapping.clone(),
                _ => algo.run_and_extract(&pair.source, &pair.target, &config).1,
            };
            let quality = evaluate(&mapping, &pair.source, &pair.target, &pair.gold);
            found.push(mapping.len());
            correct.push(quality.true_positives);
        }
        table.row([
            format!("{}(M)", pair.name),
            pair.gold.len().to_string(),
            found[0].to_string(),
            found[1].to_string(),
            found[2].to_string(),
            correct[0].to_string(),
            correct[1].to_string(),
            correct[2].to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\nexpected shape: Hybrid finds the most true positives and tracks R most closely");
}
