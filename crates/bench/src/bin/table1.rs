//! Table 1 — characteristics of the test schemas.
//!
//! Prints the published element count and max depth next to the
//! reconstruction's actual numbers; every row must agree.

use qmatch_core::report::Table;
use qmatch_datasets::table1_rows;

fn main() {
    println!("Table 1. Characteristics of the Test Schemas.\n");
    let mut table = Table::new([
        "Schema",
        "# Elems (paper)",
        "# Elems (repro)",
        "Depth (paper)",
        "Depth (repro)",
        "OK",
    ]);
    let mut all_ok = true;
    for row in table1_rows() {
        let ok = row.matches_paper();
        all_ok &= ok;
        table.row([
            row.name.to_owned(),
            row.paper_elements.to_string(),
            row.actual_elements.to_string(),
            row.paper_depth.to_string(),
            row.actual_depth.to_string(),
            if ok {
                "yes".to_owned()
            } else {
                "NO".to_owned()
            },
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nreconstruction {} the published characteristics",
        if all_ok { "matches" } else { "DEVIATES FROM" }
    );
    if !all_ok {
        std::process::exit(1);
    }
}
