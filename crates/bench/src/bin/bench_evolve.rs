//! Schema-evolution benchmark: incremental vs full re-match across
//! mutation intensities.
//!
//! Models the serve hot-update workload — a chain of `PUT`s replacing one
//! registered schema — with `qmatch_datasets::drift::mutation_chain`. For
//! every transition the harness runs both paths against a fixed target:
//! the full hybrid recompute, and the diff-guided incremental path
//! (`diff_trees` + `reprepare` + `rematch_evolved`, threading each step's
//! outcome *and label matrix* into the next). Bit-identity of the two similarity
//! matrices is asserted on every single transition; the wall-time split
//! goes to `BENCH_evolve.json`.
//!
//! `cargo run --release -p qmatch-bench --bin bench_evolve [OUT.json] [--test] [--gate]`
//!
//! * `--test` — smoke mode: one short small-schema chain, no JSON written
//!   (unless an output path is given explicitly).
//! * `--gate` — CI evolution gate: pinned-seed chains over the small and
//!   medium bases, output restricted to deterministic counts (no wall
//!   times, so two runs are byte-identical), exit 1 unless every
//!   transition is bit-identical, the incremental path engages on every
//!   low-intensity transition, and heavy intensity trips the fallback.
//!
//! The default (JSON) mode adds the large PDB chain (3753 nodes), where
//! the low-intensity speedup headline lives: at ≤5% dirty nodes the
//! incremental re-match must beat the full recompute by ≥5×.

use qmatch_core::model::MatchConfig;
use qmatch_core::report::Table;
use qmatch_core::session::MatchSession;
use qmatch_datasets::drift::{mutation_chain, GATE_SEED};
use qmatch_datasets::{corpus, synth};
use qmatch_xsd::SchemaTree;
use std::time::Instant;

/// One `(base, fixed target)` evolution workload.
struct Workload {
    name: &'static str,
    base: SchemaTree,
    target: SchemaTree,
    steps: usize,
}

/// Everything one `(workload, intensity)` chain produces.
struct ChainStats {
    workload: &'static str,
    nodes: usize,
    intensity: f64,
    transitions: usize,
    incremental_runs: usize,
    fallback_runs: usize,
    rows_recomputed: usize,
    rows_full: usize,
    dirty_fraction_mean: f64,
    full_ms_per_rematch: f64,
    incremental_ms_per_rematch: f64,
    /// Incremental wall including diff + re-prepare, not just the kernel.
    end_to_end_ms_per_rematch: f64,
}

impl ChainStats {
    fn rematch_speedup(&self) -> f64 {
        self.full_ms_per_rematch / self.incremental_ms_per_rematch.max(1e-9)
    }

    fn end_to_end_speedup(&self) -> f64 {
        self.full_ms_per_rematch / self.end_to_end_ms_per_rematch.max(1e-9)
    }
}

fn run_chain(workload: &Workload, intensity: f64, seed: u64) -> ChainStats {
    let session = MatchSession::new(MatchConfig::default());
    let target = session.prepare(&workload.target);
    let chain = mutation_chain(&workload.base, workload.steps, intensity, seed);

    // Warm start: the registered revision and its resident match outcome,
    // exactly what the serve fast path holds before a hot update arrives.
    // Owned prepares (the serve representation) let one revision's
    // artifacts carry across loop iterations.
    let mut prev_tree = std::sync::Arc::new(workload.base.clone());
    let mut prev = session.prepare_owned(prev_tree.clone());
    let mut previous = session.hybrid(prev.prepared(), &target);
    // The resident revision's label matrix, threaded through the chain so
    // each step copies unchanged label rows instead of re-walking the
    // session cache — the serve fast path's steady state.
    let mut labels = session.label_matrix(prev.prepared(), &target);

    let mut stats = ChainStats {
        workload: workload.name,
        nodes: workload.base.len(),
        intensity,
        transitions: 0,
        incremental_runs: 0,
        fallback_runs: 0,
        rows_recomputed: 0,
        rows_full: 0,
        dirty_fraction_mean: 0.0,
        full_ms_per_rematch: 0.0,
        incremental_ms_per_rematch: 0.0,
        end_to_end_ms_per_rematch: 0.0,
    };
    let mut full_secs = 0.0f64;
    let mut rematch_secs = 0.0f64;
    let mut end_to_end_secs = 0.0f64;
    for next_tree in chain {
        let next_tree = std::sync::Arc::new(next_tree);
        let start = Instant::now();
        let diff = session.diff_trees(&prev_tree, &next_tree);
        let new = session.reprepare_owned(&prev, next_tree.clone(), &diff);
        let prep_secs = start.elapsed().as_secs_f64();

        // Both paths draw label similarities from the same session cache;
        // whichever runs first would absorb the misses for the revision's
        // fresh labels. Warm the cache outside both timed regions so the
        // split measures the DP work, not cache-arrival order.
        let warm = session.hybrid(new.prepared(), &target);
        session.recycle(warm);

        let start = Instant::now();
        let got = session.rematch_evolved(
            prev.prepared(),
            &labels,
            new.prepared(),
            &target,
            &diff,
            &previous,
        );
        rematch_secs += start.elapsed().as_secs_f64();
        end_to_end_secs += prep_secs + start.elapsed().as_secs_f64();

        let start = Instant::now();
        let want = session.hybrid(new.prepared(), &target);
        full_secs += start.elapsed().as_secs_f64();

        assert_eq!(
            got.outcome.matrix, want.matrix,
            "incremental re-match diverged from full on {} step {} \
             (intensity {intensity}, incremental={})",
            workload.name, stats.transitions, got.incremental,
        );
        assert_eq!(got.outcome.total_qom, want.total_qom);

        stats.transitions += 1;
        if got.incremental {
            stats.incremental_runs += 1;
        } else {
            stats.fallback_runs += 1;
        }
        stats.rows_recomputed += got.rows_recomputed;
        stats.rows_full += next_tree.len();
        stats.dirty_fraction_mean += diff.dirty_fraction();

        session.recycle(previous);
        session.recycle(want);
        previous = got.outcome;
        labels = got.labels;
        prev = new;
        prev_tree = next_tree;
    }
    session.recycle(previous);

    let n = stats.transitions.max(1) as f64;
    stats.dirty_fraction_mean /= n;
    stats.full_ms_per_rematch = full_secs * 1e3 / n;
    stats.incremental_ms_per_rematch = rematch_secs * 1e3 / n;
    stats.end_to_end_ms_per_rematch = end_to_end_secs * 1e3 / n;
    stats
}

fn small_workloads(steps: usize) -> Vec<Workload> {
    vec![
        Workload {
            name: "po1",
            base: corpus::po1(),
            target: corpus::po2(),
            steps,
        },
        Workload {
            name: "pir",
            base: synth::pir().clone(),
            target: corpus::po2(),
            steps,
        },
    ]
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => smoke = true,
            "--gate" => gate = true,
            other if !other.starts_with('-') => out_path = Some(other.to_owned()),
            other => {
                eprintln!("unknown flag {other}; usage: bench_evolve [OUT.json] [--test] [--gate]");
                std::process::exit(2);
            }
        }
    }

    if gate {
        // The evolution gate: deterministic output only (counts and
        // diff-derived fractions — never wall times), so CI can diff two
        // runs byte-for-byte. Bit-identity is asserted inside run_chain;
        // the gate additionally pins the *planner*: low intensity must
        // stay on the incremental path, heavy intensity must fall back.
        let intensities = [0.02, 0.15, 0.45];
        println!("evolution-gate: seed={GATE_SEED:#x} intensities={intensities:?}");
        let mut failed = false;
        for workload in small_workloads(8) {
            for &intensity in &intensities {
                let stats = run_chain(&workload, intensity, GATE_SEED);
                println!(
                    "chain {} ({} nodes) intensity={intensity}: transitions={} \
                     incremental={} fallback={} rows={}/{} dirty_mean={:.4}",
                    stats.workload,
                    stats.nodes,
                    stats.transitions,
                    stats.incremental_runs,
                    stats.fallback_runs,
                    stats.rows_recomputed,
                    stats.rows_full,
                    stats.dirty_fraction_mean,
                );
                // A single insert can push a small tree past the fallback
                // threshold, so low intensity demands a three-quarter
                // majority on the incremental path, not unanimity.
                if intensity <= 0.02 && stats.incremental_runs * 4 < stats.transitions * 3 {
                    println!("  ^ low-intensity chain left the incremental path");
                    failed = true;
                }
                if intensity >= 0.45 && stats.fallback_runs == 0 {
                    println!("  ^ heavy-intensity chain never exercised the fallback");
                    failed = true;
                }
            }
        }
        if failed {
            println!("FAIL");
            std::process::exit(1);
        }
        println!("PASS");
        return;
    }

    // Smoke mode writes no JSON unless a path was given explicitly.
    let out_path = match (out_path, smoke) {
        (Some(p), _) => Some(p),
        (None, false) => Some("BENCH_evolve.json".to_owned()),
        (None, true) => None,
    };
    let (workloads, intensities): (Vec<Workload>, &[f64]) = if smoke {
        (small_workloads(3), &[0.15])
    } else {
        let mut workloads = small_workloads(6);
        workloads.push(Workload {
            name: "pdb",
            base: synth::pdb().clone(),
            target: synth::pir().clone(),
            steps: 6,
        });
        (workloads, &[0.02, 0.05, 0.15, 0.45])
    };

    let mut table = Table::new([
        "chain",
        "nodes",
        "intensity",
        "inc/fall",
        "rows",
        "dirty",
        "full ms",
        "inc ms",
        "speedup",
        "e2e ms",
    ]);
    let mut entries = Vec::new();
    for workload in &workloads {
        for &intensity in intensities {
            let stats = run_chain(workload, intensity, GATE_SEED);
            table.row([
                stats.workload.to_owned(),
                stats.nodes.to_string(),
                format!("{intensity}"),
                format!("{}/{}", stats.incremental_runs, stats.fallback_runs),
                format!("{}/{}", stats.rows_recomputed, stats.rows_full),
                format!("{:.3}", stats.dirty_fraction_mean),
                format!("{:.2}", stats.full_ms_per_rematch),
                format!("{:.2}", stats.incremental_ms_per_rematch),
                format!("{:.1}x", stats.rematch_speedup()),
                format!("{:.2}", stats.end_to_end_ms_per_rematch),
            ]);
            entries.push(format!(
                "    {{\"chain\": \"{}\", \"nodes\": {}, \"intensity\": {}, \
                 \"transitions\": {}, \"incremental_runs\": {}, \
                 \"fallback_runs\": {}, \"rows_recomputed\": {}, \
                 \"rows_full\": {}, \"dirty_fraction_mean\": {:.4}, \
                 \"full_ms_per_rematch\": {:.3}, \
                 \"incremental_ms_per_rematch\": {:.3}, \
                 \"rematch_speedup\": {:.2}, \
                 \"end_to_end_ms_per_rematch\": {:.3}, \
                 \"end_to_end_speedup\": {:.2}}}",
                stats.workload,
                stats.nodes,
                stats.intensity,
                stats.transitions,
                stats.incremental_runs,
                stats.fallback_runs,
                stats.rows_recomputed,
                stats.rows_full,
                stats.dirty_fraction_mean,
                stats.full_ms_per_rematch,
                stats.incremental_ms_per_rematch,
                stats.rematch_speedup(),
                stats.end_to_end_ms_per_rematch,
                stats.end_to_end_speedup(),
            ));
        }
    }

    println!("Schema evolution: incremental vs full re-match (seed {GATE_SEED:#x})\n");
    print!("{}", table.render());

    if let Some(out_path) = out_path {
        let json = format!(
            "{{\n  \"bench\": \"evolve\",\n  \"seed\": {GATE_SEED},\n  \"chains\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        println!("\nwrote {out_path}");
    }
}
