//! Extension experiment — empirical validation of the paper's complexity
//! claim ("The running time of the algorithm lies in O(nm)", §4).
//!
//! Matches synthetic balanced trees of growing size against themselves and
//! fits the log–log slope of running time vs. the pair count n·m. A slope
//! near 1.0 confirms the memoized TreeMatch is linear in the number of node
//! pairs (the per-pair child-alignment work adds only a bounded factor at
//! fixed branching).

use qmatch_core::algorithms::hybrid_match;
use qmatch_core::model::MatchConfig;
use qmatch_core::report::Table;
use qmatch_xsd::SchemaTree;
use std::time::{Duration, Instant};

fn balanced_tree(branch: usize, depth: usize) -> SchemaTree {
    let mut entries: Vec<(String, Option<usize>)> = vec![("root".to_owned(), None)];
    let mut frontier = vec![0usize];
    for level in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for k in 0..branch {
                let idx = entries.len();
                entries.push((format!("n{level}_{parent}_{k}"), Some(parent)));
                next.push(idx);
            }
        }
        frontier = next;
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        entries.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("root", &borrowed)
}

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let config = MatchConfig::default();
    println!("Extension: O(n·m) scaling of the memoized TreeMatch (self-match).\n");
    let mut table = Table::new(["nodes n", "pairs n*m", "median ms", "ms per 1k pairs"]);
    let mut points: Vec<(f64, f64)> = Vec::new();
    for depth in 3..=6 {
        let tree = balanced_tree(3, depth);
        let n = tree.len();
        let pairs = (n * n) as f64;
        let runs = if n > 500 { 5 } else { 15 };
        let elapsed = median(
            (0..runs)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(hybrid_match(&tree, &tree, &config).total_qom);
                    start.elapsed()
                })
                .collect(),
        );
        let ms = elapsed.as_secs_f64() * 1e3;
        points.push((pairs.ln(), ms.ln()));
        table.row([
            n.to_string(),
            format!("{}", n * n),
            format!("{ms:.3}"),
            format!("{:.4}", ms / (pairs / 1e3)),
        ]);
    }
    print!("{}", table.render());

    // Least-squares slope of ln(time) against ln(pairs).
    let n = points.len() as f64;
    let sum_x: f64 = points.iter().map(|p| p.0).sum();
    let sum_y: f64 = points.iter().map(|p| p.1).sum();
    let sum_xy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let sum_xx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let slope = (n * sum_xy - sum_x * sum_y) / (n * sum_xx - sum_x * sum_x);
    println!("\nfitted log-log slope (time vs n*m): {slope:.3}");
    println!("expected shape: slope ~ 1.0 — the paper's O(nm) bound holds empirically");
}
