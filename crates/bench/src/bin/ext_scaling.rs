//! Extension experiment — empirical validation of the paper's complexity
//! claim ("The running time of the algorithm lies in O(nm)", §4).
//!
//! Matches synthetic balanced trees of growing size against themselves and
//! fits the log–log slope of running time vs. the pair count n·m. A slope
//! near 1.0 confirms the memoized TreeMatch is linear in the number of node
//! pairs (the per-pair child-alignment work adds only a bounded factor at
//! fixed branching).

use qmatch_bench::synth_tree::balanced_tree;
use qmatch_bench::Algorithm;
use qmatch_core::model::MatchConfig;
use qmatch_core::par;
use qmatch_core::report::Table;
use qmatch_core::session::MatchSession;
use qmatch_xsd::SchemaTree;
use std::time::{Duration, Instant};

fn median(mut samples: Vec<Duration>) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let config = MatchConfig::default();
    println!("Extension: O(n·m) scaling of the memoized TreeMatch (self-match).\n");
    let mut table = Table::new(["nodes n", "pairs n*m", "median ms", "ms per 1k pairs"]);
    let mut points: Vec<(f64, f64)> = Vec::new();
    for depth in 3..=6 {
        let tree = balanced_tree(3, depth);
        let n = tree.len();
        let pairs = (n * n) as f64;
        let runs = if n > 500 { 5 } else { 15 };
        let elapsed = median(
            (0..runs)
                .map(|_| {
                    let start = Instant::now();
                    std::hint::black_box(Algorithm::Hybrid.run(&tree, &tree, &config).total_qom);
                    start.elapsed()
                })
                .collect(),
        );
        let ms = elapsed.as_secs_f64() * 1e3;
        points.push((pairs.ln(), ms.ln()));
        table.row([
            n.to_string(),
            format!("{}", n * n),
            format!("{ms:.3}"),
            format!("{:.4}", ms / (pairs / 1e3)),
        ]);
    }
    print!("{}", table.render());

    // Least-squares slope of ln(time) against ln(pairs).
    let n = points.len() as f64;
    let sum_x: f64 = points.iter().map(|p| p.0).sum();
    let sum_y: f64 = points.iter().map(|p| p.1).sum();
    let sum_xy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let sum_xx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let slope = (n * sum_xy - sum_x * sum_y) / (n * sum_xx - sum_x * sum_x);
    println!("\nfitted log-log slope (time vs n*m): {slope:.3}");
    println!("expected shape: slope ~ 1.0 — the paper's O(nm) bound holds empirically");

    // The many-schema workload: the same ladder of self-matches submitted
    // through a MatchSession — each schema prepared once, then the corpus
    // matched in one parallel batch — versus one-at-a-time one-shot calls.
    // The prepare/match split shows what a corpus run pays per pair once
    // tokenization, wave construction, and label comparisons are amortized.
    let trees: Vec<SchemaTree> = (3..=6).map(|depth| balanced_tree(3, depth)).collect();
    let start = Instant::now();
    for tree in &trees {
        std::hint::black_box(Algorithm::Hybrid.run(tree, tree, &config).total_qom);
    }
    let one_at_a_time = start.elapsed();
    let session = MatchSession::new(config);
    let start = Instant::now();
    let prepared: Vec<_> = trees.iter().map(|t| session.prepare(t)).collect();
    let prepare = start.elapsed();
    let corpus: Vec<_> = prepared.iter().map(|p| (p, p)).collect();
    let start = Instant::now();
    std::hint::black_box(session.match_corpus(&corpus).len());
    let batched = start.elapsed();
    println!(
        "\nsession API: {} self-match pairs, one-at-a-time {:.1} ms, \
         prepare {:.1} ms + match_corpus {:.1} ms ({} thread(s), \
         label-cache hit rate {:.2})",
        corpus.len(),
        one_at_a_time.as_secs_f64() * 1e3,
        prepare.as_secs_f64() * 1e3,
        batched.as_secs_f64() * 1e3,
        par::num_threads(),
        session.cache_stats().hit_rate(),
    );
}
