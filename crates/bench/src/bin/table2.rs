//! Table 2 — determining the weights of the different axes (§5.1).
//!
//! Sweeps unit-sum weight vectors on a 0.05 grid over schema pairs from
//! three domains, scores each vector by the mean Overall quality of the
//! mapping it produces, and reports (a) the best vectors, (b) the per-axis
//! ranges the top vectors span (the paper reports label 0.25–0.4,
//! properties/level 0.1–0.2, children 0.3–0.5), and (c) the chosen vector —
//! the paper's Table 2: label 0.3, properties 0.2, level 0.1, children 0.4.

use qmatch_bench::{book_pair, dcmd_pair, po_pair};
use qmatch_core::model::Weights;
use qmatch_core::report::{f3, Table};
use qmatch_core::tuning::{best_ranges, score_weights, sweep, TuningTask};

fn main() {
    let pairs = [po_pair(), book_pair(), dcmd_pair()];
    let tasks: Vec<TuningTask<'_>> = pairs
        .iter()
        .map(|p| TuningTask {
            name: p.name,
            source: &p.source,
            target: &p.target,
            gold: &p.gold,
        })
        .collect();

    println!(
        "Table 2 experiment. Weight sweep (0.05 grid) over {} schema pairs.\n",
        tasks.len()
    );
    let points = sweep(&tasks, 0.05, 0.5);

    let mut top = Table::new(["rank", "WL", "WP", "WH", "WC", "mean Overall"]);
    for (i, p) in points.iter().take(10).enumerate() {
        top.row([
            (i + 1).to_string(),
            f3(p.weights.label),
            f3(p.weights.properties),
            f3(p.weights.level),
            f3(p.weights.children),
            f3(p.mean_overall),
        ]);
    }
    println!("Top 10 weight vectors:\n{}", top.render());

    let ranges = best_ranges(&points, 15);
    let mut rt = Table::new(["axis", "ideal range (repro)", "ideal range (paper)"]);
    let fmt = |r: (f64, f64)| format!("{:.2} - {:.2}", r.0, r.1);
    rt.row([
        "Label".to_owned(),
        fmt(ranges.label),
        "0.25 - 0.4".to_owned(),
    ]);
    rt.row([
        "Properties".to_owned(),
        fmt(ranges.properties),
        "0.1 - 0.2".to_owned(),
    ]);
    rt.row([
        "Level".to_owned(),
        fmt(ranges.level),
        "0.1 - 0.2".to_owned(),
    ]);
    rt.row([
        "Children".to_owned(),
        fmt(ranges.children),
        "0.3 - 0.5".to_owned(),
    ]);
    println!("Per-axis ranges among the top 15 vectors:\n{}", rt.render());

    let paper = score_weights(Weights::PAPER, &tasks, 0.5);
    let best = points.first().expect("sweep is non-empty");
    println!("Table 2. Weight for the Different Axes (chosen vector):");
    let mut chosen = Table::new(["Label", "Properties", "Level", "Children", "mean Overall"]);
    chosen.row([f3(0.3), f3(0.2), f3(0.1), f3(0.4), f3(paper)]);
    print!("{}", chosen.render());
    println!(
        "\npaper vector scores {} vs sweep best {} (gap {:.3})",
        f3(paper),
        f3(best.mean_overall),
        best.mean_overall - paper
    );
}
