//! Figure 4 — overall runtime of the match algorithms.
//!
//! The paper plots running time (ms) of the linguistic, structural, and
//! hybrid algorithms against the total number of elements in both input
//! schemas: 19 (PO1+PO2), 24 (Article+Book), 91 (DCMDItem+DCMDOrd), and
//! 3984 (PIR+PDB). Absolute times differ from the 2005 Java/P4 testbed; the
//! *shape* to check is that the hybrid is the slowest at every size and that
//! all three grow with n·m.
//!
//! Run with `--release` for representative numbers. Criterion-grade
//! statistics live in `benches/matchers.rs`; this binary prints the figure's
//! series directly.

use qmatch_bench::{book_pair, dcmd_pair, po_pair, protein_pair, Algorithm, Pair};
use qmatch_core::model::MatchConfig;
use qmatch_core::report::{ms, Table};
use std::time::{Duration, Instant};

/// Median-of-`runs` wall time for one algorithm on one pair.
fn time_algorithm(algo: Algorithm, pair: &Pair, config: &MatchConfig, runs: usize) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let out = algo.run(&pair.source, &pair.target, config);
            std::hint::black_box(out.total_qom);
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let config = MatchConfig::default();
    let pairs = [po_pair(), book_pair(), dcmd_pair(), protein_pair()];
    println!("Figure 4. Overall performance of match algorithms (running time, ms).\n");
    let mut table = Table::new(["total elements", "Linguistic", "Structural", "Hybrid"]);
    for pair in &pairs {
        // Small pairs get more repetitions for a stable median.
        let runs = if pair.total_elements() > 1000 { 3 } else { 15 };
        let row: Vec<String> = Algorithm::PAPER
            .iter()
            .map(|&algo| ms(time_algorithm(algo, pair, &config, runs)))
            .collect();
        table.row([
            pair.total_elements().to_string(),
            row[0].clone(),
            row[1].clone(),
            row[2].clone(),
        ]);
    }
    print!("{}", table.render());
    println!("\nexpected shape: Hybrid slowest per row; all columns grow with schema size");
}
