//! Ablation — the child-match threshold of Figure 3.
//!
//! The paper's pseudo-code gates child contributions on an unspecified
//! "threshold value". This sweep shows how the choice affects mapping
//! quality across the evaluation pairs: too low and weak child pairs inflate
//! coverage (false positives), too high and legitimate relaxed matches are
//! dropped (false negatives). The default 0.5 sits on the plateau.

use qmatch_bench::{book_pair, dcmd_pair, po_pair, Algorithm};
use qmatch_core::eval::evaluate;
use qmatch_core::model::MatchConfig;
use qmatch_core::report::{f3, Table};

fn main() {
    let pairs = [po_pair(), book_pair(), dcmd_pair()];
    println!("Ablation: QMatch child-match threshold sweep (extraction threshold fixed per algorithm).\n");
    let mut table = Table::new([
        "child threshold",
        "PO Overall",
        "BOOK Overall",
        "DCMD Overall",
        "mean",
    ]);
    for step in 0..=10 {
        let threshold = step as f64 / 10.0;
        let config = MatchConfig {
            threshold,
            ..MatchConfig::default()
        };
        let mut overalls = Vec::new();
        for pair in &pairs {
            let (_, mapping) =
                Algorithm::Hybrid.run_and_extract(&pair.source, &pair.target, &config);
            overalls.push(evaluate(&mapping, &pair.source, &pair.target, &pair.gold).overall);
        }
        let mean = overalls.iter().sum::<f64>() / overalls.len() as f64;
        table.row([
            f3(threshold),
            f3(overalls[0]),
            f3(overalls[1]),
            f3(overalls[2]),
            f3(mean),
        ]);
    }
    print!("{}", table.render());
    println!("\nexpected shape: quality peaks on a mid-range plateau that includes 0.5");
}
