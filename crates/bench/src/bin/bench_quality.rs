//! Match-quality benchmark and regression gate.
//!
//! Runs QMatch (hybrid), the full CUPID matcher, and the tree-edit
//! baseline over every evaluated corpus pair (`figure5_pairs`: PO, BOOK,
//! DCMD, Protein), scores each extracted mapping against the pair's gold
//! standard through `qmatch_core::quality`, and prints the unified report
//! the CLI's `evaluate --all` renders — the two surfaces share one
//! evaluation path, so their numbers agree byte-for-byte.
//!
//! `cargo run --release -p qmatch-bench --bin bench_quality [OUT.json] [--test] [--gate]`
//!
//! * default — writes every row (counts, precision/recall/F1/overall) to
//!   `BENCH_quality.json`. Quality is a pure function of the corpus and
//!   the algorithms, so the file is deterministic — no wall times.
//! * `--test` — smoke mode: PO pair only, no JSON written (unless an
//!   output path is given explicitly).
//! * `--gate` — CI quality gate: recompute every row, compare F1 and
//!   Overall against the committed `BENCH_quality.json` (or the given
//!   path), and exit 1 if any cell dropped. Output is fully
//!   deterministic, so CI diffs two runs byte-for-byte.

use qmatch_bench::{figure5_pairs, po_pair, Pair};
use qmatch_core::model::MatchConfig;
use qmatch_core::quality::{self, QualityReport, QualityRow};
use qmatch_core::session::MatchSession;
use qmatch_core::Algorithm;

/// The algorithms the quality harness compares — the same list the CLI's
/// `evaluate --all` runs.
const ALGORITHMS: [Algorithm; 3] = [Algorithm::Hybrid, Algorithm::Cupid, Algorithm::TreeEdit];

/// Every (pair, algorithm) quality row, through one shared session.
fn compute_rows(pairs: &[Pair]) -> Vec<QualityRow> {
    let session = MatchSession::new(MatchConfig::default());
    let mut rows = Vec::with_capacity(pairs.len() * ALGORITHMS.len());
    for pair in pairs {
        let (sp, tp) = (session.prepare(&pair.source), session.prepare(&pair.target));
        for algorithm in &ALGORITHMS {
            rows.push(
                quality::evaluate_algorithm(&session, algorithm, pair.name, &sp, &tp, &pair.gold)
                    .expect("harness algorithms are infallible"),
            );
        }
    }
    rows
}

/// One row as a single JSON object line (stable key order, fixed float
/// width — the file must be reproducible byte-for-byte).
fn row_json(row: &QualityRow) -> String {
    format!(
        "    {{\"pair\": \"{}\", \"algorithm\": \"{}\", \"real\": {}, \
         \"predicted\": {}, \"correct\": {}, \"precision\": {:.6}, \
         \"recall\": {:.6}, \"f1\": {:.6}, \"overall\": {:.6}}}",
        row.pair,
        row.algorithm,
        row.quality.real(),
        row.quality.predicted(),
        row.quality.true_positives,
        row.quality.precision,
        row.quality.recall,
        row.quality.f1(),
        row.quality.overall,
    )
}

/// Pulls `"key": <number>` out of one baseline row line.
fn field_f64(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Pulls `"key": "<string>"` out of one baseline row line.
fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": \"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Baseline (f1, overall) per (pair, algorithm), parsed from the
/// committed JSON (one row object per line, as `row_json` writes it).
fn parse_baseline(text: &str) -> Vec<(String, String, f64, f64)> {
    text.lines()
        .filter_map(|line| {
            Some((
                field_str(line, "pair")?.to_owned(),
                field_str(line, "algorithm")?.to_owned(),
                field_f64(line, "f1")?,
                field_f64(line, "overall")?,
            ))
        })
        .collect()
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => smoke = true,
            "--gate" => gate = true,
            other if !other.starts_with('-') => out_path = Some(other.to_owned()),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: bench_quality [OUT.json] [--test] [--gate]"
                );
                std::process::exit(2);
            }
        }
    }

    let pairs = if smoke {
        vec![po_pair()]
    } else {
        figure5_pairs()
    };
    let rows = compute_rows(&pairs);
    let mut report = QualityReport::new();
    for row in &rows {
        report.push(row.clone());
    }
    println!(
        "Match quality: {} corpus pair(s) x {} algorithm(s)\n",
        pairs.len(),
        ALGORITHMS.len()
    );
    print!("{}", report.render());

    if gate {
        // The quality gate: every F1/Overall cell must be at least its
        // committed baseline (compared with a rounding-aware margin, so
        // re-runs of an identical build never flap).
        let baseline_path = out_path.unwrap_or_else(|| "BENCH_quality.json".to_owned());
        let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        });
        let baseline = parse_baseline(&text);
        if baseline.is_empty() {
            eprintln!("baseline {baseline_path} contains no quality rows");
            std::process::exit(2);
        }
        let mut failures = 0usize;
        println!();
        for (pair, algorithm, base_f1, base_overall) in &baseline {
            let Some(row) = rows
                .iter()
                .find(|r| &r.pair == pair && &r.algorithm == algorithm)
            else {
                println!("{pair}/{algorithm}: MISSING from this run");
                failures += 1;
                continue;
            };
            let (f1, overall) = (row.quality.f1(), row.quality.overall);
            // The baseline stores 6 decimals and may round *up* past the
            // true float; the margin absorbs that half-ulp (5e-7) while
            // still catching any real regression.
            let dropped = f1 < base_f1 - 1e-6 || overall < base_overall - 1e-6;
            println!(
                "{pair}/{algorithm}: f1 {f1:.6} (baseline {base_f1:.6}) overall {overall:.6} \
                 (baseline {base_overall:.6}){}",
                if dropped { " DROP" } else { "" }
            );
            failures += usize::from(dropped);
        }
        if failures > 0 {
            println!("FAIL: {failures} cell(s) below the committed baseline");
            std::process::exit(1);
        }
        println!("PASS");
        return;
    }

    // Smoke mode writes no JSON unless a path was given explicitly.
    let out_path = match (out_path, smoke) {
        (Some(p), _) => Some(p),
        (None, false) => Some("BENCH_quality.json".to_owned()),
        (None, true) => None,
    };
    if let Some(out_path) = out_path {
        let body: Vec<String> = rows.iter().map(row_json).collect();
        let json = format!(
            "{{\n  \"bench\": \"quality\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            body.join(",\n")
        );
        std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        println!("\nwrote {out_path}");
    }
}
