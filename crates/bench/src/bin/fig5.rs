//! Figure 5 — comparison of the Overall measure of match quality for the
//! linguistic, structural, and QMatch (hybrid) algorithms.
//!
//! For each domain pair (PO, BOOK, DCMD, Protein) every algorithm's matrix
//! is reduced to a 1:1 mapping and scored against the gold standard with
//! Overall = Recall · (2 − 1/Precision). The paper's shape: the hybrid has
//! the best Overall in every domain where the two component algorithms are
//! in the same quality ballpark.

use qmatch_bench::{figure5_pairs, hybrid_batch, Algorithm};
use qmatch_core::eval::evaluate;
use qmatch_core::model::MatchConfig;
use qmatch_core::report::{f3, BarChart, Table};

fn main() {
    let config = MatchConfig::default();
    println!("Figure 5. Overall measure of match quality per domain.\n");
    let mut table = Table::new(["domain", "Linguistic", "Structural", "Hybrid", "winner"]);
    let mut chart = BarChart::new(40);
    let pairs = figure5_pairs();
    // The hybrid runs for the whole corpus go through the batch API (one
    // shared thesaurus build, parallel over the domains).
    let hybrid = hybrid_batch(&pairs, &config);
    for (pair, (_, hybrid_mapping)) in pairs.iter().zip(&hybrid) {
        let mut scores = Vec::new();
        for algo in Algorithm::PAPER {
            let mapping = match algo {
                Algorithm::Hybrid => hybrid_mapping.clone(),
                _ => algo.run_and_extract(&pair.source, &pair.target, &config).1,
            };
            let quality = evaluate(&mapping, &pair.source, &pair.target, &pair.gold);
            scores.push(quality.overall);
        }
        let winner = Algorithm::PAPER[scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("3 scores")
            .0]
            .name();
        table.row([
            pair.name.to_owned(),
            f3(scores[0]),
            f3(scores[1]),
            f3(scores[2]),
            winner.to_owned(),
        ]);
        for (algo, score) in Algorithm::PAPER.iter().zip(&scores) {
            chart.bar(format!("{} {}", pair.name, algo.name()), *score);
        }
        chart.bar("", 0.0);
    }
    print!("{}", table.render());
    println!();
    print!("{}", chart.render());
    println!("\nexpected shape: Hybrid wins (or ties) each domain; structural trails linguistic");
}
