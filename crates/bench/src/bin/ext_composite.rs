//! Extension experiment — QMatch vs COMA-style composite matchers (the
//! comparison the paper lists as ongoing work in §7).
//!
//! Runs several composite configurations over the evaluation pairs and
//! scores them with the same Overall measure as Figure 5, next to the plain
//! hybrid. The interesting question from the paper's discussion of Figure 9
//! is whether an optimistic (Max) composite of linguistic+structural can
//! replace the hybrid's internal combination: on ordinary same-domain pairs
//! the hybrid's recursive evidence-sharing wins; on the degenerate
//! Library/Human pair Max inherits the structural matcher's false certainty.

use qmatch_bench::{book_pair, dcmd_pair, po_pair, Algorithm};
use qmatch_core::algorithms::{Aggregation, Algorithm as CoreAlgorithm, Component};
use qmatch_core::eval::evaluate;
use qmatch_core::mapping::extract_mapping;
use qmatch_core::model::MatchConfig;
use qmatch_core::report::{f3, Table};
use qmatch_core::session::MatchSession;

fn main() {
    let pairs = [po_pair(), book_pair(), dcmd_pair()];
    let config = MatchConfig::default();
    let session = MatchSession::new(config);
    let prepared: Vec<_> = pairs
        .iter()
        .map(|p| (session.prepare(&p.source), session.prepare(&p.target)))
        .collect();

    // (name, components, aggregation, extraction threshold). Thresholds sit
    // at each combination's semantic midpoint, mirroring Figure 5's setup.
    let setups: Vec<(&str, Vec<Component>, Aggregation, f64)> = vec![
        (
            "Max(L,S)",
            vec![Component::Linguistic, Component::Structural],
            Aggregation::Max,
            0.8,
        ),
        (
            "Avg(L,S)",
            vec![Component::Linguistic, Component::Structural],
            Aggregation::Average,
            0.55,
        ),
        (
            "W(2L,1S)",
            vec![Component::Linguistic, Component::Structural],
            Aggregation::Weighted(vec![2.0, 1.0]),
            0.55,
        ),
        (
            "Avg(L,S,H)",
            vec![
                Component::Linguistic,
                Component::Structural,
                Component::Hybrid,
            ],
            Aggregation::Average,
            0.6,
        ),
        (
            "Max(H,TE)",
            vec![Component::Hybrid, Component::TreeEdit],
            Aggregation::Max,
            config.weights.acceptance_threshold(),
        ),
    ];

    println!("Extension: QMatch vs COMA-style composite configurations (Overall).\n");
    let mut table = Table::new(["configuration", "PO", "BOOK", "DCMD", "mean"]);

    // Baseline: the hybrid as evaluated in Figure 5.
    let mut hybrid_row = vec!["Hybrid (QMatch)".to_owned()];
    let mut total = 0.0;
    for pair in &pairs {
        let (_, mapping) = Algorithm::Hybrid.run_and_extract(&pair.source, &pair.target, &config);
        let overall = evaluate(&mapping, &pair.source, &pair.target, &pair.gold).overall;
        hybrid_row.push(f3(overall));
        total += overall;
    }
    hybrid_row.push(f3(total / pairs.len() as f64));
    table.row(hybrid_row);

    for (name, components, aggregation, threshold) in &setups {
        let algorithm = CoreAlgorithm::Composite {
            components: components.clone(),
            aggregation: aggregation.clone(),
        };
        let mut row = vec![(*name).to_owned()];
        let mut total = 0.0;
        for (pair, (sp, tp)) in pairs.iter().zip(&prepared) {
            let out = session
                .run(&algorithm, sp, tp)
                .expect("valid configuration");
            let mapping = extract_mapping(&out.matrix, *threshold);
            let overall = evaluate(&mapping, &pair.source, &pair.target, &pair.gold).overall;
            row.push(f3(overall));
            total += overall;
        }
        row.push(f3(total / pairs.len() as f64));
        table.row(row);
    }
    print!("{}", table.render());
    println!("\nexpected shape: the hybrid leads or ties the composites on mean Overall;");
    println!("Max() composites inherit their weakest member's false positives");
}
