//! Ablation — explaining the Figure 4 near-tie between Hybrid and
//! Linguistic.
//!
//! EXPERIMENTS.md notes that our hybrid runs within noise of the standalone
//! linguistic matcher. This ablation quantifies why by timing a deliberately
//! naive hybrid (no label-pair cache, no pre-tokenization — a direct
//! transcription of Figure 3): even then, the hybrid costs only ~1.1–1.2×
//! the linguistic matcher, because the O(n·m) label comparisons dominate and
//! the structural additions (property comparison + child aggregation) are
//! comparatively free. The paper's visibly slower hybrid therefore reflects
//! its implementation, not the algorithm.

use qmatch_bench::{book_pair, dcmd_pair, po_pair, Algorithm};
use qmatch_core::matrix::SimMatrix;
use qmatch_core::model::{children_qom, MatchConfig};
use qmatch_core::props::compare_properties;
use qmatch_core::report::{ms, Table};
use qmatch_lexicon::NameMatcher;
use qmatch_xsd::{NodeId, SchemaTree};
use std::time::{Duration, Instant};

/// The hybrid DP with no label cache and no pre-tokenization: every node
/// pair tokenizes and compares from scratch, like a straightforward
/// transcription of Figure 3 would.
fn uncached_hybrid(source: &SchemaTree, target: &SchemaTree, config: &MatchConfig) -> f64 {
    let matcher = NameMatcher::with_default_thesaurus();
    let weights = config.weights;
    let mut matrix = SimMatrix::zeros(source.len(), target.len());
    let mut s_order: Vec<NodeId> = (0..source.len() as u32).map(NodeId).collect();
    s_order.reverse();
    let mut t_order: Vec<NodeId> = (0..target.len() as u32).map(NodeId).collect();
    t_order.reverse();
    for &s in &s_order {
        let sn = source.node(s);
        for &t in &t_order {
            let tn = target.node(t);
            let label = matcher.compare(&sn.label, &tn.label).score;
            let props = compare_properties(&sn.properties, &tn.properties).score;
            let qom = if sn.is_leaf() && tn.is_leaf() {
                weights.leaf_qom(label, props)
            } else {
                let mut qom_sum = 0.0;
                let mut matched = 0usize;
                for &cs in &sn.children {
                    let best = tn
                        .children
                        .iter()
                        .map(|&ct| matrix.get(cs, ct))
                        .fold(0.0f64, f64::max);
                    if best >= config.threshold {
                        qom_sum += best;
                        matched += 1;
                    }
                }
                let qomc = if sn.is_leaf() != tn.is_leaf() {
                    0.0
                } else {
                    children_qom(qom_sum, matched, sn.children.len())
                };
                let qomh = if sn.level == tn.level { 1.0 } else { 0.0 };
                weights.qom(label, props, qomh, qomc)
            };
            matrix.set(s, t, qom);
        }
    }
    matrix.get(source.root_id(), target.root_id())
}

fn median_time(mut run: impl FnMut() -> f64, runs: usize) -> Duration {
    let mut samples: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(run());
            start.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    let config = MatchConfig::default();
    let pairs = [po_pair(), book_pair(), dcmd_pair()];
    println!("Ablation: label-pair cache (running time, ms; median of 15).\n");
    let mut table = Table::new([
        "pair",
        "Linguistic",
        "Hybrid (cached)",
        "Hybrid (uncached)",
        "speedup",
    ]);
    for pair in &pairs {
        let runs = 15;
        let ling = median_time(
            || {
                Algorithm::Linguistic
                    .run(&pair.source, &pair.target, &config)
                    .total_qom
            },
            runs,
        );
        let cached = median_time(
            || {
                Algorithm::Hybrid
                    .run(&pair.source, &pair.target, &config)
                    .total_qom
            },
            runs,
        );
        let uncached = median_time(
            || uncached_hybrid(&pair.source, &pair.target, &config),
            runs,
        );
        // Sanity: both hybrids agree on the result.
        let a = Algorithm::Hybrid
            .run(&pair.source, &pair.target, &config)
            .total_qom;
        let b = uncached_hybrid(&pair.source, &pair.target, &config);
        assert!((a - b).abs() < 1e-9, "cached {a} vs uncached {b}");
        table.row([
            format!("{} ({})", pair.name, pair.total_elements()),
            ms(ling),
            ms(cached),
            ms(uncached),
            format!(
                "{:.1}x",
                uncached.as_secs_f64() / cached.as_secs_f64().max(1e-12)
            ),
        ]);
    }
    print!("{}", table.render());
    println!("\nexpected shape: even the naive hybrid stays within ~1.2x of the");
    println!("linguistic matcher — label comparison dominates Figure 4's cost at");
    println!("every size, so Hybrid ~ Linguistic >> Structural in this implementation");
}
