//! Serving-path throughput and latency accounting: boots the epoll
//! reactor in-process on an ephemeral port, registers the embedded
//! corpus, and hammers the match endpoints from a fixed pool of
//! keep-alive client threads. Results go to `BENCH_serve.json` so serving
//! changes can track the trajectory alongside `BENCH_treematch.json`.
//!
//! Three endpoints are measured, chosen to bracket the serving stack:
//!
//! * `healthz` — inline on the reactor thread; its latency is the floor
//!   the event loop itself imposes (parse + render + syscalls).
//! * `match` — one queued job on the owner shard: queue hop, hybrid
//!   TreeMatch over a corpus pair, response render.
//! * `topk` — a scatter over every shard plus the total-order merge, the
//!   most machinery a single request can exercise.
//!
//! Each endpoint is driven by `CONCURRENCY` client threads, every client
//! holding one keep-alive connection and issuing its share of the
//! request budget sequentially — so the offered load is closed-loop and
//! the p50/p99 percentiles are per-request wall times as a client saw
//! them, not server-side numbers. The warmup pass (untimed) absorbs
//! thesaurus construction and first-touch prepares.
//!
//! `cargo run --release -p qmatch-bench --bin bench_serve [OUT.json] [--test]`
//!
//! * `--test` — smoke mode: tiny request budget, no JSON written (unless
//!   an output path is given explicitly). Used by CI.
//!
//! Numbers move with the host; treat the JSON as a trend line, not a
//! contract (CI's delta job is report-only for the same reason).

use qmatch_core::report::Table;
use qmatch_datasets::corpus;
use qmatch_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Instant;

/// Fixed client-thread count: enough to keep every shard busy on small
/// hosts without turning the bench into a context-switch measurement.
const CONCURRENCY: usize = 8;

/// One keep-alive request; returns the status code after draining the
/// framed response body.
fn request(stream: &mut TcpStream, method: &str, target: &str) -> u16 {
    let head = format!("{method} {target} HTTP/1.1\r\nhost: bench\r\ncontent-length: 0\r\n\r\n");
    stream.write_all(head.as_bytes()).expect("write request");
    let mut raw = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while !raw.ends_with(b"\r\n\r\n") {
        stream.read_exact(&mut byte).expect("response head byte");
        raw.push(byte[0]);
    }
    let head = String::from_utf8(raw).expect("UTF-8 head");
    let status: u16 = head
        .split(' ')
        .nth(1)
        .expect("status")
        .parse()
        .expect("numeric status");
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("content-length: "))
        .expect("content-length")
        .trim()
        .parse()
        .expect("numeric length");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("response body");
    status
}

/// Measured result for one endpoint.
struct Measured {
    endpoint: &'static str,
    rps: f64,
    p50_us: u64,
    p99_us: u64,
    max_us: u64,
}

/// Closed-loop measurement: `CONCURRENCY` clients split `total` requests
/// against `target`, each timing every request on its own keep-alive
/// connection.
fn measure(
    addr: SocketAddr,
    endpoint: &'static str,
    method: &'static str,
    target: &'static str,
    total: usize,
) -> Measured {
    let per_client = total.div_ceil(CONCURRENCY);
    // Untimed warmup: first-touch prepares, label-cache fill, allocator.
    let mut stream = TcpStream::connect(addr).expect("warmup connect");
    for _ in 0..3 {
        assert_eq!(request(&mut stream, method, target), 200, "warmup {target}");
    }
    drop(stream);
    let started = Instant::now();
    let workers: Vec<_> = (0..CONCURRENCY)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("client connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut lat = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t0 = Instant::now();
                    let status = request(&mut stream, method, target);
                    lat.push(t0.elapsed().as_micros() as u64);
                    assert_eq!(status, 200, "{target}");
                }
                lat
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(per_client * CONCURRENCY);
    for worker in workers {
        latencies.extend(worker.join().expect("client thread"));
    }
    let wall = started.elapsed();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    Measured {
        endpoint,
        rps: latencies.len() as f64 / wall.as_secs_f64(),
        p50_us: pct(0.50),
        p99_us: pct(0.99),
        max_us: *latencies.last().expect("non-empty latencies"),
    }
}

fn main() {
    let mut out_path: Option<String> = None;
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--test" => smoke = true,
            other if !other.starts_with('-') => out_path = Some(other.to_owned()),
            other => {
                eprintln!("unknown flag {other}; usage: bench_serve [OUT.json] [--test]");
                std::process::exit(2);
            }
        }
    }
    // Smoke mode writes no JSON unless a path was given explicitly.
    let out_path = match (out_path, smoke) {
        (Some(p), _) => Some(p),
        (None, false) => Some("BENCH_serve.json".to_owned()),
        (None, true) => None,
    };
    let total = if smoke { 2 * CONCURRENCY } else { 2000 };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let shards = server.registry().shard_count();
    for (name, tree, xsd) in [
        ("po1", corpus::po1(), corpus::po1_xsd()),
        ("po2", corpus::po2(), corpus::po2_xsd()),
        ("article", corpus::article(), corpus::article_xsd()),
        ("book", corpus::book(), corpus::book_xsd()),
        ("dcmd_item", corpus::dcmd_item(), corpus::dcmd_item_xsd()),
        ("dcmd_ord", corpus::dcmd_ord(), corpus::dcmd_ord_xsd()),
    ] {
        server.registry().register(name, tree, xsd.as_bytes());
    }
    let addr = server.local_addr().expect("local addr");
    let shutdown = server.shutdown_handle();
    let runner = std::thread::spawn(move || server.run().expect("server run"));

    let measured = [
        measure(addr, "healthz", "GET", "/v1/healthz", total),
        measure(
            addr,
            "match",
            "POST",
            "/v1/match?source=po1&target=po2",
            total,
        ),
        measure(
            addr,
            "topk",
            "POST",
            "/v1/match/topk?source=po1&k=10",
            total,
        ),
    ];
    shutdown.shutdown();
    runner.join().expect("server thread");

    let mut table = Table::new(["endpoint", "rps", "p50 us", "p99 us", "max us"]);
    for m in &measured {
        table.row([
            m.endpoint.to_owned(),
            format!("{:.0}", m.rps),
            m.p50_us.to_string(),
            m.p99_us.to_string(),
            m.max_us.to_string(),
        ]);
    }
    println!("bench_serve: {CONCURRENCY} keep-alive clients, {total} requests/endpoint, {shards} shard(s), {cores} core(s)");
    print!("{}", table.render());

    if let Some(out_path) = out_path {
        let entries: Vec<String> = measured
            .iter()
            .map(|m| {
                format!(
                    r#"    {{"endpoint": "{}", "rps": {:.1}, "p50_us": {}, "p99_us": {}, "max_us": {}}}"#,
                    m.endpoint, m.rps, m.p50_us, m.p99_us, m.max_us
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"concurrency\": {CONCURRENCY},\n  \"requests_per_endpoint\": {total},\n  \"shards\": {shards},\n  \"cores\": {cores},\n  \"endpoints\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        eprintln!("wrote {out_path}");
    }
}
