//! Ablation — linguistic components.
//!
//! The paper notes its linguistic and structural components "can be easily
//! replaced by other perhaps better performing" ones. This ablation degrades
//! the linguistic component in two steps — full thesaurus+fuzzy, fuzzy-only
//! (no thesaurus), and exact-string-only — and reports the effect on both
//! the standalone linguistic matcher and the hybrid. The drop quantifies how
//! much of QMatch's accuracy comes from the lexical knowledge base.

use qmatch_bench::{book_pair, dcmd_pair, po_pair, Algorithm};
use qmatch_core::eval::evaluate;
use qmatch_core::model::{LexiconMode, MatchConfig};
use qmatch_core::report::{f3, Table};

fn main() {
    let pairs = [po_pair(), book_pair(), dcmd_pair()];
    println!("Ablation: linguistic resources (mean Overall across PO, BOOK, DCMD).\n");
    let mut table = Table::new([
        "lexicon mode",
        "Ling Overall",
        "Ling Recall",
        "Hybrid Overall",
        "Hybrid Recall",
    ]);
    for (mode, label) in [
        (LexiconMode::Full, "thesaurus + fuzzy (paper)"),
        (LexiconMode::FuzzyOnly, "fuzzy metrics only"),
        (LexiconMode::ExactOnly, "exact strings only"),
    ] {
        let config = MatchConfig {
            lexicon: mode,
            ..MatchConfig::default()
        };
        let mean = |algo: Algorithm| -> (f64, f64) {
            let (mut overall, mut recall) = (0.0, 0.0);
            for pair in &pairs {
                let (_, mapping) = algo.run_and_extract(&pair.source, &pair.target, &config);
                let q = evaluate(&mapping, &pair.source, &pair.target, &pair.gold);
                overall += q.overall;
                recall += q.recall;
            }
            (overall / pairs.len() as f64, recall / pairs.len() as f64)
        };
        let ling = mean(Algorithm::Linguistic);
        let hybrid = mean(Algorithm::Hybrid);
        table.row([
            label.to_owned(),
            f3(ling.0),
            f3(ling.1),
            f3(hybrid.0),
            f3(hybrid.1),
        ]);
    }
    print!("{}", table.render());
    println!("\nexpected shape: recall degrades monotonically for both algorithms as lexical");
    println!("resources are removed; the standalone linguistic matcher trades recall for");
    println!("precision (its Overall can rise while it finds ever fewer real matches), while");
    println!("the hybrid's Overall falls because structure keeps its prediction count up");
}
