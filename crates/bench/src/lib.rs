#![warn(missing_docs)]

//! Shared experiment harness for the paper's tables and figures.
//!
//! Each binary in `src/bin/` regenerates one published artifact:
//!
//! | binary                | artifact  |
//! |-----------------------|-----------|
//! | `table1`              | Table 1 — test-schema characteristics |
//! | `table2`              | Table 2 — weight determination sweep |
//! | `fig4`                | Figure 4 — runtime vs total elements |
//! | `fig5`                | Figure 5 — Overall quality per domain |
//! | `fig6`                | Figure 6 — manual vs found matches |
//! | `fig9`                | Figure 9 — structurally identical / linguistically different |
//! | `ablation_threshold`  | child-match threshold sweep (design ablation) |
//! | `ablation_linguistic` | lexicon-component ablation |

pub mod harness;
pub mod synth_tree;

use qmatch_core::algorithms::{Algorithm as CoreAlgorithm, MatchOutcome};
use qmatch_core::eval::GoldStandard;
use qmatch_core::model::MatchConfig;
use qmatch_core::session::MatchSession;
use qmatch_datasets::{corpus, figures, gold, synth};
use qmatch_xsd::SchemaTree;

/// The three algorithms the paper evaluates, plus the related-work
/// tree-edit baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// CUPID-style label matcher.
    Linguistic,
    /// Label-free structure matcher.
    Structural,
    /// QMatch (Figure 3).
    Hybrid,
    /// Nierman–Jagadish-style tree edit distance (the paper's related work \[15\]).
    TreeEdit,
}

impl Algorithm {
    /// The three algorithms of the paper's evaluation, in figure order.
    pub const PAPER: [Algorithm; 3] = [
        Algorithm::Linguistic,
        Algorithm::Structural,
        Algorithm::Hybrid,
    ];

    /// Display name used in the figures.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Linguistic => "Linguistic",
            Algorithm::Structural => "Structural",
            Algorithm::Hybrid => "Hybrid",
            Algorithm::TreeEdit => "TreeEdit",
        }
    }

    /// The corresponding [`qmatch_core::algorithms::Algorithm`] selector.
    pub fn core(self) -> CoreAlgorithm {
        match self {
            Algorithm::Linguistic => CoreAlgorithm::Linguistic,
            Algorithm::Structural => CoreAlgorithm::Structural,
            Algorithm::Hybrid => CoreAlgorithm::Hybrid,
            Algorithm::TreeEdit => CoreAlgorithm::TreeEdit,
        }
    }

    /// Runs the algorithm.
    pub fn run(
        self,
        source: &SchemaTree,
        target: &SchemaTree,
        config: &MatchConfig,
    ) -> MatchOutcome {
        let session = MatchSession::new(*config);
        let (sp, tp) = (session.prepare(source), session.prepare(target));
        session
            .run(&self.core(), &sp, &tp)
            .expect("non-composite algorithms are infallible")
    }

    /// The mapping-extraction (acceptance) threshold for this algorithm's
    /// score distribution — delegates to
    /// [`qmatch_core::quality::default_threshold`], the single source of
    /// truth the CLI and serve handlers also use. The scales differ by
    /// construction: linguistic scores are label similarities where 0.5
    /// already means a relaxed match, while the hybrid's leaf equation
    /// (Eq. 2) gives *any* leaf pair the constant `C = WH + WC = 0.5` head
    /// start, and the structural matcher concentrates compatible leaves
    /// near 1.0.
    pub fn extraction_threshold(self, config: &MatchConfig) -> f64 {
        qmatch_core::quality::default_threshold(&self.core(), config)
    }

    /// Runs the algorithm and extracts its mapping at
    /// [`Algorithm::extraction_threshold`].
    pub fn run_and_extract(
        self,
        source: &SchemaTree,
        target: &SchemaTree,
        config: &MatchConfig,
    ) -> (MatchOutcome, qmatch_core::mapping::Mapping) {
        let outcome = self.run(source, target, config);
        let mapping = qmatch_core::mapping::extract_mapping(
            &outcome.matrix,
            self.extraction_threshold(config),
        );
        (outcome, mapping)
    }
}

/// Batch-runs the hybrid matcher over a corpus of evaluated pairs via a
/// [`MatchSession`] — one shared thesaurus and label cache, each schema
/// prepared once, parallel over the pairs — and extracts each mapping at
/// the hybrid acceptance threshold. Outcomes come back in corpus order and
/// are identical to per-pair [`Algorithm::run_and_extract`] calls.
pub fn hybrid_batch(
    pairs: &[Pair],
    config: &MatchConfig,
) -> Vec<(MatchOutcome, qmatch_core::mapping::Mapping)> {
    let session = MatchSession::new(*config);
    let prepared: Vec<_> = pairs
        .iter()
        .map(|p| (session.prepare(&p.source), session.prepare(&p.target)))
        .collect();
    let refs: Vec<_> = prepared.iter().map(|(s, t)| (s, t)).collect();
    let threshold = Algorithm::Hybrid.extraction_threshold(config);
    session
        .match_corpus(&refs)
        .into_iter()
        .map(|outcome| {
            let mapping = qmatch_core::mapping::extract_mapping(&outcome.matrix, threshold);
            (outcome, mapping)
        })
        .collect()
}

/// One evaluated schema pair with its gold standard.
pub struct Pair {
    /// Domain name as the figures label it.
    pub name: &'static str,
    /// Source schema.
    pub source: SchemaTree,
    /// Target schema.
    pub target: SchemaTree,
    /// Real matches.
    pub gold: GoldStandard,
}

impl Pair {
    /// Total elements across both schemas (Figure 4's x axis).
    pub fn total_elements(&self) -> usize {
        self.source.element_count() + self.target.element_count()
    }
}

/// PO1 vs PO2.
pub fn po_pair() -> Pair {
    Pair {
        name: "PO",
        source: corpus::po1(),
        target: corpus::po2(),
        gold: gold::po_gold(),
    }
}

/// Article vs Book.
pub fn book_pair() -> Pair {
    Pair {
        name: "BOOK",
        source: corpus::article(),
        target: corpus::book(),
        gold: gold::book_gold(),
    }
}

/// DCMDItem vs DCMDOrd (the XBench pair).
pub fn dcmd_pair() -> Pair {
    Pair {
        name: "DCMD",
        source: corpus::dcmd_item(),
        target: corpus::dcmd_ord(),
        gold: gold::dcmd_gold(),
    }
}

/// PIR vs PDB (the synthetic protein pair).
pub fn protein_pair() -> Pair {
    Pair {
        name: "Protein",
        source: synth::pir().clone(),
        target: synth::pdb().clone(),
        gold: synth::protein_gold().clone(),
    }
}

/// Library vs human (Figures 7/8, evaluated in Figure 9).
pub fn library_human_pair() -> Pair {
    Pair {
        name: "Library/Human",
        source: figures::library_fig7(),
        target: figures::human_fig8(),
        gold: gold::library_human_gold(),
    }
}

/// The four domain pairs of Figures 5, in paper order.
pub fn figure5_pairs() -> Vec<Pair> {
    vec![po_pair(), book_pair(), dcmd_pair(), protein_pair()]
}

/// The three pairs of Figure 6 (the protein pair is omitted there — the
/// paper could not manually match thousands of elements; we *can*, but the
/// figure is reproduced as published).
pub fn figure6_pairs() -> Vec<Pair> {
    vec![po_pair(), book_pair(), dcmd_pair()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_batch_matches_per_pair_runs() {
        let config = MatchConfig::default();
        let pairs = vec![po_pair(), book_pair()];
        let batch = hybrid_batch(&pairs, &config);
        assert_eq!(batch.len(), pairs.len());
        for (pair, (outcome, mapping)) in pairs.iter().zip(&batch) {
            let (single, single_mapping) =
                Algorithm::Hybrid.run_and_extract(&pair.source, &pair.target, &config);
            assert_eq!(outcome.matrix, single.matrix, "{}", pair.name);
            assert_eq!(mapping.pairs, single_mapping.pairs, "{}", pair.name);
        }
    }

    #[test]
    fn figure4_x_axis_totals() {
        assert_eq!(po_pair().total_elements(), 19);
        assert_eq!(book_pair().total_elements(), 24);
        assert_eq!(dcmd_pair().total_elements(), 91);
        assert_eq!(protein_pair().total_elements(), 3984);
    }

    #[test]
    fn all_algorithms_run_on_the_po_pair() {
        let pair = po_pair();
        let config = MatchConfig::default();
        for algo in [
            Algorithm::Linguistic,
            Algorithm::Structural,
            Algorithm::Hybrid,
            Algorithm::TreeEdit,
        ] {
            let out = algo.run(&pair.source, &pair.target, &config);
            assert!(
                out.total_qom >= 0.0 && out.total_qom <= 1.0,
                "{}: {}",
                algo.name(),
                out.total_qom
            );
            assert_eq!(out.matrix.rows(), pair.source.len());
        }
    }

    #[test]
    fn figure5_has_four_domains_figure6_three() {
        let f5: Vec<_> = figure5_pairs().iter().map(|p| p.name).collect();
        assert_eq!(f5, ["PO", "BOOK", "DCMD", "Protein"]);
        let f6: Vec<_> = figure6_pairs().iter().map(|p| p.name).collect();
        assert_eq!(f6, ["PO", "BOOK", "DCMD"]);
    }

    #[test]
    fn algorithm_names_are_figure_labels() {
        let names: Vec<_> = Algorithm::PAPER.iter().map(|a| a.name()).collect();
        assert_eq!(names, ["Linguistic", "Structural", "Hybrid"]);
    }
}
