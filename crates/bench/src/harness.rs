//! A minimal, dependency-free benchmark harness.
//!
//! The workspace builds fully offline, so it cannot pull in `criterion`;
//! the `[[bench]]` targets instead use this harness (they already declare
//! `harness = false`, so each bench is a plain `main`). It keeps the two
//! behaviours the repo relies on:
//!
//! - `cargo bench` runs each benchmark adaptively (calibrated batches until
//!   a time budget is spent) and prints per-iteration timings, and
//! - `cargo bench -- --test` (used by CI) runs every benchmark body exactly
//!   once as a smoke test, with no timing loop.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Collects and prints benchmark timings; construct one per bench binary.
pub struct Harness {
    quick: bool,
    /// Total measurement budget per benchmark (after calibration).
    budget: Duration,
}

impl Harness {
    /// Reads the harness mode from the process arguments: `--test` selects
    /// the one-shot smoke mode that CI uses. All other arguments (such as
    /// the `--bench` flag cargo appends) are ignored.
    pub fn from_env() -> Harness {
        Harness {
            quick: std::env::args().any(|a| a == "--test"),
            budget: Duration::from_millis(300),
        }
    }

    /// Times `f`, printing a `name ... <t>/iter` line, or runs it once in
    /// `--test` mode.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        if self.quick {
            black_box(f());
            println!("test {name} ... ok");
            return;
        }
        // Calibrate a batch size that runs for at least ~10ms so timer
        // overhead is negligible even for nanosecond-scale bodies.
        let mut batch: u64 = 1;
        let mut samples: Vec<f64> = Vec::new();
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(10) || batch >= 1 << 24 {
                samples.push(elapsed.as_nanos() as f64 / batch as f64);
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline && samples.len() < 50 {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(start.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let min = samples[0];
        println!(
            "bench {name:<56} {:>12}/iter (min {:>10}, {} samples)",
            format_ns(median),
            format_ns(min),
            samples.len()
        );
    }
}

/// Renders a nanosecond count with a human-readable unit.
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Wall-clock time of a single call, for coarse whole-run measurements.
pub fn time_once<T>(mut f: impl FnMut() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ns_picks_sane_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(12_500.0), "12.50 µs");
        assert_eq!(format_ns(12_500_000.0), "12.50 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }

    #[test]
    fn time_once_returns_the_value() {
        let (elapsed, v) = time_once(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(elapsed < Duration::from_secs(1));
    }
}
