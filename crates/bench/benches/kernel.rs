//! Microbenchmarks for the banded DP kernel (DESIGN.md §14): the warm
//! per-pair wave cost that `bench_treematch`'s `match_ms` aggregates, taken
//! apart along the axes the kernel restructured —
//!
//! - storage precision (`f64` vs the memory-lean `f32` rows),
//! - arena reuse (recycled buffers vs a fresh allocation per pair),
//! - the band prefilter (default child threshold vs a strict one that
//!   engages the label-upper-bound and cross-kind prunes).
//!
//! The contiguous-row claim is what the timings check: the inner loops run
//! over dense target slices, so per-iteration cost must stay ~O(n·m) and
//! the f32 rows must not be slower than f64 (half the bytes through the
//! same loop).
//!
//! `cargo bench -p qmatch-bench --bench kernel` (CI smokes it with
//! `-- --test`).

use qmatch_bench::harness::Harness;
use qmatch_bench::synth_tree::{balanced_tree_with_vocab, SCHEMA_VOCAB};
use qmatch_core::matrix::Precision;
use qmatch_core::model::MatchConfig;
use qmatch_core::session::MatchSession;
use std::hint::black_box;

fn main() {
    let h = Harness::from_env();
    let config = MatchConfig::default();

    for (branch, depth) in [(4, 3), (3, 6)] {
        let tree = balanced_tree_with_vocab(branch, depth, SCHEMA_VOCAB);
        let n = tree.len();

        // Warm per-pair match: prepared schemas, hot label cache, recycled
        // arena buffers — the steady state of match_corpus / topk loops.
        for precision in [Precision::F64, Precision::F32] {
            let session = MatchSession::new(MatchConfig {
                precision,
                ..config
            });
            let (sp, tp) = (session.prepare(&tree), session.prepare(&tree));
            let warm = session.hybrid(&sp, &tp);
            session.recycle(warm);
            h.bench(&format!("kernel/warm/{}/{n}", precision.name()), || {
                let outcome = session.hybrid(&sp, &tp);
                black_box(outcome.total_qom);
                session.recycle(outcome);
            });
        }

        // Same loop without recycling: every pair pays a cold matrix +
        // scratch allocation. The gap to kernel/warm is the arena's win.
        let session = MatchSession::new(config);
        let (sp, tp) = (session.prepare(&tree), session.prepare(&tree));
        black_box(session.hybrid(&sp, &tp).total_qom);
        h.bench(&format!("kernel/cold-alloc/f64/{n}"), || {
            black_box(session.hybrid(&sp, &tp).total_qom)
        });

        // Prefilter sweep: 0.0 disables the band prunes (every child cell
        // scanned), the default 0.5 engages them where labels allow, 0.95
        // prunes aggressively. All three produce bit-identical matrices
        // (pinned by tests/kernel_equivalence.rs); only the time may move.
        for threshold in [0.0, 0.5, 0.95] {
            let session = MatchSession::new(MatchConfig {
                threshold,
                ..config
            });
            let (sp, tp) = (session.prepare(&tree), session.prepare(&tree));
            let warm = session.hybrid(&sp, &tp);
            session.recycle(warm);
            h.bench(&format!("kernel/prefilter/t{threshold}/{n}"), || {
                let outcome = session.hybrid(&sp, &tp);
                black_box(outcome.total_qom);
                session.recycle(outcome);
            });
        }
    }
}
