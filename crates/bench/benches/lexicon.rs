//! Microbenchmarks for the linguistic substrate: tokenization, string
//! metrics, and full label comparison (the inner loop of the linguistic and
//! hybrid matchers — Figure 4's dominant cost at protein scale).
//!
//! `cargo bench -p qmatch-bench --bench lexicon`

use criterion::{criterion_group, criterion_main, Criterion};
use qmatch_lexicon::metrics::{bigram_dice, jaro_winkler, levenshtein};
use qmatch_lexicon::{tokenize, NameMatcher};
use std::hint::black_box;

const LABEL_PAIRS: &[(&str, &str)] = &[
    ("OrderNo", "OrderNo"),
    ("Quantity", "Qty"),
    ("UnitOfMeasure", "UOM"),
    ("PurchaseOrderNumber", "PONumber"),
    ("BillingAddress", "BillTo"),
    ("classification151", "clss151"),
    ("Library", "human"),
];

fn metrics(c: &mut Criterion) {
    let mut group = c.benchmark_group("lexicon/metrics");
    group.bench_function("levenshtein", |b| {
        b.iter(|| {
            for (x, y) in LABEL_PAIRS {
                black_box(levenshtein(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("jaro_winkler", |b| {
        b.iter(|| {
            for (x, y) in LABEL_PAIRS {
                black_box(jaro_winkler(black_box(x), black_box(y)));
            }
        })
    });
    group.bench_function("bigram_dice", |b| {
        b.iter(|| {
            for (x, y) in LABEL_PAIRS {
                black_box(bigram_dice(black_box(x), black_box(y)));
            }
        })
    });
    group.finish();
}

fn tokenization(c: &mut Criterion) {
    c.bench_function("lexicon/tokenize", |b| {
        b.iter(|| {
            for (x, y) in LABEL_PAIRS {
                black_box(tokenize(black_box(x)));
                black_box(tokenize(black_box(y)));
            }
        })
    });
}

fn name_compare(c: &mut Criterion) {
    let matcher = NameMatcher::with_default_thesaurus();
    c.bench_function("lexicon/compare", |b| {
        b.iter(|| {
            for (x, y) in LABEL_PAIRS {
                black_box(matcher.compare(black_box(x), black_box(y)));
            }
        })
    });
    let tokenized: Vec<_> = LABEL_PAIRS
        .iter()
        .map(|(x, y)| (tokenize(x), tokenize(y)))
        .collect();
    c.bench_function("lexicon/compare_tokens(pretokenized)", |b| {
        b.iter(|| {
            for (tx, ty) in &tokenized {
                black_box(matcher.compare_tokens(black_box(tx), black_box(ty)));
            }
        })
    });
    c.bench_function("lexicon/thesaurus_build", |b| {
        b.iter(|| black_box(NameMatcher::with_default_thesaurus()))
    });
}

criterion_group!(benches, metrics, tokenization, name_compare);
criterion_main!(benches);
