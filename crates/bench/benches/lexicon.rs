//! Microbenchmarks for the linguistic substrate: tokenization, string
//! metrics, and full label comparison (the inner loop of the linguistic and
//! hybrid matchers — Figure 4's dominant cost at protein scale).
//!
//! `cargo bench -p qmatch-bench --bench lexicon`

use qmatch_bench::harness::Harness;
use qmatch_lexicon::metrics::{bigram_dice, jaro_winkler, levenshtein};
use qmatch_lexicon::{tokenize, NameMatcher};
use std::hint::black_box;

const LABEL_PAIRS: &[(&str, &str)] = &[
    ("OrderNo", "OrderNo"),
    ("Quantity", "Qty"),
    ("UnitOfMeasure", "UOM"),
    ("PurchaseOrderNumber", "PONumber"),
    ("BillingAddress", "BillTo"),
    ("classification151", "clss151"),
    ("Library", "human"),
];

fn main() {
    let h = Harness::from_env();

    h.bench("lexicon/metrics/levenshtein", || {
        for (x, y) in LABEL_PAIRS {
            black_box(levenshtein(black_box(x), black_box(y)));
        }
    });
    h.bench("lexicon/metrics/jaro_winkler", || {
        for (x, y) in LABEL_PAIRS {
            black_box(jaro_winkler(black_box(x), black_box(y)));
        }
    });
    h.bench("lexicon/metrics/bigram_dice", || {
        for (x, y) in LABEL_PAIRS {
            black_box(bigram_dice(black_box(x), black_box(y)));
        }
    });

    h.bench("lexicon/tokenize", || {
        for (x, y) in LABEL_PAIRS {
            black_box(tokenize(black_box(x)));
            black_box(tokenize(black_box(y)));
        }
    });

    let matcher = NameMatcher::with_default_thesaurus();
    h.bench("lexicon/compare", || {
        for (x, y) in LABEL_PAIRS {
            black_box(matcher.compare(black_box(x), black_box(y)));
        }
    });
    let tokenized: Vec<_> = LABEL_PAIRS
        .iter()
        .map(|(x, y)| (tokenize(x), tokenize(y)))
        .collect();
    h.bench("lexicon/compare_tokens(pretokenized)", || {
        for (tx, ty) in &tokenized {
            black_box(matcher.compare_tokens(black_box(tx), black_box(ty)));
        }
    });
    h.bench("lexicon/thesaurus_build", || {
        black_box(NameMatcher::with_default_thesaurus())
    });
}
