//! Microbenchmarks for the XML/XSD substrate: raw XML parsing, schema-model
//! construction, and schema-tree compilation, on corpus-sized and
//! protein-sized documents.
//!
//! `cargo bench -p qmatch-bench --bench parser`

use qmatch_bench::harness::Harness;
use qmatch_datasets::{corpus, synth};
use qmatch_xml::Document;
use qmatch_xsd::{parse_schema, SchemaTree};
use std::hint::black_box;

fn main() {
    let h = Harness::from_env();
    let small = corpus::dcmd_ord_xsd();
    let large = &synth::protein_corpus().pdb_xsd;

    h.bench("parser/xml/dcmd_ord(53 elems)", || {
        black_box(Document::parse(black_box(small)).unwrap())
    });
    h.bench("parser/xml/pdb(3753 elems)", || {
        black_box(Document::parse(black_box(large)).unwrap())
    });

    h.bench("parser/xsd/parse_schema/dcmd_ord", || {
        black_box(parse_schema(black_box(small)).unwrap())
    });
    h.bench("parser/xsd/parse_schema/pdb", || {
        black_box(parse_schema(black_box(large)).unwrap())
    });

    let small_schema = parse_schema(small).unwrap();
    let large_schema = parse_schema(large).unwrap();
    h.bench("parser/xsd/compile_tree/dcmd_ord", || {
        black_box(SchemaTree::compile(black_box(&small_schema)).unwrap())
    });
    h.bench("parser/xsd/compile_tree/pdb", || {
        black_box(SchemaTree::compile(black_box(&large_schema)).unwrap())
    });
}
