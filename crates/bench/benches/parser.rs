//! Microbenchmarks for the XML/XSD substrate: raw XML parsing, schema-model
//! construction, and schema-tree compilation, on corpus-sized and
//! protein-sized documents.
//!
//! `cargo bench -p qmatch-bench --bench parser`

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use qmatch_datasets::{corpus, synth};
use qmatch_xml::Document;
use qmatch_xsd::{parse_schema, SchemaTree};
use std::hint::black_box;

fn xml_parse(c: &mut Criterion) {
    let small = corpus::dcmd_ord_xsd();
    let large = &synth::protein_corpus().pdb_xsd;
    let mut group = c.benchmark_group("parser/xml");
    group.throughput(Throughput::Bytes(small.len() as u64));
    group.bench_function("dcmd_ord(53 elems)", |b| {
        b.iter(|| black_box(Document::parse(black_box(small)).unwrap()))
    });
    group.throughput(Throughput::Bytes(large.len() as u64));
    group.bench_function("pdb(3753 elems)", |b| {
        b.iter(|| black_box(Document::parse(black_box(large)).unwrap()))
    });
    group.finish();
}

fn xsd_pipeline(c: &mut Criterion) {
    let small = corpus::dcmd_ord_xsd();
    let large = &synth::protein_corpus().pdb_xsd;
    let mut group = c.benchmark_group("parser/xsd");
    group.bench_function("parse_schema/dcmd_ord", |b| {
        b.iter(|| black_box(parse_schema(black_box(small)).unwrap()))
    });
    group.sample_size(20);
    group.bench_function("parse_schema/pdb", |b| {
        b.iter(|| black_box(parse_schema(black_box(large)).unwrap()))
    });
    let small_schema = parse_schema(small).unwrap();
    let large_schema = parse_schema(large).unwrap();
    group.bench_function("compile_tree/dcmd_ord", |b| {
        b.iter(|| black_box(SchemaTree::compile(black_box(&small_schema)).unwrap()))
    });
    group.bench_function("compile_tree/pdb", |b| {
        b.iter(|| black_box(SchemaTree::compile(black_box(&large_schema)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, xml_parse, xsd_pipeline);
criterion_main!(benches);
