//! Benchmarks backing Figure 4: the three match algorithms on the paper's
//! schema pairs (plus the tree-edit baseline for reference).
//!
//! `cargo bench -p qmatch-bench --bench matchers`

use qmatch_bench::harness::Harness;
use qmatch_bench::{book_pair, dcmd_pair, po_pair, protein_pair, Algorithm};
use qmatch_core::model::MatchConfig;
use std::hint::black_box;

fn main() {
    let h = Harness::from_env();
    let config = MatchConfig::default();

    for pair in [po_pair(), book_pair(), dcmd_pair()] {
        for algo in [
            Algorithm::Linguistic,
            Algorithm::Structural,
            Algorithm::Hybrid,
            Algorithm::TreeEdit,
        ] {
            let name = format!(
                "figure4/small/{}/{}[{}]",
                algo.name(),
                pair.name,
                pair.total_elements()
            );
            h.bench(&name, || {
                let out = algo.run(&pair.source, &pair.target, &config);
                black_box(out.total_qom)
            });
        }
    }

    let pair = protein_pair();
    for algo in Algorithm::PAPER {
        let name = format!("figure4/protein/{}/{}", algo.name(), pair.total_elements());
        h.bench(&name, || {
            let out = algo.run(&pair.source, &pair.target, &config);
            black_box(out.total_qom)
        });
    }
}
