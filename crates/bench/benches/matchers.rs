//! Criterion benchmarks backing Figure 4: the three match algorithms on the
//! paper's schema pairs (plus the tree-edit baseline for reference).
//!
//! `cargo bench -p qmatch-bench --bench matchers`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qmatch_bench::{book_pair, dcmd_pair, po_pair, protein_pair, Algorithm, Pair};
use qmatch_core::model::MatchConfig;
use std::hint::black_box;

fn small_pairs(c: &mut Criterion) {
    let config = MatchConfig::default();
    let mut group = c.benchmark_group("figure4/small");
    for pair in [po_pair(), book_pair(), dcmd_pair()] {
        for algo in [
            Algorithm::Linguistic,
            Algorithm::Structural,
            Algorithm::Hybrid,
            Algorithm::TreeEdit,
        ] {
            group.bench_with_input(
                BenchmarkId::new(
                    algo.name(),
                    format!("{}[{}]", pair.name, pair.total_elements()),
                ),
                &pair,
                |b, pair: &Pair| {
                    b.iter(|| {
                        let out = algo.run(&pair.source, &pair.target, &config);
                        black_box(out.total_qom)
                    })
                },
            );
        }
    }
    group.finish();
}

fn protein_pair_bench(c: &mut Criterion) {
    let config = MatchConfig::default();
    let pair = protein_pair();
    let mut group = c.benchmark_group("figure4/protein");
    group.sample_size(10);
    for algo in Algorithm::PAPER {
        group.bench_with_input(
            BenchmarkId::new(algo.name(), pair.total_elements()),
            &pair,
            |b, pair: &Pair| {
                b.iter(|| {
                    let out = algo.run(&pair.source, &pair.target, &config);
                    black_box(out.total_qom)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, small_pairs, protein_pair_bench);
criterion_main!(benches);
