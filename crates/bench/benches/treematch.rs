//! Scaling benchmark for the memoized TreeMatch dynamic program: the paper
//! states the running time "lies in O(nm)". This bench matches synthetic
//! balanced trees of growing size against themselves; the per-size timings
//! should grow quadratically (n·m with n = m).
//!
//! `cargo bench -p qmatch-bench --bench treematch`

use qmatch_bench::harness::Harness;
use qmatch_bench::synth_tree::{balanced_tree, balanced_tree_with_vocab, SCHEMA_VOCAB};
use qmatch_core::algorithms::{hybrid_match, hybrid_match_sequential};
use qmatch_core::model::MatchConfig;
use std::hint::black_box;

fn main() {
    let h = Harness::from_env();
    let config = MatchConfig::default();

    // Sequential engine vs the wavefront engine (bit-identical results) on
    // 10²–10³-node trees; 10⁴ lives in the bench_treematch bin, which also
    // records the speedup trajectory in BENCH_treematch.json.
    for (branch, depth) in [(4, 3), (3, 6)] {
        let tree = balanced_tree_with_vocab(branch, depth, SCHEMA_VOCAB);
        let n = tree.len();
        h.bench(&format!("treematch/engine/sequential/{n}"), || {
            black_box(hybrid_match_sequential(&tree, &tree, &config).total_qom)
        });
        h.bench(&format!("treematch/engine/parallel/{n}"), || {
            black_box(hybrid_match(&tree, &tree, &config).total_qom)
        });
    }

    for (branch, depth) in [(3, 3), (4, 3), (5, 3), (6, 3)] {
        let tree = balanced_tree(branch, depth);
        let n = tree.len();
        h.bench(&format!("treematch/onm-scaling/{n}"), || {
            let out = hybrid_match(&tree, &tree, &config);
            black_box(out.total_qom)
        });
    }

    // Same node count, different shapes: deep-narrow vs flat-wide. The DP
    // cost term Σ|children_s|·|children_t| differs, the pair count does not.
    let deep = balanced_tree(2, 6); // 127 nodes
    let wide = balanced_tree(126, 1); // 127 nodes
    h.bench("treematch/shape/deep-narrow-127", || {
        black_box(hybrid_match(&deep, &deep, &config).total_qom)
    });
    h.bench("treematch/shape/flat-wide-127", || {
        black_box(hybrid_match(&wide, &wide, &config).total_qom)
    });
}
