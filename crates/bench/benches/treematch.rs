//! Scaling benchmark for the memoized TreeMatch dynamic program: the paper
//! states the running time "lies in O(nm)". This bench matches synthetic
//! balanced trees of growing size against themselves; the per-size timings
//! should grow quadratically (n·m with n = m).
//!
//! `cargo bench -p qmatch-bench --bench treematch`

use qmatch_bench::harness::Harness;
use qmatch_bench::synth_tree::{balanced_tree, balanced_tree_with_vocab, SCHEMA_VOCAB};
use qmatch_bench::Algorithm;
use qmatch_core::model::MatchConfig;
use qmatch_core::session::MatchSession;
use qmatch_xsd::SchemaTree;
use std::hint::black_box;

fn one_shot(tree: &SchemaTree, config: &MatchConfig, sequential: bool) -> f64 {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(tree), session.prepare(tree));
    let run = if sequential {
        session.run_sequential(&Algorithm::Hybrid.core(), &sp, &tp)
    } else {
        session.run(&Algorithm::Hybrid.core(), &sp, &tp)
    };
    run.expect("hybrid is infallible").total_qom
}

fn main() {
    let h = Harness::from_env();
    let config = MatchConfig::default();

    // Sequential engine vs the wavefront engine (bit-identical results) on
    // 10²–10³-node trees; 10⁴ lives in the bench_treematch bin, which also
    // records the speedup trajectory in BENCH_treematch.json.
    for (branch, depth) in [(4, 3), (3, 6)] {
        let tree = balanced_tree_with_vocab(branch, depth, SCHEMA_VOCAB);
        let n = tree.len();
        h.bench(&format!("treematch/engine/sequential/{n}"), || {
            black_box(one_shot(&tree, &config, true))
        });
        h.bench(&format!("treematch/engine/parallel/{n}"), || {
            black_box(one_shot(&tree, &config, false))
        });
    }

    for (branch, depth) in [(3, 3), (4, 3), (5, 3), (6, 3)] {
        let tree = balanced_tree(branch, depth);
        let n = tree.len();
        h.bench(&format!("treematch/onm-scaling/{n}"), || {
            black_box(one_shot(&tree, &config, false))
        });
    }

    // Same node count, different shapes: deep-narrow vs flat-wide. The DP
    // cost term Σ|children_s|·|children_t| differs, the pair count does not.
    let deep = balanced_tree(2, 6); // 127 nodes
    let wide = balanced_tree(126, 1); // 127 nodes
    h.bench("treematch/shape/deep-narrow-127", || {
        black_box(one_shot(&deep, &config, false))
    });
    h.bench("treematch/shape/flat-wide-127", || {
        black_box(one_shot(&wide, &config, false))
    });
}
