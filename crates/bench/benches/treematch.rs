//! Scaling benchmark for the memoized TreeMatch dynamic program: the paper
//! states the running time "lies in O(nm)". This bench matches synthetic
//! balanced trees of growing size against themselves; Criterion's estimates
//! across the sizes should grow quadratically (n·m with n = m).
//!
//! `cargo bench -p qmatch-bench --bench treematch`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qmatch_core::algorithms::hybrid_match;
use qmatch_core::model::MatchConfig;
use qmatch_xsd::SchemaTree;
use std::hint::black_box;

/// Builds a balanced tree with the given branching factor and depth, with
/// distinct labels so the label oracle cannot collapse comparisons.
fn balanced_tree(branch: usize, depth: usize) -> SchemaTree {
    let mut entries: Vec<(String, Option<usize>)> = vec![("root".to_owned(), None)];
    let mut frontier = vec![0usize];
    for level in 0..depth {
        let mut next = Vec::new();
        for &parent in &frontier {
            for k in 0..branch {
                let idx = entries.len();
                entries.push((format!("n{level}_{parent}_{k}"), Some(parent)));
                next.push(idx);
            }
        }
        frontier = next;
    }
    let borrowed: Vec<(&str, Option<usize>)> =
        entries.iter().map(|(l, p)| (l.as_str(), *p)).collect();
    SchemaTree::from_labels("root", &borrowed)
}

fn treematch_scaling(c: &mut Criterion) {
    let config = MatchConfig::default();
    let mut group = c.benchmark_group("treematch/onm-scaling");
    for (branch, depth) in [(3, 3), (4, 3), (5, 3), (6, 3)] {
        let tree = balanced_tree(branch, depth);
        let n = tree.len();
        group.throughput(Throughput::Elements((n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &tree, |b, tree| {
            b.iter(|| {
                let out = hybrid_match(tree, tree, &config);
                black_box(out.total_qom)
            })
        });
    }
    group.finish();
}

fn treematch_shape(c: &mut Criterion) {
    // Same node count, different shapes: deep-narrow vs flat-wide. The DP
    // cost term Σ|children_s|·|children_t| differs, the pair count does not.
    let config = MatchConfig::default();
    let deep = balanced_tree(2, 6); // 127 nodes
    let wide = balanced_tree(126, 1); // 127 nodes
    let mut group = c.benchmark_group("treematch/shape");
    group.bench_function("deep-narrow-127", |b| {
        b.iter(|| black_box(hybrid_match(&deep, &deep, &config).total_qom))
    });
    group.bench_function("flat-wide-127", |b| {
        b.iter(|| black_box(hybrid_match(&wide, &wide, &config).total_qom))
    });
    group.finish();
}

criterion_group!(benches, treematch_scaling, treematch_shape);
criterion_main!(benches);
