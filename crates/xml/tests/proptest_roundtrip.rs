//! Property tests: generated element trees must survive a
//! print → parse → print round trip, and the escaping helpers must be
//! inverse to unescaping for arbitrary strings.

use proptest::prelude::*;
use qmatch_xml::dom::{Document, Element};
use qmatch_xml::escape::{escape_attr, escape_text, unescape};

/// Strategy for valid, simple XML names.
fn xml_name() -> impl Strategy<Value = String> {
    "[A-Za-z_][A-Za-z0-9_.-]{0,11}"
}

/// Strategy for text content free of control characters.
fn xml_text() -> impl Strategy<Value = String> {
    "[ -~]{0,24}".prop_map(|s| s.replace("]]>", "]] >"))
}

/// Strategy for a small element tree.
fn element_tree() -> impl Strategy<Value = Element> {
    let leaf = (
        xml_name(),
        proptest::option::of(xml_text()),
        proptest::option::of((xml_name(), xml_text())),
    )
        .prop_map(|(name, text, attr)| {
            let mut e = Element::new(&name);
            if let Some((an, av)) = attr {
                e.set_attr(&an, &av);
            }
            if let Some(t) = text {
                // Leading/trailing whitespace is normalized away by the DOM's
                // whitespace handling, so trim here for a clean round trip.
                let t = t.trim();
                if !t.is_empty() {
                    e = e.with_text(t);
                }
            }
            e
        });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            xml_name(),
            proptest::collection::vec(inner, 0..4),
            proptest::option::of((xml_name(), xml_text())),
        )
            .prop_map(|(name, children, attr)| {
                let mut e = Element::new(&name);
                if let Some((an, av)) = attr {
                    e.set_attr(&an, &av);
                }
                for c in children {
                    e.add_child(c);
                }
                e
            })
    })
}

proptest! {
    #[test]
    fn print_parse_print_is_stable(tree in element_tree()) {
        let once = tree.to_string();
        let doc = Document::parse(&once).expect("printed tree must parse");
        let twice = doc.root().to_string();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn parsed_tree_preserves_structure(tree in element_tree()) {
        let printed = tree.to_string();
        let doc = Document::parse(&printed).unwrap();
        prop_assert_eq!(doc.root().name().raw(), tree.name().raw());
        prop_assert_eq!(doc.root().subtree_size(), tree.subtree_size());
        prop_assert_eq!(doc.root().subtree_depth(), tree.subtree_depth());
    }

    #[test]
    fn escape_text_unescape_identity(s in "\\PC{0,64}") {
        let escaped = escape_text(&s);
        prop_assert_eq!(unescape(&escaped).unwrap().into_owned(), s);
    }

    #[test]
    fn escape_attr_unescape_identity(s in "\\PC{0,64}") {
        let escaped = escape_attr(&s);
        prop_assert_eq!(unescape(&escaped).unwrap().into_owned(), s);
    }

    #[test]
    fn escaped_text_has_no_raw_specials(s in "\\PC{0,64}") {
        let escaped = escape_attr(&s).into_owned();
        prop_assert!(!escaped.contains('<'));
        prop_assert!(!escaped.contains('"'));
        // `&` may only appear as the start of an entity.
        for (i, c) in escaped.char_indices() {
            if c == '&' {
                prop_assert!(escaped[i..].contains(';'));
            }
        }
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,128}") {
        let _ = Document::parse(&s);
    }
}
