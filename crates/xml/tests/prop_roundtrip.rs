//! Property tests: generated element trees must survive a
//! print → parse → print round trip, and the escaping helpers must be
//! inverse to unescaping for arbitrary strings.
//!
//! Randomized with the in-repo deterministic PRNG (`qmatch-prng`) — every
//! run draws the same cases, so a failure reproduces exactly from the case
//! index printed in the assertion message.

use qmatch_prng::SmallRng;
use qmatch_xml::dom::{Document, Element};
use qmatch_xml::escape::{escape_attr, escape_text, unescape};

const CASES: usize = 192;

const NAME_FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_";
const NAME_REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.-";

/// A random valid, simple XML name (1–12 chars).
fn xml_name(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(0..12usize);
    let mut s = String::new();
    s.push(NAME_FIRST[rng.gen_range(0..NAME_FIRST.len())] as char);
    for _ in 0..len {
        s.push(NAME_REST[rng.gen_range(0..NAME_REST.len())] as char);
    }
    s
}

/// Random text content: printable ASCII, free of the CDATA terminator.
fn xml_text(rng: &mut SmallRng) -> String {
    let len = rng.gen_range(0..=24usize);
    let s: String = (0..len)
        .map(|_| rng.gen_range(0x20u8..=0x7E) as char)
        .collect();
    s.replace("]]>", "]] >")
}

/// Arbitrary printable text, including multi-byte characters (the rough
/// equivalent of proptest's `\PC` class for the escape tests).
fn arbitrary_text(rng: &mut SmallRng, max_len: usize) -> String {
    const EXOTIC: &[char] = &[
        'é', 'ß', 'λ', 'Ж', '中', '文', '✓', '🦀', '\u{00A0}', '„', '–', '¥',
    ];
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.15) {
                EXOTIC[rng.gen_range(0..EXOTIC.len())]
            } else {
                rng.gen_range(0x20u8..=0x7E) as char
            }
        })
        .collect()
}

/// A random small element tree, at most `depth` levels deep.
fn element_tree(rng: &mut SmallRng, depth: u32) -> Element {
    let mut e = Element::new(&xml_name(rng));
    if rng.gen_bool(0.5) {
        e.set_attr(&xml_name(rng), &xml_text(rng));
    }
    let children = if depth == 0 {
        0
    } else {
        rng.gen_range(0..4usize)
    };
    if children == 0 {
        if rng.gen_bool(0.6) {
            // Leading/trailing whitespace is normalized away by the DOM's
            // whitespace handling, so trim here for a clean round trip.
            let t = xml_text(rng);
            let t = t.trim();
            if !t.is_empty() {
                e = e.with_text(t);
            }
        }
    } else {
        for _ in 0..children {
            e.add_child(element_tree(rng, depth - 1));
        }
    }
    e
}

#[test]
fn print_parse_print_is_stable() {
    let mut rng = SmallRng::seed_from_u64(0x1111);
    for case in 0..CASES {
        let tree = element_tree(&mut rng, 3);
        let once = tree.to_string();
        let doc = Document::parse(&once).expect("printed tree must parse");
        let twice = doc.root().to_string();
        assert_eq!(once, twice, "case {case}");
    }
}

#[test]
fn parsed_tree_preserves_structure() {
    let mut rng = SmallRng::seed_from_u64(0x2222);
    for case in 0..CASES {
        let tree = element_tree(&mut rng, 3);
        let printed = tree.to_string();
        let doc = Document::parse(&printed).unwrap();
        assert_eq!(doc.root().name().raw(), tree.name().raw(), "case {case}");
        assert_eq!(
            doc.root().subtree_size(),
            tree.subtree_size(),
            "case {case}"
        );
        assert_eq!(
            doc.root().subtree_depth(),
            tree.subtree_depth(),
            "case {case}"
        );
    }
}

#[test]
fn escape_text_unescape_identity() {
    let mut rng = SmallRng::seed_from_u64(0x3333);
    for case in 0..CASES {
        let s = arbitrary_text(&mut rng, 64);
        let escaped = escape_text(&s);
        assert_eq!(unescape(&escaped).unwrap().into_owned(), s, "case {case}");
    }
}

#[test]
fn escape_attr_unescape_identity() {
    let mut rng = SmallRng::seed_from_u64(0x4444);
    for case in 0..CASES {
        let s = arbitrary_text(&mut rng, 64);
        let escaped = escape_attr(&s);
        assert_eq!(unescape(&escaped).unwrap().into_owned(), s, "case {case}");
    }
}

#[test]
fn escaped_text_has_no_raw_specials() {
    let mut rng = SmallRng::seed_from_u64(0x5555);
    for case in 0..CASES {
        let s = arbitrary_text(&mut rng, 64);
        let escaped = escape_attr(&s).into_owned();
        assert!(!escaped.contains('<'), "case {case}: {escaped:?}");
        assert!(!escaped.contains('"'), "case {case}: {escaped:?}");
        // `&` may only appear as the start of an entity.
        for (i, c) in escaped.char_indices() {
            if c == '&' {
                assert!(escaped[i..].contains(';'), "case {case}: {escaped:?}");
            }
        }
    }
}

#[test]
fn parser_never_panics_on_arbitrary_input() {
    let mut rng = SmallRng::seed_from_u64(0x6666);
    for _ in 0..CASES {
        let s = arbitrary_text(&mut rng, 128);
        let _ = Document::parse(&s);
    }
    // And on truncated well-formed documents.
    let tree = element_tree(&mut rng, 3);
    let printed = tree.to_string();
    for cut in 0..printed.len() {
        if printed.is_char_boundary(cut) {
            let _ = Document::parse(&printed[..cut]);
        }
    }
}
