//! Entity and character-reference handling.
//!
//! XML defines five predefined entities (`&lt;`, `&gt;`, `&amp;`, `&apos;`,
//! `&quot;`) plus decimal (`&#123;`) and hexadecimal (`&#x7B;`) character
//! references. This module decodes them when parsing and encodes reserved
//! characters when serializing.

use std::borrow::Cow;

/// Resolves a single reference body (the text between `&` and `;`).
///
/// Returns `None` for unknown entities or out-of-range / non-character code
/// points.
pub fn resolve_reference(body: &str) -> Option<char> {
    match body {
        "lt" => Some('<'),
        "gt" => Some('>'),
        "amp" => Some('&'),
        "apos" => Some('\''),
        "quot" => Some('"'),
        _ => {
            let code =
                if let Some(hex) = body.strip_prefix("#x").or_else(|| body.strip_prefix("#X")) {
                    u32::from_str_radix(hex, 16).ok()?
                } else if let Some(dec) = body.strip_prefix('#') {
                    dec.parse::<u32>().ok()?
                } else {
                    return None;
                };
            let c = char::from_u32(code)?;
            is_xml_char(c).then_some(c)
        }
    }
}

/// True if `c` is a character permitted in XML 1.0 content.
pub fn is_xml_char(c: char) -> bool {
    matches!(c,
        '\u{9}' | '\u{A}' | '\u{D}'
        | '\u{20}'..='\u{D7FF}'
        | '\u{E000}'..='\u{FFFD}'
        | '\u{10000}'..='\u{10FFFF}')
}

/// Decodes all entity and character references in `raw`.
///
/// Returns `Cow::Borrowed` when no reference is present (the common case for
/// schema documents), and the byte offset of the first bad reference on error.
pub fn unescape(raw: &str) -> Result<Cow<'_, str>, BadReference> {
    let Some(first_amp) = raw.find('&') else {
        return Ok(Cow::Borrowed(raw));
    };
    let mut out = String::with_capacity(raw.len());
    out.push_str(&raw[..first_amp]);
    let mut rest = &raw[first_amp..];
    let mut base = first_amp;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        let after = &rest[amp + 1..];
        let Some(semi) = after.find(';') else {
            return Err(BadReference {
                offset: base + amp,
                body: after.chars().take(16).collect(),
            });
        };
        let body = &after[..semi];
        match resolve_reference(body) {
            Some(c) => out.push(c),
            None => {
                return Err(BadReference {
                    offset: base + amp,
                    body: body.to_owned(),
                })
            }
        }
        rest = &after[semi + 1..];
        base += amp + 1 + semi + 1;
    }
    out.push_str(rest);
    Ok(Cow::Owned(out))
}

/// Error describing a malformed reference found by [`unescape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadReference {
    /// Byte offset of the `&` within the input passed to [`unescape`].
    pub offset: usize,
    /// The reference body (possibly truncated) for diagnostics.
    pub body: String,
}

/// Escapes `<`, `>`, and `&` for use in element content.
pub fn escape_text(text: &str) -> Cow<'_, str> {
    escape_with(text, |c| matches!(c, '<' | '>' | '&'))
}

/// Escapes `<`, `>`, `&`, and `"` for use in a double-quoted attribute
/// value. Literal whitespace (tab/newline/CR) is emitted as character
/// references so that attribute-value normalization on re-parse preserves
/// the original characters.
pub fn escape_attr(text: &str) -> Cow<'_, str> {
    escape_with(text, |c| {
        matches!(c, '<' | '>' | '&' | '"' | '\t' | '\n' | '\r')
    })
}

fn escape_with(text: &str, needs: impl Fn(char) -> bool) -> Cow<'_, str> {
    if !text.chars().any(&needs) {
        return Cow::Borrowed(text);
    }
    let mut out = String::with_capacity(text.len() + 8);
    for c in text.chars() {
        if needs(c) {
            match c {
                '<' => out.push_str("&lt;"),
                '>' => out.push_str("&gt;"),
                '&' => out.push_str("&amp;"),
                '"' => out.push_str("&quot;"),
                '\'' => out.push_str("&apos;"),
                '\t' => out.push_str("&#9;"),
                '\n' => out.push_str("&#10;"),
                '\r' => out.push_str("&#13;"),
                _ => out.push(c),
            }
        } else {
            out.push(c);
        }
    }
    Cow::Owned(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_predefined_entities() {
        assert_eq!(resolve_reference("lt"), Some('<'));
        assert_eq!(resolve_reference("gt"), Some('>'));
        assert_eq!(resolve_reference("amp"), Some('&'));
        assert_eq!(resolve_reference("apos"), Some('\''));
        assert_eq!(resolve_reference("quot"), Some('"'));
    }

    #[test]
    fn resolves_numeric_references() {
        assert_eq!(resolve_reference("#65"), Some('A'));
        assert_eq!(resolve_reference("#x41"), Some('A'));
        assert_eq!(resolve_reference("#X41"), Some('A'));
        assert_eq!(resolve_reference("#x1F600"), Some('😀'));
    }

    #[test]
    fn rejects_unknown_and_invalid_references() {
        assert_eq!(resolve_reference("nbsp"), None);
        assert_eq!(resolve_reference(""), None);
        assert_eq!(resolve_reference("#"), None);
        assert_eq!(resolve_reference("#x"), None);
        assert_eq!(resolve_reference("#xG1"), None);
        assert_eq!(resolve_reference("#1114112"), None); // beyond U+10FFFF
        assert_eq!(resolve_reference("#0"), None); // NUL not an XML char
        assert_eq!(resolve_reference("#xD800"), None); // surrogate
    }

    #[test]
    fn unescape_borrows_when_clean() {
        let out = unescape("plain text").unwrap();
        assert!(matches!(out, Cow::Borrowed(_)));
        assert_eq!(out, "plain text");
    }

    #[test]
    fn unescape_decodes_mixed_references() {
        let out = unescape("a &lt; b &amp;&amp; c &#62; d").unwrap();
        assert_eq!(out, "a < b && c > d");
    }

    #[test]
    fn unescape_reports_offset_of_bad_reference() {
        let err = unescape("ok &amp; bad &oops; end").unwrap_err();
        assert_eq!(err.offset, 13);
        assert_eq!(err.body, "oops");
    }

    #[test]
    fn unescape_reports_unterminated_reference() {
        let err = unescape("text &amp no-semicolon").unwrap_err();
        assert_eq!(err.offset, 5);
    }

    #[test]
    fn escape_text_round_trips() {
        let original = "if a < b && b > c \"quote\"";
        let escaped = escape_text(original);
        assert_eq!(escaped, "if a &lt; b &amp;&amp; b &gt; c \"quote\"");
        assert_eq!(unescape(&escaped).unwrap(), original);
    }

    #[test]
    fn escape_attr_also_escapes_quotes() {
        assert_eq!(
            escape_attr(r#"say "hi" & go"#),
            "say &quot;hi&quot; &amp; go"
        );
    }

    #[test]
    fn escape_attr_protects_whitespace_from_normalization() {
        assert_eq!(escape_attr("a\tb\nc\rd"), "a&#9;b&#10;c&#13;d");
        // Text content does not need the protection.
        assert_eq!(escape_text("a\tb"), "a\tb");
    }

    #[test]
    fn escape_borrows_when_nothing_to_do() {
        assert!(matches!(escape_text("clean"), Cow::Borrowed(_)));
        assert!(matches!(escape_attr("clean"), Cow::Borrowed(_)));
    }
}
