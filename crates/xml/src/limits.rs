//! Resource limits for untrusted input.
//!
//! The ingestion pipeline (pull reader → DOM → schema compiler) runs on
//! arbitrary documents, so every dimension an adversarial input can inflate
//! is bounded: raw size, nesting depth, attribute fan-out, decoded-text
//! growth, and materialized node count. Exceeding a limit produces a typed
//! error naming the offending limit
//! ([`XmlErrorKind::LimitExceeded`](crate::error::XmlErrorKind::LimitExceeded)),
//! never an OOM, stack overflow, or multi-second stall.
//!
//! The same struct is consumed by the XSD layer (`qmatch-xsd`), where
//! `max_depth` and `max_nodes` additionally bound the *compiled schema
//! tree* — named-type expansion can multiply a small document into a huge
//! tree, the schema-level analog of an entity-expansion bomb.

/// Configurable resource limits enforced while ingesting a document.
///
/// The defaults are far above anything a legitimate schema document needs
/// (the largest corpus schemas are a few hundred KB and a few thousand
/// nodes) while keeping worst-case memory for a hostile input bounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestLimits {
    /// Maximum raw input size in bytes. Default: 16 MiB.
    pub max_input_bytes: usize,
    /// Maximum element nesting depth (also bounds the recursive DOM and
    /// schema-tree builders, so it must stay well under the thread stack
    /// budget). Default: 512.
    pub max_depth: usize,
    /// Maximum number of attributes on a single element. Default: 256.
    pub max_attributes: usize,
    /// Maximum ratio of decoded character data (text and attribute values
    /// after entity decoding) to raw input bytes. This reader resolves no
    /// DTD-defined entities, so decoded output cannot actually outgrow the
    /// input today; the factor is defense-in-depth should that ever change.
    /// A factor of 0 forbids decoded character data entirely. Default: 8.
    pub max_entity_expansion: usize,
    /// Maximum number of materialized nodes: DOM elements while parsing,
    /// schema-tree nodes while compiling. Default: 1,000,000.
    pub max_nodes: usize,
}

impl IngestLimits {
    /// The default limits as a `const` (usable in statics).
    pub const DEFAULT: IngestLimits = IngestLimits {
        max_input_bytes: 16 * 1024 * 1024,
        max_depth: 512,
        max_attributes: 256,
        max_entity_expansion: 8,
        max_nodes: 1_000_000,
    };

    /// Effectively unlimited ingestion, for trusted in-repo inputs that are
    /// deliberately larger than the defaults (none exist today; provided so
    /// callers never work around limits by inventing huge numbers).
    pub const UNBOUNDED: IngestLimits = IngestLimits {
        max_input_bytes: usize::MAX,
        max_depth: 100_000,
        max_attributes: usize::MAX,
        max_entity_expansion: usize::MAX,
        max_nodes: usize::MAX,
    };
}

impl Default for IngestLimits {
    fn default() -> Self {
        IngestLimits::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_const() {
        assert_eq!(IngestLimits::default(), IngestLimits::DEFAULT);
        assert_eq!(IngestLimits::DEFAULT.max_depth, 512);
    }

    #[test]
    fn limits_are_plain_data() {
        let custom = IngestLimits {
            max_depth: 3,
            ..IngestLimits::default()
        };
        assert_eq!(custom.max_depth, 3);
        assert_eq!(
            custom.max_input_bytes,
            IngestLimits::DEFAULT.max_input_bytes
        );
    }
}
