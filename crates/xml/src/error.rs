//! Positioned error type for the XML parser.

use std::fmt;

/// A source position: 1-based line and column, plus byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line).
    pub column: u32,
    /// 0-based byte offset from the start of the input.
    pub offset: usize,
}

impl Position {
    /// The start-of-input position.
    pub const START: Position = Position {
        line: 1,
        column: 1,
        offset: 0,
    };
}

impl Default for Position {
    fn default() -> Self {
        Position::START
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// The category of an [`XmlError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of reading.
        context: &'static str,
    },
    /// A byte that cannot start or continue the current construct.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// What was expected instead.
        expected: &'static str,
    },
    /// A name (element, attribute, PI target) was malformed.
    InvalidName {
        /// The malformed name text.
        name: String,
    },
    /// An entity or character reference was malformed or unknown.
    InvalidReference {
        /// The reference text, without `&` and `;`.
        reference: String,
    },
    /// A close tag did not match the open tag.
    MismatchedTag {
        /// Name of the currently open element.
        expected: String,
        /// Name found in the close tag.
        found: String,
    },
    /// A close tag appeared with no element open.
    UnexpectedCloseTag {
        /// Name found in the close tag.
        found: String,
    },
    /// The same attribute appeared twice on one element.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
    },
    /// The document has no root element, or content after the root.
    BadDocumentStructure {
        /// Human-readable description.
        detail: &'static str,
    },
    /// `--` inside a comment, `]]>` in character data, and similar.
    IllegalConstruct {
        /// Human-readable description.
        detail: &'static str,
    },
    /// The document exceeded a configured
    /// [`IngestLimits`](crate::limits::IngestLimits) bound.
    LimitExceeded {
        /// Name of the offending limit (the `IngestLimits` field name,
        /// e.g. `max_depth`).
        limit: &'static str,
        /// The configured bound.
        limit_value: u64,
        /// The observed value that crossed it.
        actual: u64,
        /// Byte offset of the first input byte that crossed the limit,
        /// where the violation maps to a concrete input position (`None`
        /// for derived quantities like compiled-tree node counts).
        offset: Option<usize>,
    },
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlErrorKind::UnexpectedEof { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            XmlErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            XmlErrorKind::InvalidName { name } => write!(f, "invalid XML name {name:?}"),
            XmlErrorKind::InvalidReference { reference } => {
                write!(f, "invalid entity or character reference &{reference};")
            }
            XmlErrorKind::MismatchedTag { expected, found } => {
                write!(f, "mismatched close tag </{found}>, expected </{expected}>")
            }
            XmlErrorKind::UnexpectedCloseTag { found } => {
                write!(f, "close tag </{found}> with no element open")
            }
            XmlErrorKind::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute {name:?}")
            }
            XmlErrorKind::BadDocumentStructure { detail } => write!(f, "{detail}"),
            XmlErrorKind::IllegalConstruct { detail } => write!(f, "{detail}"),
            XmlErrorKind::LimitExceeded {
                limit,
                limit_value,
                actual,
                offset,
            } => {
                write!(
                    f,
                    "input exceeds the {limit} ingestion limit ({actual} > {limit_value})"
                )?;
                if let Some(o) = offset {
                    write!(f, ", first offending byte at offset {o}")?;
                }
                Ok(())
            }
        }
    }
}

/// An XML parse error with the position at which it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    kind: XmlErrorKind,
    position: Position,
}

impl XmlError {
    /// Creates an error at `position`.
    pub fn new(kind: XmlErrorKind, position: Position) -> Self {
        XmlError { kind, position }
    }

    /// The category of the error.
    pub fn kind(&self) -> &XmlErrorKind {
        &self.kind
    }

    /// Where the error occurred.
    pub fn position(&self) -> Position {
        self.position
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XML error at {}: {}", self.position, self.kind)
    }
}

impl std::error::Error for XmlError {}

/// Result alias used throughout the crate.
pub type XmlResult<T> = Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_displays_line_and_column() {
        let p = Position {
            line: 3,
            column: 17,
            offset: 40,
        };
        assert_eq!(p.to_string(), "3:17");
    }

    #[test]
    fn default_position_is_start() {
        assert_eq!(Position::default(), Position::START);
        assert_eq!(Position::START.line, 1);
        assert_eq!(Position::START.column, 1);
        assert_eq!(Position::START.offset, 0);
    }

    #[test]
    fn error_display_includes_position_and_kind() {
        let e = XmlError::new(
            XmlErrorKind::MismatchedTag {
                expected: "a".into(),
                found: "b".into(),
            },
            Position {
                line: 2,
                column: 5,
                offset: 12,
            },
        );
        let s = e.to_string();
        assert!(s.contains("2:5"), "{s}");
        assert!(s.contains("</b>"), "{s}");
        assert!(s.contains("</a>"), "{s}");
    }

    #[test]
    fn kind_messages_are_informative() {
        let cases: Vec<(XmlErrorKind, &str)> = vec![
            (
                XmlErrorKind::UnexpectedEof {
                    context: "a comment",
                },
                "a comment",
            ),
            (
                XmlErrorKind::UnexpectedChar {
                    found: '<',
                    expected: "attribute value",
                },
                "attribute value",
            ),
            (
                XmlErrorKind::InvalidName {
                    name: "1abc".into(),
                },
                "1abc",
            ),
            (
                XmlErrorKind::InvalidReference {
                    reference: "nbsp".into(),
                },
                "nbsp",
            ),
            (
                XmlErrorKind::UnexpectedCloseTag { found: "x".into() },
                "</x>",
            ),
            (XmlErrorKind::DuplicateAttribute { name: "id".into() }, "id"),
            (
                XmlErrorKind::BadDocumentStructure {
                    detail: "no root element",
                },
                "no root",
            ),
            (
                XmlErrorKind::IllegalConstruct {
                    detail: "'--' inside comment",
                },
                "--",
            ),
            (
                XmlErrorKind::LimitExceeded {
                    limit: "max_depth",
                    limit_value: 512,
                    actual: 513,
                    offset: None,
                },
                "max_depth",
            ),
        ];
        for (kind, needle) in cases {
            let msg = kind.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn limit_exceeded_display_reports_first_offending_byte() {
        let with_offset = XmlErrorKind::LimitExceeded {
            limit: "max_depth",
            limit_value: 2,
            actual: 3,
            offset: Some(41),
        };
        let msg = with_offset.to_string();
        assert!(msg.contains("first offending byte at offset 41"), "{msg}");
        let without = XmlErrorKind::LimitExceeded {
            limit: "max_nodes",
            limit_value: 10,
            actual: 11,
            offset: None,
        };
        assert!(!without.to_string().contains("offset"));
    }

    #[test]
    fn error_accessors_round_trip() {
        let pos = Position {
            line: 9,
            column: 1,
            offset: 100,
        };
        let e = XmlError::new(XmlErrorKind::InvalidName { name: "x y".into() }, pos);
        assert_eq!(e.position(), pos);
        assert_eq!(e.kind(), &XmlErrorKind::InvalidName { name: "x y".into() });
    }
}
