#![warn(missing_docs)]

//! A from-scratch XML 1.0 parser built for the QMatch reproduction.
//!
//! The crate provides three layers:
//!
//! 1. [`reader::Reader`] — a pull-based event reader (tokenizer + well-formedness
//!    checks) that yields [`reader::Event`]s with precise source positions.
//! 2. [`dom`] — a lightweight owned document tree built on top of the reader,
//!    which is what the XSD layer consumes.
//! 3. Supporting utilities: [`name::QName`] handling, entity
//!    [`escape`]/unescape, and positioned [`error::XmlError`]s.
//!
//! The parser intentionally covers the subset of XML needed to read real-world
//! XML Schema documents: elements, attributes, namespaces (syntactic
//! prefix/local splitting), character data, CDATA sections, comments,
//! processing instructions, the XML declaration, and the five predefined
//! entities plus numeric character references. DTDs are recognized and
//! skipped; external entities are not supported (they are never needed for
//! schema documents and are a security liability).
//!
//! # Example
//!
//! ```
//! use qmatch_xml::dom::Document;
//!
//! let doc = Document::parse(r#"<po id="1"><line qty="2">widget</line></po>"#).unwrap();
//! let root = doc.root();
//! assert_eq!(root.name().local(), "po");
//! assert_eq!(root.attr("id"), Some("1"));
//! let line = root.child_elements().next().unwrap();
//! assert_eq!(line.text(), "widget");
//! ```

pub mod dom;
pub mod error;
pub mod escape;
mod input;
pub mod limits;
pub mod name;
pub mod reader;

pub use dom::{Document, Element};
pub use error::{XmlError, XmlErrorKind, XmlResult};
pub use limits::IngestLimits;
pub use name::QName;
pub use reader::{Attribute, Event, Reader};
