//! Byte cursor over the input string with line/column tracking.

use crate::error::{Position, XmlError, XmlErrorKind, XmlResult};

/// A forward-only cursor over UTF-8 input that tracks line and column.
///
/// Lines are counted at `\n`; columns are byte-based within the line, which
/// matches what most editors report for ASCII-heavy schema documents.
#[derive(Debug, Clone)]
pub(crate) struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    column: u32,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(src: &'a str) -> Self {
        Cursor {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    /// Current position for error reporting.
    pub(crate) fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.column,
            offset: self.pos,
        }
    }

    pub(crate) fn is_eof(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Peeks the next byte without consuming it.
    pub(crate) fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Consumes and returns the next byte.
    pub(crate) fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    /// Consumes the next byte, requiring it to be `expected`.
    pub(crate) fn expect(&mut self, expected: u8, what: &'static str) -> XmlResult<()> {
        match self.peek() {
            Some(b) if b == expected => {
                self.bump();
                Ok(())
            }
            Some(b) => Err(self.error_at(XmlErrorKind::UnexpectedChar {
                found: b as char,
                expected: what,
            })),
            None => Err(self.error_at(XmlErrorKind::UnexpectedEof { context: what })),
        }
    }

    /// True (and consumes) if the input continues with `s`.
    pub(crate) fn eat_str(&mut self, s: &str) -> bool {
        if self.src[self.pos..].starts_with(s) {
            for _ in 0..s.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// True if the input continues with `s` (no consumption).
    pub(crate) fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    /// Skips XML whitespace (space, tab, CR, LF); returns how many bytes were skipped.
    pub(crate) fn skip_whitespace(&mut self) -> usize {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b' ' | b'\t' | b'\r' | b'\n') {
                self.bump();
            } else {
                break;
            }
        }
        self.pos - start
    }

    /// Consumes bytes while `pred` holds and returns the matched slice.
    pub(crate) fn take_while(&mut self, mut pred: impl FnMut(u8) -> bool) -> &'a str {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
        &self.src[start..self.pos]
    }

    /// Consumes up to (not including) the first occurrence of `needle`,
    /// returning the consumed slice. Errors with `context` on EOF.
    pub(crate) fn take_until(&mut self, needle: &str, context: &'static str) -> XmlResult<&'a str> {
        let rest = &self.src[self.pos..];
        match rest.find(needle) {
            Some(idx) => {
                let start = self.pos;
                for _ in 0..idx {
                    self.bump();
                }
                Ok(&self.src[start..start + idx])
            }
            None => Err(self.error_at(XmlErrorKind::UnexpectedEof { context })),
        }
    }

    /// Builds an error at the current position.
    pub(crate) fn error_at(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::new(kind, self.position())
    }

    /// Builds an error at an explicit position.
    pub(crate) fn error(&self, kind: XmlErrorKind, at: Position) -> XmlError {
        XmlError::new(kind, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_lines_and_columns() {
        let mut c = Cursor::new("ab\ncd");
        assert_eq!(
            c.position(),
            Position {
                line: 1,
                column: 1,
                offset: 0
            }
        );
        c.bump();
        c.bump();
        assert_eq!(
            c.position(),
            Position {
                line: 1,
                column: 3,
                offset: 2
            }
        );
        c.bump(); // newline
        assert_eq!(
            c.position(),
            Position {
                line: 2,
                column: 1,
                offset: 3
            }
        );
        c.bump();
        assert_eq!(
            c.position(),
            Position {
                line: 2,
                column: 2,
                offset: 4
            }
        );
    }

    #[test]
    fn eat_str_consumes_only_on_match() {
        let mut c = Cursor::new("<?xml rest");
        assert!(!c.eat_str("<!--"));
        assert_eq!(c.position().offset, 0);
        assert!(c.eat_str("<?xml"));
        assert_eq!(c.position().offset, 5);
    }

    #[test]
    fn take_until_returns_slice_and_stops_before_needle() {
        let mut c = Cursor::new("hello-->tail");
        let s = c.take_until("-->", "a comment").unwrap();
        assert_eq!(s, "hello");
        assert!(c.starts_with("-->"));
    }

    #[test]
    fn take_until_errors_at_eof() {
        let mut c = Cursor::new("no terminator");
        let err = c.take_until("]]>", "a CDATA section").unwrap_err();
        assert!(
            matches!(err.kind(), XmlErrorKind::UnexpectedEof { context } if *context == "a CDATA section")
        );
    }

    #[test]
    fn skip_whitespace_counts_bytes() {
        let mut c = Cursor::new("  \t\n x");
        assert_eq!(c.skip_whitespace(), 5);
        assert_eq!(c.peek(), Some(b'x'));
        assert_eq!(c.skip_whitespace(), 0);
    }

    #[test]
    fn take_while_stops_at_predicate_boundary() {
        let mut c = Cursor::new("abc123");
        let s = c.take_while(|b| b.is_ascii_alphabetic());
        assert_eq!(s, "abc");
        assert_eq!(c.peek(), Some(b'1'));
    }

    #[test]
    fn expect_reports_found_character() {
        let mut c = Cursor::new("x");
        let err = c.expect(b'=', "'=' after attribute name").unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::UnexpectedChar { found: 'x', .. }
        ));
    }
}
