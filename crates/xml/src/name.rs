//! Qualified names (`prefix:local`) and XML name-character rules.

use std::fmt;

/// A qualified XML name split into an optional prefix and a local part.
///
/// This crate performs *syntactic* namespace handling only: names are split
/// at the first `:` but prefixes are not resolved to URIs. That is all the
/// XSD layer needs — it compares the local part and treats the prefix of the
/// XML Schema namespace as opaque.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QName {
    raw: String,
    colon: Option<usize>,
}

impl QName {
    /// Parses a raw name into a `QName`. Returns `None` if the name is not a
    /// valid XML name (or has an empty prefix/local part).
    pub fn parse(raw: &str) -> Option<QName> {
        if !is_valid_name(raw) {
            return None;
        }
        let colon = raw.find(':');
        if let Some(idx) = colon {
            // Empty prefix/local, or a second colon, make the name invalid.
            if idx == 0 || idx + 1 == raw.len() || raw[idx + 1..].contains(':') {
                return None;
            }
        }
        Some(QName {
            raw: raw.to_owned(),
            colon,
        })
    }

    /// The full name as written, e.g. `xs:element`.
    pub fn raw(&self) -> &str {
        &self.raw
    }

    /// The prefix, if any, e.g. `xs`.
    pub fn prefix(&self) -> Option<&str> {
        self.colon.map(|idx| &self.raw[..idx])
    }

    /// The local part, e.g. `element`.
    pub fn local(&self) -> &str {
        match self.colon {
            Some(idx) => &self.raw[idx + 1..],
            None => &self.raw,
        }
    }
}

impl fmt::Display for QName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.raw)
    }
}

/// True if `c` may start an XML name.
///
/// This follows the XML 1.0 `NameStartChar` production restricted to the
/// Basic Multilingual Plane ranges that occur in practice.
pub fn is_name_start_char(c: char) -> bool {
    matches!(c,
        ':' | '_' | 'A'..='Z' | 'a'..='z'
        | '\u{C0}'..='\u{D6}' | '\u{D8}'..='\u{F6}' | '\u{F8}'..='\u{2FF}'
        | '\u{370}'..='\u{37D}' | '\u{37F}'..='\u{1FFF}'
        | '\u{200C}'..='\u{200D}' | '\u{2070}'..='\u{218F}'
        | '\u{2C00}'..='\u{2FEF}' | '\u{3001}'..='\u{D7FF}'
        | '\u{F900}'..='\u{FDCF}' | '\u{FDF0}'..='\u{FFFD}')
}

/// True if `c` may continue an XML name.
pub fn is_name_char(c: char) -> bool {
    is_name_start_char(c)
        || matches!(c, '-' | '.' | '0'..='9' | '\u{B7}' | '\u{300}'..='\u{36F}' | '\u{203F}'..='\u{2040}')
}

/// True if `s` is a non-empty valid XML name.
pub fn is_valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if is_name_start_char(c) => chars.all(is_name_char),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_prefix_and_local() {
        let q = QName::parse("xs:element").unwrap();
        assert_eq!(q.prefix(), Some("xs"));
        assert_eq!(q.local(), "element");
        assert_eq!(q.raw(), "xs:element");
        assert_eq!(q.to_string(), "xs:element");
    }

    #[test]
    fn unprefixed_name_has_no_prefix() {
        let q = QName::parse("element").unwrap();
        assert_eq!(q.prefix(), None);
        assert_eq!(q.local(), "element");
    }

    #[test]
    fn rejects_empty_and_malformed_names() {
        for bad in [
            "", "1abc", "-a", ".x", "a b", ":x", "x:", "a:b:c", "<", "a<b",
        ] {
            assert!(QName::parse(bad).is_none(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn accepts_names_with_digits_dots_and_dashes_after_start() {
        for good in [
            "a1",
            "a-b",
            "a.b",
            "_x",
            "A",
            "PurchaseOrder",
            "xs:complexType",
        ] {
            assert!(QName::parse(good).is_some(), "{good:?} should be accepted");
        }
    }

    #[test]
    fn name_char_tables_are_consistent() {
        // Every start char is also a name char.
        for c in ['a', 'Z', '_', '\u{C0}', '\u{2C00}'] {
            assert!(is_name_start_char(c));
            assert!(is_name_char(c));
        }
        // Continuation-only characters.
        for c in ['-', '.', '5', '\u{B7}'] {
            assert!(!is_name_start_char(c));
            assert!(is_name_char(c));
        }
    }

    #[test]
    fn unicode_letters_allowed() {
        assert!(is_valid_name("élément"));
        assert!(QName::parse("élément").is_some());
    }
}
