//! A lightweight owned document tree built on the pull [`crate::reader::Reader`].
//!
//! The DOM keeps elements, attributes, and merged character data. Comments
//! and processing instructions are dropped — schema processing never needs
//! them. Whitespace-only text between elements is also dropped, which is the
//! standard "element content" treatment for schema documents.

use crate::error::{Position, XmlError, XmlErrorKind, XmlResult};
use crate::escape::{escape_attr, escape_text};
use crate::limits::IngestLimits;
use crate::name::QName;
use crate::reader::{Attribute, Event, Reader};
use std::fmt;

/// An element node: name, attributes, children, and merged text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Element {
    name: QName,
    attributes: Vec<Attribute>,
    children: Vec<Node>,
    position: Position,
}

/// A child of an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// A nested element.
    Element(Element),
    /// A run of character data (entity-decoded; CDATA merged in).
    Text(String),
}

/// A parsed document holding the root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    root: Element,
}

impl Document {
    /// Parses a complete XML document with the default [`IngestLimits`].
    pub fn parse(src: &str) -> XmlResult<Document> {
        Document::parse_with_limits(src, &IngestLimits::default())
    }

    /// Parses a complete XML document enforcing custom [`IngestLimits`]
    /// (`max_nodes` bounds the number of elements materialized in the DOM;
    /// the remaining limits are enforced by the underlying reader).
    pub fn parse_with_limits(src: &str, limits: &IngestLimits) -> XmlResult<Document> {
        let mut reader = Reader::with_limits(src, *limits);
        let mut nodes = 0usize;
        loop {
            match reader.next_event()? {
                Event::StartElement {
                    name,
                    attributes,
                    self_closing,
                    position,
                } => {
                    let root = build_element(
                        &mut reader,
                        limits,
                        &mut nodes,
                        name,
                        attributes,
                        self_closing,
                        position,
                    )?;
                    // Drain trailing misc (comments/PIs/whitespace); the reader
                    // enforces that nothing substantive follows the root.
                    loop {
                        match reader.next_event()? {
                            Event::Eof => return Ok(Document { root }),
                            _ => continue,
                        }
                    }
                }
                Event::Declaration(_)
                | Event::Comment(_)
                | Event::ProcessingInstruction { .. }
                | Event::Text(_) => continue,
                other => {
                    // The reader guarantees we cannot see EndElement/CData here
                    // before a root element, and it raises Eof-without-root
                    // itself — but a typed error beats a panic if that
                    // invariant ever slips (the fuzzer's no-panic oracle
                    // exercises exactly this class of gap).
                    let _ = other;
                    return Err(XmlError::new(
                        XmlErrorKind::BadDocumentStructure {
                            detail: "unexpected content before the root element",
                        },
                        Reader::position(&reader),
                    ));
                }
            }
        }
    }

    /// The root element.
    pub fn root(&self) -> &Element {
        &self.root
    }

    /// Consumes the document, returning the root element.
    pub fn into_root(self) -> Element {
        self.root
    }
}

#[allow(clippy::too_many_arguments)]
fn build_element(
    reader: &mut Reader<'_>,
    limits: &IngestLimits,
    nodes: &mut usize,
    name: QName,
    attributes: Vec<Attribute>,
    self_closing: bool,
    position: Position,
) -> XmlResult<Element> {
    *nodes += 1;
    if *nodes > limits.max_nodes {
        return Err(XmlError::new(
            XmlErrorKind::LimitExceeded {
                limit: "max_nodes",
                limit_value: limits.max_nodes as u64,
                actual: *nodes as u64,
                offset: Some(position.offset),
            },
            position,
        ));
    }
    let mut element = Element {
        name,
        attributes,
        children: Vec::new(),
        position,
    };
    if self_closing {
        // Consume the synthesized end event.
        let ev = reader.next_event()?;
        debug_assert!(matches!(ev, Event::EndElement { .. }));
        return Ok(element);
    }
    loop {
        match reader.next_event()? {
            Event::StartElement {
                name,
                attributes,
                self_closing,
                position,
            } => {
                let child = build_element(
                    reader,
                    limits,
                    nodes,
                    name,
                    attributes,
                    self_closing,
                    position,
                )?;
                element.children.push(Node::Element(child));
            }
            Event::EndElement { .. } => return Ok(element),
            Event::Text(t) => {
                if !t.trim().is_empty() {
                    element.push_text(&t);
                }
            }
            Event::CData(t) => element.push_text(&t),
            Event::Comment(_) | Event::ProcessingInstruction { .. } | Event::Declaration(_) => {}
            // The reader reports EOF inside an element as an error; degrade
            // to a typed error rather than a panic if that ever regresses.
            Event::Eof => {
                return Err(XmlError::new(
                    XmlErrorKind::UnexpectedEof {
                        context: "an unclosed element",
                    },
                    Reader::position(reader),
                ))
            }
        }
    }
}

impl Element {
    /// Creates an element programmatically (used by tests and generators).
    pub fn new(name: &str) -> Element {
        let name = QName::parse(name).expect("Element::new requires a valid XML name");
        Element {
            name,
            attributes: Vec::new(),
            children: Vec::new(),
            position: Position::START,
        }
    }

    /// Adds or replaces an attribute (builder style).
    pub fn with_attr(mut self, name: &str, value: &str) -> Element {
        self.set_attr(name, value);
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: Element) -> Element {
        self.children.push(Node::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn with_text(mut self, text: &str) -> Element {
        self.push_text(text);
        self
    }

    /// Adds or replaces an attribute.
    pub fn set_attr(&mut self, name: &str, value: &str) {
        let qname = QName::parse(name).expect("set_attr requires a valid XML name");
        if let Some(existing) = self.attributes.iter_mut().find(|a| a.name == qname) {
            existing.value = value.to_owned();
        } else {
            self.attributes.push(Attribute {
                name: qname,
                value: value.to_owned(),
                position: Position::START,
            });
        }
    }

    /// Appends a child element.
    pub fn add_child(&mut self, child: Element) {
        self.children.push(Node::Element(child));
    }

    fn push_text(&mut self, text: &str) {
        if let Some(Node::Text(existing)) = self.children.last_mut() {
            existing.push_str(text);
        } else {
            self.children.push(Node::Text(text.to_owned()));
        }
    }

    /// The element name.
    pub fn name(&self) -> &QName {
        &self.name
    }

    /// Source position of the start tag.
    pub fn position(&self) -> Position {
        self.position
    }

    /// All attributes in document order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Looks up an attribute value by raw name (e.g. `minOccurs`).
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name.raw() == name)
            .map(|a| a.value.as_str())
    }

    /// Looks up an attribute value by local name, ignoring any prefix.
    pub fn attr_local(&self, local: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|a| a.name.local() == local)
            .map(|a| a.value.as_str())
    }

    /// All child nodes (elements and text).
    pub fn children(&self) -> &[Node] {
        &self.children
    }

    /// Iterator over child elements only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            Node::Element(e) => Some(e),
            Node::Text(_) => None,
        })
    }

    /// First child element with the given *local* name.
    pub fn child_by_local(&self, local: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name.local() == local)
    }

    /// All child elements with the given *local* name.
    pub fn children_by_local<'e>(&'e self, local: &'e str) -> impl Iterator<Item = &'e Element> {
        self.child_elements()
            .filter(move |e| e.name.local() == local)
    }

    /// Concatenated text content of this element (direct text children only).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for node in &self.children {
            if let Node::Text(t) = node {
                out.push_str(t);
            }
        }
        out
    }

    /// Number of elements in the subtree rooted here (including this one).
    pub fn subtree_size(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::subtree_size)
            .sum::<usize>()
    }

    /// Maximum depth of the subtree; a leaf element has depth 0.
    pub fn subtree_depth(&self) -> usize {
        self.child_elements()
            .map(|c| 1 + c.subtree_depth())
            .max()
            .unwrap_or(0)
    }

    fn write_indented(&self, f: &mut fmt::Formatter<'_>, indent: usize) -> fmt::Result {
        let pad = "  ".repeat(indent);
        write!(f, "{pad}<{}", self.name)?;
        for attr in &self.attributes {
            write!(f, " {}=\"{}\"", attr.name, escape_attr(&attr.value))?;
        }
        if self.children.is_empty() {
            return writeln!(f, "/>");
        }
        // Text-only elements are rendered inline; mixed/element content nested.
        if self.children.iter().all(|n| matches!(n, Node::Text(_))) {
            return writeln!(f, ">{}</{}>", escape_text(&self.text()), self.name);
        }
        writeln!(f, ">")?;
        for node in &self.children {
            match node {
                Node::Element(e) => e.write_indented(f, indent + 1)?,
                Node::Text(t) => writeln!(f, "{pad}  {}", escape_text(t))?,
            }
        }
        writeln!(f, "{pad}</{}>", self.name)
    }
}

impl fmt::Display for Element {
    /// Pretty-prints the element as indented XML; round-trips through
    /// [`Document::parse`] for element-content documents.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.write_indented(f, 0)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.root.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PO: &str = r#"<?xml version="1.0"?>
<!-- purchase order -->
<po id="42">
  <line qty="2">bolt</line>
  <line qty="9">nut</line>
  <note><![CDATA[a < b]]></note>
</po>"#;

    #[test]
    fn builds_tree_with_attributes_and_text() {
        let doc = Document::parse(PO).unwrap();
        let root = doc.root();
        assert_eq!(root.name().raw(), "po");
        assert_eq!(root.attr("id"), Some("42"));
        assert_eq!(root.child_elements().count(), 3);
        let lines: Vec<_> = root.children_by_local("line").collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].attr("qty"), Some("2"));
        assert_eq!(lines[0].text(), "bolt");
    }

    #[test]
    fn cdata_becomes_text() {
        let doc = Document::parse(PO).unwrap();
        let note = doc.root().child_by_local("note").unwrap();
        assert_eq!(note.text(), "a < b");
    }

    #[test]
    fn whitespace_only_text_is_dropped() {
        let doc = Document::parse("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(doc.root().children().len(), 1);
    }

    #[test]
    fn adjacent_text_and_cdata_merge() {
        let doc = Document::parse("<a>one <![CDATA[two]]> three</a>").unwrap();
        assert_eq!(doc.root().children().len(), 1);
        assert_eq!(doc.root().text(), "one two three");
    }

    #[test]
    fn subtree_size_and_depth() {
        let doc = Document::parse("<a><b><c/><d/></b><e/></a>").unwrap();
        assert_eq!(doc.root().subtree_size(), 5);
        assert_eq!(doc.root().subtree_depth(), 2);
        let b = doc.root().child_by_local("b").unwrap();
        assert_eq!(b.subtree_depth(), 1);
        let e = doc.root().child_by_local("e").unwrap();
        assert_eq!(e.subtree_depth(), 0);
    }

    #[test]
    fn attr_local_ignores_prefix() {
        let doc = Document::parse(
            r#"<a xsi:type="T" xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"/>"#,
        )
        .unwrap();
        assert_eq!(doc.root().attr_local("type"), Some("T"));
        assert_eq!(doc.root().attr("xsi:type"), Some("T"));
        assert_eq!(doc.root().attr("type"), None);
    }

    #[test]
    fn builder_api_constructs_equivalent_trees() {
        let built = Element::new("po")
            .with_attr("id", "42")
            .with_child(Element::new("line").with_attr("qty", "2").with_text("bolt"));
        assert_eq!(built.attr("id"), Some("42"));
        assert_eq!(built.subtree_size(), 2);
        let reparsed = Document::parse(&built.to_string()).unwrap();
        assert_eq!(reparsed.root().attr("id"), Some("42"));
        assert_eq!(
            reparsed.root().child_by_local("line").unwrap().text(),
            "bolt"
        );
    }

    #[test]
    fn set_attr_replaces_existing() {
        let mut e = Element::new("x");
        e.set_attr("k", "1");
        e.set_attr("k", "2");
        assert_eq!(e.attributes().len(), 1);
        assert_eq!(e.attr("k"), Some("2"));
    }

    #[test]
    fn display_round_trips_special_characters() {
        let e = Element::new("t")
            .with_attr("a", "x < \"y\" & z")
            .with_text("1 < 2 & 3");
        let printed = e.to_string();
        let doc = Document::parse(&printed).unwrap();
        assert_eq!(doc.root().attr("a"), Some("x < \"y\" & z"));
        assert_eq!(doc.root().text(), "1 < 2 & 3");
    }

    #[test]
    fn into_root_returns_owned_tree() {
        let doc = Document::parse("<a><b/></a>").unwrap();
        let root = doc.into_root();
        assert_eq!(root.name().raw(), "a");
    }

    #[test]
    fn parse_error_surfaces_from_document() {
        assert!(Document::parse("<a><b></a>").is_err());
        assert!(Document::parse("").is_err());
    }

    #[test]
    fn node_count_limit_bounds_dom_size() {
        let limits = IngestLimits {
            max_nodes: 4,
            ..IngestLimits::default()
        };
        assert!(Document::parse_with_limits("<a><b/><c/><d/></a>", &limits).is_ok());
        let err = Document::parse_with_limits("<a><b/><c/><d/><e/></a>", &limits).unwrap_err();
        assert!(matches!(
            err.kind(),
            XmlErrorKind::LimitExceeded {
                limit: "max_nodes",
                limit_value: 4,
                actual: 5,
                offset: Some(_),
            }
        ));
    }
}
