//! Pull-based XML event reader.
//!
//! [`Reader`] tokenizes an in-memory document and yields [`Event`]s while
//! enforcing the well-formedness rules that matter for schema documents:
//! matching open/close tags, unique attributes, a single root element, no
//! content outside the root, legal entity references, and no `--` inside
//! comments or `]]>` in character data.

use crate::error::{Position, XmlErrorKind, XmlResult};
use crate::escape::unescape;
use crate::input::Cursor;
use crate::limits::IngestLimits;
use crate::name::{is_name_char, QName};

/// One attribute on a start tag, with its decoded value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// The attribute name as written (possibly prefixed).
    pub name: QName,
    /// The attribute value with entity references decoded.
    pub value: String,
    /// Position of the attribute name in the source.
    pub position: Position,
}

/// A parse event produced by [`Reader::next_event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The `<?xml ...?>` declaration, with its raw body (e.g. `version="1.0"`).
    Declaration(String),
    /// `<name attr="v">` or the opening half of `<name/>`.
    StartElement {
        /// Element name.
        name: QName,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
        /// True when the tag was self-closing (`<name/>`); an `EndElement`
        /// event is still produced immediately after.
        self_closing: bool,
        /// Position of the `<`.
        position: Position,
    },
    /// `</name>` (also synthesized after a self-closing start tag).
    EndElement {
        /// Element name.
        name: QName,
        /// Position of the `<` (for synthesized ends, of the start tag).
        position: Position,
    },
    /// Character data with entity references decoded. Whitespace-only runs
    /// between markup are reported too; the DOM layer decides what to keep.
    Text(String),
    /// A `<![CDATA[...]]>` section (verbatim content).
    CData(String),
    /// A `<!--...-->` comment (verbatim content).
    Comment(String),
    /// A `<?target body?>` processing instruction.
    ProcessingInstruction {
        /// The PI target.
        target: String,
        /// The PI body (may be empty).
        body: String,
    },
    /// End of the document; returned exactly once, then again forever.
    Eof,
}

/// Default maximum element nesting depth
/// ([`IngestLimits::DEFAULT`]`.max_depth`). Recursive DOM construction and
/// schema compilation are bounded by this, so a hostile document cannot
/// overflow the stack.
pub const MAX_DEPTH: usize = IngestLimits::DEFAULT.max_depth;

/// The state machine for pull parsing.
#[derive(Debug)]
pub struct Reader<'a> {
    cursor: Cursor<'a>,
    /// Resource limits enforced while pulling events.
    limits: IngestLimits,
    /// Raw input length in bytes (denominator of the expansion budget).
    input_len: usize,
    /// Cumulative decoded character-data bytes (text + attribute values).
    expanded: usize,
    /// Whether the input-size limit has been checked (once, on first pull).
    size_checked: bool,
    /// Names of currently open elements.
    stack: Vec<QName>,
    /// Pending synthesized end element from a self-closing tag.
    pending_end: Option<(QName, Position)>,
    /// Whether the single root element has been seen and closed.
    root_closed: bool,
    /// Whether any root element has been seen at all.
    seen_root: bool,
    /// Whether EOF has been returned.
    done: bool,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `src` with the default [`IngestLimits`].
    pub fn new(src: &'a str) -> Self {
        Reader::with_limits(src, IngestLimits::default())
    }

    /// Creates a reader over `src` enforcing custom [`IngestLimits`].
    pub fn with_limits(src: &'a str, limits: IngestLimits) -> Self {
        Reader {
            cursor: Cursor::new(src),
            limits,
            input_len: src.len(),
            expanded: 0,
            size_checked: false,
            stack: Vec::new(),
            pending_end: None,
            root_closed: false,
            seen_root: false,
            done: false,
        }
    }

    fn limit_error(&self, limit: &'static str, limit_value: usize, actual: usize) -> XmlResult<()> {
        // The cursor sits on the first byte that crossed the limit.
        let offset = Some(self.cursor.position().offset);
        Err(self.cursor.error_at(XmlErrorKind::LimitExceeded {
            limit,
            limit_value: limit_value as u64,
            actual: actual as u64,
            offset,
        }))
    }

    /// Charges `decoded_len` bytes of decoded character data against the
    /// entity-expansion budget (`max_entity_expansion` × raw input bytes).
    fn charge_expansion(&mut self, decoded_len: usize) -> XmlResult<()> {
        self.expanded = self.expanded.saturating_add(decoded_len);
        let budget = self
            .limits
            .max_entity_expansion
            .saturating_mul(self.input_len);
        if self.expanded > budget {
            return self.limit_error("max_entity_expansion", budget, self.expanded);
        }
        Ok(())
    }

    /// Current source position (start of the next unread construct).
    pub fn position(&self) -> Position {
        self.cursor.position()
    }

    /// Depth of currently open elements.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Pulls the next event.
    pub fn next_event(&mut self) -> XmlResult<Event> {
        if !self.size_checked {
            self.size_checked = true;
            if self.input_len > self.limits.max_input_bytes {
                // The cursor still sits at the start; the first byte past
                // the cap is the offending one.
                return Err(self.cursor.error_at(XmlErrorKind::LimitExceeded {
                    limit: "max_input_bytes",
                    limit_value: self.limits.max_input_bytes as u64,
                    actual: self.input_len as u64,
                    offset: Some(self.limits.max_input_bytes),
                }));
            }
        }
        if let Some((name, position)) = self.pending_end.take() {
            self.leave_element();
            return Ok(Event::EndElement { name, position });
        }
        if self.done {
            return Ok(Event::Eof);
        }
        if self.cursor.is_eof() {
            return self.finish();
        }
        if self.cursor.peek() == Some(b'<') {
            self.read_markup()
        } else {
            self.read_text()
        }
    }

    fn finish(&mut self) -> XmlResult<Event> {
        if self.stack.last().is_some() {
            // The position already points at the unclosed region; naming the
            // element would require leaking or allocating into a `&'static
            // str` context, which is unacceptable under sustained hostile
            // traffic (the old implementation `Box::leak`ed here).
            return Err(self.cursor.error_at(XmlErrorKind::UnexpectedEof {
                context: "an unclosed element",
            }));
        }
        if !self.seen_root {
            return Err(self.cursor.error_at(XmlErrorKind::BadDocumentStructure {
                detail: "document has no root element",
            }));
        }
        self.done = true;
        Ok(Event::Eof)
    }

    fn read_markup(&mut self) -> XmlResult<Event> {
        let position = self.cursor.position();
        if self.cursor.eat_str("<!--") {
            return self.read_comment();
        }
        if self.cursor.eat_str("<![CDATA[") {
            return self.read_cdata(position);
        }
        if self.cursor.starts_with("<!DOCTYPE") {
            self.skip_doctype()?;
            return self.next_event();
        }
        if self.cursor.eat_str("<?") {
            return self.read_pi(position);
        }
        if self.cursor.eat_str("</") {
            return self.read_end_tag(position);
        }
        self.cursor.expect(b'<', "'<' starting markup")?;
        self.read_start_tag(position)
    }

    fn read_comment(&mut self) -> XmlResult<Event> {
        let body = self.cursor.take_until("--", "a comment")?.to_owned();
        // XML forbids `--` inside comments, so the first `--` must be `-->`.
        self.cursor.eat_str("--");
        if !self.cursor.eat_str(">") {
            return Err(self.cursor.error_at(XmlErrorKind::IllegalConstruct {
                detail: "'--' is not allowed inside a comment",
            }));
        }
        Ok(Event::Comment(body))
    }

    fn read_cdata(&mut self, position: Position) -> XmlResult<Event> {
        if self.stack.is_empty() {
            return Err(self.cursor.error(
                XmlErrorKind::BadDocumentStructure {
                    detail: "CDATA section outside the root element",
                },
                position,
            ));
        }
        let body = self.cursor.take_until("]]>", "a CDATA section")?.to_owned();
        self.cursor.eat_str("]]>");
        Ok(Event::CData(body))
    }

    fn skip_doctype(&mut self) -> XmlResult<()> {
        // Consume "<!DOCTYPE ... >" allowing one level of [...] internal subset.
        self.cursor.eat_str("<!DOCTYPE");
        let mut in_subset = false;
        loop {
            match self.cursor.bump() {
                Some(b'[') => in_subset = true,
                Some(b']') => in_subset = false,
                Some(b'>') if !in_subset => return Ok(()),
                Some(_) => {}
                None => {
                    return Err(self.cursor.error_at(XmlErrorKind::UnexpectedEof {
                        context: "a DOCTYPE declaration",
                    }))
                }
            }
        }
    }

    fn read_pi(&mut self, position: Position) -> XmlResult<Event> {
        let target = self.read_name()?;
        self.cursor.skip_whitespace();
        let body = self
            .cursor
            .take_until("?>", "a processing instruction")?
            .to_owned();
        self.cursor.eat_str("?>");
        if target.raw().eq_ignore_ascii_case("xml") {
            if position.offset != 0 {
                return Err(self.cursor.error(
                    XmlErrorKind::IllegalConstruct {
                        detail: "XML declaration is only allowed at the start of the document",
                    },
                    position,
                ));
            }
            return Ok(Event::Declaration(body));
        }
        Ok(Event::ProcessingInstruction {
            target: target.raw().to_owned(),
            body,
        })
    }

    fn read_start_tag(&mut self, position: Position) -> XmlResult<Event> {
        if self.root_closed {
            return Err(self.cursor.error(
                XmlErrorKind::BadDocumentStructure {
                    detail: "content after the root element",
                },
                position,
            ));
        }
        let name = self.read_name()?;
        let mut attributes: Vec<Attribute> = Vec::new();
        loop {
            let had_space = self.cursor.skip_whitespace() > 0;
            match self.cursor.peek() {
                Some(b'>') => {
                    self.cursor.bump();
                    break;
                }
                Some(b'/') => {
                    self.cursor.bump();
                    self.cursor
                        .expect(b'>', "'>' after '/' in a self-closing tag")?;
                    self.seen_root = true;
                    self.pending_end = Some((name.clone(), position));
                    self.stack.push(name.clone());
                    if self.stack.len() > self.limits.max_depth {
                        return Err(self.cursor.error(
                            XmlErrorKind::LimitExceeded {
                                limit: "max_depth",
                                limit_value: self.limits.max_depth as u64,
                                actual: self.stack.len() as u64,
                                offset: Some(position.offset),
                            },
                            position,
                        ));
                    }
                    return Ok(Event::StartElement {
                        name,
                        attributes,
                        self_closing: true,
                        position,
                    });
                }
                Some(_) => {
                    if !had_space {
                        let found = self.cursor.peek().unwrap_or(b'?') as char;
                        return Err(self.cursor.error_at(XmlErrorKind::UnexpectedChar {
                            found,
                            expected: "whitespace before an attribute",
                        }));
                    }
                    if attributes.len() >= self.limits.max_attributes {
                        self.limit_error(
                            "max_attributes",
                            self.limits.max_attributes,
                            attributes.len() + 1,
                        )?;
                    }
                    let attr = self.read_attribute()?;
                    if attributes.iter().any(|a| a.name == attr.name) {
                        return Err(self.cursor.error(
                            XmlErrorKind::DuplicateAttribute {
                                name: attr.name.raw().to_owned(),
                            },
                            attr.position,
                        ));
                    }
                    attributes.push(attr);
                }
                None => {
                    return Err(self.cursor.error_at(XmlErrorKind::UnexpectedEof {
                        context: "a start tag",
                    }))
                }
            }
        }
        self.seen_root = true;
        self.stack.push(name.clone());
        if self.stack.len() > self.limits.max_depth {
            return Err(self.cursor.error(
                XmlErrorKind::LimitExceeded {
                    limit: "max_depth",
                    limit_value: self.limits.max_depth as u64,
                    actual: self.stack.len() as u64,
                    offset: Some(position.offset),
                },
                position,
            ));
        }
        Ok(Event::StartElement {
            name,
            attributes,
            self_closing: false,
            position,
        })
    }

    fn read_end_tag(&mut self, position: Position) -> XmlResult<Event> {
        let name = self.read_name()?;
        self.cursor.skip_whitespace();
        self.cursor.expect(b'>', "'>' closing an end tag")?;
        match self.stack.last() {
            Some(open) if *open == name => {
                self.leave_element();
                Ok(Event::EndElement { name, position })
            }
            Some(open) => Err(self.cursor.error(
                XmlErrorKind::MismatchedTag {
                    expected: open.raw().to_owned(),
                    found: name.raw().to_owned(),
                },
                position,
            )),
            None => Err(self.cursor.error(
                XmlErrorKind::UnexpectedCloseTag {
                    found: name.raw().to_owned(),
                },
                position,
            )),
        }
    }

    fn leave_element(&mut self) {
        self.stack.pop();
        if self.stack.is_empty() {
            self.root_closed = true;
        }
    }

    fn read_name(&mut self) -> XmlResult<QName> {
        let start = self.cursor.position();
        let raw = self.cursor.take_while(|b| {
            // Fast path: names in schema documents are ASCII. Multi-byte
            // UTF-8 continuation bytes are accepted here and validated by
            // `QName::parse` below.
            b >= 0x80 || is_name_char(b as char)
        });
        if raw.is_empty() {
            let found = self.cursor.peek().map(|b| b as char).unwrap_or('\u{0}');
            return Err(self.cursor.error(
                XmlErrorKind::UnexpectedChar {
                    found,
                    expected: "an XML name",
                },
                start,
            ));
        }
        QName::parse(raw).ok_or_else(|| {
            self.cursor.error(
                XmlErrorKind::InvalidName {
                    name: raw.to_owned(),
                },
                start,
            )
        })
    }

    fn read_attribute(&mut self) -> XmlResult<Attribute> {
        let position = self.cursor.position();
        let name = self.read_name()?;
        self.cursor.skip_whitespace();
        self.cursor.expect(b'=', "'=' after an attribute name")?;
        self.cursor.skip_whitespace();
        let quote = match self.cursor.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.cursor.bump();
                q
            }
            Some(other) => {
                return Err(self.cursor.error_at(XmlErrorKind::UnexpectedChar {
                    found: other as char,
                    expected: "a quoted attribute value",
                }))
            }
            None => {
                return Err(self.cursor.error_at(XmlErrorKind::UnexpectedEof {
                    context: "an attribute value",
                }))
            }
        };
        let value_start = self.cursor.position();
        let raw = self.cursor.take_while(|b| b != quote && b != b'<');
        if self.cursor.peek() == Some(b'<') {
            return Err(self.cursor.error_at(XmlErrorKind::UnexpectedChar {
                found: '<',
                expected: "no '<' inside an attribute value",
            }));
        }
        self.cursor.expect(quote, "the closing attribute quote")?;
        // XML 1.0 §3.3.3 attribute-value normalization: literal whitespace
        // characters become spaces. (Character references like &#10; are
        // exempt, which unescaping after replacement preserves.)
        let raw = if raw.bytes().any(|b| matches!(b, b'\t' | b'\n' | b'\r')) {
            std::borrow::Cow::Owned(raw.replace(['\t', '\n', '\r'], " "))
        } else {
            std::borrow::Cow::Borrowed(raw)
        };
        let value = match unescape(&raw) {
            Ok(v) => v.into_owned(),
            Err(bad) => {
                return Err(self.cursor.error(
                    XmlErrorKind::InvalidReference {
                        reference: bad.body,
                    },
                    Position {
                        line: value_start.line,
                        column: value_start.column + bad.offset as u32,
                        offset: value_start.offset + bad.offset,
                    },
                ))
            }
        };
        self.charge_expansion(value.len())?;
        Ok(Attribute {
            name,
            value,
            position,
        })
    }

    fn read_text(&mut self) -> XmlResult<Event> {
        let start = self.cursor.position();
        let raw = self.cursor.take_while(|b| b != b'<');
        if raw.contains("]]>") {
            return Err(self.cursor.error(
                XmlErrorKind::IllegalConstruct {
                    detail: "']]>' is not allowed in character data",
                },
                start,
            ));
        }
        let text = match unescape(raw) {
            Ok(t) => t.into_owned(),
            Err(bad) => {
                return Err(self.cursor.error(
                    XmlErrorKind::InvalidReference {
                        reference: bad.body,
                    },
                    Position {
                        line: start.line,
                        column: start.column + bad.offset as u32,
                        offset: start.offset + bad.offset,
                    },
                ))
            }
        };
        if self.stack.is_empty() && !text.trim().is_empty() {
            return Err(self.cursor.error(
                XmlErrorKind::BadDocumentStructure {
                    detail: "character data outside the root element",
                },
                start,
            ));
        }
        self.charge_expansion(text.len())?;
        Ok(Event::Text(text))
    }
}

impl<'a> Iterator for Reader<'a> {
    type Item = XmlResult<Event>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_event() {
            Ok(Event::Eof) => None,
            other => Some(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(src: &str) -> Vec<Event> {
        Reader::new(src).collect::<XmlResult<Vec<_>>>().unwrap()
    }

    fn err_kind(src: &str) -> XmlErrorKind {
        let r: XmlResult<Vec<_>> = Reader::new(src).collect();
        r.unwrap_err().kind().clone()
    }

    #[test]
    fn parses_minimal_document() {
        let evs = events("<a/>");
        assert_eq!(evs.len(), 2);
        assert!(
            matches!(&evs[0], Event::StartElement { name, self_closing: true, .. } if name.raw() == "a")
        );
        assert!(matches!(&evs[1], Event::EndElement { name, .. } if name.raw() == "a"));
    }

    #[test]
    fn parses_nested_elements_with_text() {
        let evs = events("<a><b>hi</b></a>");
        let kinds: Vec<&str> = evs
            .iter()
            .map(|e| match e {
                Event::StartElement { .. } => "start",
                Event::EndElement { .. } => "end",
                Event::Text(_) => "text",
                _ => "other",
            })
            .collect();
        assert_eq!(kinds, ["start", "start", "text", "end", "end"]);
    }

    #[test]
    fn decodes_attributes_and_entities() {
        let evs = events(r#"<a x="1 &lt; 2" y='"q"'/>"#);
        let Event::StartElement { attributes, .. } = &evs[0] else {
            panic!()
        };
        assert_eq!(attributes[0].name.raw(), "x");
        assert_eq!(attributes[0].value, "1 < 2");
        assert_eq!(attributes[1].value, "\"q\"");
    }

    #[test]
    fn reports_duplicate_attributes() {
        assert!(matches!(
            err_kind(r#"<a x="1" x="2"/>"#),
            XmlErrorKind::DuplicateAttribute { name } if name == "x"
        ));
    }

    #[test]
    fn requires_whitespace_between_attributes() {
        assert!(matches!(
            err_kind(r#"<a x="1"y="2"/>"#),
            XmlErrorKind::UnexpectedChar { .. }
        ));
    }

    #[test]
    fn rejects_mismatched_tags_with_position() {
        let r: XmlResult<Vec<_>> = Reader::new("<a>\n  <b></c></a>").collect();
        let err = r.unwrap_err();
        assert!(
            matches!(err.kind(), XmlErrorKind::MismatchedTag { expected, found }
            if expected == "b" && found == "c")
        );
        assert_eq!(err.position().line, 2);
    }

    #[test]
    fn rejects_stray_close_tag() {
        assert!(matches!(
            err_kind("<a></a></b>"),
            XmlErrorKind::BadDocumentStructure { .. } | XmlErrorKind::UnexpectedCloseTag { .. }
        ));
    }

    #[test]
    fn rejects_unclosed_document() {
        assert!(matches!(
            err_kind("<a><b></b>"),
            XmlErrorKind::UnexpectedEof { .. }
        ));
    }

    #[test]
    fn rejects_empty_document_and_whitespace_only() {
        assert!(matches!(
            err_kind(""),
            XmlErrorKind::BadDocumentStructure { .. }
        ));
        assert!(matches!(
            err_kind("   \n  "),
            XmlErrorKind::BadDocumentStructure { .. }
        ));
    }

    #[test]
    fn rejects_second_root_element() {
        assert!(matches!(
            err_kind("<a/><b/>"),
            XmlErrorKind::BadDocumentStructure { .. }
        ));
    }

    #[test]
    fn rejects_text_outside_root() {
        assert!(matches!(
            err_kind("hello <a/>"),
            XmlErrorKind::BadDocumentStructure { .. }
        ));
        assert!(matches!(
            err_kind("<a/> trailing"),
            XmlErrorKind::BadDocumentStructure { .. }
        ));
    }

    #[test]
    fn whitespace_around_root_is_fine() {
        let evs = events("\n  <a/>\n  ");
        assert!(evs.iter().any(|e| matches!(e, Event::StartElement { .. })));
    }

    #[test]
    fn parses_declaration_comment_pi_cdata() {
        let src = "<?xml version=\"1.0\"?><!-- note --><a><?php echo ?><![CDATA[<raw>&]]></a>";
        let evs = events(src);
        assert!(matches!(&evs[0], Event::Declaration(b) if b.contains("version")));
        assert!(matches!(&evs[1], Event::Comment(c) if c.trim() == "note"));
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::ProcessingInstruction { target, .. } if target == "php")));
        assert!(evs
            .iter()
            .any(|e| matches!(e, Event::CData(c) if c == "<raw>&")));
    }

    #[test]
    fn declaration_must_be_first() {
        assert!(matches!(
            err_kind("<!-- c --><?xml version=\"1.0\"?><a/>"),
            XmlErrorKind::IllegalConstruct { .. }
        ));
    }

    #[test]
    fn rejects_double_dash_in_comment() {
        assert!(matches!(
            err_kind("<!-- a -- b --><r/>"),
            XmlErrorKind::IllegalConstruct { .. }
        ));
    }

    #[test]
    fn skips_doctype() {
        let evs = events("<!DOCTYPE note [<!ENTITY x \"y\">]><note/>");
        assert!(matches!(&evs[0], Event::StartElement { name, .. } if name.raw() == "note"));
    }

    #[test]
    fn rejects_unknown_entity_in_text_with_offset() {
        let r: XmlResult<Vec<_>> = Reader::new("<a>xy&bogus;</a>").collect();
        let err = r.unwrap_err();
        assert!(
            matches!(err.kind(), XmlErrorKind::InvalidReference { reference } if reference == "bogus")
        );
    }

    #[test]
    fn rejects_cdata_end_in_text() {
        assert!(matches!(
            err_kind("<a>oops ]]> here</a>"),
            XmlErrorKind::IllegalConstruct { .. }
        ));
    }

    #[test]
    fn rejects_lt_in_attribute_value() {
        assert!(matches!(
            err_kind(r#"<a x="1 < 2"/>"#),
            XmlErrorKind::UnexpectedChar { found: '<', .. }
        ));
    }

    #[test]
    fn depth_tracks_open_elements() {
        let mut r = Reader::new("<a><b/></a>");
        assert_eq!(r.depth(), 0);
        r.next_event().unwrap(); // <a>
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // <b/> start
        assert_eq!(r.depth(), 2);
        r.next_event().unwrap(); // synthesized </b>
        assert_eq!(r.depth(), 1);
        r.next_event().unwrap(); // </a>
        assert_eq!(r.depth(), 0);
        assert_eq!(r.next_event().unwrap(), Event::Eof);
        assert_eq!(r.next_event().unwrap(), Event::Eof); // idempotent
    }

    #[test]
    fn prefixed_names_are_split() {
        let evs = events(r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>"#);
        let Event::StartElement {
            name, attributes, ..
        } = &evs[0]
        else {
            panic!()
        };
        assert_eq!(name.prefix(), Some("xs"));
        assert_eq!(name.local(), "schema");
        assert_eq!(attributes[0].name.raw(), "xmlns:xs");
    }

    #[test]
    fn end_tag_allows_trailing_whitespace() {
        let evs = events("<a></a  >");
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn attribute_values_normalize_literal_whitespace() {
        // XML 1.0 §3.3.3: literal tab/newline become spaces; character
        // references for them survive.
        let evs = events("<a x=\"one\ttwo\nthree\" y=\"a&#10;b\"/>");
        let Event::StartElement { attributes, .. } = &evs[0] else {
            panic!()
        };
        assert_eq!(attributes[0].value, "one two three");
        assert_eq!(attributes[1].value, "a\nb");
    }

    #[test]
    fn nesting_depth_is_capped() {
        // A pathologically deep document errors instead of overflowing the
        // recursive DOM builder's stack.
        let deep = "<a>".repeat(MAX_DEPTH + 8) + &"</a>".repeat(MAX_DEPTH + 8);
        let r: XmlResult<Vec<_>> = Reader::new(&deep).collect();
        assert!(matches!(
            r.unwrap_err().kind(),
            XmlErrorKind::LimitExceeded {
                limit: "max_depth",
                ..
            }
        ));
        // Just inside the limit is fine.
        let ok = "<a>".repeat(MAX_DEPTH) + &"</a>".repeat(MAX_DEPTH);
        let r: XmlResult<Vec<_>> = Reader::new(&ok).collect();
        assert!(r.is_ok());
    }

    #[test]
    fn numeric_references_in_text() {
        let evs = events("<a>&#65;&#x42;</a>");
        assert!(evs.iter().any(|e| matches!(e, Event::Text(t) if t == "AB")));
    }

    #[test]
    fn input_size_limit_fires_before_parsing() {
        let limits = IngestLimits {
            max_input_bytes: 8,
            ..IngestLimits::default()
        };
        let r: XmlResult<Vec<_>> = Reader::with_limits("<abcdefgh/>", limits).collect();
        assert!(matches!(
            r.unwrap_err().kind(),
            XmlErrorKind::LimitExceeded {
                limit: "max_input_bytes",
                limit_value: 8,
                actual: 11,
                offset: Some(8),
            }
        ));
        // Exactly at the limit is fine.
        let r: XmlResult<Vec<_>> = Reader::with_limits("<abcde/>", limits).collect();
        assert_eq!(r.unwrap().len(), 2);
    }

    #[test]
    fn attribute_count_is_capped() {
        let limits = IngestLimits {
            max_attributes: 3,
            ..IngestLimits::default()
        };
        let ok = r#"<a x1="1" x2="2" x3="3"/>"#;
        let r: XmlResult<Vec<_>> = Reader::with_limits(ok, limits).collect();
        assert!(r.is_ok());
        let over = r#"<a x1="1" x2="2" x3="3" x4="4"/>"#;
        let r: XmlResult<Vec<_>> = Reader::with_limits(over, limits).collect();
        assert!(matches!(
            r.unwrap_err().kind(),
            XmlErrorKind::LimitExceeded {
                limit: "max_attributes",
                ..
            }
        ));
    }

    #[test]
    fn expansion_budget_counts_decoded_character_data() {
        // Factor 0 forbids decoded character data; factor 1 admits any
        // document this reader can produce (no DTD entities, so decoded
        // output never outgrows the raw input).
        let zero = IngestLimits {
            max_entity_expansion: 0,
            ..IngestLimits::default()
        };
        let r: XmlResult<Vec<_>> = Reader::with_limits("<a>text</a>", zero).collect();
        assert!(matches!(
            r.unwrap_err().kind(),
            XmlErrorKind::LimitExceeded {
                limit: "max_entity_expansion",
                ..
            }
        ));
        let one = IngestLimits {
            max_entity_expansion: 1,
            ..IngestLimits::default()
        };
        let r: XmlResult<Vec<_>> =
            Reader::with_limits("<a x=\"&lt;v&gt;\">&amp;</a>", one).collect();
        assert!(r.is_ok());
    }

    #[test]
    fn custom_depth_limit_overrides_default() {
        let limits = IngestLimits {
            max_depth: 2,
            ..IngestLimits::default()
        };
        let r: XmlResult<Vec<_>> = Reader::with_limits("<a><b/></a>", limits).collect();
        assert!(r.is_ok());
        let r: XmlResult<Vec<_>> = Reader::with_limits("<a><b><c/></b></a>", limits).collect();
        assert!(matches!(
            r.unwrap_err().kind(),
            XmlErrorKind::LimitExceeded {
                limit: "max_depth",
                limit_value: 2,
                actual: 3,
                offset: Some(_),
            }
        ));
    }
}
