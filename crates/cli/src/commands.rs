//! Command implementations: load schemas, run algorithms, print reports.

use crate::args::{AlgorithmChoice, Command, MatchOptions, USAGE};
use crate::gold_file;
use qmatch_core::algorithms::{mapping_generation_leaves, Algorithm, MatchOutcome};
use qmatch_core::eval::evaluate;
use qmatch_core::index::{pair_is_candidate, IndexParams, IndexPolicy};
use qmatch_core::mapping::{extract_mapping, path_of, Mapping};
use qmatch_core::matrix::SimMatrix;
use qmatch_core::quality::{self, QualityReport, QualityRow};
use qmatch_core::report::{f3, Table};
use qmatch_core::session::{MatchSession, PreparedSchema};
use qmatch_core::trace::Recorder;
use qmatch_xsd::{parse_schema, NodeKind, SchemaTree};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A command failure with context (file, phase).
#[derive(Debug)]
pub struct CommandError(String);

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CommandError {}

fn fail(message: impl Into<String>) -> CommandError {
    CommandError(message.into())
}

/// Executes a parsed command.
pub fn run(command: Command) -> Result<(), CommandError> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Inspect { schema, root } => inspect(&schema, root.as_deref()),
        Command::Diff { old, new, root } => diff_command(&old, &new, root.as_deref()),
        Command::Validate { schema, instance } => validate_instance(&schema, &instance),
        Command::Generate { schema, root, seed } => generate(&schema, root.as_deref(), seed),
        Command::Fuzz {
            seed,
            cases,
            budget_ms,
            repro_dir,
        } => fuzz(seed, cases, budget_ms, &repro_dir),
        Command::Serve {
            addr,
            shards,
            max_schemas,
            queue_depth,
            deadline_ms,
            data_dir,
            fsync_batch_ms,
            options,
        } => serve(
            &addr,
            shards,
            max_schemas,
            queue_depth,
            deadline_ms,
            data_dir.as_deref(),
            fsync_batch_ms,
            &options,
        ),
        Command::Match {
            source,
            target,
            options,
        } => {
            emit_deprecations(&options);
            let (source_tree, target_tree) = load_pair(&source, &target, &options)?;
            let (session, recorder) = build_session(&options)?;
            let (prepared_source, prepared_target) =
                (session.prepare(&source_tree), session.prepare(&target_tree));
            let (algorithm, outcome, threshold) =
                execute(&session, &prepared_source, &prepared_target, &options);
            emit_trace(recorder.as_deref());
            if let Some(csv_path) = &options.matrix_csv {
                let csv = outcome.matrix.to_csv(&source_tree, &target_tree);
                std::fs::write(csv_path, csv)
                    .map_err(|e| fail(format!("cannot write {csv_path}: {e}")))?;
            }
            if options.total_only {
                println!("{}", f3(outcome.total_qom));
                return Ok(());
            }
            if let Some(path) = &options.explain {
                if options.algorithm != AlgorithmChoice::Hybrid {
                    return Err(fail("--explain requires the hybrid algorithm"));
                }
                return explain(&session, &prepared_source, &prepared_target, &outcome, path);
            }
            if options.emit_gold {
                let mapping = extract_at(
                    &algorithm,
                    &prepared_source,
                    &prepared_target,
                    &outcome.matrix,
                    threshold,
                );
                let mut gold = qmatch_core::eval::GoldStandard::new();
                for (s, t) in mapping.to_path_pairs(&source_tree, &target_tree) {
                    gold.add(&s, &t);
                }
                print!("{}", gold_file::render_gold(&gold));
                return Ok(());
            }
            println!(
                "{} ({} nodes) vs {} ({} nodes) — {} algorithm",
                source_tree.name(),
                source_tree.len(),
                target_tree.name(),
                target_tree.len(),
                options.algorithm.name()
            );
            println!("total QoM: {}\n", f3(outcome.total_qom));
            let mapping = extract_at(
                &algorithm,
                &prepared_source,
                &prepared_target,
                &outcome.matrix,
                threshold,
            );
            println!("correspondences (threshold {}):", f3(threshold));
            print!("{}", mapping.display(&source_tree, &target_tree));
            if mapping.is_empty() {
                println!("(none)");
            }
            Ok(())
        }
        Command::MatchMany { pairs, options } => match_many_command(&pairs, &options),
        Command::EvaluateAll { options } => evaluate_all_command(&options),
        Command::Evaluate {
            source,
            target,
            gold,
            options,
        } => {
            emit_deprecations(&options);
            let (source_tree, target_tree) = load_pair(&source, &target, &options)?;
            let gold_text = std::fs::read_to_string(&gold)
                .map_err(|e| fail(format!("cannot read {gold}: {e}")))?;
            let gold_set =
                gold_file::parse_gold(&gold, &gold_text).map_err(|e| fail(e.to_string()))?;
            let (session, recorder) = build_session(&options)?;
            let (prepared_source, prepared_target) =
                (session.prepare(&source_tree), session.prepare(&target_tree));
            let (algorithm, outcome, threshold) =
                execute(&session, &prepared_source, &prepared_target, &options);
            emit_trace(recorder.as_deref());
            let mapping = extract_at(
                &algorithm,
                &prepared_source,
                &prepared_target,
                &outcome.matrix,
                threshold,
            );
            let quality = evaluate(&mapping, &source_tree, &target_tree, &gold_set);

            // The same column schema `evaluate --all` and bench_quality
            // render, so single-pair runs line up with corpus reports.
            let mut report = QualityReport::new();
            report.push(QualityRow {
                pair: format!("{}-{}", source_tree.name(), target_tree.name()),
                algorithm: algorithm.name().to_owned(),
                threshold,
                quality,
            });
            print!("{}", report.render());
            if options.index != IndexPolicy::Off {
                // Report what the candidate prefilter would have decided
                // for this pair, so gold-standard runs can audit it.
                let qs = session.signature(&prepared_source);
                let ts = session.signature(&prepared_target);
                let admitted = pair_is_candidate(&qs, &ts, &IndexParams::default());
                let mut table = Table::new(["measure", "value"]);
                table.row(["index policy".to_owned(), options.index.name().to_owned()]);
                table.row(["prefilter dice".to_owned(), f3(qs.dice(&ts))]);
                table.row([
                    "prefilter".to_owned(),
                    if admitted { "candidate" } else { "pruned" }.to_owned(),
                ]);
                print!("{}", table.render());
            }

            // List errors for post-match repair, like a matcher UI would.
            let predicted = mapping.to_path_pairs(&source_tree, &target_tree);
            let mut shown_header = false;
            for c in &mapping.pairs {
                let key = (
                    path_of(&source_tree, c.source),
                    path_of(&target_tree, c.target),
                );
                if !gold_set.contains(&key.0, &key.1) {
                    if !shown_header {
                        println!("\nfalse positives:");
                        shown_header = true;
                    }
                    println!("  {} -> {}", key.0, key.1);
                }
            }
            let mut shown_header = false;
            for (s, t) in gold_set.iter() {
                if !predicted.iter().any(|(a, b)| a == s && b == t) {
                    if !shown_header {
                        println!("\nmissed matches:");
                        shown_header = true;
                    }
                    println!("  {s} -> {t}");
                }
            }
            Ok(())
        }
    }
}

/// Splits one pairs-file line into its fields: tab-separated when a tab is
/// present, whitespace-separated otherwise.
fn pairs_line_fields(line: &str) -> Vec<&str> {
    if line.contains('\t') {
        // Keep empty fields: `a<TAB>` must surface as an empty path error,
        // not silently collapse to one field.
        line.split('\t').map(str::trim).collect()
    } else {
        line.split_whitespace().collect()
    }
}

/// `match-many`: batch-match a whole corpus of schema pairs with the hybrid
/// algorithm — one session, so the thesaurus build, every schema's prepared
/// artifacts, and the distinct-label-pair comparisons are all shared across
/// the corpus; pairs run in parallel.
/// The built-in corpus: every schema pair with a non-empty gold standard,
/// in the paper's figure order. (Library/Human is excluded — the paper
/// publishes no gold for it, so quality scores would be degenerate.)
fn corpus_pairs() -> Vec<(
    &'static str,
    SchemaTree,
    SchemaTree,
    qmatch_core::GoldStandard,
)> {
    use qmatch_datasets::{corpus, gold, synth};
    vec![
        ("PO", corpus::po1(), corpus::po2(), gold::po_gold()),
        ("BOOK", corpus::article(), corpus::book(), gold::book_gold()),
        (
            "DCMD",
            corpus::dcmd_item(),
            corpus::dcmd_ord(),
            gold::dcmd_gold(),
        ),
        (
            "Protein",
            synth::pir().clone(),
            synth::pdb().clone(),
            synth::protein_gold().clone(),
        ),
    ]
}

/// The algorithms `evaluate --all` (and `bench_quality`) compare: QMatch,
/// full CUPID, and the tree-edit baseline.
const EVALUATED_ALGORITHMS: [Algorithm; 3] =
    [Algorithm::Hybrid, Algorithm::Cupid, Algorithm::TreeEdit];

/// `evaluate --all`: one deterministic quality report over every corpus
/// pair x every evaluated algorithm, through one shared session.
fn evaluate_all_command(options: &MatchOptions) -> Result<(), CommandError> {
    emit_deprecations(options);
    let (session, recorder) = build_session(options)?;
    let pairs = corpus_pairs();
    let mut report = QualityReport::new();
    for (name, source, target, gold) in &pairs {
        let (sp, tp) = (session.prepare(source), session.prepare(target));
        for algorithm in &EVALUATED_ALGORITHMS {
            let row = quality::evaluate_algorithm(&session, algorithm, name, &sp, &tp, gold)
                .map_err(|e| fail(e.to_string()))?;
            report.push(row);
        }
    }
    emit_trace(recorder.as_deref());
    println!(
        "{} corpus pair(s) x {} algorithm(s), each at its own acceptance threshold",
        pairs.len(),
        EVALUATED_ALGORITHMS.len()
    );
    print!("{}", report.render());
    Ok(())
}

fn match_many_command(pairs_path: &str, options: &MatchOptions) -> Result<(), CommandError> {
    emit_deprecations(options);
    let text = std::fs::read_to_string(pairs_path)
        .map_err(|e| fail(format!("cannot read {pairs_path}: {e}")))?;
    // Parse and validate every row before loading anything: a malformed
    // corpus file should fail fast with the offending line number.
    let mut rows: Vec<(String, String)> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        // Trim spaces but keep boundary tabs: `SOURCE<TAB>` is a row with
        // an empty target path, not a one-field row.
        let line = raw.trim_matches(|c| c == ' ' || c == '\r');
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = pairs_line_fields(line);
        if fields.len() != 2 {
            return Err(fail(format!(
                "{pairs_path}:{}: expected `SOURCE.xsd TAB TARGET.xsd` (2 fields), got {} in {line:?}",
                lineno + 1,
                fields.len()
            )));
        }
        if let Some(which) = fields.iter().position(|f| f.is_empty()) {
            return Err(fail(format!(
                "{pairs_path}:{}: empty {} schema path in {line:?}",
                lineno + 1,
                if which == 0 { "source" } else { "target" }
            )));
        }
        rows.push((fields[0].to_owned(), fields[1].to_owned()));
    }
    if rows.is_empty() {
        return Err(fail(format!("{pairs_path} lists no schema pairs")));
    }
    // Load and prepare each distinct schema file once, however many corpus
    // rows reference it.
    let mut index_of: HashMap<&str, usize> = HashMap::new();
    let mut trees: Vec<SchemaTree> = Vec::new();
    for (source, target) in &rows {
        for path in [source.as_str(), target.as_str()] {
            if !index_of.contains_key(path) {
                index_of.insert(path, trees.len());
                trees.push(load_tree(path, None)?);
            }
        }
    }
    let (session, recorder) = build_session(options)?;
    let prepared: Vec<PreparedSchema> = trees.iter().map(|t| session.prepare(t)).collect();
    let corpus: Vec<(&PreparedSchema, &PreparedSchema)> = rows
        .iter()
        .map(|(s, t)| {
            (
                &prepared[index_of[s.as_str()]],
                &prepared[index_of[t.as_str()]],
            )
        })
        .collect();
    let outcomes = session.match_corpus_indexed(&corpus, options.index);
    emit_trace(recorder.as_deref());
    let threshold = options
        .threshold
        .unwrap_or_else(|| options.config.weights.acceptance_threshold());
    if options.total_only {
        for ((source, target), outcome) in rows.iter().zip(&outcomes) {
            match outcome {
                Some(outcome) => println!("{source}\t{target}\t{}", f3(outcome.total_qom)),
                None => println!("{source}\t{target}\tpruned"),
            }
        }
        return Ok(());
    }
    let mut table = Table::new(["source", "target", "nodes", "total QoM", "matches"]);
    for (((source, target), outcome), (sp, tp)) in rows.iter().zip(&outcomes).zip(&corpus) {
        let (qom, matches) = match outcome {
            Some(outcome) => {
                let mapping = extract_mapping(&outcome.matrix, threshold);
                (f3(outcome.total_qom), mapping.len().to_string())
            }
            None => ("pruned".to_owned(), "-".to_owned()),
        };
        table.row([
            source.clone(),
            target.clone(),
            format!("{}x{}", sp.tree().len(), tp.tree().len()),
            qom,
            matches,
        ]);
    }
    // The index note only appears when the prefilter is on, so default
    // runs keep their byte-identical output.
    let index_note = match options.index {
        IndexPolicy::Off => String::new(),
        policy => format!(", index {}", policy.name()),
    };
    println!(
        "{} pair(s), hybrid algorithm, acceptance threshold {}{index_note}",
        rows.len(),
        f3(threshold)
    );
    print!("{}", table.render());
    Ok(())
}

/// `match --explain`: show the QoM decomposition of the named source node
/// against its best target candidates. Reuses the already-computed hybrid
/// `outcome` and the session's cached label comparisons instead of paying
/// the match a second time.
fn explain(
    session: &MatchSession,
    source: &PreparedSchema,
    target: &PreparedSchema,
    outcome: &MatchOutcome,
    source_path: &str,
) -> Result<(), CommandError> {
    let Some(sid) = source.tree().find_by_path(source_path) else {
        return Err(fail(format!(
            "source node {source_path:?} not found (paths look like {:?})",
            path_of(source.tree(), source.tree().root_id())
        )));
    };
    let mut candidates: Vec<(qmatch_xsd::NodeId, f64)> = target
        .tree()
        .iter()
        .map(|(tid, _)| (tid, outcome.matrix.get(sid, tid)))
        .collect();
    candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top candidates for {source_path}:\n");
    for (tid, _) in candidates.into_iter().take(3) {
        let explanation = session.explain(source, target, sid, tid, &outcome.matrix);
        println!("{explanation}");
    }
    Ok(())
}

fn generate(schema_path: &str, root: Option<&str>, seed: u64) -> Result<(), CommandError> {
    let text = std::fs::read_to_string(schema_path)
        .map_err(|e| fail(format!("cannot read {schema_path}: {e}")))?;
    let schema = parse_schema(&text).map_err(|e| fail(format!("{schema_path}: {e}")))?;
    let options = qmatch_datasets::instances::InstanceOptions {
        seed,
        ..qmatch_datasets::instances::InstanceOptions::default()
    };
    let instance = match root {
        Some(name) => qmatch_datasets::instances::generate_instance_of(&schema, name, &options),
        None => qmatch_datasets::instances::generate_instance(&schema, &options),
    }
    .ok_or_else(|| fail("schema has no matching global element to generate"))?;
    println!("<?xml version=\"1.0\"?>");
    print!("{instance}");
    Ok(())
}

fn fuzz(
    seed: u64,
    cases: u64,
    budget_ms: Option<u64>,
    repro_dir: &str,
) -> Result<(), CommandError> {
    let config = qmatch_fuzz::FuzzConfig {
        seed,
        cases,
        budget_ms,
        repro_dir: repro_dir.into(),
        ..qmatch_fuzz::FuzzConfig::default()
    };
    let summary = qmatch_fuzz::run(&config);
    println!("{}", summary.line());
    for failure in &summary.failures {
        eprintln!(
            "case {} failed oracle {}: {:?}{}",
            failure.case,
            failure.failure.tag(),
            failure.failure,
            failure
                .repro_path
                .as_deref()
                .map(|p| format!(" (repro: {})", p.display()))
                .unwrap_or_default(),
        );
    }
    if summary.is_clean() {
        Ok(())
    } else {
        Err(fail(format!(
            "fuzzing found {} crasher(s) and {} oracle violation(s)",
            summary.crashers, summary.violations
        )))
    }
}

fn validate_instance(schema_path: &str, instance_path: &str) -> Result<(), CommandError> {
    let schema_text = std::fs::read_to_string(schema_path)
        .map_err(|e| fail(format!("cannot read {schema_path}: {e}")))?;
    let schema = parse_schema(&schema_text).map_err(|e| fail(format!("{schema_path}: {e}")))?;
    let instance_text = std::fs::read_to_string(instance_path)
        .map_err(|e| fail(format!("cannot read {instance_path}: {e}")))?;
    let document = qmatch_xsd::validate::parse_document(&instance_text)
        .map_err(|e| fail(format!("{instance_path}: {e}")))?;
    let report = qmatch_xsd::validate(&document, &schema)
        .map_err(|e| fail(format!("{instance_path}: {e}")))?;
    if report.is_valid() {
        println!("{instance_path} is valid against {schema_path}");
        Ok(())
    } else {
        for error in &report.errors {
            println!("{error}");
        }
        Err(fail(format!("{} validation error(s)", report.errors.len())))
    }
}

fn load_tree(path: &str, root: Option<&str>) -> Result<SchemaTree, CommandError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let schema = parse_schema(&text).map_err(|e| fail(format!("{path}: {e}")))?;
    match root {
        Some(name) => {
            SchemaTree::compile_element(&schema, name).map_err(|e| fail(format!("{path}: {e}")))
        }
        None => SchemaTree::compile(&schema).map_err(|e| fail(format!("{path}: {e}"))),
    }
}

fn load_pair(
    source: &str,
    target: &str,
    options: &MatchOptions,
) -> Result<(SchemaTree, SchemaTree), CommandError> {
    Ok((
        load_tree(source, options.source_root.as_deref())?,
        load_tree(target, options.target_root.as_deref())?,
    ))
}

/// Boots the HTTP match server and blocks until SIGINT/SIGTERM, then
/// prints the activity summary to stderr.
#[allow(clippy::too_many_arguments)]
fn serve(
    addr: &str,
    shards: usize,
    max_schemas: usize,
    queue_depth: usize,
    deadline_ms: u64,
    data_dir: Option<&str>,
    fsync_batch_ms: u64,
    options: &MatchOptions,
) -> Result<(), CommandError> {
    emit_deprecations(options);
    let config = qmatch_serve::ServerConfig {
        addr: addr.to_owned(),
        threads: shards,
        max_resident: max_schemas,
        limits: qmatch_xsd::IngestLimits::default(),
        config: options.config,
        matcher: load_matcher(options)?,
        queue_depth,
        deadline: std::time::Duration::from_millis(deadline_ms),
        data_dir: data_dir.map(std::path::PathBuf::from),
        fsync_batch: std::time::Duration::from_millis(fsync_batch_ms),
        ..qmatch_serve::ServerConfig::default()
    };
    qmatch_serve::install_signal_handlers();
    let server =
        qmatch_serve::Server::bind(config).map_err(|e| fail(format!("cannot bind {addr}: {e}")))?;
    let bound = server
        .local_addr()
        .map_err(|e| fail(format!("cannot resolve listen address: {e}")))?;
    eprintln!("qmatch-serve listening on http://{bound} (ctrl-c or SIGTERM to stop)");
    let summary = server
        .run()
        .map_err(|e| fail(format!("server error: {e}")))?;
    eprintln!("{summary}");
    Ok(())
}

/// Loads the (optionally extended) name matcher for the lexicon-driven
/// algorithms.
fn load_matcher(
    options: &MatchOptions,
) -> Result<Option<qmatch_lexicon::NameMatcher>, CommandError> {
    let Some(path) = &options.thesaurus else {
        return Ok(None);
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| fail(format!("cannot read {path}: {e}")))?;
    let mut thesaurus = qmatch_lexicon::builtin::default_thesaurus();
    qmatch_lexicon::extend_from_text(&mut thesaurus, &text)
        .map_err(|e| fail(format!("{path}: {e}")))?;
    Ok(Some(qmatch_lexicon::NameMatcher::new(thesaurus)))
}

/// Builds the match session for a command invocation: the configuration
/// plus the (optionally extended) name matcher. With `--trace`, a
/// [`Recorder`] is installed on the session and returned alongside it so
/// the caller can print the per-phase report once the work is done.
fn build_session(
    options: &MatchOptions,
) -> Result<(MatchSession, Option<Arc<Recorder>>), CommandError> {
    let mut session = match load_matcher(options)? {
        Some(matcher) => MatchSession::with_matcher(options.config, matcher),
        None => MatchSession::new(options.config),
    };
    let recorder = options.trace.then(|| {
        let recorder = Arc::new(Recorder::default());
        session.set_trace_sink(recorder.clone());
        recorder
    });
    Ok((session, recorder))
}

/// Prints the `--trace` per-phase report to stderr, keeping stdout clean
/// for the match result itself.
fn emit_trace(recorder: Option<&Recorder>) {
    if let Some(recorder) = recorder {
        eprint!("{}", recorder.report());
    }
}

/// The [`Algorithm`] selector behind a CLI algorithm choice — the CLI
/// reuses the core enum end-to-end instead of its own algo strings.
fn core_algorithm(choice: AlgorithmChoice) -> Algorithm {
    match choice {
        AlgorithmChoice::Hybrid => Algorithm::Hybrid,
        AlgorithmChoice::Linguistic => Algorithm::Linguistic,
        AlgorithmChoice::Structural => Algorithm::Structural,
        AlgorithmChoice::Cupid => Algorithm::Cupid,
        AlgorithmChoice::TreeEdit => Algorithm::TreeEdit,
    }
}

/// Extracts a mapping by the algorithm's own convention at an explicit
/// threshold: CUPID is leaf-anchored (`mapping_generation_leaves`), every
/// other algorithm uses the greedy 1:1 extraction.
fn extract_at(
    algorithm: &Algorithm,
    source: &PreparedSchema,
    target: &PreparedSchema,
    matrix: &SimMatrix,
    threshold: f64,
) -> Mapping {
    match algorithm {
        Algorithm::Cupid => mapping_generation_leaves(source, target, matrix, threshold),
        _ => extract_mapping(matrix, threshold),
    }
}

/// Prints any flag-level deprecation warnings (RFC 8594 spirit: the old
/// spelling still works, the warning names the successor) to stderr
/// before the command runs.
fn emit_deprecations(options: &MatchOptions) {
    for warning in &options.deprecations {
        eprintln!("deprecation: {warning}");
    }
}

/// Runs the selected algorithm over prepared schemas and returns the
/// selector, the outcome, and the effective acceptance threshold (the
/// shared [`quality::default_threshold`] unless `--threshold` overrode
/// it).
fn execute(
    session: &MatchSession,
    source: &PreparedSchema,
    target: &PreparedSchema,
    options: &MatchOptions,
) -> (Algorithm, MatchOutcome, f64) {
    let algorithm = core_algorithm(options.algorithm);
    let default_threshold = quality::default_threshold(&algorithm, &options.config);
    let outcome = session
        .run(&algorithm, source, target)
        .expect("built-in algorithms are infallible");
    (
        algorithm,
        outcome,
        options.threshold.unwrap_or(default_threshold),
    )
}

fn inspect(path: &str, root: Option<&str>) -> Result<(), CommandError> {
    let tree = load_tree(path, root)?;
    println!("{}: {}\n", tree.name(), qmatch_xsd::TreeProfile::of(&tree));
    for (id, node) in tree.iter() {
        let indent = "  ".repeat(node.level as usize);
        let marker = match node.kind {
            NodeKind::Element => "",
            NodeKind::Attribute => "@",
        };
        let occurs = format!(
            "[{}..{}]",
            node.properties.min_occurs, node.properties.max_occurs
        );
        println!(
            "{indent}{marker}{}  : {}  {}  (order {}, level {}{})",
            node.label,
            node.properties.data_type,
            occurs,
            node.properties.order,
            node.level,
            if node.is_leaf() { ", leaf" } else { "" }
        );
        let _ = id;
    }
    Ok(())
}

/// `qmatch diff`: the typed edit script between two revisions of a schema,
/// plus the dirty-node summary the incremental re-match planner consumes.
fn diff_command(old: &str, new: &str, root: Option<&str>) -> Result<(), CommandError> {
    let old_tree = load_tree(old, root)?;
    let new_tree = load_tree(new, root)?;
    let diff = qmatch_core::diff::TreeDiff::compute(&old_tree, &new_tree);
    println!(
        "{} ({} nodes) -> {} ({} nodes)",
        old_tree.name(),
        old_tree.len(),
        new_tree.name(),
        new_tree.len()
    );
    if diff.is_identity() {
        println!("revisions are identical: no edits");
        return Ok(());
    }
    println!("\nedit script ({} op(s)):", diff.ops().len());
    for op in diff.ops() {
        println!("  {op}");
    }
    let counts = diff.op_counts();
    let mut table = Table::new(["measure", "value"]);
    table.row(["renames".to_owned(), counts.renames.to_string()]);
    table.row(["moves".to_owned(), counts.moves.to_string()]);
    table.row([
        "inserts".to_owned(),
        format!("{} ({} node(s))", counts.inserts, counts.inserted_nodes),
    ]);
    table.row([
        "deletes".to_owned(),
        format!("{} ({} node(s))", counts.deletes, counts.deleted_nodes),
    ]);
    table.row(["prop changes".to_owned(), counts.prop_changes.to_string()]);
    table.row([
        "dirty nodes".to_owned(),
        format!(
            "{} / {} ({})",
            diff.dirty_count(),
            new_tree.len(),
            f3(diff.dirty_fraction())
        ),
    ]);
    table.row([
        "recompute rows".to_owned(),
        format!(
            "{} / {} ({})",
            diff.recompute_count(),
            new_tree.len(),
            f3(diff.recompute_fraction())
        ),
    ]);
    table.row(["shape changed".to_owned(), diff.shape_changed().to_string()]);
    // The same plan the serve hot-update path would pick for a re-match
    // against an unchanged target.
    let incremental = !diff.shape_changed()
        && diff.recompute_fraction() <= qmatch_core::EVOLVE_FALLBACK_THRESHOLD;
    table.row([
        "re-match plan".to_owned(),
        if incremental {
            "incremental (dirty rows + ancestors)".to_owned()
        } else {
            format!(
                "full recompute (shape changed or recompute fraction > {})",
                qmatch_core::EVOLVE_FALLBACK_THRESHOLD
            )
        },
    ]);
    println!();
    print!("{}", table.render());
    Ok(())
}
