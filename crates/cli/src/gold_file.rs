//! Gold-standard file parsing: one real match per line as
//! `source/path<TAB>target/path`, with `#` comments and blank lines.

use qmatch_core::eval::GoldStandard;
use std::fmt;

/// A gold-file parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for GoldParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gold file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for GoldParseError {}

/// Parses gold-standard text.
pub fn parse_gold(text: &str) -> Result<GoldStandard, GoldParseError> {
    let mut gold = GoldStandard::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if content.trim().is_empty() {
            continue;
        }
        // Split before trimming so that an empty field ("path<TAB>") is
        // reported as such rather than silently merged into its neighbour.
        let Some((source, target)) = content.split_once('\t') else {
            return Err(GoldParseError {
                line,
                message: format!("expected 'source<TAB>target', got {:?}", content.trim()),
            });
        };
        let (source, target) = (source.trim(), target.trim());
        if source.is_empty() || target.is_empty() {
            return Err(GoldParseError {
                line,
                message: "empty path".to_owned(),
            });
        }
        gold.add(source, target);
    }
    Ok(gold)
}

/// Serializes a gold standard back to the file format (sorted for
/// determinism).
pub fn render_gold(gold: &GoldStandard) -> String {
    let mut pairs: Vec<&(String, String)> = gold.iter().collect();
    pairs.sort();
    let mut out = String::new();
    for (source, target) in pairs {
        out.push_str(source);
        out.push('\t');
        out.push_str(target);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tab_separated_pairs() {
        let gold = parse_gold("PO/OrderNo\tOrder/OrderNo\nPO/Qty\tOrder/Quantity\n").unwrap();
        assert_eq!(gold.len(), 2);
        assert!(gold.contains("PO/OrderNo", "Order/OrderNo"));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let text = "# header\n\nA/x\tB/y  # trailing comment\n   \n# done\n";
        let gold = parse_gold(text).unwrap();
        assert_eq!(gold.len(), 1);
        assert!(gold.contains("A/x", "B/y"));
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let err = parse_gold("A/x\tB/y\nbroken line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let err2 = parse_gold("A/x\t  \n").unwrap_err();
        assert_eq!(err2.line, 1);
        assert!(err2.message.contains("empty path"), "{}", err2.message);
        // A line of pure whitespace (even with a tab) is blank, not an error.
        assert!(parse_gold("\t\n").unwrap().is_empty());
    }

    #[test]
    fn round_trips_through_render() {
        let gold = parse_gold("B/b\tY/y\nA/a\tX/x\n").unwrap();
        let rendered = render_gold(&gold);
        assert_eq!(rendered, "A/a\tX/x\nB/b\tY/y\n");
        let reparsed = parse_gold(&rendered).unwrap();
        assert_eq!(reparsed.len(), gold.len());
    }

    #[test]
    fn whitespace_around_paths_is_trimmed() {
        let gold = parse_gold("  A/x  \t  B/y  \n").unwrap();
        assert!(gold.contains("A/x", "B/y"));
    }
}
