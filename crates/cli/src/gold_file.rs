//! Gold-standard file rendering, plus a re-export of the typed parser.
//!
//! Parsing lives in [`qmatch_core::quality`] so every surface (this CLI,
//! `evaluate --all`, `bench_quality`) rejects malformed and duplicate
//! gold pairs identically, with `file:line` diagnostics.

pub use qmatch_core::quality::parse_gold;

use qmatch_core::eval::GoldStandard;

/// Serializes a gold standard back to the file format (sorted for
/// determinism).
pub fn render_gold(gold: &GoldStandard) -> String {
    let mut pairs: Vec<&(String, String)> = gold.iter().collect();
    pairs.sort();
    let mut out = String::new();
    for (source, target) in pairs {
        out.push_str(source);
        out.push('\t');
        out.push_str(target);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_render() {
        let gold = parse_gold("g.tsv", "B/b\tY/y\nA/a\tX/x\n").unwrap();
        let rendered = render_gold(&gold);
        assert_eq!(rendered, "A/a\tX/x\nB/b\tY/y\n");
        let reparsed = parse_gold("g.tsv", &rendered).unwrap();
        assert_eq!(reparsed.len(), gold.len());
    }

    #[test]
    fn parser_reports_file_and_line() {
        // The re-exported core parser carries file:line context — including
        // for duplicate pairs, which the old CLI parser silently collapsed.
        let err = parse_gold("mine.tsv", "A/x\tB/y\nbroken line\n").unwrap_err();
        assert_eq!((err.file.as_str(), err.line), ("mine.tsv", 2));
        assert!(err.to_string().starts_with("mine.tsv:2:"));
        let err = parse_gold("mine.tsv", "A/x\tB/y\nA/x\tB/y\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("duplicate"), "{}", err.message);
    }
}
