//! `qmatch` — match, inspect, and evaluate XML Schemas from the command line.
//!
//! ```text
//! qmatch match  source.xsd target.xsd [options]   run a match algorithm
//! qmatch inspect schema.xsd [--root NAME]         print the schema tree
//! qmatch evaluate source.xsd target.xsd --gold g  score against real matches
//! ```
//!
//! Run `qmatch help` for the full option reference.

mod args;
mod commands;
mod gold_file;

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match args::parse(argv.iter().map(String::as_str)) {
        Ok(command) => match commands::run(command) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
