//! Hand-rolled argument parsing (no external dependencies): subcommands,
//! `--flag value` and `--flag=value` options, and typed validation.

use qmatch_core::index::IndexPolicy;
use qmatch_core::model::{LexiconMode, MatchConfig};
use std::fmt;

/// The usage text shown on parse errors and by `qmatch help`.
pub const USAGE: &str = "\
qmatch — hybrid XML schema matching (QMatch, ICDE 2005)

USAGE:
    qmatch match <SOURCE.xsd> <TARGET.xsd> [options]
    qmatch match-many <PAIRS.tsv> [options]
    qmatch inspect <SCHEMA.xsd> [--root NAME]
    qmatch diff <OLD.xsd> <NEW.xsd> [--root NAME]
    qmatch evaluate <SOURCE.xsd> <TARGET.xsd> --gold <GOLD.tsv> [options]
    qmatch evaluate --all [options]
    qmatch validate <SCHEMA.xsd> <INSTANCE.xml>
    qmatch generate <SCHEMA.xsd> [--seed N] [--root NAME]
    qmatch fuzz [--seed N] [--cases N] [--budget-ms N] [--repro-dir PATH]
    qmatch serve [--addr HOST:PORT] [--threads N] [--max-schemas N]
    qmatch help

MATCH / EVALUATE OPTIONS:
    --algorithm <hybrid|linguistic|structural|cupid|tree-edit>
                                 (default: hybrid)
    --weights <WL,WP,WH,WC>      axis weights, must sum to 1
                                 (default: 0.3,0.2,0.1,0.4 — the paper's Table 2)
    --child-threshold <0..1>     Figure 3's child-match threshold (default: 0.5)
    --threshold <0..1>           mapping acceptance threshold
                                 (default: adapted to the weights)
    --lexicon <full|fuzzy|exact> linguistic resources (default: full)
    --precision <f64|f32>        similarity-matrix storage (default: f64;
                                 f32 halves matrix memory, scores within 1e-6)
    --thesaurus <FILE>           extend the built-in thesaurus from a file
                                 (directives: syn/hyp/acr/abbr — see README)
    --source-root <NAME>         global element to compile in SOURCE
    --target-root <NAME>         global element to compile in TARGET
    --total-only                 print only the total QoM
    --emit-gold                  print the mapping in gold-file format
                                 (bootstrap a gold standard by correcting it)
    --explain <SOURCE/PATH>      explain the QoM of this source node's best
                                 candidates (hybrid only)
    --matrix-csv <FILE>          also write the full similarity matrix as CSV
    --trace                      print a per-phase pipeline timing report
                                 (prepare, labels, waves) to stderr
    --index <off|auto|force>     candidate prefilter for match-many/evaluate
                                 (default: off; auto engages only above the
                                 candidate floor, force always prefilters)

INSPECT / DIFF / GENERATE OPTIONS:
    --root <NAME>                global element to compile (diff applies it
                                 to both revisions)
    --seed <N>                   generation seed (generate only; default 7)

DIFF:
    diff treats OLD and NEW as two revisions of one schema and prints the
    typed edit script (rename/move/insert/delete/prop-change) plus the
    dirty-node summary the incremental re-match planner would see.

FUZZ OPTIONS:
    --seed <N>                   master fuzzing seed (default 0)
    --cases <N>                  number of cases (default 1000)
    --budget-ms <N>              wall-clock budget; stops early when exceeded
    --repro-dir <PATH>           where minimized repros go (default fuzz-repro)

SERVE OPTIONS:
    --addr <HOST:PORT>           listen address (default: 127.0.0.1:8080)
    --shards <N>                 registry shards = worker threads (default:
                                 0 = all cores; --threads is an alias)
    --max-schemas <N>            LRU cap on resident prepared schemas, per
                                 shard (default: 64)
    --queue-depth <N>            max queued-or-executing match jobs before
                                 requests answer 429 (default: 512)
    --deadline-ms <N>            per-request budget; jobs that outlive it in
                                 the queue answer 503 (default: 30000)
    --data-dir <PATH>            durable registry directory (WAL + snapshots,
                                 replayed on boot; default: in-memory only)
    --fsync-batch-ms <N>         WAL group-commit window: 0 fsyncs every
                                 accepted write before its response; N > 0
                                 fsyncs at most once per window, trading a
                                 bounded crash-loss window for PUT/DELETE
                                 throughput (default: 0)
    --precision <f32|f64>        default similarity-matrix precision; the
                                 precision= query parameter still wins
    also accepts --weights/--child-threshold/--lexicon/--thesaurus for the
    shard sessions; per-request knobs (algorithm, threshold, explain) travel
    as query parameters instead.

EVALUATE --all:
    runs QMatch (hybrid), full CUPID, and the tree-edit baseline across
    every built-in corpus pair with a gold standard (PO, BOOK, DCMD,
    Protein)
    and prints one deterministic report with the unified column schema
    (pair, algorithm, |R|, |P|, |I|, precision, recall, f1, overall).
    Takes the session options (--weights/--lexicon/--precision/...), but
    no schema files, --gold, or per-pair flags.

GOLD FILE FORMAT (evaluate):
    one real match per line:  <source/label/path> TAB <target/label/path>
    '#' starts a comment; blank lines are ignored; duplicate pairs are
    rejected with their file:line.

PAIRS FILE FORMAT (match-many):
    one schema pair per line:  <SOURCE.xsd> TAB <TARGET.xsd>
    '#' starts a comment; blank lines are ignored. The whole corpus is
    matched with the hybrid algorithm in one parallel batch; accepts the
    weight/threshold/lexicon/thesaurus options and --total-only.
";

/// Which match algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgorithmChoice {
    /// QMatch (the default).
    Hybrid,
    /// Label-only matcher.
    Linguistic,
    /// Structure-only matcher.
    Structural,
    /// Full CUPID (similarity propagation + leaf-anchored mapping).
    Cupid,
    /// Tree-edit-distance baseline.
    TreeEdit,
}

impl AlgorithmChoice {
    /// The name as accepted on the command line.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmChoice::Hybrid => "hybrid",
            AlgorithmChoice::Linguistic => "linguistic",
            AlgorithmChoice::Structural => "structural",
            AlgorithmChoice::Cupid => "cupid",
            AlgorithmChoice::TreeEdit => "tree-edit",
        }
    }
}

/// Options shared by `match` and `evaluate`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOptions {
    /// The algorithm to run.
    pub algorithm: AlgorithmChoice,
    /// Algorithm configuration (weights, child threshold, lexicon).
    pub config: MatchConfig,
    /// Mapping acceptance threshold; `None` = adapt to the algorithm.
    pub threshold: Option<f64>,
    /// Root element override for the source schema.
    pub source_root: Option<String>,
    /// Root element override for the target schema.
    pub target_root: Option<String>,
    /// Print only the total QoM (match command).
    pub total_only: bool,
    /// Print the mapping in gold-file format (match command).
    pub emit_gold: bool,
    /// Explain this source node's candidates (match command, hybrid only).
    pub explain: Option<String>,
    /// Path of a thesaurus-extension file.
    pub thesaurus: Option<String>,
    /// Write the similarity matrix as CSV to this path (match command).
    pub matrix_csv: Option<String>,
    /// Print a per-phase pipeline timing report to stderr.
    pub trace: bool,
    /// Candidate-index policy for match-many/evaluate.
    pub index: IndexPolicy,
    /// Deprecation warnings triggered by the parsed flags, printed to
    /// stderr by the command layer before any work runs.
    pub deprecations: Vec<String>,
}

impl Default for MatchOptions {
    fn default() -> Self {
        MatchOptions {
            algorithm: AlgorithmChoice::Hybrid,
            config: MatchConfig::default(),
            threshold: None,
            source_root: None,
            target_root: None,
            total_only: false,
            emit_gold: false,
            explain: None,
            thesaurus: None,
            matrix_csv: None,
            trace: false,
            index: IndexPolicy::Off,
            deprecations: Vec::new(),
        }
    }
}

/// A fully parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `qmatch match`.
    Match {
        /// Source schema path.
        source: String,
        /// Target schema path.
        target: String,
        /// Options.
        options: MatchOptions,
    },
    /// `qmatch match-many`.
    MatchMany {
        /// Path of the pairs file (one `SOURCE TAB TARGET` line per pair).
        pairs: String,
        /// Options (hybrid only).
        options: MatchOptions,
    },
    /// `qmatch inspect`.
    Inspect {
        /// Schema path.
        schema: String,
        /// Root element override.
        root: Option<String>,
    },
    /// `qmatch diff`.
    Diff {
        /// Old schema revision path.
        old: String,
        /// New schema revision path.
        new: String,
        /// Root element override, applied to both revisions.
        root: Option<String>,
    },
    /// `qmatch evaluate`.
    Evaluate {
        /// Source schema path.
        source: String,
        /// Target schema path.
        target: String,
        /// Gold-standard file path.
        gold: String,
        /// Options.
        options: MatchOptions,
    },
    /// `qmatch evaluate --all`: every corpus pair x every evaluated
    /// algorithm, one deterministic report.
    EvaluateAll {
        /// Session options (config knobs only; per-pair flags rejected).
        options: MatchOptions,
    },
    /// `qmatch generate`.
    Generate {
        /// Schema path.
        schema: String,
        /// Root element override.
        root: Option<String>,
        /// RNG seed.
        seed: u64,
    },
    /// `qmatch validate`.
    Validate {
        /// Schema path.
        schema: String,
        /// Instance document path.
        instance: String,
    },
    /// `qmatch fuzz`.
    Fuzz {
        /// Master fuzzing seed.
        seed: u64,
        /// Number of cases to run.
        cases: u64,
        /// Optional wall-clock budget in milliseconds.
        budget_ms: Option<u64>,
        /// Directory for minimized repro files.
        repro_dir: String,
    },
    /// `qmatch serve`.
    Serve {
        /// Listen address (`HOST:PORT`).
        addr: String,
        /// Registry shard / worker thread count (0 = available
        /// parallelism).
        shards: usize,
        /// LRU cap on resident prepared schemas, per shard.
        max_schemas: usize,
        /// Max queued-or-executing match jobs before requests answer 429.
        queue_depth: usize,
        /// Per-request deadline budget in milliseconds.
        deadline_ms: u64,
        /// Durable registry directory (`None` serves in-memory only).
        data_dir: Option<String>,
        /// WAL group-commit window in milliseconds (0 = per-write fsync).
        fsync_batch_ms: u64,
        /// Session options (weights, lexicon, precision, thesaurus).
        options: MatchOptions,
    },
    /// `qmatch help`.
    Help,
}

/// A parse failure with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(message: impl Into<String>) -> ArgError {
    ArgError(message.into())
}

/// Parses a command line (without the program name).
pub fn parse<'a>(argv: impl IntoIterator<Item = &'a str>) -> Result<Command, ArgError> {
    let mut args = argv.into_iter().peekable();
    let sub = args.next().ok_or_else(|| err("missing subcommand"))?;
    match sub {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "match" => {
            let (positional, options) = parse_common(args)?;
            options.reject_all(sub)?;
            let [source, target] = two_positional(positional, "match")?;
            Ok(Command::Match {
                source,
                target,
                options: options.build()?,
            })
        }
        "match-many" => {
            let (positional, options) = parse_common(args)?;
            options.reject_all(sub)?;
            let [pairs] = one_positional(positional, "match-many")?;
            let options = options.build()?;
            if options.algorithm != AlgorithmChoice::Hybrid {
                return Err(err(
                    "match-many always runs the hybrid matcher; --algorithm is not supported",
                ));
            }
            if options.explain.is_some()
                || options.emit_gold
                || options.matrix_csv.is_some()
                || options.source_root.is_some()
                || options.target_root.is_some()
            {
                return Err(err("match-many does not accept per-pair options \
                     (--explain/--emit-gold/--matrix-csv/--source-root/--target-root)"));
            }
            Ok(Command::MatchMany { pairs, options })
        }
        "inspect" => {
            let (positional, options) = parse_common(args)?;
            options.reject_match_options("inspect")?;
            let [schema] = one_positional(positional, "inspect")?;
            Ok(Command::Inspect {
                schema,
                root: options.root,
            })
        }
        "diff" => {
            let (positional, options) = parse_common(args)?;
            options.reject_match_options("diff")?;
            let [old, new] = two_positional(positional, "diff")?;
            Ok(Command::Diff {
                old,
                new,
                root: options.root,
            })
        }
        "generate" => {
            let (positional, options) = parse_common(args)?;
            options.reject_match_options("generate")?;
            let [schema] = one_positional(positional, "generate")?;
            let seed = match &options.seed {
                None => 7,
                Some(s) => s
                    .parse::<u64>()
                    .map_err(|_| err(format!("--seed {s:?} is not an unsigned integer")))?,
            };
            Ok(Command::Generate {
                schema,
                root: options.root,
                seed,
            })
        }
        "validate" => {
            let (positional, options) = parse_common(args)?;
            options.reject_match_options("validate")?;
            let [schema, instance] = two_positional(positional, "validate")?;
            Ok(Command::Validate { schema, instance })
        }
        "fuzz" => {
            let (positional, options) = parse_common(args)?;
            options.reject_match_options("fuzz")?;
            if !positional.is_empty() {
                return Err(err("fuzz takes no positional arguments"));
            }
            if options.root.is_some() {
                return Err(err("fuzz does not accept --root"));
            }
            let parse_u64 = |value: &Option<String>, flag: &str| -> Result<Option<u64>, ArgError> {
                value
                    .as_deref()
                    .map(|v| {
                        v.parse::<u64>()
                            .map_err(|_| err(format!("{flag} {v:?} is not an unsigned integer")))
                    })
                    .transpose()
            };
            Ok(Command::Fuzz {
                seed: parse_u64(&options.seed, "--seed")?.unwrap_or(0),
                cases: parse_u64(&options.cases, "--cases")?.unwrap_or(1000),
                budget_ms: parse_u64(&options.budget_ms, "--budget-ms")?,
                repro_dir: options
                    .repro_dir
                    .clone()
                    .unwrap_or_else(|| "fuzz-repro".to_owned()),
            })
        }
        "serve" => {
            let (positional, options) = parse_common(args)?;
            options.reject_all(sub)?;
            if !positional.is_empty() {
                return Err(err("serve takes no positional arguments"));
            }
            let parse_count = |value: &Option<String>,
                               flag: &str|
             -> Result<Option<usize>, ArgError> {
                value
                    .as_deref()
                    .map(|v| {
                        v.parse::<usize>()
                            .map_err(|_| err(format!("{flag} {v:?} is not an unsigned integer")))
                    })
                    .transpose()
            };
            if options.threads.is_some() && options.shards.is_some() {
                return Err(err("--threads is an alias for --shards; give only one"));
            }
            let shards = match parse_count(&options.shards, "--shards")? {
                Some(n) => n,
                None => parse_count(&options.threads, "--threads")?.unwrap_or(0),
            };
            let max_schemas = parse_count(&options.max_schemas, "--max-schemas")?.unwrap_or(64);
            if max_schemas == 0 {
                return Err(err("--max-schemas must be at least 1"));
            }
            let queue_depth = parse_count(&options.queue_depth, "--queue-depth")?.unwrap_or(512);
            if queue_depth == 0 {
                return Err(err("--queue-depth must be at least 1"));
            }
            let deadline_ms = match options.deadline_ms.as_deref() {
                Some(v) => v
                    .parse::<u64>()
                    .map_err(|_| err(format!("--deadline-ms {v:?} is not an unsigned integer")))?,
                None => 30_000,
            };
            if deadline_ms == 0 {
                return Err(err("--deadline-ms must be at least 1"));
            }
            let fsync_batch_ms = match options.fsync_batch_ms.as_deref() {
                Some(v) => v.parse::<u64>().map_err(|_| {
                    err(format!("--fsync-batch-ms {v:?} is not an unsigned integer"))
                })?,
                None => 0,
            };
            if fsync_batch_ms > 0 && options.data_dir.is_none() {
                return Err(err(
                    "--fsync-batch-ms only applies to a durable registry; give --data-dir too",
                ));
            }
            let data_dir = options.data_dir.clone();
            let addr = options
                .addr
                .clone()
                .unwrap_or_else(|| "127.0.0.1:8080".to_owned());
            let built = options.build()?;
            if built.algorithm != AlgorithmChoice::Hybrid
                || built.threshold.is_some()
                || built.explain.is_some()
                || built.total_only
                || built.emit_gold
                || built.matrix_csv.is_some()
                || built.source_root.is_some()
                || built.target_root.is_some()
                || built.trace
                || built.index != IndexPolicy::Off
            {
                return Err(err(
                    "serve configures per-request knobs over HTTP; only \
                     --weights/--child-threshold/--lexicon/--precision/--thesaurus apply",
                ));
            }
            Ok(Command::Serve {
                addr,
                shards,
                max_schemas,
                queue_depth,
                deadline_ms,
                data_dir,
                fsync_batch_ms,
                options: built,
            })
        }
        "evaluate" => {
            let (positional, options) = parse_common(args)?;
            if options.all {
                if !positional.is_empty() {
                    return Err(err(
                        "evaluate --all runs the built-in corpus; it takes no schema files",
                    ));
                }
                if options.gold.is_some() {
                    return Err(err(
                        "evaluate --all scores against the built-in gold standards; \
                         --gold does not apply",
                    ));
                }
                let built = options.build()?;
                if built.algorithm != AlgorithmChoice::Hybrid
                    || built.threshold.is_some()
                    || built.explain.is_some()
                    || built.total_only
                    || built.emit_gold
                    || built.matrix_csv.is_some()
                    || built.source_root.is_some()
                    || built.target_root.is_some()
                {
                    return Err(err(
                        "evaluate --all always runs hybrid vs cupid vs tree-edit at their \
                         own thresholds; only session options \
                         (--weights/--child-threshold/--lexicon/--precision/--thesaurus/--trace) \
                         apply",
                    ));
                }
                return Ok(Command::EvaluateAll { options: built });
            }
            let [source, target] = two_positional(positional, "evaluate")?;
            let gold = options
                .gold
                .clone()
                .ok_or_else(|| err("evaluate requires --gold <FILE> (or --all)"))?;
            Ok(Command::Evaluate {
                source,
                target,
                gold,
                options: options.build()?,
            })
        }
        other => Err(err(format!("unknown subcommand {other:?}"))),
    }
}

/// Raw option values before validation.
#[derive(Debug, Default, Clone)]
struct RawOptions {
    algorithm: Option<String>,
    weights: Option<String>,
    child_threshold: Option<String>,
    threshold: Option<String>,
    lexicon: Option<String>,
    precision: Option<String>,
    source_root: Option<String>,
    target_root: Option<String>,
    root: Option<String>,
    seed: Option<String>,
    gold: Option<String>,
    cases: Option<String>,
    budget_ms: Option<String>,
    repro_dir: Option<String>,
    addr: Option<String>,
    threads: Option<String>,
    shards: Option<String>,
    max_schemas: Option<String>,
    queue_depth: Option<String>,
    deadline_ms: Option<String>,
    data_dir: Option<String>,
    fsync_batch_ms: Option<String>,
    all: bool,
    total_only: bool,
    emit_gold: bool,
    explain: Option<String>,
    thesaurus: Option<String>,
    matrix_csv: Option<String>,
    trace: bool,
    index: Option<String>,
}

impl RawOptions {
    fn build(&self) -> Result<MatchOptions, ArgError> {
        let mut options = MatchOptions::default();
        if let Some(a) = &self.algorithm {
            options.algorithm = match a.as_str() {
                "hybrid" => AlgorithmChoice::Hybrid,
                "linguistic" => AlgorithmChoice::Linguistic,
                "structural" => AlgorithmChoice::Structural,
                "cupid" => AlgorithmChoice::Cupid,
                "tree-edit" => AlgorithmChoice::TreeEdit,
                "treeedit" => {
                    options.deprecations.push(
                        "--algorithm treeedit is a deprecated alias; use tree-edit".to_owned(),
                    );
                    AlgorithmChoice::TreeEdit
                }
                other => return Err(err(format!("unknown algorithm {other:?}"))),
            };
        }
        // The config options funnel through MatchConfig::builder, which
        // owns the validation (unit-sum weights, threshold range).
        let mut builder = MatchConfig::builder();
        if let Some(w) = &self.weights {
            let parts: Vec<f64> = w
                .split(',')
                .map(|p| p.trim().parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|_| err(format!("--weights {w:?} is not four numbers")))?;
            let [l, p, h, c]: [f64; 4] = parts
                .try_into()
                .map_err(|_| err("--weights needs exactly four comma-separated numbers"))?;
            builder = builder.weights(l, p, h, c);
        }
        if let Some(t) = &self.child_threshold {
            let parsed: f64 = t
                .parse()
                .map_err(|_| err(format!("--child-threshold {t:?} is not a number")))?;
            builder = builder.threshold(parsed);
        }
        if let Some(mode) = &self.lexicon {
            builder = builder.lexicon(match mode.as_str() {
                "full" => LexiconMode::Full,
                "fuzzy" => LexiconMode::FuzzyOnly,
                "exact" => LexiconMode::ExactOnly,
                other => return Err(err(format!("unknown lexicon mode {other:?}"))),
            });
        }
        if let Some(p) = &self.precision {
            builder = builder.precision_name(p);
        }
        options.config = builder.build().map_err(|e| err(e.to_string()))?;
        if let Some(t) = &self.threshold {
            options.threshold = Some(parse_unit(t, "--threshold")?);
        }
        options.source_root = self.source_root.clone();
        options.target_root = self.target_root.clone();
        options.total_only = self.total_only;
        options.emit_gold = self.emit_gold;
        options.explain = self.explain.clone();
        options.thesaurus = self.thesaurus.clone();
        options.matrix_csv = self.matrix_csv.clone();
        options.trace = self.trace;
        if let Some(policy) = &self.index {
            options.index = policy.parse::<IndexPolicy>().map_err(err)?;
        }
        Ok(options)
    }

    fn reject_all(&self, sub: &str) -> Result<(), ArgError> {
        if self.all {
            return Err(err(format!("--all only applies to evaluate, not {sub}")));
        }
        Ok(())
    }

    fn reject_match_options(&self, sub: &str) -> Result<(), ArgError> {
        self.reject_all(sub)?;
        if self.algorithm.is_some()
            || self.weights.is_some()
            || self.threshold.is_some()
            || self.child_threshold.is_some()
            || self.lexicon.is_some()
            || self.precision.is_some()
            || self.total_only
            || self.emit_gold
            || self.explain.is_some()
            || self.thesaurus.is_some()
            || self.matrix_csv.is_some()
            || self.trace
            || self.index.is_some()
        {
            return Err(err(format!("{sub} does not accept match options")));
        }
        Ok(())
    }
}

fn parse_unit(value: &str, flag: &str) -> Result<f64, ArgError> {
    let parsed: f64 = value
        .parse()
        .map_err(|_| err(format!("{flag} {value:?} is not a number")))?;
    if !(0.0..=1.0).contains(&parsed) {
        return Err(err(format!("{flag} must lie in [0, 1], got {parsed}")));
    }
    Ok(parsed)
}

fn parse_common<'a>(
    args: impl Iterator<Item = &'a str>,
) -> Result<(Vec<String>, RawOptions), ArgError> {
    let mut positional = Vec::new();
    let mut options = RawOptions::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if let Some(flag) = arg.strip_prefix("--") {
            // Support both `--flag value` and `--flag=value`.
            let (name, inline_value) = match flag.split_once('=') {
                Some((n, v)) => (n, Some(v.to_owned())),
                None => (flag, None),
            };
            let take = |args: &mut dyn Iterator<Item = &'a str>| -> Result<String, ArgError> {
                if let Some(v) = &inline_value {
                    Ok(v.clone())
                } else {
                    args.next()
                        .map(str::to_owned)
                        .ok_or_else(|| err(format!("--{name} needs a value")))
                }
            };
            match name {
                "algorithm" => options.algorithm = Some(take(&mut args)?),
                "weights" => options.weights = Some(take(&mut args)?),
                "child-threshold" => options.child_threshold = Some(take(&mut args)?),
                "threshold" => options.threshold = Some(take(&mut args)?),
                "lexicon" => options.lexicon = Some(take(&mut args)?),
                "precision" => options.precision = Some(take(&mut args)?),
                "source-root" => options.source_root = Some(take(&mut args)?),
                "target-root" => options.target_root = Some(take(&mut args)?),
                "root" => options.root = Some(take(&mut args)?),
                "seed" => options.seed = Some(take(&mut args)?),
                "gold" => options.gold = Some(take(&mut args)?),
                "cases" => options.cases = Some(take(&mut args)?),
                "budget-ms" => options.budget_ms = Some(take(&mut args)?),
                "repro-dir" => options.repro_dir = Some(take(&mut args)?),
                "addr" => options.addr = Some(take(&mut args)?),
                "threads" => options.threads = Some(take(&mut args)?),
                "shards" => options.shards = Some(take(&mut args)?),
                "max-schemas" => options.max_schemas = Some(take(&mut args)?),
                "queue-depth" => options.queue_depth = Some(take(&mut args)?),
                "deadline-ms" => options.deadline_ms = Some(take(&mut args)?),
                "data-dir" => options.data_dir = Some(take(&mut args)?),
                "fsync-batch-ms" => options.fsync_batch_ms = Some(take(&mut args)?),
                "all" => options.all = true,
                "total-only" => options.total_only = true,
                "emit-gold" => options.emit_gold = true,
                "trace" => options.trace = true,
                "explain" => options.explain = Some(take(&mut args)?),
                "index" => options.index = Some(take(&mut args)?),
                "thesaurus" => options.thesaurus = Some(take(&mut args)?),
                "matrix-csv" => options.matrix_csv = Some(take(&mut args)?),
                other => return Err(err(format!("unknown option --{other}"))),
            }
        } else {
            positional.push(arg.to_owned());
        }
    }
    Ok((positional, options))
}

fn one_positional(mut positional: Vec<String>, sub: &str) -> Result<[String; 1], ArgError> {
    if positional.len() != 1 {
        return Err(err(format!(
            "{sub} needs exactly one schema file, got {}",
            positional.len()
        )));
    }
    Ok([positional.remove(0)])
}

fn two_positional(positional: Vec<String>, sub: &str) -> Result<[String; 2], ArgError> {
    let [a, b]: [String; 2] = positional
        .try_into()
        .map_err(|v: Vec<String>| err(format!("{sub} needs SOURCE and TARGET, got {}", v.len())))?;
    Ok([a, b])
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_core::model::Weights;

    #[test]
    fn parses_match_with_defaults() {
        let cmd = parse(["match", "a.xsd", "b.xsd"]).unwrap();
        let Command::Match {
            source,
            target,
            options,
        } = cmd
        else {
            panic!()
        };
        assert_eq!(source, "a.xsd");
        assert_eq!(target, "b.xsd");
        assert_eq!(options.algorithm, AlgorithmChoice::Hybrid);
        assert_eq!(options.config, MatchConfig::default());
        assert_eq!(options.threshold, None);
    }

    #[test]
    fn parses_all_match_options() {
        let cmd = parse([
            "match",
            "a.xsd",
            "b.xsd",
            "--algorithm",
            "linguistic",
            "--weights",
            "0.25,0.25,0.25,0.25",
            "--child-threshold",
            "0.6",
            "--threshold=0.7",
            "--lexicon",
            "fuzzy",
            "--source-root",
            "PO",
            "--target-root=Order",
            "--total-only",
        ])
        .unwrap();
        let Command::Match { options, .. } = cmd else {
            panic!()
        };
        assert_eq!(options.algorithm, AlgorithmChoice::Linguistic);
        assert_eq!(
            options.config.weights,
            Weights::new(0.25, 0.25, 0.25, 0.25).unwrap()
        );
        assert_eq!(options.config.threshold, 0.6);
        assert_eq!(options.threshold, Some(0.7));
        assert_eq!(options.config.lexicon, LexiconMode::FuzzyOnly);
        assert_eq!(options.source_root.as_deref(), Some("PO"));
        assert_eq!(options.target_root.as_deref(), Some("Order"));
        assert!(options.total_only);
        assert!(!options.trace);
    }

    #[test]
    fn parses_precision_flag() {
        use qmatch_core::matrix::Precision;
        let cmd = parse(["match", "a.xsd", "b.xsd", "--precision", "f32"]).unwrap();
        let Command::Match { options, .. } = cmd else {
            panic!()
        };
        assert_eq!(options.config.precision, Precision::F32);
        // Default stays f64; match-many takes it as a session-wide knob.
        let cmd = parse(["match-many", "p.tsv", "--precision=f64"]).unwrap();
        let Command::MatchMany { options, .. } = cmd else {
            panic!()
        };
        assert_eq!(options.config.precision, Precision::F64);
        // Unknown names fail through the typed ConfigError path.
        assert!(parse(["match", "a", "b", "--precision", "f16"]).is_err());
        // serve takes it as the session-wide default (the precision= query
        // parameter still wins per request); inspect has none.
        let cmd = parse(["serve", "--precision", "f32"]).unwrap();
        let Command::Serve { options, .. } = cmd else {
            panic!()
        };
        assert_eq!(options.config.precision, Precision::F32);
        assert!(parse(["inspect", "a.xsd", "--precision", "f32"]).is_err());
    }

    #[test]
    fn parses_index_flag() {
        let cmd = parse(["match-many", "p.tsv", "--index", "force"]).unwrap();
        let Command::MatchMany { options, .. } = cmd else {
            panic!()
        };
        assert_eq!(options.index, IndexPolicy::Force);
        let cmd = parse(["evaluate", "a", "b", "--gold", "g.tsv", "--index=auto"]).unwrap();
        let Command::Evaluate { options, .. } = cmd else {
            panic!()
        };
        assert_eq!(options.index, IndexPolicy::Auto);
        // Off by default, so plain runs stay exhaustive.
        let cmd = parse(["match", "a.xsd", "b.xsd"]).unwrap();
        let Command::Match { options, .. } = cmd else {
            panic!()
        };
        assert_eq!(options.index, IndexPolicy::Off);
        // Junk values and non-session subcommands are rejected.
        assert!(parse(["match-many", "p.tsv", "--index", "banana"]).is_err());
        assert!(parse(["inspect", "a.xsd", "--index", "auto"]).is_err());
        assert!(parse(["serve", "--index", "force"]).is_err());
    }

    #[test]
    fn parses_trace_flag() {
        let cmd = parse(["match", "a.xsd", "b.xsd", "--trace"]).unwrap();
        let Command::Match { options, .. } = cmd else {
            panic!()
        };
        assert!(options.trace);
        // Session-running subcommands accept it; the others reject it.
        assert!(parse(["match-many", "p.tsv", "--trace"]).is_ok());
        assert!(parse(["evaluate", "a", "b", "--gold", "g.tsv", "--trace"]).is_ok());
        assert!(parse(["inspect", "a.xsd", "--trace"]).is_err());
        assert!(parse(["serve", "--trace"]).is_err());
    }

    #[test]
    fn parses_match_many() {
        let cmd = parse([
            "match-many",
            "pairs.tsv",
            "--lexicon",
            "exact",
            "--total-only",
        ])
        .unwrap();
        let Command::MatchMany { pairs, options } = cmd else {
            panic!()
        };
        assert_eq!(pairs, "pairs.tsv");
        assert_eq!(options.config.lexicon, LexiconMode::ExactOnly);
        assert!(options.total_only);
    }

    #[test]
    fn match_many_rejects_per_pair_options() {
        assert!(parse(["match-many"]).is_err());
        assert!(parse(["match-many", "a.tsv", "b.tsv"]).is_err());
        assert!(parse(["match-many", "p.tsv", "--algorithm", "linguistic"]).is_err());
        assert!(parse(["match-many", "p.tsv", "--explain", "PO/Qty"]).is_err());
        assert!(parse(["match-many", "p.tsv", "--emit-gold"]).is_err());
        assert!(parse(["match-many", "p.tsv", "--matrix-csv", "m.csv"]).is_err());
        assert!(parse(["match-many", "p.tsv", "--source-root", "PO"]).is_err());
    }

    #[test]
    fn parses_inspect_and_evaluate() {
        assert_eq!(
            parse(["inspect", "a.xsd", "--root", "PO"]).unwrap(),
            Command::Inspect {
                schema: "a.xsd".into(),
                root: Some("PO".into())
            }
        );
        let cmd = parse(["evaluate", "a.xsd", "b.xsd", "--gold", "g.tsv"]).unwrap();
        let Command::Evaluate { gold, .. } = cmd else {
            panic!()
        };
        assert_eq!(gold, "g.tsv");
    }

    #[test]
    fn parses_generate() {
        assert_eq!(
            parse(["generate", "s.xsd"]).unwrap(),
            Command::Generate {
                schema: "s.xsd".into(),
                root: None,
                seed: 7
            }
        );
        assert_eq!(
            parse(["generate", "s.xsd", "--seed", "42", "--root", "PO"]).unwrap(),
            Command::Generate {
                schema: "s.xsd".into(),
                root: Some("PO".into()),
                seed: 42
            }
        );
        assert!(parse(["generate", "s.xsd", "--seed", "minus-one"]).is_err());
    }

    #[test]
    fn parses_validate() {
        assert_eq!(
            parse(["validate", "s.xsd", "i.xml"]).unwrap(),
            Command::Validate {
                schema: "s.xsd".into(),
                instance: "i.xml".into()
            }
        );
        assert!(parse(["validate", "s.xsd"]).is_err());
        assert!(parse(["validate", "s.xsd", "i.xml", "--algorithm", "hybrid"]).is_err());
    }

    #[test]
    fn parses_fuzz() {
        assert_eq!(
            parse(["fuzz"]).unwrap(),
            Command::Fuzz {
                seed: 0,
                cases: 1000,
                budget_ms: None,
                repro_dir: "fuzz-repro".into(),
            }
        );
        assert_eq!(
            parse([
                "fuzz",
                "--seed",
                "42",
                "--cases=20000",
                "--budget-ms",
                "60000",
                "--repro-dir",
                "out/repro",
            ])
            .unwrap(),
            Command::Fuzz {
                seed: 42,
                cases: 20000,
                budget_ms: Some(60000),
                repro_dir: "out/repro".into(),
            }
        );
        assert!(parse(["fuzz", "extra.xsd"]).is_err());
        assert!(parse(["fuzz", "--seed", "minus-one"]).is_err());
        assert!(parse(["fuzz", "--cases", "many"]).is_err());
        assert!(parse(["fuzz", "--root", "PO"]).is_err());
        assert!(parse(["fuzz", "--algorithm", "hybrid"]).is_err());
    }

    #[test]
    fn parses_serve() {
        let cmd = parse(["serve"]).unwrap();
        let Command::Serve {
            addr,
            shards,
            max_schemas,
            queue_depth,
            deadline_ms,
            data_dir,
            fsync_batch_ms,
            options,
        } = cmd
        else {
            panic!()
        };
        assert_eq!(addr, "127.0.0.1:8080");
        assert_eq!(shards, 0);
        assert_eq!(max_schemas, 64);
        assert_eq!(queue_depth, 512);
        assert_eq!(deadline_ms, 30_000);
        assert_eq!(data_dir, None);
        assert_eq!(fsync_batch_ms, 0, "per-write durability by default");
        assert_eq!(options.config, MatchConfig::default());
        let cmd = parse([
            "serve",
            "--addr",
            "0.0.0.0:9000",
            "--shards=4",
            "--max-schemas",
            "8",
            "--queue-depth",
            "16",
            "--deadline-ms=2500",
            "--data-dir",
            "/var/lib/qmatch",
            "--fsync-batch-ms=25",
            "--lexicon",
            "exact",
        ])
        .unwrap();
        let Command::Serve {
            addr,
            shards,
            max_schemas,
            queue_depth,
            deadline_ms,
            data_dir,
            fsync_batch_ms,
            options,
        } = cmd
        else {
            panic!()
        };
        assert_eq!(addr, "0.0.0.0:9000");
        assert_eq!(shards, 4);
        assert_eq!(max_schemas, 8);
        assert_eq!(queue_depth, 16);
        assert_eq!(deadline_ms, 2500);
        assert_eq!(data_dir.as_deref(), Some("/var/lib/qmatch"));
        assert_eq!(fsync_batch_ms, 25);
        assert_eq!(options.config.lexicon, LexiconMode::ExactOnly);
        // --threads survives as an alias for --shards.
        let cmd = parse(["serve", "--threads", "2"]).unwrap();
        let Command::Serve { shards, .. } = cmd else {
            panic!()
        };
        assert_eq!(shards, 2);
    }

    #[test]
    fn serve_rejects_per_request_options() {
        assert!(parse(["serve", "extra.xsd"]).is_err());
        assert!(parse(["serve", "--threads", "many"]).is_err());
        assert!(parse(["serve", "--shards", "many"]).is_err());
        assert!(parse(["serve", "--threads", "2", "--shards", "4"]).is_err());
        assert!(parse(["serve", "--max-schemas", "0"]).is_err());
        assert!(parse(["serve", "--queue-depth", "0"]).is_err());
        assert!(parse(["serve", "--deadline-ms", "0"]).is_err());
        assert!(parse(["serve", "--deadline-ms", "soon"]).is_err());
        assert!(parse(["serve", "--algorithm", "linguistic"]).is_err());
        assert!(parse(["serve", "--threshold", "0.5"]).is_err());
        assert!(parse(["serve", "--explain", "PO/Qty"]).is_err());
        assert!(parse(["serve", "--total-only"]).is_err());
        assert!(parse(["serve", "--source-root", "PO"]).is_err());
        assert!(parse(["serve", "--fsync-batch-ms", "soon"]).is_err());
        // Group commit without a durable registry is a configuration
        // mistake, not a silent no-op.
        assert!(parse(["serve", "--fsync-batch-ms", "25"]).is_err());
        assert!(parse(["serve", "--data-dir", "d", "--fsync-batch-ms", "0"]).is_ok());
    }

    #[test]
    fn parses_diff() {
        assert_eq!(
            parse(["diff", "old.xsd", "new.xsd"]).unwrap(),
            Command::Diff {
                old: "old.xsd".into(),
                new: "new.xsd".into(),
                root: None
            }
        );
        assert_eq!(
            parse(["diff", "old.xsd", "new.xsd", "--root", "PO"]).unwrap(),
            Command::Diff {
                old: "old.xsd".into(),
                new: "new.xsd".into(),
                root: Some("PO".into())
            }
        );
        assert!(parse(["diff", "only-one.xsd"]).is_err());
        assert!(parse(["diff", "a.xsd", "b.xsd", "--algorithm", "hybrid"]).is_err());
        assert!(parse(["diff", "a.xsd", "b.xsd", "--trace"]).is_err());
    }

    #[test]
    fn help_variants() {
        for h in ["help", "--help", "-h"] {
            assert_eq!(parse([h]).unwrap(), Command::Help);
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse([] as [&str; 0]).is_err());
        assert!(parse(["frobnicate"]).is_err());
        assert!(parse(["match", "only-one.xsd"]).is_err());
        assert!(parse(["match", "a", "b", "c"]).is_err());
        assert!(parse(["inspect"]).is_err());
        assert!(parse(["evaluate", "a", "b"]).is_err(), "--gold is required");
        assert!(parse(["match", "a", "b", "--algorithm", "quantum"]).is_err());
        assert!(parse(["match", "a", "b", "--weights", "1,2"]).is_err());
        assert!(parse(["match", "a", "b", "--weights", "0.5,0.5,0.5,0.5"]).is_err());
        assert!(parse(["match", "a", "b", "--threshold", "1.5"]).is_err());
        assert!(parse(["match", "a", "b", "--threshold"]).is_err());
        assert!(parse(["match", "a", "b", "--lexicon", "psychic"]).is_err());
        assert!(parse(["match", "a", "b", "--no-such-flag"]).is_err());
        assert!(parse(["inspect", "a", "--algorithm", "hybrid"]).is_err());
    }

    #[test]
    fn weights_accept_unit_sum_variants() {
        let cmd = parse(["match", "a", "b", "--weights", "0.4, 0.1, 0.2, 0.3"]).unwrap();
        let Command::Match { options, .. } = cmd else {
            panic!()
        };
        assert!((options.config.weights.label - 0.4).abs() < 1e-12);
    }

    #[test]
    fn parses_evaluate_all() {
        let cmd = parse(["evaluate", "--all"]).unwrap();
        let Command::EvaluateAll { options } = cmd else {
            panic!()
        };
        assert_eq!(options.config, MatchConfig::default());
        // Session options thread through; --trace is allowed.
        let cmd = parse(["evaluate", "--all", "--lexicon", "exact", "--trace"]).unwrap();
        let Command::EvaluateAll { options } = cmd else {
            panic!()
        };
        assert_eq!(options.config.lexicon, LexiconMode::ExactOnly);
        assert!(options.trace);
        // No schema files, no --gold, no per-pair or algorithm knobs.
        assert!(parse(["evaluate", "--all", "a.xsd", "b.xsd"]).is_err());
        assert!(parse(["evaluate", "--all", "--gold", "g.tsv"]).is_err());
        assert!(parse(["evaluate", "--all", "--algorithm", "cupid"]).is_err());
        assert!(parse(["evaluate", "--all", "--threshold", "0.5"]).is_err());
        assert!(parse(["evaluate", "--all", "--emit-gold"]).is_err());
        // --all stays an evaluate-only flag.
        assert!(parse(["match", "a.xsd", "b.xsd", "--all"]).is_err());
        assert!(parse(["match-many", "p.tsv", "--all"]).is_err());
        assert!(parse(["inspect", "a.xsd", "--all"]).is_err());
        assert!(parse(["serve", "--all"]).is_err());
    }

    #[test]
    fn treeedit_alias_records_a_deprecation_warning() {
        let cmd = parse(["match", "a.xsd", "b.xsd", "--algorithm", "treeedit"]).unwrap();
        let Command::Match { options, .. } = cmd else {
            panic!()
        };
        assert_eq!(options.algorithm, AlgorithmChoice::TreeEdit);
        assert_eq!(options.deprecations.len(), 1);
        assert!(options.deprecations[0].contains("deprecated"));
        // The canonical spelling stays warning-free.
        let cmd = parse(["match", "a.xsd", "b.xsd", "--algorithm", "tree-edit"]).unwrap();
        let Command::Match { options, .. } = cmd else {
            panic!()
        };
        assert!(options.deprecations.is_empty());
    }

    #[test]
    fn algorithm_names_round_trip() {
        for (choice, name) in [
            (AlgorithmChoice::Hybrid, "hybrid"),
            (AlgorithmChoice::Linguistic, "linguistic"),
            (AlgorithmChoice::Structural, "structural"),
            (AlgorithmChoice::Cupid, "cupid"),
            (AlgorithmChoice::TreeEdit, "tree-edit"),
        ] {
            assert_eq!(choice.name(), name);
            let cmd = parse(["match", "a", "b", "--algorithm", name]).unwrap();
            let Command::Match { options, .. } = cmd else {
                panic!()
            };
            assert_eq!(options.algorithm, choice);
        }
    }
}
