//! Integration tests for the `qmatch` binary: real process invocations over
//! corpus schemas written to a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn binary() -> &'static str {
    env!("CARGO_BIN_EXE_qmatch")
}

/// Writes the corpus PO schemas and a gold file to a fresh temp dir.
fn setup() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qmatch-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("po1.xsd"), qmatch_datasets::corpus::po1_xsd()).unwrap();
    std::fs::write(dir.join("po2.xsd"), qmatch_datasets::corpus::po2_xsd()).unwrap();
    let mut gold = String::new();
    gold.push_str("# PO gold standard\n");
    for (s, t) in qmatch_datasets::gold::po_gold().iter() {
        gold.push_str(&format!("{s}\t{t}\n"));
    }
    std::fs::write(dir.join("po.gold.tsv"), gold).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(binary())
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(output: &Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn stderr(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// The cell under `column` in the unified quality report row whose
/// `algorithm` column matches (robust against column-width changes).
fn report_cell(text: &str, algorithm: &str, column: &str) -> String {
    let header = text
        .lines()
        .find(|l| l.starts_with("pair"))
        .unwrap_or_else(|| panic!("no report header in {text}"));
    let index = header
        .split_whitespace()
        .position(|c| c == column)
        .unwrap_or_else(|| panic!("no column {column:?} in {header:?}"));
    let row = text
        .lines()
        .find(|l| l.split_whitespace().nth(1) == Some(algorithm))
        .unwrap_or_else(|| panic!("no row for algorithm {algorithm:?} in {text}"));
    row.split_whitespace()
        .nth(index)
        .unwrap_or_else(|| panic!("row {row:?} has no column {index}"))
        .to_owned()
}

#[test]
fn help_prints_usage_and_succeeds() {
    let out = run(&["help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
    assert!(stdout(&out).contains("--weights"));
}

#[test]
fn match_command_end_to_end() {
    let dir = setup();
    let po1 = dir.join("po1.xsd");
    let po2 = dir.join("po2.xsd");
    let out = run(&["match", po1.to_str().unwrap(), po2.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("total QoM"), "{text}");
    assert!(
        text.contains("PO/OrderNo -> PurchaseOrder/OrderNo"),
        "{text}"
    );
}

#[test]
fn match_total_only_prints_a_single_number() {
    let dir = setup();
    let out = run(&[
        "match",
        dir.join("po1.xsd").to_str().unwrap(),
        dir.join("po2.xsd").to_str().unwrap(),
        "--total-only",
    ]);
    assert!(out.status.success());
    let text = stdout(&out);
    let trimmed = text.trim();
    assert!(
        trimmed.parse::<f64>().is_ok(),
        "expected one number, got {trimmed:?}"
    );
}

#[test]
fn match_with_custom_weights_and_algorithm() {
    let dir = setup();
    let po1 = dir.join("po1.xsd");
    let po2 = dir.join("po2.xsd");
    for algo in ["linguistic", "structural", "tree-edit", "hybrid"] {
        let out = run(&[
            "match",
            po1.to_str().unwrap(),
            po2.to_str().unwrap(),
            "--algorithm",
            algo,
            "--weights",
            "0.4,0.1,0.1,0.4",
            "--total-only",
        ]);
        assert!(out.status.success(), "{algo}: {}", stderr(&out));
    }
}

#[test]
fn emit_gold_round_trips_through_evaluate() {
    let dir = setup();
    let po1 = dir.join("po1.xsd");
    let po2 = dir.join("po2.xsd");
    let out = run(&[
        "match",
        po1.to_str().unwrap(),
        po2.to_str().unwrap(),
        "--emit-gold",
    ]);
    assert!(out.status.success());
    let emitted = stdout(&out);
    assert!(emitted.contains('\t'), "{emitted}");
    let emitted_path = dir.join("emitted.tsv");
    std::fs::write(&emitted_path, &emitted).unwrap();
    // Evaluating against the matcher's own output scores perfectly.
    let out = run(&[
        "evaluate",
        po1.to_str().unwrap(),
        po2.to_str().unwrap(),
        "--gold",
        emitted_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(report_cell(&text, "hybrid", "precision"), "1.000", "{text}");
    assert_eq!(report_cell(&text, "hybrid", "recall"), "1.000", "{text}");
}

#[test]
fn evaluate_against_real_gold() {
    let dir = setup();
    let out = run(&[
        "evaluate",
        dir.join("po1.xsd").to_str().unwrap(),
        dir.join("po2.xsd").to_str().unwrap(),
        "--gold",
        dir.join("po.gold.tsv").to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert_eq!(report_cell(&text, "hybrid", "|R|"), "9", "{text}");
    assert!(text.contains("precision"), "{text}");
    assert!(text.contains("overall"), "{text}");
}

#[test]
fn inspect_prints_the_tree() {
    let dir = setup();
    let out = run(&["inspect", dir.join("po1.xsd").to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("PO: 10 nodes (10 elements, 0 attributes), 7 leaves"),
        "{text}"
    );
    assert!(text.contains("depth 3"), "{text}");
    assert!(text.contains("fan-out"), "{text}");
    assert!(text.contains("UnitOfMeasure"), "{text}");
    assert!(text.contains("positiveInteger"), "{text}");
}

#[test]
fn missing_file_fails_with_message() {
    let out = run(&["inspect", "/no/such/file.xsd"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn bad_arguments_exit_2_with_usage() {
    let out = run(&["match", "only-one.xsd"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("USAGE"));
}

#[test]
fn invalid_schema_fails_cleanly() {
    let dir = setup();
    let bad = dir.join("bad.xsd");
    std::fs::write(&bad, "<not-a-schema/>").unwrap();
    let out = run(&["inspect", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("xs:schema"), "{}", stderr(&out));
}

#[test]
fn validate_command_accepts_and_rejects() {
    let dir = setup();
    let instance_ok = dir.join("ok.xml");
    std::fs::write(
        &instance_ok,
        r#"<PO><OrderNo>7</OrderNo>
            <PurchaseInfo>
              <BillingAddr>1 Main St</BillingAddr>
              <ShippingAddr>2 Side St</ShippingAddr>
              <Lines><Item>bolt</Item><Quantity>3</Quantity><UnitOfMeasure>box</UnitOfMeasure></Lines>
            </PurchaseInfo>
            <PurchaseDate>2005-04-05</PurchaseDate></PO>"#,
    )
    .unwrap();
    let out = run(&[
        "validate",
        dir.join("po1.xsd").to_str().unwrap(),
        instance_ok.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{} {}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("is valid"));

    let instance_bad = dir.join("bad.xml");
    std::fs::write(
        &instance_bad,
        r#"<PO><OrderNo>not-a-number</OrderNo><PurchaseDate>2005-04-05</PurchaseDate></PO>"#,
    )
    .unwrap();
    let out = run(&[
        "validate",
        dir.join("po1.xsd").to_str().unwrap(),
        instance_bad.to_str().unwrap(),
    ]);
    assert!(!out.status.success());
    assert!(stdout(&out).contains("PO/OrderNo"), "{}", stdout(&out));
    assert!(
        stderr(&out).contains("validation error"),
        "{}",
        stderr(&out)
    );
}

#[test]
fn generate_then_validate_round_trips() {
    let dir = setup();
    let po1 = dir.join("po1.xsd");
    let out = run(&["generate", po1.to_str().unwrap(), "--seed", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let instance_path = dir.join("generated.xml");
    std::fs::write(&instance_path, stdout(&out)).unwrap();
    let out = run(&[
        "validate",
        po1.to_str().unwrap(),
        instance_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{} {}", stdout(&out), stderr(&out));
    assert!(stdout(&out).contains("is valid"));
}

#[test]
fn generate_respects_seed_and_root() {
    let dir = setup();
    let po1 = dir.join("po1.xsd");
    let a = run(&["generate", po1.to_str().unwrap(), "--seed", "1"]);
    let b = run(&["generate", po1.to_str().unwrap(), "--seed", "1"]);
    let c = run(&["generate", po1.to_str().unwrap(), "--seed", "2"]);
    assert_eq!(stdout(&a), stdout(&b), "same seed is deterministic");
    assert_ne!(stdout(&a), stdout(&c), "different seed differs");
    let bad = run(&["generate", po1.to_str().unwrap(), "--root", "NoSuchRoot"]);
    assert!(!bad.status.success());
}

#[test]
fn explain_shows_axis_decomposition() {
    let dir = setup();
    let out = run(&[
        "match",
        dir.join("po1.xsd").to_str().unwrap(),
        dir.join("po2.xsd").to_str().unwrap(),
        "--explain",
        "PO/PurchaseInfo/Lines",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("top candidates for PO/PurchaseInfo/Lines"),
        "{text}"
    );
    assert!(text.contains("label"), "{text}");
    assert!(text.contains("children"), "{text}");
    assert!(text.contains("category:"), "{text}");

    let bad = run(&[
        "match",
        dir.join("po1.xsd").to_str().unwrap(),
        dir.join("po2.xsd").to_str().unwrap(),
        "--explain",
        "PO/NoSuchNode",
    ]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("not found"), "{}", stderr(&bad));
}

#[test]
fn match_many_batches_a_corpus() {
    let dir = setup();
    let po1 = dir.join("po1.xsd");
    let po2 = dir.join("po2.xsd");
    let pairs = dir.join("pairs.tsv");
    // Tab-separated, whitespace-separated, comments, and blanks all parse.
    std::fs::write(
        &pairs,
        format!(
            "# corpus\n{}\t{}\n\n{} {}\n",
            po1.display(),
            po2.display(),
            po1.display(),
            po1.display(),
        ),
    )
    .unwrap();
    let out = run(&["match-many", pairs.to_str().unwrap()]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 pair(s)"), "{text}");
    assert!(text.contains("total QoM"), "{text}");
    assert!(text.contains("10x10"), "node counts shown: {text}");

    // --total-only prints one TSV line per pair; the self-match is perfect.
    let out = run(&["match-many", pairs.to_str().unwrap(), "--total-only"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    assert!(lines[1].ends_with("1.000"), "{}", lines[1]);

    // Malformed lines are rejected with their line number.
    let bad = dir.join("bad-pairs.tsv");
    std::fs::write(&bad, "only-one-field\n").unwrap();
    let out = run(&["match-many", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("bad-pairs.tsv:1"), "{}", stderr(&out));
}

#[test]
fn match_many_rejects_wrong_column_count() {
    let dir = setup();
    let po1 = dir.join("po1.xsd");
    let bad = dir.join("three-pairs.tsv");
    // A valid first row must not mask the malformed second row.
    std::fs::write(
        &bad,
        format!(
            "{}\t{}\n{}\t{}\textra-field\n",
            po1.display(),
            po1.display(),
            po1.display(),
            po1.display()
        ),
    )
    .unwrap();
    let out = run(&["match-many", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("three-pairs.tsv:2"), "{err}");
    assert!(err.contains("2 fields"), "{err}");
    assert!(err.contains("got 3"), "{err}");
}

#[test]
fn match_many_rejects_empty_path() {
    let dir = setup();
    let po1 = dir.join("po1.xsd");
    // A trailing tab means the target path is empty.
    let bad = dir.join("empty-pairs.tsv");
    std::fs::write(&bad, format!("{}\t\n", po1.display())).unwrap();
    let out = run(&["match-many", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("empty-pairs.tsv:1"), "{err}");
    assert!(err.contains("empty target schema path"), "{err}");

    // Leading tab: the source path is the empty one.
    let bad2 = dir.join("empty-source-pairs.tsv");
    std::fs::write(&bad2, format!("\t{}\n", po1.display())).unwrap();
    let out = run(&["match-many", bad2.to_str().unwrap()]);
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("empty-source-pairs.tsv:1"), "{err}");
    assert!(err.contains("empty source schema path"), "{err}");
}

#[test]
fn thesaurus_extension_changes_the_match() {
    let dir = setup();
    // Two tiny schemas whose labels only relate through a custom synonym.
    let a = dir.join("a.xsd");
    let b = dir.join("b.xsd");
    std::fs::write(
        &a,
        r#"<xs:schema xmlns:xs="x"><xs:element name="Aerodrome" type="xs:string"/></xs:schema>"#,
    )
    .unwrap();
    std::fs::write(
        &b,
        r#"<xs:schema xmlns:xs="x"><xs:element name="Airport" type="xs:string"/></xs:schema>"#,
    )
    .unwrap();
    let thesaurus = dir.join("aviation.thesaurus");
    std::fs::write(&thesaurus, "syn: aerodrome, airport\n").unwrap();

    let plain = run(&[
        "match",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--algorithm",
        "linguistic",
        "--total-only",
    ]);
    let tuned = run(&[
        "match",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--algorithm",
        "linguistic",
        "--total-only",
        "--thesaurus",
        thesaurus.to_str().unwrap(),
    ]);
    assert!(
        plain.status.success() && tuned.status.success(),
        "{}",
        stderr(&tuned)
    );
    let before: f64 = stdout(&plain).trim().parse().unwrap();
    let after: f64 = stdout(&tuned).trim().parse().unwrap();
    assert!(before < 0.5, "unrelated without the thesaurus: {before}");
    assert!((after - 1.0).abs() < 1e-6, "synonyms are exact: {after}");

    // A malformed thesaurus file is reported with its line number.
    std::fs::write(&thesaurus, "syn: lonely\n").unwrap();
    let bad = run(&[
        "match",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--thesaurus",
        thesaurus.to_str().unwrap(),
    ]);
    assert!(!bad.status.success());
    assert!(stderr(&bad).contains("line 1"), "{}", stderr(&bad));
}

#[test]
fn matrix_csv_is_written() {
    let dir = setup();
    let csv_path = dir.join("matrix.csv");
    let out = run(&[
        "match",
        dir.join("po1.xsd").to_str().unwrap(),
        dir.join("po2.xsd").to_str().unwrap(),
        "--matrix-csv",
        csv_path.to_str().unwrap(),
        "--total-only",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 11, "header + 10 PO1 rows");
    assert!(lines[0].contains("PurchaseOrder/OrderNo"));
    assert!(csv.contains("PO/PurchaseInfo/Lines"));
}
