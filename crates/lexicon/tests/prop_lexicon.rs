//! Property tests for the linguistic substrate: metric axioms, tokenizer
//! invariants, and name-matcher consistency over arbitrary identifiers.
//!
//! Randomized with the in-repo deterministic PRNG (`qmatch-prng`), so every
//! run draws the same cases and failures reproduce from the case index.

use qmatch_lexicon::metrics::{
    bigram_dice, combined_similarity, jaro, jaro_winkler, lcs_len, levenshtein,
    levenshtein_similarity,
};
use qmatch_lexicon::name_match::stem;
use qmatch_lexicon::{tokenize, LabelGrade, NameMatcher};
use qmatch_prng::SmallRng;

const CASES: usize = 256;

/// A random identifier-like label: `[A-Za-z][A-Za-z0-9_ -]{0,20}`.
fn ident(rng: &mut SmallRng) -> String {
    const FIRST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_ -";
    let len = rng.gen_range(0..=20usize);
    let mut s = String::new();
    s.push(FIRST[rng.gen_range(0..FIRST.len())] as char);
    for _ in 0..len {
        s.push(REST[rng.gen_range(0..REST.len())] as char);
    }
    s
}

/// Arbitrary printable text for the tokenizer tests.
fn arbitrary_text(rng: &mut SmallRng, max_len: usize) -> String {
    const EXOTIC: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '✓', '№', '¼'];
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            if rng.gen_bool(0.1) {
                EXOTIC[rng.gen_range(0..EXOTIC.len())]
            } else {
                rng.gen_range(0x20u8..=0x7E) as char
            }
        })
        .collect()
}

#[test]
fn levenshtein_is_a_metric() {
    let mut rng = SmallRng::seed_from_u64(0xA1);
    for case in 0..CASES {
        let (a, b, c) = (ident(&mut rng), ident(&mut rng), ident(&mut rng));
        // Identity of indiscernibles.
        assert_eq!(levenshtein(&a, &a), 0, "case {case}");
        assert_eq!(levenshtein(&a, &b) == 0, a == b, "case {case}");
        // Symmetry.
        assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a), "case {case}");
        // Triangle inequality.
        assert!(
            levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c),
            "case {case}: {a:?} {b:?} {c:?}"
        );
        // Length bounds.
        let (la, lb) = (a.chars().count(), b.chars().count());
        assert!(levenshtein(&a, &b) >= la.abs_diff(lb), "case {case}");
        assert!(levenshtein(&a, &b) <= la.max(lb), "case {case}");
    }
}

#[test]
fn similarity_metrics_are_bounded_and_symmetric() {
    let mut rng = SmallRng::seed_from_u64(0xA2);
    for case in 0..CASES {
        let (a, b) = (ident(&mut rng), ident(&mut rng));
        for (name, v, w) in [
            (
                "lev",
                levenshtein_similarity(&a, &b),
                levenshtein_similarity(&b, &a),
            ),
            ("jaro", jaro(&a, &b), jaro(&b, &a)),
            ("jw", jaro_winkler(&a, &b), jaro_winkler(&b, &a)),
            ("dice", bigram_dice(&a, &b), bigram_dice(&b, &a)),
            (
                "combined",
                combined_similarity(&a, &b),
                combined_similarity(&b, &a),
            ),
        ] {
            assert!((0.0..=1.0 + 1e-12).contains(&v), "case {case} {name}: {v}");
            assert!(
                (v - w).abs() < 1e-12,
                "case {case} {name} asymmetric: {v} vs {w}"
            );
        }
        // Self-similarity is maximal.
        assert_eq!(jaro_winkler(&a, &a), 1.0, "case {case}");
        assert_eq!(bigram_dice(&a, &a), 1.0, "case {case}");
    }
}

#[test]
fn jaro_winkler_dominates_jaro() {
    let mut rng = SmallRng::seed_from_u64(0xA3);
    for case in 0..CASES {
        let (a, b) = (ident(&mut rng), ident(&mut rng));
        assert!(
            jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b),
            "case {case}: {a:?} {b:?}"
        );
    }
}

#[test]
fn lcs_is_bounded_by_both_lengths() {
    let mut rng = SmallRng::seed_from_u64(0xA4);
    for case in 0..CASES {
        let (a, b) = (ident(&mut rng), ident(&mut rng));
        let l = lcs_len(&a, &b);
        assert!(l <= a.chars().count(), "case {case}");
        assert!(l <= b.chars().count(), "case {case}");
        assert_eq!(lcs_len(&a, &a), a.chars().count(), "case {case}");
    }
}

#[test]
fn tokenizer_output_is_normalized() {
    let mut rng = SmallRng::seed_from_u64(0xA5);
    for case in 0..CASES {
        let label = arbitrary_text(&mut rng, 32);
        for token in tokenize(&label) {
            assert!(!token.as_str().is_empty(), "case {case}");
            assert_eq!(token.as_str(), token.as_str().to_lowercase(), "case {case}");
            assert!(
                token.as_str().chars().all(char::is_alphanumeric),
                "case {case}: {label:?} -> {token:?}"
            );
        }
    }
}

#[test]
fn tokenizer_is_idempotent_on_its_own_output() {
    let mut rng = SmallRng::seed_from_u64(0xA6);
    for case in 0..CASES {
        let label = ident(&mut rng);
        let once = tokenize(&label);
        let rejoined: String = once
            .iter()
            .map(|t| t.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let twice = tokenize(&rejoined);
        assert_eq!(once, twice, "case {case}: {label:?}");
    }
}

#[test]
fn stem_never_grows_and_is_idempotent() {
    let mut rng = SmallRng::seed_from_u64(0xA7);
    for case in 0..CASES {
        let len = rng.gen_range(1..=16usize);
        let word: String = (0..len)
            .map(|_| rng.gen_range(b'a'..=b'z') as char)
            .collect();
        let s = stem(&word);
        assert!(s.len() <= word.len() + 1, "case {case}: {word} -> {s}"); // +1 for ies->y
        assert_eq!(
            stem(&s),
            s,
            "case {case}: stem must be idempotent: {word} -> {s}"
        );
    }
}

#[test]
fn name_matcher_is_symmetric_and_bounded() {
    let matcher = NameMatcher::with_default_thesaurus();
    let mut rng = SmallRng::seed_from_u64(0xA8);
    for case in 0..CASES {
        let (a, b) = (ident(&mut rng), ident(&mut rng));
        let ab = matcher.compare(&a, &b);
        let ba = matcher.compare(&b, &a);
        assert!(
            (ab.score - ba.score).abs() < 1e-12,
            "case {case}: {a:?} vs {b:?}"
        );
        assert_eq!(ab.grade, ba.grade, "case {case}: {a:?} vs {b:?}");
        assert!((0.0..=1.0).contains(&ab.score), "case {case}");
        // Grade/score coherence.
        match ab.grade {
            LabelGrade::Exact => assert!((ab.score - 1.0).abs() < 1e-12, "case {case}"),
            LabelGrade::Relaxed => assert!(ab.score >= 0.5 - 1e-12, "case {case}"),
            LabelGrade::None => assert!(ab.score < 1.0, "case {case}"),
        }
    }
}

#[test]
fn self_comparison_is_exact() {
    let matcher = NameMatcher::with_default_thesaurus();
    let mut rng = SmallRng::seed_from_u64(0xA9);
    for case in 0..CASES {
        let a = ident(&mut rng);
        if tokenize(&a).is_empty() {
            continue;
        }
        let m = matcher.compare(&a, &a);
        assert_eq!(
            m.grade,
            LabelGrade::Exact,
            "case {case}: {a:?} scored {}",
            m.score
        );
    }
}
