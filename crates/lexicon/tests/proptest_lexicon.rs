//! Property tests for the linguistic substrate: metric axioms, tokenizer
//! invariants, and name-matcher consistency over arbitrary identifiers.

use proptest::prelude::*;
use qmatch_lexicon::metrics::{
    bigram_dice, combined_similarity, jaro, jaro_winkler, lcs_len, levenshtein,
    levenshtein_similarity,
};
use qmatch_lexicon::name_match::stem;
use qmatch_lexicon::{tokenize, LabelGrade, NameMatcher};

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_ -]{0,20}"
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn levenshtein_is_a_metric(a in ident(), b in ident(), c in ident()) {
        // Identity of indiscernibles.
        prop_assert_eq!(levenshtein(&a, &a), 0);
        prop_assert_eq!(levenshtein(&a, &b) == 0, a == b);
        // Symmetry.
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        // Triangle inequality.
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        // Length bounds.
        let (la, lb) = (a.chars().count(), b.chars().count());
        prop_assert!(levenshtein(&a, &b) >= la.abs_diff(lb));
        prop_assert!(levenshtein(&a, &b) <= la.max(lb));
    }

    #[test]
    fn similarity_metrics_are_bounded_and_symmetric(a in ident(), b in ident()) {
        for (name, v, w) in [
            ("lev", levenshtein_similarity(&a, &b), levenshtein_similarity(&b, &a)),
            ("jaro", jaro(&a, &b), jaro(&b, &a)),
            ("jw", jaro_winkler(&a, &b), jaro_winkler(&b, &a)),
            ("dice", bigram_dice(&a, &b), bigram_dice(&b, &a)),
            ("combined", combined_similarity(&a, &b), combined_similarity(&b, &a)),
        ] {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&v), "{name}: {v}");
            prop_assert!((v - w).abs() < 1e-12, "{name} asymmetric: {v} vs {w}");
        }
        // Self-similarity is maximal.
        prop_assert_eq!(jaro_winkler(&a, &a), 1.0);
        prop_assert_eq!(bigram_dice(&a, &a), 1.0);
    }

    #[test]
    fn jaro_winkler_dominates_jaro(a in ident(), b in ident()) {
        prop_assert!(jaro_winkler(&a, &b) + 1e-12 >= jaro(&a, &b));
    }

    #[test]
    fn lcs_is_bounded_by_both_lengths(a in ident(), b in ident()) {
        let l = lcs_len(&a, &b);
        prop_assert!(l <= a.chars().count());
        prop_assert!(l <= b.chars().count());
        prop_assert_eq!(lcs_len(&a, &a), a.chars().count());
    }

    #[test]
    fn tokenizer_output_is_normalized(label in "\\PC{0,32}") {
        for token in tokenize(&label) {
            prop_assert!(!token.as_str().is_empty());
            prop_assert_eq!(token.as_str(), token.as_str().to_lowercase());
            prop_assert!(token.as_str().chars().all(char::is_alphanumeric));
        }
    }

    #[test]
    fn tokenizer_is_idempotent_on_its_own_output(label in ident()) {
        let once = tokenize(&label);
        let rejoined: String =
            once.iter().map(|t| t.as_str()).collect::<Vec<_>>().join(" ");
        let twice = tokenize(&rejoined);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn stem_never_grows_and_is_idempotent(word in "[a-z]{1,16}") {
        let s = stem(&word);
        prop_assert!(s.len() <= word.len() + 1, "{word} -> {s}"); // +1 for ies->y
        prop_assert_eq!(stem(&s), s.clone(), "stem must be idempotent: {} -> {}", word, s);
    }

    #[test]
    fn name_matcher_is_symmetric_and_bounded(a in ident(), b in ident()) {
        let matcher = NameMatcher::with_default_thesaurus();
        let ab = matcher.compare(&a, &b);
        let ba = matcher.compare(&b, &a);
        prop_assert!((ab.score - ba.score).abs() < 1e-12, "{a:?} vs {b:?}");
        prop_assert_eq!(ab.grade, ba.grade);
        prop_assert!((0.0..=1.0).contains(&ab.score));
        // Grade/score coherence.
        match ab.grade {
            LabelGrade::Exact => prop_assert!((ab.score - 1.0).abs() < 1e-12),
            LabelGrade::Relaxed => prop_assert!(ab.score >= 0.5 - 1e-12),
            LabelGrade::None => prop_assert!(ab.score < 1.0),
        }
    }

    #[test]
    fn self_comparison_is_exact(a in ident()) {
        prop_assume!(!tokenize(&a).is_empty());
        let matcher = NameMatcher::with_default_thesaurus();
        let m = matcher.compare(&a, &a);
        prop_assert_eq!(m.grade, LabelGrade::Exact, "{} scored {}", a, m.score);
    }
}
