//! Label comparison: combines tokenization, the thesaurus, and the fuzzy
//! metrics into the label-axis grades the paper defines.
//!
//! Paper §2.1:
//! - *exact* label match — exact string match, synonym match, or ontology
//!   match;
//! - *relaxed* label match — hypernym match or acronym match (this
//!   implementation also counts registered abbreviations and high-confidence
//!   fuzzy matches, which is how CUPID-style matchers treat `Qty`/`Quantity`).

use crate::metrics::combined_similarity;
use crate::thesaurus::{Relation, Thesaurus};
use crate::tokenize::{tokenize, Token};

/// The qualitative label-axis grade (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LabelGrade {
    /// Exact string / synonym / ontology match.
    Exact,
    /// Hypernym, acronym, abbreviation, or strong fuzzy match.
    Relaxed,
    /// No meaningful match.
    None,
}

/// The result of comparing two labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NameMatch {
    /// Qualitative grade.
    pub grade: LabelGrade,
    /// Quantitative similarity in `[0, 1]`; `Exact` implies `1.0` on the
    /// canonical scale used by the QoM model.
    pub score: f64,
}

impl NameMatch {
    const NONE: NameMatch = NameMatch {
        grade: LabelGrade::None,
        score: 0.0,
    };
}

/// Canonical per-relation scores. `Exact`-grade relations score 1.0; the
/// relaxed relations are ordered by reliability.
mod scores {
    pub const EXACT: f64 = 1.0;
    pub const ABBREVIATION: f64 = 0.85;
    pub const ACRONYM: f64 = 0.85;
    pub const HYPERNYM: f64 = 0.70;
    pub const COORDINATE: f64 = 0.60;
    /// Fuzzy similarity must clear this to count as a token match at all.
    pub const FUZZY_FLOOR: f64 = 0.80;
    /// A fuzzy token match is discounted by this factor (it has no lexical
    /// evidence behind it).
    pub const FUZZY_DISCOUNT: f64 = 0.9;
}

/// Aggregate score below which the whole-label grade is `None`. Set to 0.5
/// so that a one-of-two-token exact overlap (the paper's `PurchaseDate` vs
/// `Date` example) still counts as a relaxed match.
const RELAXED_FLOOR: f64 = 0.5;

/// Compares schema labels using a [`Thesaurus`].
#[derive(Debug, Clone)]
pub struct NameMatcher {
    thesaurus: Thesaurus,
}

/// Stopwords ignored during token alignment (but kept for acronym initials).
const STOPWORDS: &[&str] = &["of", "the", "a", "an", "to", "for", "in", "on"];

impl NameMatcher {
    /// A matcher over the given thesaurus.
    pub fn new(thesaurus: Thesaurus) -> Self {
        NameMatcher { thesaurus }
    }

    /// A matcher over the built-in domain thesaurus.
    pub fn with_default_thesaurus() -> Self {
        NameMatcher::new(crate::builtin::default_thesaurus())
    }

    /// Borrow the underlying thesaurus.
    pub fn thesaurus(&self) -> &Thesaurus {
        &self.thesaurus
    }

    /// Compares two raw labels.
    pub fn compare(&self, a: &str, b: &str) -> NameMatch {
        self.compare_tokens(&tokenize(a), &tokenize(b))
    }

    /// Compares two pre-tokenized labels (callers that compare every node
    /// pair tokenize each label once and use this).
    pub fn compare_tokens(&self, a: &[Token], b: &[Token]) -> NameMatch {
        if a.is_empty() || b.is_empty() {
            return if a.is_empty() && b.is_empty() {
                NameMatch {
                    grade: LabelGrade::Exact,
                    score: scores::EXACT,
                }
            } else {
                NameMatch::NONE
            };
        }
        // Identical token sequences are exact without any alignment work —
        // the dominant case when matching a schema against itself or near
        // copies.
        if a == b {
            return NameMatch {
                grade: LabelGrade::Exact,
                score: scores::EXACT,
            };
        }
        // Whole-phrase acronym match is checked before token alignment:
        // "UOM" vs "Unit Of Measure" aligns no tokens but is a relaxed match.
        if self.phrase_acronym(a, b) || self.phrase_acronym(b, a) {
            return NameMatch {
                grade: LabelGrade::Relaxed,
                score: scores::ACRONYM,
            };
        }
        let (score, all_exact) = self.align(a, b);
        if all_exact && score >= 0.999 {
            NameMatch {
                grade: LabelGrade::Exact,
                score: scores::EXACT,
            }
        } else if score >= RELAXED_FLOOR {
            NameMatch {
                grade: LabelGrade::Relaxed,
                score,
            }
        } else {
            NameMatch {
                grade: LabelGrade::None,
                score,
            }
        }
    }

    /// True if `short` is a single token whose letters are the initials of
    /// `long`'s tokens (with or without stopwords), or a registered acronym
    /// whose expansion matches `long` token-for-token.
    fn phrase_acronym(&self, short: &[Token], long: &[Token]) -> bool {
        if short.len() != 1 || long.len() < 2 {
            return false;
        }
        let s = short[0].as_str();
        // Registered expansion, matched token-wise through synonyms.
        for expansion in self.thesaurus.acronym_expansions(s) {
            if expansion.len() == long.len()
                && expansion
                    .iter()
                    .zip(long)
                    .all(|(e, l)| e == l.as_str() || self.thesaurus.are_synonyms(e, l.as_str()))
            {
                return true;
            }
        }
        // Generic initials check.
        if s.len() >= 2 {
            let initials: String = long
                .iter()
                .filter_map(|t| t.as_str().chars().next())
                .collect();
            if initials == s {
                return true;
            }
            let content_initials: String = long
                .iter()
                .filter(|t| !STOPWORDS.contains(&t.as_str()))
                .filter_map(|t| t.as_str().chars().next())
                .collect();
            if content_initials.len() >= 2 && content_initials == s {
                return true;
            }
        }
        false
    }

    /// Greedy best-pair token alignment. Returns the normalized aggregate
    /// score and whether every token on both sides found an exact-grade
    /// partner.
    fn align(&self, a: &[Token], b: &[Token]) -> (f64, bool) {
        let content = |ts: &[Token]| -> Vec<Token> {
            let kept: Vec<Token> = ts
                .iter()
                .filter(|t| !STOPWORDS.contains(&t.as_str()))
                .cloned()
                .collect();
            if kept.is_empty() {
                ts.to_vec()
            } else {
                kept
            }
        };
        let a = content(a);
        let b = content(b);
        // Fast path: single-token labels (most schema element names) need no
        // bipartite machinery.
        if let ([ta], [tb]) = (a.as_slice(), b.as_slice()) {
            let (score, exact) = self.token_score(ta.as_str(), tb.as_str());
            return (score, exact && score >= 0.999);
        }
        let mut pairs: Vec<(usize, usize, f64, bool)> = Vec::with_capacity(a.len() * b.len());
        for (i, ta) in a.iter().enumerate() {
            for (j, tb) in b.iter().enumerate() {
                let (score, exact) = self.token_score(ta.as_str(), tb.as_str());
                if score > 0.0 {
                    pairs.push((i, j, score, exact));
                }
            }
        }
        pairs.sort_by(|x, y| y.2.total_cmp(&x.2));
        let mut used_a = vec![false; a.len()];
        let mut used_b = vec![false; b.len()];
        let mut total = 0.0;
        let mut matched = 0usize;
        let mut all_exact = true;
        for (i, j, score, exact) in pairs {
            if used_a[i] || used_b[j] {
                continue;
            }
            used_a[i] = true;
            used_b[j] = true;
            total += score;
            matched += 1;
            all_exact &= exact;
        }
        let denom = a.len().max(b.len());
        all_exact &= matched == denom && matched == a.len().min(b.len());
        // Unequal token counts can never be fully exact.
        all_exact &= a.len() == b.len();
        (total / denom as f64, all_exact)
    }

    /// Scores one token pair; the bool reports an exact-grade relation.
    fn token_score(&self, a: &str, b: &str) -> (f64, bool) {
        if a == b {
            return (scores::EXACT, true);
        }
        let sa = stem(a);
        let sb = stem(b);
        if sa == sb {
            return (scores::EXACT, true);
        }
        // Tokens are lowercased at tokenize time and stemming preserves
        // case, so the stems are already folded — no per-call lowercasing.
        match self.thesaurus.relation_folded(&sa, &sb) {
            Relation::Same | Relation::Synonym => (scores::EXACT, true),
            Relation::Abbreviation => (scores::ABBREVIATION, false),
            Relation::Acronym => (scores::ACRONYM, false),
            Relation::Hypernym => (scores::HYPERNYM, false),
            Relation::Coordinate => (scores::COORDINATE, false),
            Relation::Unrelated => {
                if looks_like_abbreviation(&sa, &sb) || looks_like_abbreviation(&sb, &sa) {
                    return (scores::ABBREVIATION, false);
                }
                let fuzzy = combined_similarity(a, b);
                if fuzzy >= scores::FUZZY_FLOOR {
                    (fuzzy * scores::FUZZY_DISCOUNT, false)
                } else {
                    (0.0, false)
                }
            }
        }
    }
}

/// Light plural stemming — enough to make `Hands`/`hand` or
/// `Categories`/`category` compare equal without a full stemmer.
pub fn stem(token: &str) -> String {
    let t = token;
    if t.len() > 4 && t.ends_with("ies") {
        return format!("{}y", &t[..t.len() - 3]);
    }
    for suffix in ["ses", "xes", "zes", "ches", "shes"] {
        if t.len() > suffix.len() + 1 && t.ends_with(suffix) {
            return t[..t.len() - 2].to_owned();
        }
    }
    if t.len() > 3 && t.ends_with('s') && !t.ends_with("ss") && !t.ends_with("us") {
        return t[..t.len() - 1].to_owned();
    }
    t.to_owned()
}

/// Heuristic abbreviation detection for pairs missing from the thesaurus:
/// `short` must start `long`, be a subsequence of it, and be substantially
/// shorter (`Qty` / `Quantity`, `Dscr` / `Description`).
pub fn looks_like_abbreviation(short: &str, long: &str) -> bool {
    if short.len() < 2 || short.len() * 3 > long.len() * 2 {
        return false;
    }
    let mut long_chars = long.chars();
    let mut first = true;
    for sc in short.chars() {
        let found = if first {
            first = false;
            long_chars.next() == Some(sc)
        } else {
            long_chars.any(|lc| lc == sc)
        };
        if !found {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matcher() -> NameMatcher {
        NameMatcher::with_default_thesaurus()
    }

    #[test]
    fn identical_labels_are_exact() {
        let m = matcher();
        assert_eq!(
            m.compare("OrderNo", "OrderNo"),
            NameMatch {
                grade: LabelGrade::Exact,
                score: 1.0
            }
        );
        assert_eq!(m.compare("orderNo", "ORDER_NO").grade, LabelGrade::Exact);
    }

    #[test]
    fn synonyms_are_exact_per_the_paper() {
        let m = matcher();
        assert_eq!(m.compare("Writer", "Author").grade, LabelGrade::Exact);
        assert_eq!(m.compare("Vendor", "Supplier").grade, LabelGrade::Exact);
        assert_eq!(
            m.compare("BillingAddress", "InvoiceAddress").grade,
            LabelGrade::Exact
        );
    }

    #[test]
    fn paper_uom_acronym_is_relaxed() {
        let m = matcher();
        let r = m.compare("Unit Of Measure", "UOM");
        assert_eq!(r.grade, LabelGrade::Relaxed);
        assert!(r.score > 0.8);
    }

    #[test]
    fn paper_qty_abbreviation_is_relaxed() {
        let m = matcher();
        let r = m.compare("Quantity", "Qty");
        assert_eq!(r.grade, LabelGrade::Relaxed);
        assert!(r.score >= 0.8);
    }

    #[test]
    fn purchase_order_vs_po_is_relaxed() {
        let m = matcher();
        assert_eq!(m.compare("PurchaseOrder", "PO").grade, LabelGrade::Relaxed);
        assert_eq!(m.compare("Purchase Order", "PO").grade, LabelGrade::Relaxed);
    }

    #[test]
    fn generic_initials_acronym_detected() {
        let m = matcher();
        // "sta" is not registered, but matches the initials.
        assert_eq!(m.compare("ShipToAddress", "STA").grade, LabelGrade::Relaxed);
    }

    #[test]
    fn hypernyms_are_relaxed() {
        let m = matcher();
        let r = m.compare("Book", "Publication");
        assert_eq!(r.grade, LabelGrade::Relaxed);
        assert!((r.score - 0.70).abs() < 1e-9);
    }

    #[test]
    fn unrelated_labels_are_none() {
        let m = matcher();
        assert_eq!(m.compare("Library", "human").grade, LabelGrade::None);
        assert_eq!(m.compare("Title", "legs").grade, LabelGrade::None);
        assert_eq!(m.compare("Writer", "hands").grade, LabelGrade::None);
    }

    #[test]
    fn partial_token_overlap_is_relaxed() {
        let m = matcher();
        // "PurchaseDate" vs "Date": one of two tokens matches exactly.
        let r = m.compare("PurchaseDate", "Date");
        assert_eq!(r.grade, LabelGrade::Relaxed);
        assert!((r.score - 0.5).abs() < 1e-9, "{}", r.score);
    }

    #[test]
    fn item_number_matches_item_hash() {
        let m = matcher();
        // Paper: Item (in Lines) has an exact match with Item# (in Items).
        let r = m.compare("Item", "Item#");
        // Item# tokenizes to [item, number]; one exact token of two.
        assert!(r.grade <= LabelGrade::Relaxed);
        assert!(r.score >= 0.5);
    }

    #[test]
    fn plural_forms_are_exact() {
        let m = matcher();
        assert_eq!(m.compare("Lines", "Line").grade, LabelGrade::Exact);
        assert_eq!(m.compare("Categories", "Category").grade, LabelGrade::Exact);
        assert_eq!(m.compare("Boxes", "Box").grade, LabelGrade::Exact);
    }

    #[test]
    fn fuzzy_typo_is_relaxed_but_discounted() {
        let m = matcher();
        let r = m.compare("Quantety", "Quantity");
        assert_eq!(r.grade, LabelGrade::Relaxed);
        assert!(r.score < 1.0 && r.score > 0.6);
    }

    #[test]
    fn empty_labels() {
        let m = matcher();
        assert_eq!(m.compare("", "").grade, LabelGrade::Exact);
        assert_eq!(m.compare("x", "").grade, LabelGrade::None);
        assert_eq!(m.compare("", "x").grade, LabelGrade::None);
    }

    #[test]
    fn stopwords_do_not_dilute_scores() {
        let m = matcher();
        let with = m.compare("DateOfBirth", "BirthDate");
        assert_eq!(with.grade, LabelGrade::Exact, "score {}", with.score);
    }

    #[test]
    fn score_is_symmetric() {
        let m = matcher();
        for (a, b) in [
            ("PurchaseOrder", "PO"),
            ("Quantity", "Qty"),
            ("OrderNo", "OrderNumber"),
            ("BillTo", "BillingAddr"),
            ("Library", "human"),
        ] {
            let ab = m.compare(a, b);
            let ba = m.compare(b, a);
            assert!((ab.score - ba.score).abs() < 1e-9, "{a} vs {b}");
            assert_eq!(ab.grade, ba.grade, "{a} vs {b}");
        }
    }

    #[test]
    fn stem_rules() {
        assert_eq!(stem("hands"), "hand");
        assert_eq!(stem("categories"), "category");
        assert_eq!(stem("boxes"), "box");
        assert_eq!(stem("addresses"), "address"); // "ses" rule strips "es"
        assert_eq!(stem("class"), "class"); // "ss" protected
        assert_eq!(stem("status"), "status"); // "us" protected
        assert_eq!(stem("bus"), "bus"); // too short
        assert_eq!(stem("item"), "item");
    }

    #[test]
    fn abbreviation_heuristic() {
        assert!(looks_like_abbreviation("qty", "quantity"));
        assert!(looks_like_abbreviation("dscr", "description"));
        assert!(!looks_like_abbreviation("tyq", "quantity"), "order matters");
        assert!(!looks_like_abbreviation("q", "quantity"), "too short");
        assert!(
            !looks_like_abbreviation("quantit", "quantity"),
            "not much shorter"
        );
        assert!(!looks_like_abbreviation("xyz", "quantity"));
    }

    #[test]
    fn orderno_vs_ordernumber_is_exact_via_abbreviation_synonyms() {
        let m = matcher();
        // no/number are synonyms in the builtin thesaurus, so this is an
        // exact (synonym) match per the paper's classification.
        let r = m.compare("OrderNo", "OrderNumber");
        assert_eq!(r.grade, LabelGrade::Exact);
    }
}
