//! The built-in domain thesaurus.
//!
//! This is the substitution for WordNet (see DESIGN.md §4): a curated
//! vocabulary covering the paper's evaluation domains — purchase orders and
//! inventory, books and publications, proteins, the library example of
//! Fig. 7, the human-anatomy example of Fig. 8 — plus generic data-modeling
//! terms. The data is intentionally conservative: polysemous pairs that
//! would create false matches across domains (e.g. `article` the publication
//! vs `article` the line item) are left out.

use crate::thesaurus::Thesaurus;

/// Synonym sets.
pub const SYNONYMS: &[&[&str]] = &[
    // Commerce / purchase orders
    &["purchase", "buy", "procurement"],
    &["order", "requisition"],
    &["item", "product", "good", "merchandise", "sku"],
    &["quantity", "amount", "count"],
    &["price", "cost", "rate"],
    &["total", "sum"],
    &["bill", "invoice", "billing", "invoicing"],
    &["ship", "deliver", "dispatch", "send"],
    &["customer", "client", "buyer", "purchaser"],
    &["vendor", "supplier", "seller", "merchant"],
    &["address", "location"],
    &["line", "row", "entry"],
    &["date", "day"],
    &["number", "num", "no"],
    &["measure", "measurement", "metric"],
    &["unit", "uom"],
    &["warehouse", "depot", "store"],
    &["inventory", "stock"],
    &["currency", "denomination"],
    &["discount", "rebate", "reduction"],
    &["tax", "duty", "levy"],
    &["payment", "remittance"],
    &["status", "state", "condition"],
    &["comment", "note", "remark", "annotation"],
    // Books / publications
    &["book", "volume", "tome"],
    &["writer", "author", "creator"],
    &["publisher", "press"],
    &["title", "heading", "caption"],
    &["chapter", "section"],
    &["page", "folio"],
    &["edition", "version", "release"],
    &["abstract", "summary", "synopsis"],
    &["journal", "periodical", "magazine"],
    &["keyword", "term", "tag"],
    &["language", "tongue"],
    &["genre", "category", "kind", "type"],
    &["subject", "topic", "theme"],
    &["year", "annum"],
    // Proteins / bioinformatics
    &["protein", "polypeptide"],
    &["sequence", "chain"],
    &["residue", "monomer"],
    &["organism", "species"],
    &["gene", "locus"],
    &["structure", "conformation"],
    &["function", "role", "activity"],
    &["source", "origin"],
    &["reference", "citation"],
    &["database", "databank", "repository"],
    &["entry", "record"],
    &["atom", "particle"],
    &["domain", "region", "segment"],
    &["motif", "pattern"],
    &["accession", "identifier"],
    // Library / people / anatomy (Figs. 7 & 8)
    &["library", "archive"],
    &["human", "person", "individual"],
    &["body", "torso", "trunk"],
    &["man", "male"],
    &["woman", "female"],
    &["hand", "palm"],
    &["head", "skull"],
    &["leg", "limb"],
    &["character", "figure", "personage"],
    // Generic data modeling
    &["name", "label", "designation"],
    &["id", "identifier", "key"],
    &["description", "detail", "info", "information"],
    &["value", "content"],
    &["group", "set", "collection", "list"],
    &["parent", "owner"],
    &["child", "member"],
    &["start", "begin", "commence"],
    &["end", "finish", "stop"],
    &["first", "initial"],
    &["last", "final"],
    &["phone", "telephone"],
    &["mail", "post"],
    &["street", "road", "avenue"],
    &["city", "town"],
    &["country", "nation"],
    &["company", "firm", "corporation", "organization"],
    &["employee", "worker", "staff"],
    &["contact", "correspondent"],
];

/// `(child, parent)` hypernym edges: the child concept IS-A parent concept.
pub const HYPERNYMS: &[(&str, &str)] = &[
    // Commerce
    ("invoice", "document"),
    ("order", "document"),
    ("receipt", "document"),
    ("po", "order"),
    ("quantity", "number"),
    ("price", "value"),
    // An order's items are its entries/lines (the paper's §2.2 grades the
    // Lines/Items label pair as a relaxed match).
    ("item", "entry"),
    ("date", "time"),
    ("zip", "code"),
    ("zipcode", "code"),
    ("apartment", "address"),
    ("street", "address"),
    ("city", "address"),
    ("fax", "phone"),
    ("mobile", "phone"),
    // Books
    ("book", "publication"),
    ("article", "publication"),
    ("journal", "publication"),
    ("paper", "publication"),
    ("thesis", "publication"),
    ("novel", "book"),
    ("textbook", "book"),
    ("isbn", "identifier"),
    ("issn", "identifier"),
    ("author", "person"),
    ("editor", "person"),
    ("publisher", "organization"),
    // Proteins
    ("protein", "molecule"),
    ("enzyme", "protein"),
    ("peptide", "molecule"),
    ("helix", "structure"),
    ("sheet", "structure"),
    ("strand", "structure"),
    ("dna", "sequence"),
    ("rna", "sequence"),
    ("organism", "source"),
    ("bacteria", "organism"),
    ("virus", "organism"),
    // Anatomy / people
    ("man", "human"),
    ("woman", "human"),
    ("child", "human"),
    ("hand", "body"),
    ("head", "body"),
    ("leg", "body"),
    ("arm", "body"),
    ("finger", "hand"),
    ("toe", "foot"),
    ("writer", "person"),
    ("character", "person"),
    // Generic
    ("employee", "person"),
    ("customer", "person"),
    ("company", "organization"),
    ("department", "organization"),
];

/// Acronyms with multi-word (or single-word) expansions.
pub const ACRONYMS: &[(&str, &[&str])] = &[
    ("po", &["purchase", "order"]),
    ("uom", &["unit", "of", "measure"]),
    ("qoh", &["quantity", "on", "hand"]),
    ("sku", &["stock", "keeping", "unit"]),
    ("eta", &["estimated", "time", "of", "arrival"]),
    ("cod", &["cash", "on", "delivery"]),
    ("vat", &["value", "added", "tax"]),
    ("isbn", &["international", "standard", "book", "number"]),
    ("issn", &["international", "standard", "serial", "number"]),
    ("doi", &["digital", "object", "identifier"]),
    ("pir", &["protein", "information", "resource"]),
    ("pdb", &["protein", "data", "bank"]),
    ("id", &["identifier"]),
    ("ref", &["reference"]),
    ("dob", &["date", "of", "birth"]),
    ("ssn", &["social", "security", "number"]),
    ("dcmd", &["document", "centric", "multiple", "document"]),
];

/// `(short, full)` abbreviation pairs.
pub const ABBREVIATIONS: &[(&str, &str)] = &[
    ("qty", "quantity"),
    ("qnty", "quantity"),
    ("no", "number"),
    ("num", "number"),
    ("nbr", "number"),
    ("nr", "number"),
    ("amt", "amount"),
    ("addr", "address"),
    ("desc", "description"),
    ("descr", "description"),
    ("info", "information"),
    ("tel", "telephone"),
    ("ph", "phone"),
    ("st", "street"),
    ("ave", "avenue"),
    ("org", "organization"),
    ("dept", "department"),
    ("acct", "account"),
    ("seq", "sequence"),
    ("max", "maximum"),
    ("min", "minimum"),
    ("avg", "average"),
    ("mfr", "manufacturer"),
    ("cust", "customer"),
    ("prod", "product"),
    ("cat", "category"),
    ("meas", "measure"),
    ("msr", "measure"),
    ("ord", "order"),
    ("purch", "purchase"),
    ("pub", "publisher"),
    ("auth", "author"),
    ("lang", "language"),
    ("vol", "volume"),
    ("ed", "edition"),
    ("pg", "page"),
    ("chap", "chapter"),
    ("abbr", "abbreviation"),
    ("cfg", "configuration"),
    ("cfgs", "configurations"),
    ("len", "length"),
    ("pos", "position"),
    ("val", "value"),
    ("del", "delivery"),
    ("inv", "invoice"),
    ("wt", "weight"),
    ("ht", "height"),
];

/// Builds the default thesaurus from the tables above.
pub fn default_thesaurus() -> Thesaurus {
    let mut t = Thesaurus::new();
    for set in SYNONYMS {
        t.add_synonyms(set.iter().copied());
    }
    for (child, parent) in HYPERNYMS {
        t.add_hypernym(child, parent);
    }
    for (acronym, expansion) in ACRONYMS {
        t.add_acronym(acronym, expansion.iter().copied());
    }
    for (short, full) in ABBREVIATIONS {
        t.add_abbreviation(short, full);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thesaurus::Relation;

    #[test]
    fn builds_without_panicking_and_is_nonempty() {
        let t = default_thesaurus();
        assert!(t.synonym_token_count() > 150);
    }

    #[test]
    fn paper_examples_have_the_right_relations() {
        let t = default_thesaurus();
        // §2.1: Quantity / Qty — abbreviation (relaxed).
        assert_eq!(t.relation("quantity", "qty"), Relation::Abbreviation);
        // §2.1: acronym UOM expands to unit of measure (checked at phrase
        // level by the name matcher; the expansion must be registered).
        assert_eq!(t.acronym_expansions("uom")[0], ["unit", "of", "measure"]);
        // PO expands to purchase order.
        assert!(t
            .acronym_expansions("po")
            .iter()
            .any(|e| e == &["purchase", "order"][..]));
    }

    #[test]
    fn cross_domain_terms_stay_unrelated() {
        let t = default_thesaurus();
        // Library (Fig. 7) vs human anatomy (Fig. 8) must be linguistically
        // disparate for the Figure 9 experiment to behave like the paper.
        assert_eq!(t.relation("library", "human"), Relation::Unrelated);
        assert_eq!(t.relation("title", "body"), Relation::Unrelated);
        assert_eq!(t.relation("book", "man"), Relation::Unrelated);
        assert_eq!(t.relation("number", "hands"), Relation::Unrelated);
        assert_eq!(t.relation("writer", "legs"), Relation::Unrelated);
    }

    #[test]
    fn writer_and_character_relate_to_person_not_each_other_directly() {
        let t = default_thesaurus();
        assert_eq!(t.relation("writer", "person"), Relation::Hypernym);
        assert_eq!(t.relation("character", "person"), Relation::Hypernym);
    }

    #[test]
    fn synonym_tables_have_no_singletons() {
        for set in SYNONYMS {
            assert!(set.len() >= 2, "synonym set {set:?} is useless");
        }
    }

    #[test]
    fn abbreviation_shorts_are_shorter_than_fulls() {
        for (short, full) in ABBREVIATIONS {
            assert!(short.len() < full.len(), "({short}, {full})");
        }
    }

    #[test]
    fn tables_are_lowercase() {
        for set in SYNONYMS {
            for w in *set {
                assert_eq!(*w, w.to_lowercase());
            }
        }
        for (a, b) in HYPERNYMS {
            assert_eq!(*a, a.to_lowercase());
            assert_eq!(*b, b.to_lowercase());
        }
        for (a, e) in ACRONYMS {
            assert_eq!(*a, a.to_lowercase());
            for w in *e {
                assert_eq!(*w, w.to_lowercase());
            }
        }
    }
}
