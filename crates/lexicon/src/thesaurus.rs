//! The thesaurus: synonym sets, hypernym edges, acronyms, and abbreviations.
//!
//! All entries are stored as lowercase tokens. Lookups are symmetric where
//! the relation is symmetric (synonymy) and directional where it is not
//! (hypernymy); [`Thesaurus::relation`] reports the relation found between
//! two tokens regardless of argument order.

use std::collections::HashMap;

/// The lexical relation between two tokens, ordered from strongest to
/// weakest. The paper maps `Same`/`Synonym` to an **exact** label match and
/// `Acronym`/`Abbreviation`/`Hypernym` to a **relaxed** one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relation {
    /// Identical tokens.
    Same,
    /// Members of the same synonym set.
    Synonym,
    /// One token abbreviates the other (`qty` / `quantity`).
    Abbreviation,
    /// One token is an acronym of a multi-word phrase; detected at the
    /// phrase level by the name matcher (`uom` / `unit of measure`).
    Acronym,
    /// One token's concept subsumes the other's (`publication` / `book`).
    Hypernym,
    /// Co-hyponyms: the tokens share a registered ancestor concept
    /// (`article` / `book`, both IS-A `publication`).
    Coordinate,
    /// No known relation.
    Unrelated,
}

/// A mutable thesaurus. Build one with [`Thesaurus::new`] and the `add_*`
/// methods, or start from [`crate::builtin::default_thesaurus`].
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    /// token -> synset id.
    synset_of: HashMap<String, u32>,
    /// synset id -> canonical member (lexicographically smallest), the
    /// stable representative [`Thesaurus::canonical_folded`] returns.
    canonical: HashMap<u32, String>,
    synset_count: u32,
    /// child token -> parent tokens (hypernyms).
    hypernyms: HashMap<String, Vec<String>>,
    /// acronym token -> expansion token sequences (an acronym may have
    /// several domain expansions).
    acronyms: HashMap<String, Vec<Vec<String>>>,
    /// short form -> full words.
    abbreviations: HashMap<String, Vec<String>>,
}

impl Thesaurus {
    /// An empty thesaurus.
    pub fn new() -> Self {
        Thesaurus::default()
    }

    /// Adds a synonym set. Tokens already in a set are merged into it, so
    /// `add_synonyms(["a","b"]); add_synonyms(["b","c"])` leaves all three
    /// mutually synonymous.
    pub fn add_synonyms<I, S>(&mut self, words: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let words: Vec<String> = words
            .into_iter()
            .map(|w| w.as_ref().to_lowercase())
            .collect();
        // Reuse an existing set id if any member already belongs to one.
        let existing = words.iter().find_map(|w| self.synset_of.get(w).copied());
        let id = match existing {
            Some(id) => id,
            None => {
                let id = self.synset_count;
                self.synset_count += 1;
                id
            }
        };
        // Merge: remap every set reachable through these words onto `id`.
        let mut merge_ids: Vec<u32> = words
            .iter()
            .filter_map(|w| self.synset_of.get(w).copied())
            .collect();
        merge_ids.retain(|&m| m != id);
        if !merge_ids.is_empty() {
            for v in self.synset_of.values_mut() {
                if merge_ids.contains(v) {
                    *v = id;
                }
            }
        }
        // The canonical member is the smallest across the merged sets and
        // the new words — insertion-order independent by construction.
        let mut canon = self.canonical.remove(&id);
        for m in &merge_ids {
            if let Some(c) = self.canonical.remove(m) {
                canon = Some(match canon {
                    Some(prev) => prev.min(c),
                    None => c,
                });
            }
        }
        for w in words {
            canon = Some(match canon {
                Some(prev) if prev <= w => prev,
                _ => w.clone(),
            });
            self.synset_of.insert(w, id);
        }
        if let Some(canon) = canon {
            self.canonical.insert(id, canon);
        }
    }

    /// Declares `child` to be a kind of `parent` (e.g. `book` IS-A
    /// `publication`).
    pub fn add_hypernym(&mut self, child: &str, parent: &str) {
        self.hypernyms
            .entry(child.to_lowercase())
            .or_default()
            .push(parent.to_lowercase());
    }

    /// Declares `acronym` to expand to the given word sequence.
    pub fn add_acronym<I, S>(&mut self, acronym: &str, expansion: I)
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let words: Vec<String> = expansion
            .into_iter()
            .map(|w| w.as_ref().to_lowercase())
            .collect();
        self.acronyms
            .entry(acronym.to_lowercase())
            .or_default()
            .push(words);
    }

    /// Declares `short` to be an abbreviation of `full`.
    pub fn add_abbreviation(&mut self, short: &str, full: &str) {
        self.abbreviations
            .entry(short.to_lowercase())
            .or_default()
            .push(full.to_lowercase());
    }

    /// True if the two tokens share a synonym set.
    pub fn are_synonyms(&self, a: &str, b: &str) -> bool {
        match (self.synset_of.get(a), self.synset_of.get(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// True if `a` is a registered hypernym (ancestor, transitively) of `b`.
    pub fn is_hypernym_of(&self, a: &str, b: &str) -> bool {
        let mut frontier = vec![b.to_owned()];
        let mut hops = 0;
        while let Some(cur) = frontier.pop() {
            if let Some(parents) = self.hypernyms.get(&cur) {
                for p in parents {
                    if p == a || self.are_synonyms(p, a) {
                        return true;
                    }
                    frontier.push(p.clone());
                }
            }
            hops += 1;
            if hops > 64 {
                break; // defensive: malformed cyclic data
            }
        }
        false
    }

    /// The registered expansions of `acronym`, if any.
    pub fn acronym_expansions(&self, acronym: &str) -> &[Vec<String>] {
        self.acronyms.get(acronym).map(Vec::as_slice).unwrap_or(&[])
    }

    /// True if `short` is a registered abbreviation of `full` (or `full`'s
    /// synonyms).
    pub fn is_abbreviation_of(&self, short: &str, full: &str) -> bool {
        self.abbreviations.get(short).is_some_and(|fulls| {
            fulls
                .iter()
                .any(|f| f == full || self.are_synonyms(f, full))
        })
    }

    /// The strongest relation between `a` and `b`, case-insensitively: a
    /// thin wrapper that folds mixed-case inputs before delegating to
    /// [`Thesaurus::relation_folded`]. Callers holding already-folded
    /// tokens (the tokenizer and the session interner lowercase at
    /// creation) should call `relation_folded` directly and skip the scan.
    pub fn relation(&self, a: &str, b: &str) -> Relation {
        fn fold(s: &str) -> std::borrow::Cow<'_, str> {
            if s.chars().any(char::is_uppercase) {
                std::borrow::Cow::Owned(s.to_lowercase())
            } else {
                std::borrow::Cow::Borrowed(s)
            }
        }
        self.relation_folded(&fold(a), &fold(b))
    }

    /// The strongest relation between two *pre-folded* (lowercase) tokens
    /// (symmetric: both argument orders are tried for directional
    /// relations). Token-level only — phrase-level acronyms are handled by
    /// the name matcher. Entries are stored lowercase, so folding happens
    /// exactly once — at intern/tokenize time, not per lookup.
    pub fn relation_folded(&self, a: &str, b: &str) -> Relation {
        if a == b {
            return Relation::Same;
        }
        if self.are_synonyms(a, b) {
            return Relation::Synonym;
        }
        if self.is_abbreviation_of(a, b) || self.is_abbreviation_of(b, a) {
            return Relation::Abbreviation;
        }
        // A single-word acronym expansion behaves like an abbreviation.
        let single_expansion = |x: &str, y: &str| {
            self.acronym_expansions(x)
                .iter()
                .any(|e| e.len() == 1 && (e[0] == y || self.are_synonyms(&e[0], y)))
        };
        if single_expansion(a, b) || single_expansion(b, a) {
            return Relation::Acronym;
        }
        if self.is_hypernym_of(a, b) || self.is_hypernym_of(b, a) {
            return Relation::Hypernym;
        }
        if self.share_ancestor(a, b) {
            return Relation::Coordinate;
        }
        Relation::Unrelated
    }

    /// The stable concept representative for a *pre-folded* token, if the
    /// thesaurus knows the token at all: members of a synonym set map to
    /// the set's lexicographically smallest member, registered short forms
    /// (abbreviations, single-word acronym expansions) map through their
    /// full form's set. Tokens the thesaurus has never seen return `None`.
    ///
    /// Deterministic and insertion-order independent, so it is safe to use
    /// as a feature key in persistent or cross-session structures (the
    /// candidate index does exactly that).
    pub fn canonical_folded(&self, token: &str) -> Option<&str> {
        let of_full = |full: &str| -> Option<&str> {
            self.synset_of
                .get(full)
                .and_then(|id| self.canonical.get(id))
                .map(String::as_str)
        };
        if let Some(id) = self.synset_of.get(token) {
            return self.canonical.get(id).map(String::as_str);
        }
        if let Some(fulls) = self.abbreviations.get(token) {
            let full = fulls.iter().min()?;
            return Some(of_full(full).unwrap_or(full));
        }
        if let Some(word) = self
            .acronyms
            .get(token)
            .into_iter()
            .flatten()
            .filter(|e| e.len() == 1)
            .map(|e| e[0].as_str())
            .min()
        {
            return Some(of_full(word).unwrap_or(word));
        }
        None
    }

    /// All registered ancestors of a *pre-folded* token (transitive
    /// hypernym closure, bounded for safety against malformed cyclic
    /// data). Order follows the registered edges, deterministically.
    pub fn ancestors_folded(&self, token: &str) -> Vec<String> {
        self.ancestors(token)
    }

    /// All registered ancestors of `token` (transitive hypernym closure,
    /// bounded for safety against malformed cyclic data).
    fn ancestors(&self, token: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut frontier = vec![token.to_owned()];
        while let Some(cur) = frontier.pop() {
            if let Some(parents) = self.hypernyms.get(&cur) {
                for p in parents {
                    if !out.contains(p) {
                        out.push(p.clone());
                        frontier.push(p.clone());
                    }
                    if out.len() > 64 {
                        return out;
                    }
                }
            }
        }
        out
    }

    /// True if the two tokens share a registered ancestor concept (and are
    /// therefore co-hyponyms / coordinate terms).
    pub fn share_ancestor(&self, a: &str, b: &str) -> bool {
        let aa = self.ancestors(a);
        if aa.is_empty() {
            return false;
        }
        let ba = self.ancestors(b);
        aa.iter()
            .any(|x| ba.iter().any(|y| x == y || self.are_synonyms(x, y)))
    }

    /// Number of synonym entries (distinct tokens appearing in sets).
    pub fn synonym_token_count(&self) -> usize {
        self.synset_of.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Thesaurus {
        let mut t = Thesaurus::new();
        t.add_synonyms(["writer", "author", "creator"]);
        t.add_synonyms(["book", "volume"]);
        t.add_hypernym("book", "publication");
        t.add_hypernym("publication", "work");
        t.add_acronym("uom", ["unit", "of", "measure"]);
        t.add_acronym("id", ["identifier"]);
        t.add_abbreviation("qty", "quantity");
        t.add_abbreviation("no", "number");
        t
    }

    #[test]
    fn synonyms_are_symmetric_and_case_insensitive_storage() {
        let t = sample();
        assert!(t.are_synonyms("writer", "author"));
        assert!(t.are_synonyms("creator", "writer"));
        assert!(!t.are_synonyms("writer", "book"));
        assert!(!t.are_synonyms("writer", "missing"));
    }

    #[test]
    fn synonym_sets_merge_transitively() {
        let mut t = Thesaurus::new();
        t.add_synonyms(["a", "b"]);
        t.add_synonyms(["c", "d"]);
        assert!(!t.are_synonyms("a", "c"));
        t.add_synonyms(["b", "c"]);
        assert!(t.are_synonyms("a", "d"), "merging must connect all four");
    }

    #[test]
    fn hypernyms_are_directional_and_transitive() {
        let t = sample();
        assert!(t.is_hypernym_of("publication", "book"));
        assert!(t.is_hypernym_of("work", "book"), "transitive closure");
        assert!(
            !t.is_hypernym_of("book", "publication"),
            "direction matters"
        );
        assert_eq!(t.relation("book", "publication"), Relation::Hypernym);
        assert_eq!(t.relation("publication", "book"), Relation::Hypernym);
    }

    #[test]
    fn hypernyms_respect_synonym_sets() {
        let t = sample();
        // volume is a synonym of book; book IS-A publication, but the edge
        // was declared on "book" — hypernymy is looked up through the target
        // token itself, while parents match through synonyms.
        let mut t2 = t.clone();
        t2.add_hypernym("volume", "publication");
        assert!(t2.is_hypernym_of("publication", "volume"));
    }

    #[test]
    fn abbreviations_and_relation_grade() {
        let t = sample();
        assert!(t.is_abbreviation_of("qty", "quantity"));
        assert!(
            !t.is_abbreviation_of("quantity", "qty"),
            "lookup is by short form"
        );
        assert_eq!(t.relation("qty", "quantity"), Relation::Abbreviation);
        assert_eq!(t.relation("quantity", "qty"), Relation::Abbreviation);
        assert_eq!(t.relation("no", "number"), Relation::Abbreviation);
    }

    #[test]
    fn single_word_acronym_expansion_matches() {
        let t = sample();
        assert_eq!(t.relation("id", "identifier"), Relation::Acronym);
        // Multi-word expansions are not token-level relations.
        assert_eq!(t.relation("uom", "unit"), Relation::Unrelated);
        assert_eq!(t.acronym_expansions("uom").len(), 1);
        assert!(t.acronym_expansions("zzz").is_empty());
    }

    #[test]
    fn relation_folds_mixed_case_once() {
        let t = sample();
        // The string entry point is case-insensitive...
        assert_eq!(t.relation("Writer", "AUTHOR"), Relation::Synonym);
        assert_eq!(t.relation("QTY", "Quantity"), Relation::Abbreviation);
        // ...and the pre-folded path sees exactly what it was given.
        assert_eq!(t.relation_folded("writer", "author"), Relation::Synonym);
        assert_eq!(t.relation_folded("Writer", "author"), Relation::Unrelated);
    }

    #[test]
    fn relation_priority_same_beats_everything() {
        let t = sample();
        assert_eq!(t.relation("book", "book"), Relation::Same);
        assert_eq!(t.relation("writer", "author"), Relation::Synonym);
        assert_eq!(t.relation("head", "legs"), Relation::Unrelated);
    }

    #[test]
    fn relation_ordering_matches_strength() {
        assert!(Relation::Same < Relation::Synonym);
        assert!(Relation::Synonym < Relation::Abbreviation);
        assert!(Relation::Abbreviation < Relation::Acronym);
        assert!(Relation::Acronym < Relation::Hypernym);
        assert!(Relation::Hypernym < Relation::Unrelated);
    }

    #[test]
    fn cyclic_hypernym_data_terminates() {
        let mut t = Thesaurus::new();
        t.add_hypernym("a", "b");
        t.add_hypernym("b", "a");
        assert!(t.is_hypernym_of("b", "a"));
        assert!(!t.is_hypernym_of("c", "a"));
    }

    #[test]
    fn synonym_token_count_reflects_entries() {
        let t = sample();
        assert_eq!(t.synonym_token_count(), 5);
    }

    #[test]
    fn canonical_is_the_smallest_set_member() {
        let t = sample();
        // {writer, author, creator} -> "author"; {book, volume} -> "book".
        assert_eq!(t.canonical_folded("writer"), Some("author"));
        assert_eq!(t.canonical_folded("creator"), Some("author"));
        assert_eq!(t.canonical_folded("author"), Some("author"));
        assert_eq!(t.canonical_folded("volume"), Some("book"));
        // Short forms resolve through their full form's set.
        assert_eq!(t.canonical_folded("qty"), Some("quantity"));
        assert_eq!(t.canonical_folded("id"), Some("identifier"));
        // Unknown tokens have no concept representative.
        assert_eq!(t.canonical_folded("zeppelin"), None);
        // Hypernym-only tokens are not canonicalized (direction matters).
        assert_eq!(t.canonical_folded("publication"), None);
    }

    #[test]
    fn canonical_survives_set_merges_order_independently() {
        let mut fwd = Thesaurus::new();
        fwd.add_synonyms(["m", "z"]);
        fwd.add_synonyms(["z", "a"]);
        let mut rev = Thesaurus::new();
        rev.add_synonyms(["z", "a"]);
        rev.add_synonyms(["m", "z"]);
        for t in [&fwd, &rev] {
            assert_eq!(t.canonical_folded("m"), Some("a"));
            assert_eq!(t.canonical_folded("z"), Some("a"));
        }
    }

    #[test]
    fn ancestors_expose_the_transitive_closure() {
        let t = sample();
        let a = t.ancestors_folded("book");
        assert!(a.contains(&"publication".to_owned()));
        assert!(a.contains(&"work".to_owned()), "transitive: {a:?}");
        assert!(t.ancestors_folded("work").is_empty());
        assert!(t.ancestors_folded("zeppelin").is_empty());
    }
}
