//! Identifier tokenization.
//!
//! Schema labels come in many shapes — `OrderNo`, `purchase_order`,
//! `Unit Of Measure`, `ship-to`, `Item#`, `PO2` — and every linguistic
//! comparison starts by splitting them into normalized lowercase word
//! tokens. Splits happen at case boundaries (camelCase and ALLCAPSRun
//! boundaries), at non-alphanumeric separators, and between letters and
//! digits. A few symbol tokens with conventional readings (`#` → "number",
//! `%` → "percent", `&` → "and") are translated rather than dropped.

/// A normalized (lowercase) word or number token.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub String);

impl Token {
    /// The token text.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// True if the token is entirely digits.
    pub fn is_numeric(&self) -> bool {
        !self.0.is_empty() && self.0.bytes().all(|b| b.is_ascii_digit())
    }
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Token {
    fn from(s: &str) -> Self {
        Token(s.to_lowercase())
    }
}

/// Splits an identifier into normalized tokens.
///
/// ```
/// use qmatch_lexicon::tokenize;
/// let toks: Vec<String> = tokenize("PurchaseOrderNo2").into_iter().map(|t| t.0).collect();
/// assert_eq!(toks, ["purchase", "order", "no", "2"]);
/// ```
pub fn tokenize(label: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut word = String::new();
    let chars: Vec<char> = label.chars().collect();
    let flush = |word: &mut String, tokens: &mut Vec<Token>| {
        if !word.is_empty() {
            tokens.push(Token(word.to_lowercase()));
            word.clear();
        }
    };
    for (i, &c) in chars.iter().enumerate() {
        if c.is_alphanumeric() {
            let boundary = if let Some(last) = word.chars().last() {
                let digit_boundary = last.is_ascii_digit() != c.is_ascii_digit();
                // camelCase boundary: lower→Upper.
                let camel = last.is_lowercase() && c.is_uppercase();
                // ALLCAPSRun boundary: "XMLSchema" splits before "Schema" —
                // an uppercase letter followed by a lowercase one ends the run.
                let caps_run = last.is_uppercase()
                    && c.is_uppercase()
                    && chars.get(i + 1).is_some_and(|n| n.is_lowercase());
                digit_boundary || camel || caps_run
            } else {
                false
            };
            if boundary {
                flush(&mut word, &mut tokens);
            }
            word.push(c);
        } else {
            flush(&mut word, &mut tokens);
            match c {
                '#' => tokens.push(Token("number".into())),
                '%' => tokens.push(Token("percent".into())),
                '&' => tokens.push(Token("and".into())),
                _ => {} // separator
            }
        }
    }
    flush(&mut word, &mut tokens);
    tokens
}

/// Joins tokens back into a canonical single string (used as a cache key and
/// for whole-label comparisons).
pub fn canonical(tokens: &[Token]) -> String {
    let mut out = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(t.as_str());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokenize(s).into_iter().map(|t| t.0).collect()
    }

    #[test]
    fn splits_camel_case() {
        assert_eq!(toks("PurchaseOrder"), ["purchase", "order"]);
        assert_eq!(toks("orderNo"), ["order", "no"]);
        assert_eq!(toks("shipToAddress"), ["ship", "to", "address"]);
    }

    #[test]
    fn splits_snake_kebab_and_spaces() {
        assert_eq!(toks("purchase_order"), ["purchase", "order"]);
        assert_eq!(toks("ship-to"), ["ship", "to"]);
        assert_eq!(toks("Unit Of Measure"), ["unit", "of", "measure"]);
        assert_eq!(toks("a.b/c"), ["a", "b", "c"]);
    }

    #[test]
    fn splits_letter_digit_boundaries() {
        assert_eq!(toks("PO1"), ["po", "1"]);
        assert_eq!(toks("2ndLine"), ["2", "nd", "line"]);
        assert_eq!(toks("ISO8601Date"), ["iso", "8601", "date"]);
    }

    #[test]
    fn handles_allcaps_runs() {
        assert_eq!(toks("XMLSchema"), ["xml", "schema"]);
        assert_eq!(toks("UOM"), ["uom"]);
        assert_eq!(toks("PDBEntry"), ["pdb", "entry"]);
        assert_eq!(toks("HTTPSPort"), ["https", "port"]);
    }

    #[test]
    fn translates_symbol_tokens() {
        assert_eq!(toks("Item#"), ["item", "number"]);
        assert_eq!(toks("discount%"), ["discount", "percent"]);
        assert_eq!(toks("B&B"), ["b", "and", "b"]);
    }

    #[test]
    fn empty_and_separator_only_labels() {
        assert!(toks("").is_empty());
        assert!(toks("___--  ..").is_empty());
    }

    #[test]
    fn token_helpers() {
        let t = Token::from("Qty");
        assert_eq!(t.as_str(), "qty");
        assert!(!t.is_numeric());
        assert!(Token::from("42").is_numeric());
        assert!(!Token::from("").is_numeric());
        assert_eq!(Token::from("X").to_string(), "x");
    }

    #[test]
    fn canonical_joins_with_spaces() {
        assert_eq!(canonical(&tokenize("PurchaseOrderNo")), "purchase order no");
        assert_eq!(canonical(&[]), "");
    }

    #[test]
    fn unicode_labels_tokenize() {
        assert_eq!(toks("libroVéhicule"), ["libro", "véhicule"]);
    }
}
