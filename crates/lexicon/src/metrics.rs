//! String similarity metrics.
//!
//! All metrics return a similarity in `[0, 1]` where `1.0` means identical.
//! They operate on `char`s (not bytes), so multi-byte labels behave
//! correctly. These are the fuzzy fallback beneath the thesaurus-driven
//! grades: when two tokens share no lexical relation, the matchers use
//! [`combined_similarity`].

/// Levenshtein edit distance (insertions, deletions, substitutions).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Two-row DP.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j + 1] + 1).min(cur[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity: `1 - dist / max_len`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

/// Jaro similarity.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_taken = vec![false; b.len()];
    let mut matches_a: Vec<char> = Vec::new();
    let mut matches_b_idx: Vec<usize> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_taken[j] && b[j] == ca {
                b_taken[j] = true;
                matches_a.push(ca);
                matches_b_idx.push(j);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare matched characters in order of b.
    let mut sorted_idx = matches_b_idx.clone();
    sorted_idx.sort_unstable();
    let matched_b: Vec<char> = sorted_idx.iter().map(|&j| b[j]).collect();
    let t = matches_a
        .iter()
        .zip(&matched_b)
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard 0.1 prefix scale (max 4 chars).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * 0.1 * (1.0 - j)
}

/// Dice coefficient over character bigrams.
pub fn bigram_dice(a: &str, b: &str) -> f64 {
    ngram_dice(a, b, 2)
}

/// Dice coefficient over character trigrams.
pub fn trigram_dice(a: &str, b: &str) -> f64 {
    ngram_dice(a, b, 3)
}

/// Dice coefficient over character n-grams; identical strings score 1.0 even
/// when shorter than `n`.
pub fn ngram_dice(a: &str, b: &str, n: usize) -> f64 {
    debug_assert!(n > 0);
    if a == b {
        return 1.0;
    }
    let grams = |s: &str| -> Vec<Vec<char>> {
        let cs: Vec<char> = s.chars().collect();
        if cs.len() < n {
            return Vec::new();
        }
        cs.windows(n).map(|w| w.to_vec()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut gb_used = vec![false; gb.len()];
    let mut common = 0usize;
    for g in &ga {
        if let Some(pos) = gb
            .iter()
            .enumerate()
            .position(|(j, h)| !gb_used[j] && h == g)
        {
            gb_used[pos] = true;
            common += 1;
        }
    }
    2.0 * common as f64 / (ga.len() + gb.len()) as f64
}

/// Length of the longest common subsequence.
pub fn lcs_len(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut cur = vec![0usize; b.len() + 1];
    for &ca in &a {
        for (j, &cb) in b.iter().enumerate() {
            cur[j + 1] = if ca == cb {
                prev[j] + 1
            } else {
                cur[j].max(prev[j + 1])
            };
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// LCS similarity: `lcs / max_len`.
pub fn lcs_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    lcs_len(a, b) as f64 / max_len as f64
}

/// Shared-prefix ratio: `common_prefix / max_len`.
pub fn prefix_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    let common = a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count();
    common as f64 / max_len as f64
}

/// The fuzzy similarity the matchers use for unrelated tokens: the maximum
/// of Jaro–Winkler and bigram Dice, which behaves well on both short
/// (`qty`/`qnty`) and long (`shipping`/`shippingaddress`) identifiers.
pub fn combined_similarity(a: &str, b: &str) -> f64 {
    jaro_winkler(a, b).max(bigram_dice(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn levenshtein_similarity_normalizes() {
        assert_close(levenshtein_similarity("", ""), 1.0);
        assert_close(levenshtein_similarity("abc", "abc"), 1.0);
        assert_close(levenshtein_similarity("abcd", "abXd"), 0.75);
        assert_close(levenshtein_similarity("a", "z"), 0.0);
    }

    #[test]
    fn jaro_reference_values() {
        // Classic reference pairs.
        assert_close(jaro("MARTHA", "MARHTA"), 0.9444444444444445);
        assert_close(jaro("DIXON", "DICKSONX"), 0.7666666666666666);
        assert_close(jaro("", ""), 1.0);
        assert_close(jaro("a", ""), 0.0);
        assert_close(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_reference_values() {
        assert_close(jaro_winkler("MARTHA", "MARHTA"), 0.9611111111111111);
        assert_close(jaro_winkler("DIXON", "DICKSONX"), 0.8133333333333332);
        assert_close(jaro_winkler("identical", "identical"), 1.0);
    }

    #[test]
    fn jaro_winkler_is_symmetric_and_bounded() {
        let pairs = [
            ("quantity", "qty"),
            ("order", "ordre"),
            ("x", "xyzzy"),
            ("", "a"),
        ];
        for (a, b) in pairs {
            let ab = jaro_winkler(a, b);
            let ba = jaro_winkler(b, a);
            assert_close(ab, ba);
            assert!((0.0..=1.0).contains(&ab));
        }
    }

    #[test]
    fn dice_coefficients() {
        assert_close(bigram_dice("night", "nacht"), 0.25);
        assert_close(bigram_dice("same", "same"), 1.0);
        assert_close(bigram_dice("a", "a"), 1.0); // shorter than the n-gram
        assert_close(bigram_dice("a", "b"), 0.0);
        assert_close(trigram_dice("abcde", "abcde"), 1.0);
        assert!(trigram_dice("abcdef", "abcxef") < 1.0);
    }

    #[test]
    fn dice_handles_repeated_ngrams() {
        // "aaaa" has bigrams {aa, aa, aa}; "aa" has {aa}. Multiset matching
        // must count the shared bigram once.
        assert_close(ngram_dice("aaaa", "aa", 2), 2.0 * 1.0 / 4.0);
    }

    #[test]
    fn lcs_basics() {
        assert_eq!(lcs_len("abcde", "ace"), 3);
        assert_eq!(lcs_len("", "abc"), 0);
        assert_eq!(lcs_len("abc", "abc"), 3);
        assert_eq!(lcs_len("qty", "quantity"), 3);
        assert_close(lcs_similarity("qty", "quantity"), 3.0 / 8.0);
        assert_close(lcs_similarity("", ""), 1.0);
    }

    #[test]
    fn prefix_similarity_basics() {
        assert_close(prefix_similarity("order", "orders"), 5.0 / 6.0);
        assert_close(prefix_similarity("abc", "xbc"), 0.0);
        assert_close(prefix_similarity("", ""), 1.0);
    }

    #[test]
    fn combined_similarity_reasonable_on_schema_tokens() {
        assert!(combined_similarity("quantity", "quantity") == 1.0);
        assert!(combined_similarity("quantity", "qnty") > 0.7);
        assert!(combined_similarity("orderno", "ordernumber") > 0.7);
        assert!(combined_similarity("head", "legs") <= 0.5);
    }

    #[test]
    fn all_metrics_handle_unicode() {
        assert!(levenshtein_similarity("véhicule", "vehicule") > 0.8);
        assert!(jaro_winkler("élan", "élan") == 1.0);
        assert!(bigram_dice("日本語", "日本") > 0.0);
    }
}
