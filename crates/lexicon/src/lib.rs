#![warn(missing_docs)]

//! Linguistic substrate for QMatch: identifier tokenization, string
//! similarity metrics, and an embedded domain thesaurus.
//!
//! The paper's label-axis match grades (§2.1) are driven by a linguistic
//! matcher in the style of CUPID, which the authors back with a WordNet-like
//! resource. No offline WordNet is available in this environment, so this
//! crate ships a curated [`Thesaurus`] with the same interface semantics:
//!
//! - **exact** label match = identical string, or synonym/ontology match;
//! - **relaxed** label match = hypernym, acronym, or abbreviation match;
//! - anything else falls back to fuzzy string metrics.
//!
//! The built-in thesaurus ([`builtin::default_thesaurus`]) covers the
//! domains the paper evaluates: purchase orders / inventory, books and
//! publications, proteins, the library example (Fig. 7), and human anatomy
//! (Fig. 8), plus generic data-modeling vocabulary.
//!
//! # Example
//!
//! ```
//! use qmatch_lexicon::{NameMatcher, LabelGrade};
//!
//! let matcher = NameMatcher::with_default_thesaurus();
//! // "Unit Of Measure" vs the acronym "UOM": a relaxed match (paper §2.1).
//! let m = matcher.compare("Unit Of Measure", "UOM");
//! assert_eq!(m.grade, LabelGrade::Relaxed);
//! // "OrderNo" vs "OrderNo": exact.
//! assert_eq!(matcher.compare("OrderNo", "OrderNo").grade, LabelGrade::Exact);
//! ```

pub mod builtin;
pub mod metrics;
pub mod name_match;
pub mod thesaurus;
pub mod thesaurus_file;
pub mod tokenize;

pub use name_match::{LabelGrade, NameMatch, NameMatcher};
pub use thesaurus::{Relation, Thesaurus};
pub use thesaurus_file::{extend_from_text, parse_thesaurus};
pub use tokenize::{tokenize, Token};
