//! A plain-text format for thesaurus extensions, so domain vocabulary can be
//! supplied without recompiling (the paper: the linguistic component "can be
//! easily replaced").
//!
//! ```text
//! # aviation domain
//! syn: aerodrome, airport, airfield
//! hyp: runway < aerodrome
//! acr: atc = air traffic control
//! abbr: dep = departure
//! ```
//!
//! One directive per line; `#` starts a comment. Directives:
//!
//! | directive | meaning |
//! |---|---|
//! | `syn: w1, w2, ...`  | the words form a synonym set |
//! | `hyp: child < parent` | `child` IS-A `parent` |
//! | `acr: short = w1 w2 ...` | `short` is an acronym for the phrase |
//! | `abbr: short = full` | `short` abbreviates `full` |

use crate::thesaurus::Thesaurus;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThesaurusParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ThesaurusParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thesaurus line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ThesaurusParseError {}

/// Parses thesaurus-extension text into (and on top of) `base`.
pub fn extend_from_text(base: &mut Thesaurus, text: &str) -> Result<usize, ThesaurusParseError> {
    let mut directives = 0usize;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if content.is_empty() {
            continue;
        }
        let err = |message: String| ThesaurusParseError { line, message };
        let Some((directive, body)) = content.split_once(':') else {
            return Err(err(format!("expected 'directive: ...', got {content:?}")));
        };
        let body = body.trim();
        match directive.trim() {
            "syn" => {
                let words: Vec<&str> = body
                    .split(',')
                    .map(str::trim)
                    .filter(|w| !w.is_empty())
                    .collect();
                if words.len() < 2 {
                    return Err(err("syn needs at least two comma-separated words".into()));
                }
                base.add_synonyms(words);
            }
            "hyp" => {
                let Some((child, parent)) = body.split_once('<') else {
                    return Err(err("hyp needs 'child < parent'".into()));
                };
                let (child, parent) = (child.trim(), parent.trim());
                if child.is_empty() || parent.is_empty() {
                    return Err(err("hyp needs 'child < parent'".into()));
                }
                base.add_hypernym(child, parent);
            }
            "acr" => {
                let Some((short, expansion)) = body.split_once('=') else {
                    return Err(err("acr needs 'short = word word ...'".into()));
                };
                let short = short.trim();
                let words: Vec<&str> = expansion.split_whitespace().collect();
                if short.is_empty() || words.is_empty() {
                    return Err(err("acr needs 'short = word word ...'".into()));
                }
                base.add_acronym(short, words);
            }
            "abbr" => {
                let Some((short, full)) = body.split_once('=') else {
                    return Err(err("abbr needs 'short = full'".into()));
                };
                let (short, full) = (short.trim(), full.trim());
                if short.is_empty() || full.is_empty() || full.contains(char::is_whitespace) {
                    return Err(err("abbr needs 'short = full' (one word each)".into()));
                }
                base.add_abbreviation(short, full);
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
        directives += 1;
    }
    Ok(directives)
}

/// Parses thesaurus-extension text into a fresh thesaurus.
pub fn parse_thesaurus(text: &str) -> Result<Thesaurus, ThesaurusParseError> {
    let mut t = Thesaurus::new();
    extend_from_text(&mut t, text)?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thesaurus::Relation;

    const SAMPLE: &str = "\
# aviation domain
syn: aerodrome, airport, airfield
hyp: runway < aerodrome
acr: atc = air traffic control   # tower
abbr: dep = departure
";

    #[test]
    fn parses_all_directives() {
        let t = parse_thesaurus(SAMPLE).unwrap();
        assert!(t.are_synonyms("airport", "airfield"));
        assert!(t.is_hypernym_of("aerodrome", "runway"));
        assert_eq!(
            t.acronym_expansions("atc")[0],
            ["air", "traffic", "control"]
        );
        assert!(t.is_abbreviation_of("dep", "departure"));
    }

    #[test]
    fn extends_an_existing_thesaurus() {
        let mut t = crate::builtin::default_thesaurus();
        let n = extend_from_text(&mut t, SAMPLE).unwrap();
        assert_eq!(n, 4);
        // New vocabulary works...
        assert_eq!(t.relation("aerodrome", "airport"), Relation::Synonym);
        // ...and the builtin entries survive.
        assert_eq!(t.relation("writer", "author"), Relation::Synonym);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let t = parse_thesaurus("\n# only comments\n   \n").unwrap();
        assert_eq!(t.synonym_token_count(), 0);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_thesaurus("syn: a, b\nbogus line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_malformed_directives() {
        for bad in [
            "syn: onlyone",
            "hyp: no-separator",
            "hyp: < parent",
            "acr: =",
            "acr: x =",
            "abbr: q = two words",
            "abbr: =full",
            "zzz: what",
        ] {
            assert!(parse_thesaurus(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn case_is_normalized_like_the_api() {
        let t = parse_thesaurus("syn: Alpha, BETA\n").unwrap();
        assert!(t.are_synonyms("alpha", "beta"));
    }
}
