//! Structural profile of a schema tree: the summary statistics Table 1
//! reports (element count, max depth) plus the shape measures that explain
//! matcher behaviour (fan-out, leaf ratio, type distribution).

use crate::tree::{DataType, NodeKind, SchemaTree};
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics for one schema tree.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeProfile {
    /// Total nodes (elements + attributes).
    pub nodes: usize,
    /// Element nodes (what Table 1 counts).
    pub elements: usize,
    /// Attribute nodes.
    pub attributes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Maximum depth (edges from the root).
    pub max_depth: u32,
    /// Mean children per internal node.
    pub mean_fanout: f64,
    /// Maximum children on any node.
    pub max_fanout: usize,
    /// Node count per resolved data type (display name), sorted by name.
    pub type_histogram: BTreeMap<String, usize>,
}

impl TreeProfile {
    /// Computes the profile of `tree`.
    pub fn of(tree: &SchemaTree) -> TreeProfile {
        let mut elements = 0usize;
        let mut attributes = 0usize;
        let mut leaves = 0usize;
        let mut internal = 0usize;
        let mut child_total = 0usize;
        let mut max_fanout = 0usize;
        let mut type_histogram: BTreeMap<String, usize> = BTreeMap::new();
        for (_, node) in tree.iter() {
            match node.kind {
                NodeKind::Element => elements += 1,
                NodeKind::Attribute => attributes += 1,
            }
            if node.is_leaf() {
                leaves += 1;
            } else {
                internal += 1;
                child_total += node.children.len();
                max_fanout = max_fanout.max(node.children.len());
            }
            let type_name = match &node.properties.data_type {
                DataType::Builtin(b) => b.to_string(),
                DataType::Complex(_) => "complex".to_owned(),
            };
            *type_histogram.entry(type_name).or_insert(0) += 1;
        }
        TreeProfile {
            nodes: tree.len(),
            elements,
            attributes,
            leaves,
            max_depth: tree.max_depth(),
            mean_fanout: if internal == 0 {
                0.0
            } else {
                child_total as f64 / internal as f64
            },
            max_fanout,
            type_histogram,
        }
    }

    /// Fraction of nodes that are leaves.
    pub fn leaf_ratio(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.leaves as f64 / self.nodes as f64
        }
    }
}

impl fmt::Display for TreeProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} nodes ({} elements, {} attributes), {} leaves ({:.0}%), depth {}",
            self.nodes,
            self.elements,
            self.attributes,
            self.leaves,
            self.leaf_ratio() * 100.0,
            self.max_depth
        )?;
        writeln!(
            f,
            "fan-out: mean {:.1}, max {}",
            self.mean_fanout, self.max_fanout
        )?;
        write!(f, "types:")?;
        for (name, count) in &self.type_histogram {
            write!(f, " {name}×{count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;

    const SRC: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="r">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="a" type="xs:string"/>
            <xs:element name="b" type="xs:string"/>
            <xs:element name="c">
              <xs:complexType><xs:sequence>
                <xs:element name="d" type="xs:integer"/>
              </xs:sequence></xs:complexType>
            </xs:element>
          </xs:sequence>
          <xs:attribute name="id" type="xs:ID" use="required"/>
        </xs:complexType>
      </xs:element>
    </xs:schema>"#;

    #[test]
    fn counts_are_consistent() {
        let tree = SchemaTree::compile(&parse_schema(SRC).unwrap()).unwrap();
        let p = TreeProfile::of(&tree);
        assert_eq!(p.nodes, 6);
        assert_eq!(p.elements, 5);
        assert_eq!(p.attributes, 1);
        assert_eq!(p.leaves, 4); // a, b, d, @id
        assert_eq!(p.max_depth, 2);
        assert_eq!(p.max_fanout, 4); // r: a, b, c, @id
        assert!((p.mean_fanout - 2.5).abs() < 1e-12); // (4 + 1) / 2 internals
        assert!((p.leaf_ratio() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn type_histogram_tracks_resolved_types() {
        let tree = SchemaTree::compile(&parse_schema(SRC).unwrap()).unwrap();
        let p = TreeProfile::of(&tree);
        assert_eq!(p.type_histogram.get("string"), Some(&2));
        assert_eq!(p.type_histogram.get("integer"), Some(&1));
        assert_eq!(p.type_histogram.get("ID"), Some(&1));
        assert_eq!(p.type_histogram.get("complex"), Some(&2)); // r, c
    }

    #[test]
    fn display_is_informative() {
        let tree = SchemaTree::compile(&parse_schema(SRC).unwrap()).unwrap();
        let text = TreeProfile::of(&tree).to_string();
        assert!(text.contains("6 nodes"), "{text}");
        assert!(text.contains("depth 2"), "{text}");
        assert!(text.contains("string×2"), "{text}");
    }

    #[test]
    fn single_leaf_tree_profile() {
        let tree = SchemaTree::from_labels("x", &[("x", None)]);
        let p = TreeProfile::of(&tree);
        assert_eq!(p.nodes, 1);
        assert_eq!(p.leaves, 1);
        assert_eq!(p.mean_fanout, 0.0);
        assert_eq!(p.max_fanout, 0);
        assert_eq!(p.leaf_ratio(), 1.0);
    }
}
