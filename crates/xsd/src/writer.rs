//! XSD serialization: render a [`Schema`] model back to schema-document
//! text. `parse_schema(&write_schema(&s))` reproduces the model exactly
//! (round-trip property tests live in the workspace test suite).

use crate::model::{
    AttributeDecl, AttributeUse, ComplexType, ElementDecl, Facet, MaxOccurs, Particle, Schema,
    SimpleType, TypeDef, TypeRef,
};
use qmatch_xml::escape::escape_attr;
use std::fmt::Write as _;

/// Renders a complete schema document with the conventional `xs:` prefix.
pub fn write_schema(schema: &Schema) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("<?xml version=\"1.0\"?>\n");
    out.push_str("<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\"");
    if let Some(tns) = &schema.target_namespace {
        let _ = write!(out, " targetNamespace=\"{}\"", escape_attr(tns));
    }
    out.push_str(">\n");
    let w = Writer { indent: 1 };
    for element in &schema.elements {
        w.element(&mut out, element);
    }
    for attribute in &schema.attributes {
        w.attribute(&mut out, attribute);
    }
    for (name, def) in &schema.types {
        match def {
            TypeDef::Complex(ct) => w.complex_type(&mut out, Some(name), ct),
            TypeDef::Simple(st) => w.simple_type(&mut out, Some(name), st),
        }
    }
    for (name, particle) in &schema.groups {
        w.group(&mut out, name, particle);
    }
    for (name, attrs) in &schema.attribute_groups {
        w.attribute_group(&mut out, name, attrs);
    }
    out.push_str("</xs:schema>\n");
    out
}

struct Writer {
    indent: usize,
}

impl Writer {
    fn pad(&self) -> String {
        "  ".repeat(self.indent)
    }

    fn deeper(&self) -> Writer {
        Writer {
            indent: self.indent + 1,
        }
    }

    fn occurs_attrs(min: u32, max: MaxOccurs) -> String {
        let mut s = String::new();
        if min != 1 {
            let _ = write!(s, " minOccurs=\"{min}\"");
        }
        if max != MaxOccurs::Bounded(1) {
            let _ = write!(s, " maxOccurs=\"{max}\"");
        }
        s
    }

    fn type_name(type_ref: &TypeRef) -> Option<String> {
        match type_ref {
            TypeRef::Builtin(b) => Some(format!("xs:{b}")),
            TypeRef::Named(n) => Some(n.clone()),
            TypeRef::Inline(_) | TypeRef::Unspecified => None,
        }
    }

    fn element(&self, out: &mut String, decl: &ElementDecl) {
        let pad = self.pad();
        let _ = write!(out, "{pad}<xs:element");
        if let Some(target) = &decl.reference {
            let _ = write!(out, " ref=\"{}\"", escape_attr(target));
        } else {
            let _ = write!(out, " name=\"{}\"", escape_attr(&decl.name));
        }
        if let Some(t) = Self::type_name(&decl.type_ref) {
            let _ = write!(out, " type=\"{}\"", escape_attr(&t));
        }
        out.push_str(&Self::occurs_attrs(decl.min_occurs, decl.max_occurs));
        if decl.nillable {
            out.push_str(" nillable=\"true\"");
        }
        if let Some(d) = &decl.default {
            let _ = write!(out, " default=\"{}\"", escape_attr(d));
        }
        if let Some(fx) = &decl.fixed {
            let _ = write!(out, " fixed=\"{}\"", escape_attr(fx));
        }
        if let TypeRef::Inline(def) = &decl.type_ref {
            out.push_str(">\n");
            match def.as_ref() {
                TypeDef::Complex(ct) => self.deeper().complex_type(out, None, ct),
                TypeDef::Simple(st) => self.deeper().simple_type(out, None, st),
            }
            let _ = writeln!(out, "{pad}</xs:element>");
        } else {
            out.push_str("/>\n");
        }
    }

    fn attribute(&self, out: &mut String, decl: &AttributeDecl) {
        let pad = self.pad();
        let _ = write!(out, "{pad}<xs:attribute");
        if let Some(target) = &decl.reference {
            let _ = write!(out, " ref=\"{}\"", escape_attr(target));
        } else {
            let _ = write!(out, " name=\"{}\"", escape_attr(&decl.name));
        }
        if let Some(t) = Self::type_name(&decl.type_ref) {
            let _ = write!(out, " type=\"{}\"", escape_attr(&t));
        }
        match decl.required {
            AttributeUse::Optional => {}
            AttributeUse::Required => out.push_str(" use=\"required\""),
            AttributeUse::Prohibited => out.push_str(" use=\"prohibited\""),
        }
        if let Some(d) = &decl.default {
            let _ = write!(out, " default=\"{}\"", escape_attr(d));
        }
        if let Some(fx) = &decl.fixed {
            let _ = write!(out, " fixed=\"{}\"", escape_attr(fx));
        }
        if let TypeRef::Inline(def) = &decl.type_ref {
            out.push_str(">\n");
            if let TypeDef::Simple(st) = def.as_ref() {
                self.deeper().simple_type(out, None, st);
            }
            let _ = writeln!(out, "{pad}</xs:attribute>");
        } else {
            out.push_str("/>\n");
        }
    }

    fn complex_type(&self, out: &mut String, name: Option<&str>, ct: &ComplexType) {
        let pad = self.pad();
        let _ = write!(out, "{pad}<xs:complexType");
        if let Some(n) = name {
            let _ = write!(out, " name=\"{}\"", escape_attr(n));
        }
        if ct.mixed {
            out.push_str(" mixed=\"true\"");
        }
        out.push_str(">\n");
        let inner = self.deeper();
        if let Some(base) = &ct.simple_base {
            let base_name = Self::type_name(base).unwrap_or_else(|| "xs:string".to_owned());
            let _ = writeln!(out, "{}<xs:simpleContent>", inner.pad());
            let body = inner.deeper();
            let _ = writeln!(
                out,
                "{}<xs:extension base=\"{}\">",
                body.pad(),
                escape_attr(&base_name)
            );
            for attr in &ct.attributes {
                body.deeper().attribute(out, attr);
            }
            let _ = writeln!(out, "{}</xs:extension>", body.pad());
            let _ = writeln!(out, "{}</xs:simpleContent>", inner.pad());
        } else if let Some(base) = &ct.complex_base {
            let _ = writeln!(out, "{}<xs:complexContent>", inner.pad());
            let body = inner.deeper();
            let _ = writeln!(
                out,
                "{}<xs:extension base=\"{}\">",
                body.pad(),
                escape_attr(base)
            );
            let members = body.deeper();
            if let Some(content) = &ct.content {
                members.particle(out, content);
            }
            for attr in &ct.attributes {
                members.attribute(out, attr);
            }
            for group in &ct.attribute_group_refs {
                let _ = writeln!(
                    out,
                    "{}<xs:attributeGroup ref=\"{}\"/>",
                    members.pad(),
                    escape_attr(group)
                );
            }
            let _ = writeln!(out, "{}</xs:extension>", body.pad());
            let _ = writeln!(out, "{}</xs:complexContent>", inner.pad());
        } else {
            if let Some(content) = &ct.content {
                inner.particle(out, content);
            }
            for attr in &ct.attributes {
                inner.attribute(out, attr);
            }
            for group in &ct.attribute_group_refs {
                let _ = writeln!(
                    out,
                    "{}<xs:attributeGroup ref=\"{}\"/>",
                    inner.pad(),
                    escape_attr(group)
                );
            }
        }
        let _ = writeln!(out, "{pad}</xs:complexType>");
    }

    fn particle(&self, out: &mut String, particle: &Particle) {
        let pad = self.pad();
        match particle {
            Particle::Element(decl) => self.element(out, decl),
            Particle::Sequence {
                items,
                min_occurs,
                max_occurs,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}<xs:sequence{}>",
                    Self::occurs_attrs(*min_occurs, *max_occurs)
                );
                for item in items {
                    self.deeper().particle(out, item);
                }
                let _ = writeln!(out, "{pad}</xs:sequence>");
            }
            Particle::Choice {
                items,
                min_occurs,
                max_occurs,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}<xs:choice{}>",
                    Self::occurs_attrs(*min_occurs, *max_occurs)
                );
                for item in items {
                    self.deeper().particle(out, item);
                }
                let _ = writeln!(out, "{pad}</xs:choice>");
            }
            Particle::All { items, min_occurs } => {
                let _ = writeln!(
                    out,
                    "{pad}<xs:all{}>",
                    Self::occurs_attrs(*min_occurs, MaxOccurs::Bounded(1))
                );
                for item in items {
                    self.deeper().particle(out, item);
                }
                let _ = writeln!(out, "{pad}</xs:all>");
            }
            Particle::GroupRef {
                name,
                min_occurs,
                max_occurs,
            } => {
                let _ = writeln!(
                    out,
                    "{pad}<xs:group ref=\"{}\"{}/>",
                    escape_attr(name),
                    Self::occurs_attrs(*min_occurs, *max_occurs)
                );
            }
        }
    }

    fn simple_type(&self, out: &mut String, name: Option<&str>, st: &SimpleType) {
        let pad = self.pad();
        let _ = write!(out, "{pad}<xs:simpleType");
        if let Some(n) = name {
            let _ = write!(out, " name=\"{}\"", escape_attr(n));
        }
        out.push_str(">\n");
        let inner = self.deeper();
        match st {
            SimpleType::Restriction { base, facets } => {
                let base_name = Self::type_name(base).unwrap_or_else(|| "xs:string".to_owned());
                if facets.is_empty() {
                    let _ = writeln!(
                        out,
                        "{}<xs:restriction base=\"{}\"/>",
                        inner.pad(),
                        escape_attr(&base_name)
                    );
                } else {
                    let _ = writeln!(
                        out,
                        "{}<xs:restriction base=\"{}\">",
                        inner.pad(),
                        escape_attr(&base_name)
                    );
                    for facet in facets {
                        inner.deeper().facet(out, facet);
                    }
                    let _ = writeln!(out, "{}</xs:restriction>", inner.pad());
                }
            }
            SimpleType::List { item } => {
                let item_name = Self::type_name(item).unwrap_or_else(|| "xs:string".to_owned());
                let _ = writeln!(
                    out,
                    "{}<xs:list itemType=\"{}\"/>",
                    inner.pad(),
                    escape_attr(&item_name)
                );
            }
            SimpleType::Union { members } => {
                let names: Vec<String> = members.iter().filter_map(Self::type_name).collect();
                let _ = writeln!(
                    out,
                    "{}<xs:union memberTypes=\"{}\"/>",
                    inner.pad(),
                    escape_attr(&names.join(" "))
                );
            }
        }
        let _ = writeln!(out, "{pad}</xs:simpleType>");
    }

    fn facet(&self, out: &mut String, facet: &Facet) {
        let pad = self.pad();
        let (tag, value) = match facet {
            Facet::Enumeration(v) => ("enumeration", v.clone()),
            Facet::Pattern(v) => ("pattern", v.clone()),
            Facet::MinInclusive(v) => ("minInclusive", v.clone()),
            Facet::MaxInclusive(v) => ("maxInclusive", v.clone()),
            Facet::MinExclusive(v) => ("minExclusive", v.clone()),
            Facet::MaxExclusive(v) => ("maxExclusive", v.clone()),
            Facet::Length(n) => ("length", n.to_string()),
            Facet::MinLength(n) => ("minLength", n.to_string()),
            Facet::MaxLength(n) => ("maxLength", n.to_string()),
            Facet::TotalDigits(n) => ("totalDigits", n.to_string()),
            Facet::FractionDigits(n) => ("fractionDigits", n.to_string()),
            Facet::WhiteSpace(v) => ("whiteSpace", v.clone()),
        };
        let _ = writeln!(out, "{pad}<xs:{tag} value=\"{}\"/>", escape_attr(&value));
    }

    fn group(&self, out: &mut String, name: &str, particle: &Particle) {
        let pad = self.pad();
        let _ = writeln!(out, "{pad}<xs:group name=\"{}\">", escape_attr(name));
        self.deeper().particle(out, particle);
        let _ = writeln!(out, "{pad}</xs:group>");
    }

    fn attribute_group(&self, out: &mut String, name: &str, attrs: &[AttributeDecl]) {
        let pad = self.pad();
        let _ = writeln!(
            out,
            "{pad}<xs:attributeGroup name=\"{}\">",
            escape_attr(name)
        );
        for attr in attrs {
            self.deeper().attribute(out, attr);
        }
        let _ = writeln!(out, "{pad}</xs:attributeGroup>");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;

    /// Round-trip helper: the re-parsed model must equal the original.
    fn assert_round_trip(src: &str) {
        let original = parse_schema(src).expect("source parses");
        let rendered = write_schema(&original);
        let reparsed = parse_schema(&rendered)
            .unwrap_or_else(|e| panic!("rendered XSD must parse: {e}\n{rendered}"));
        assert_eq!(
            original, reparsed,
            "round trip changed the model:\n{rendered}"
        );
    }

    #[test]
    fn round_trips_elements_attributes_and_types() {
        assert_round_trip(
            r#"<xs:schema xmlns:xs="x" targetNamespace="urn:t">
              <xs:element name="PO" type="POType" nillable="true"/>
              <xs:attribute name="unit" type="xs:string" default="ea"/>
              <xs:complexType name="POType">
                <xs:sequence minOccurs="0" maxOccurs="2">
                  <xs:element name="OrderNo" type="xs:integer"/>
                  <xs:element name="Line" minOccurs="0" maxOccurs="unbounded">
                    <xs:complexType>
                      <xs:sequence><xs:element name="Qty" type="Q"/></xs:sequence>
                      <xs:attribute name="no" type="xs:positiveInteger" use="required"/>
                    </xs:complexType>
                  </xs:element>
                  <xs:choice><xs:element name="a" type="xs:string"/><xs:element name="b" type="xs:date"/></xs:choice>
                  <xs:all><xs:element name="c" type="xs:token"/></xs:all>
                </xs:sequence>
                <xs:attribute ref="unit"/>
              </xs:complexType>
              <xs:simpleType name="Q">
                <xs:restriction base="xs:integer">
                  <xs:minInclusive value="1"/><xs:maxInclusive value="99"/>
                </xs:restriction>
              </xs:simpleType>
            </xs:schema>"#,
        );
    }

    #[test]
    fn round_trips_groups() {
        assert_round_trip(
            r#"<xs:schema xmlns:xs="x">
              <xs:group name="Addr"><xs:sequence>
                <xs:element name="street" type="xs:string"/>
              </xs:sequence></xs:group>
              <xs:attributeGroup name="Audit">
                <xs:attribute name="by" type="xs:string" use="required"/>
              </xs:attributeGroup>
              <xs:element name="r"><xs:complexType>
                <xs:sequence><xs:group ref="Addr" maxOccurs="3"/></xs:sequence>
                <xs:attributeGroup ref="Audit"/>
              </xs:complexType></xs:element>
            </xs:schema>"#,
        );
    }

    #[test]
    fn round_trips_simple_type_varieties_and_fixed_values() {
        assert_round_trip(
            r#"<xs:schema xmlns:xs="x">
              <xs:simpleType name="Ints"><xs:list itemType="xs:int"/></xs:simpleType>
              <xs:simpleType name="U"><xs:union memberTypes="xs:int xs:boolean"/></xs:simpleType>
              <xs:simpleType name="Code">
                <xs:restriction base="xs:string">
                  <xs:enumeration value="A"/><xs:enumeration value="B"/>
                  <xs:length value="1"/><xs:pattern value="[AB]"/>
                </xs:restriction>
              </xs:simpleType>
              <xs:element name="r" type="Code" fixed="A"/>
            </xs:schema>"#,
        );
    }

    #[test]
    fn round_trips_the_whole_corpus() {
        // The embedded corpus schemas exercise most of the model.
        // (Checked here via the parser's own fixtures; the datasets corpus
        // round-trips in the workspace integration tests.)
        assert_round_trip(
            r#"<xs:schema xmlns:xs="x">
              <xs:complexType name="Price">
                <xs:simpleContent>
                  <xs:extension base="xs:decimal">
                    <xs:attribute name="currency" type="xs:string"/>
                  </xs:extension>
                </xs:simpleContent>
              </xs:complexType>
              <xs:element name="p" type="Price"/>
            </xs:schema>"#,
        );
    }

    #[test]
    fn escapes_special_characters_in_values() {
        assert_round_trip(
            r#"<xs:schema xmlns:xs="x">
              <xs:simpleType name="S">
                <xs:restriction base="xs:string">
                  <xs:enumeration value="a&lt;b &amp; c&gt;d"/>
                  <xs:pattern value="&quot;[a-z]+&quot;"/>
                </xs:restriction>
              </xs:simpleType>
              <xs:element name="r" type="S" default="&lt;none&gt;"/>
            </xs:schema>"#,
        );
    }

    #[test]
    fn element_refs_round_trip() {
        assert_round_trip(
            r#"<xs:schema xmlns:xs="x">
              <xs:element name="item" type="xs:string"/>
              <xs:element name="list"><xs:complexType><xs:sequence>
                <xs:element ref="item" minOccurs="2" maxOccurs="5"/>
              </xs:sequence></xs:complexType></xs:element>
            </xs:schema>"#,
        );
    }
}
