//! Instance-document validation against a parsed [`Schema`].
//!
//! Covers the subset the rest of the crate models: element content
//! (sequence / choice / all with occurrence bounds, resolved through named
//! types and model groups), attributes (required / prohibited / fixed), and
//! simple-type values (built-in lexical spaces plus the common constraining
//! facets). `xs:pattern` facets are accepted without evaluation — a regex
//! engine is out of scope — and mixed content permits interleaved text.
//!
//! The validator is *deterministic-greedy*: inside a sequence each particle
//! consumes as many matching children as its bounds allow before moving on.
//! This handles every deterministic content model (which the XSD spec's
//! Unique Particle Attribution rule all but requires) without backtracking.

use crate::error::XsdError;
use crate::model::{
    AttributeDecl, AttributeUse, ComplexType, ElementDecl, Facet, Particle, Schema, SimpleType,
    TypeDef, TypeRef,
};
use crate::types::BuiltinType;
use qmatch_xml::dom::{Document, Element, Node};
use std::fmt;

/// One validation problem, with the element path it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    /// Slash-joined element path from the root.
    pub path: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

impl std::error::Error for ValidationError {}

/// The outcome of validating a document.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValidationReport {
    /// All problems found (empty = valid).
    pub errors: Vec<ValidationError>,
}

impl ValidationReport {
    /// True when no problem was found.
    pub fn is_valid(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.errors.is_empty() {
            return f.write_str("valid");
        }
        for e in &self.errors {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

/// Parses instance-document text (a thin convenience over
/// [`Document::parse`] that converts the error type for callers working in
/// XSD terms).
pub fn parse_document(src: &str) -> Result<Document, XsdError> {
    Document::parse(src).map_err(XsdError::from)
}

/// Validates `document` against `schema`. The root element must match a
/// global element declaration by local name.
pub fn validate(document: &Document, schema: &Schema) -> Result<ValidationReport, XsdError> {
    let root = document.root();
    let Some(decl) = schema.element_by_name(root.name().local()) else {
        return Ok(ValidationReport {
            errors: vec![ValidationError {
                path: root.name().local().to_owned(),
                message: format!(
                    "no global element declaration named {:?}",
                    root.name().local()
                ),
            }],
        });
    };
    let mut validator = Validator {
        schema,
        errors: Vec::new(),
    };
    validator.element(root, decl, root.name().local());
    Ok(ValidationReport {
        errors: validator.errors,
    })
}

struct Validator<'s> {
    schema: &'s Schema,
    errors: Vec<ValidationError>,
}

impl<'s> Validator<'s> {
    fn report(&mut self, path: &str, message: String) {
        self.errors.push(ValidationError {
            path: path.to_owned(),
            message,
        });
    }

    fn element(&mut self, element: &Element, decl: &'s ElementDecl, path: &str) {
        // Follow a ref to the global declaration.
        let decl = match &decl.reference {
            Some(name) => self.schema.element_by_name(name).unwrap_or(decl),
            None => decl,
        };
        if let Some(fixed) = &decl.fixed {
            let text = element.text();
            let actual = text.trim();
            if !actual.is_empty() && actual != fixed {
                self.report(path, format!("fixed value is {fixed:?}, found {actual:?}"));
            }
        }
        match self.resolve(&decl.type_ref) {
            Resolved::Builtin(b) => {
                self.no_child_elements(element, path);
                self.no_attributes(element, path);
                self.simple_value(&element.text(), b, &[], path);
            }
            Resolved::Simple(st) => {
                self.no_child_elements(element, path);
                self.no_attributes(element, path);
                self.simple_type_value(&element.text(), st, path);
            }
            Resolved::Complex(ct) => self.complex(element, ct, path),
            Resolved::Any => { /* anyType: everything goes */ }
            Resolved::Missing(name) => {
                self.report(path, format!("declared type {name:?} is not defined"));
            }
        }
    }

    fn no_child_elements(&mut self, element: &Element, path: &str) {
        if let Some(child) = element.child_elements().next() {
            self.report(
                path,
                format!(
                    "simple content cannot contain element <{}>",
                    child.name().local()
                ),
            );
        }
    }

    fn no_attributes(&mut self, element: &Element, path: &str) {
        for attr in element.attributes() {
            if !is_namespace_attr(attr.name.raw()) {
                self.report(path, format!("unexpected attribute {:?}", attr.name.raw()));
            }
        }
    }

    fn complex(&mut self, element: &Element, ct: &'s ComplexType, path: &str) {
        let Ok((particles, attributes, groups)) =
            crate::resolve::effective_complex(self.schema, ct)
        else {
            self.report(path, "unresolvable complexContent base chain".to_owned());
            return;
        };
        self.attributes(element, &attributes, &groups, path);
        if let Some(base) = &ct.simple_base {
            // simpleContent: text validated against the base; no child elems.
            self.no_child_elements(element, path);
            match self.resolve(base) {
                Resolved::Builtin(b) => self.simple_value(&element.text(), b, &[], path),
                Resolved::Simple(st) => self.simple_type_value(&element.text(), st, path),
                _ => {}
            }
            return;
        }
        if !ct.mixed {
            for node in element.children() {
                if let Node::Text(t) = node {
                    if !t.trim().is_empty() {
                        self.report(path, format!("unexpected character data {:?}", t.trim()));
                        break;
                    }
                }
            }
        }
        let children: Vec<&Element> = element.child_elements().collect();
        let mut cursor = 0usize;
        for content in particles {
            self.particle(content, &children, &mut cursor, path, &mut Vec::new());
        }
        if cursor < children.len() {
            self.report(
                path,
                format!("unexpected element <{}>", children[cursor].name().local()),
            );
        }
    }

    fn attributes(
        &mut self,
        element: &Element,
        direct: &[&AttributeDecl],
        groups: &[&str],
        path: &str,
    ) {
        let mut declared: Vec<&AttributeDecl> = direct.to_vec();
        for group in groups {
            if let Some(attrs) = self.schema.attribute_group_by_name(group) {
                declared.extend(attrs.iter());
            }
        }
        // Resolve refs for name comparisons.
        let resolved: Vec<(&AttributeDecl, &str)> = declared
            .iter()
            .map(|d| {
                let target = match &d.reference {
                    Some(name) => self.schema.attribute_by_name(name).unwrap_or(d),
                    None => d,
                };
                (*d, target.name.as_str())
            })
            .collect();
        for attr in element.attributes() {
            if is_namespace_attr(attr.name.raw()) {
                continue;
            }
            match resolved.iter().find(|(_, name)| *name == attr.name.local()) {
                None => {
                    self.report(path, format!("unexpected attribute {:?}", attr.name.raw()));
                }
                Some((decl, _)) => {
                    if decl.required == AttributeUse::Prohibited {
                        self.report(
                            path,
                            format!("attribute {:?} is prohibited", attr.name.raw()),
                        );
                    }
                    if let Some(fixed) = &decl.fixed {
                        if attr.value != *fixed {
                            self.report(
                                path,
                                format!(
                                    "attribute {:?} must be fixed to {fixed:?}, found {:?}",
                                    attr.name.raw(),
                                    attr.value
                                ),
                            );
                        }
                    }
                    match self.resolve(&decl.type_ref) {
                        Resolved::Builtin(b) => self.simple_value(&attr.value, b, &[], path),
                        Resolved::Simple(st) => self.simple_type_value(&attr.value, st, path),
                        _ => {}
                    }
                }
            }
        }
        for (decl, name) in &resolved {
            if decl.required == AttributeUse::Required && element.attr_local(name).is_none() {
                self.report(path, format!("missing required attribute {name:?}"));
            }
        }
    }

    /// Greedy particle interpreter: consumes children starting at `cursor`.
    fn particle(
        &mut self,
        particle: &'s Particle,
        children: &[&Element],
        cursor: &mut usize,
        path: &str,
        groups_on_path: &mut Vec<&'s str>,
    ) {
        match particle {
            Particle::Element(decl) => {
                let target_name = match &decl.reference {
                    Some(name) => name.as_str(),
                    None => decl.name.as_str(),
                };
                let mut count = 0u32;
                while *cursor < children.len()
                    && children[*cursor].name().local() == target_name
                    && decl.max_occurs.allows(count + 1)
                {
                    let child = children[*cursor];
                    let child_path = format!("{path}/{target_name}");
                    self.element(child, decl, &child_path);
                    *cursor += 1;
                    count += 1;
                }
                if count < decl.min_occurs {
                    self.report(
                        path,
                        format!(
                            "expected at least {} <{target_name}> element(s), found {count}",
                            decl.min_occurs
                        ),
                    );
                }
            }
            Particle::Sequence {
                items,
                min_occurs,
                max_occurs,
            } => {
                let mut reps = 0u32;
                loop {
                    let before = *cursor;
                    if !max_occurs.allows(reps + 1) {
                        break;
                    }
                    // A repetition only counts if it consumes something (or
                    // is the first, required pass — which also surfaces
                    // min-occurs errors of inner particles).
                    if reps < *min_occurs {
                        for item in items {
                            self.particle(item, children, cursor, path, groups_on_path);
                        }
                        reps += 1;
                        continue;
                    }
                    // Optional further repetitions: dry-run by checking the
                    // first child; stop when nothing would be consumed.
                    if before >= children.len()
                        || !self.sequence_can_start(items, children[before], groups_on_path)
                    {
                        break;
                    }
                    for item in items {
                        self.particle(item, children, cursor, path, groups_on_path);
                    }
                    reps += 1;
                    if *cursor == before {
                        break; // safety: no progress
                    }
                }
            }
            Particle::Choice {
                items,
                min_occurs,
                max_occurs,
            } => {
                let mut reps = 0u32;
                while max_occurs.allows(reps + 1) {
                    let Some(next) = children.get(*cursor) else {
                        break;
                    };
                    let Some(alt) = items
                        .iter()
                        .find(|item| self.particle_can_start(item, next, groups_on_path))
                    else {
                        break;
                    };
                    let before = *cursor;
                    self.particle(alt, children, cursor, path, groups_on_path);
                    reps += 1;
                    if *cursor == before {
                        break;
                    }
                }
                if reps < *min_occurs {
                    self.report(path, "choice content is missing".to_owned());
                }
            }
            Particle::All { items, min_occurs } => {
                let mut seen = vec![0u32; items.len()];
                'outer: while *cursor < children.len() {
                    for (i, item) in items.iter().enumerate() {
                        if self.particle_can_start(item, children[*cursor], groups_on_path) {
                            let before = *cursor;
                            self.particle(item, children, cursor, path, groups_on_path);
                            seen[i] += 1;
                            if *cursor != before {
                                continue 'outer;
                            }
                        }
                    }
                    break;
                }
                if *min_occurs > 0 {
                    for (i, item) in items.iter().enumerate() {
                        if seen[i] == 0 {
                            if let Particle::Element(decl) = item {
                                if decl.min_occurs > 0 {
                                    self.report(
                                        path,
                                        format!("missing <{}> in all-group", decl.name),
                                    );
                                }
                            }
                        }
                    }
                }
            }
            Particle::GroupRef { name, .. } => {
                if groups_on_path.iter().any(|g| g == name) {
                    return; // recursion guard; compilation already rejects this
                }
                if let Some(body) = self.schema.group_by_name(name) {
                    groups_on_path.push(name);
                    self.particle(body, children, cursor, path, groups_on_path);
                    groups_on_path.pop();
                }
            }
        }
    }

    /// Could `element` be the first child consumed by `particle`?
    fn particle_can_start(
        &self,
        particle: &Particle,
        element: &Element,
        groups_on_path: &mut Vec<&'s str>,
    ) -> bool {
        match particle {
            Particle::Element(decl) => {
                let name = decl.reference.as_deref().unwrap_or(decl.name.as_str());
                element.name().local() == name
            }
            Particle::Sequence { items, .. } => {
                self.sequence_can_start(items, element, groups_on_path)
            }
            Particle::Choice { items, .. } | Particle::All { items, .. } => items
                .iter()
                .any(|i| self.particle_can_start(i, element, groups_on_path)),
            Particle::GroupRef { name, .. } => {
                if groups_on_path.iter().any(|g| g == name) {
                    return false;
                }
                self.schema
                    .group_by_name(name)
                    .is_some_and(|body| self.particle_can_start(body, element, groups_on_path))
            }
        }
    }

    /// Could `element` start one repetition of this sequence? (The first
    /// non-optional particle decides; optional prefixes are also accepted.)
    fn sequence_can_start(
        &self,
        items: &[Particle],
        element: &Element,
        groups_on_path: &mut Vec<&'s str>,
    ) -> bool {
        for item in items {
            if self.particle_can_start(item, element, groups_on_path) {
                return true;
            }
            // If this particle is required, the sequence cannot start later.
            let optional = match item {
                Particle::Element(d) => d.min_occurs == 0,
                Particle::Sequence { min_occurs, .. }
                | Particle::Choice { min_occurs, .. }
                | Particle::All { min_occurs, .. } => *min_occurs == 0,
                Particle::GroupRef { min_occurs, .. } => *min_occurs == 0,
            };
            if !optional {
                return false;
            }
        }
        false
    }

    fn simple_type_value(&mut self, value: &str, st: &SimpleType, path: &str) {
        match st {
            SimpleType::Restriction { base, facets } => match self.resolve(base) {
                Resolved::Builtin(b) => self.simple_value(value, b, facets, path),
                Resolved::Simple(inner) => {
                    // Facet merging across derivation steps is not modeled;
                    // validate against the inner type, then this step's facets.
                    self.simple_type_value(value, inner, path);
                    self.simple_value(value, BuiltinType::AnySimpleType, facets, path);
                }
                _ => {}
            },
            SimpleType::List { item } => {
                for token in value.split_whitespace() {
                    match self.resolve(item) {
                        Resolved::Builtin(b) => self.simple_value(token, b, &[], path),
                        Resolved::Simple(inner) => self.simple_type_value(token, inner, path),
                        _ => {}
                    }
                }
            }
            SimpleType::Union { members } => {
                let ok = members.iter().any(|m| match self.resolve(m) {
                    Resolved::Builtin(b) => check_builtin(b, value.trim()),
                    _ => true,
                });
                if !ok {
                    self.report(path, format!("{value:?} matches no union member type"));
                }
            }
        }
    }

    fn simple_value(&mut self, value: &str, builtin: BuiltinType, facets: &[Facet], path: &str) {
        let value = value.trim();
        if !check_builtin(builtin, value) {
            self.report(path, format!("{value:?} is not a valid {builtin}"));
            return;
        }
        // Enumerations are an OR over all enumeration facets.
        let enums: Vec<&str> = facets
            .iter()
            .filter_map(|f| match f {
                Facet::Enumeration(v) => Some(v.as_str()),
                _ => None,
            })
            .collect();
        if !enums.is_empty() && !enums.contains(&value) {
            self.report(
                path,
                format!("{value:?} is not one of the enumerated values"),
            );
        }
        for facet in facets {
            let ok = match facet {
                Facet::Enumeration(_) | Facet::Pattern(_) | Facet::WhiteSpace(_) => true,
                Facet::Length(n) => value.chars().count() == *n as usize,
                Facet::MinLength(n) => value.chars().count() >= *n as usize,
                Facet::MaxLength(n) => value.chars().count() <= *n as usize,
                Facet::MinInclusive(bound) => compare_numeric(value, bound, |o| o >= 0.0),
                Facet::MaxInclusive(bound) => compare_numeric(value, bound, |o| o <= 0.0),
                Facet::MinExclusive(bound) => compare_numeric(value, bound, |o| o > 0.0),
                Facet::MaxExclusive(bound) => compare_numeric(value, bound, |o| o < 0.0),
                Facet::TotalDigits(n) => {
                    value.chars().filter(char::is_ascii_digit).count() <= *n as usize
                }
                Facet::FractionDigits(n) => match value.split_once('.') {
                    Some((_, frac)) => frac.len() <= *n as usize,
                    None => true,
                },
            };
            if !ok {
                self.report(path, format!("{value:?} violates facet {facet:?}"));
            }
        }
    }

    fn resolve(&self, type_ref: &'s TypeRef) -> Resolved<'s> {
        match type_ref {
            TypeRef::Builtin(BuiltinType::AnyType) | TypeRef::Unspecified => Resolved::Any,
            TypeRef::Builtin(b) => Resolved::Builtin(*b),
            TypeRef::Named(name) => match self.schema.type_by_name(name) {
                Some(TypeDef::Complex(ct)) => Resolved::Complex(ct),
                Some(TypeDef::Simple(st)) => Resolved::Simple(st),
                None => Resolved::Missing(name),
            },
            TypeRef::Inline(def) => match def.as_ref() {
                TypeDef::Complex(ct) => Resolved::Complex(ct),
                TypeDef::Simple(st) => Resolved::Simple(st),
            },
        }
    }
}

enum Resolved<'s> {
    Builtin(BuiltinType),
    Simple(&'s SimpleType),
    Complex(&'s ComplexType),
    Any,
    Missing(&'s str),
}

fn is_namespace_attr(raw: &str) -> bool {
    raw == "xmlns" || raw.starts_with("xmlns:") || raw.starts_with("xsi:")
}

/// Numeric facet comparison; non-numeric values fall back to string order.
fn compare_numeric(value: &str, bound: &str, accept: impl Fn(f64) -> bool) -> bool {
    match (value.parse::<f64>(), bound.parse::<f64>()) {
        (Ok(v), Ok(b)) => accept(v - b),
        _ => accept(match value.cmp(bound) {
            std::cmp::Ordering::Less => -1.0,
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => 1.0,
        }),
    }
}

/// Checks a lexical value against a built-in type's value space.
pub fn check_builtin(builtin: BuiltinType, value: &str) -> bool {
    use BuiltinType::*;
    match builtin {
        AnyType | AnySimpleType | String | NormalizedString | Token | Language | NmToken
        | Base64Binary | HexBinary | AnyUri | QNameType | Notation => true,
        Name | NcName | Id | IdRef | Entity => qmatch_xml::name::is_valid_name(value),
        Boolean => matches!(value, "true" | "false" | "1" | "0"),
        Decimal => parse_decimal(value),
        Float | Double => value.parse::<f64>().is_ok() || matches!(value, "INF" | "-INF" | "NaN"),
        Integer => parse_integer(value).is_some(),
        NonPositiveInteger => parse_integer(value).is_some_and(|i| i <= 0),
        NegativeInteger => parse_integer(value).is_some_and(|i| i < 0),
        NonNegativeInteger => parse_integer(value).is_some_and(|i| i >= 0),
        PositiveInteger => parse_integer(value).is_some_and(|i| i > 0),
        Long => value.parse::<i64>().is_ok(),
        Int => value.parse::<i32>().is_ok(),
        Short => value.parse::<i16>().is_ok(),
        Byte => value.parse::<i8>().is_ok(),
        UnsignedLong => value.parse::<u64>().is_ok(),
        UnsignedInt => value.parse::<u32>().is_ok(),
        UnsignedShort => value.parse::<u16>().is_ok(),
        UnsignedByte => value.parse::<u8>().is_ok(),
        DateTime => split_date_time(value),
        Date => parse_date(value),
        Time => parse_time(value),
        Duration => value.starts_with('P') || value.starts_with("-P"),
        GYear => strip_tz(value).parse::<i32>().is_ok() && strip_tz(value).len() >= 4,
        GYearMonth => matches!(strip_tz(value).split_once('-'), Some((y, m))
            if y.parse::<i32>().is_ok() && parse_range(m, 1, 12)),
        GMonth => parse_range(strip_tz(value).trim_start_matches("--"), 1, 12),
        GMonthDay => {
            let rest = strip_tz(value);
            match rest.strip_prefix("--").and_then(|r| r.split_once('-')) {
                Some((m, d)) => parse_range(m, 1, 12) && parse_range(d, 1, 31),
                None => false,
            }
        }
        GDay => parse_range(strip_tz(value).trim_start_matches("---"), 1, 31),
    }
}

fn parse_integer(value: &str) -> Option<i128> {
    value.parse::<i128>().ok()
}

fn parse_decimal(value: &str) -> bool {
    let v = value.strip_prefix(['+', '-']).unwrap_or(value);
    if v.is_empty() {
        return false;
    }
    let (int_part, frac_part) = match v.split_once('.') {
        Some((i, f)) => (i, f),
        None => (v, ""),
    };
    (!int_part.is_empty() || !frac_part.is_empty())
        && int_part.bytes().all(|b| b.is_ascii_digit())
        && frac_part.bytes().all(|b| b.is_ascii_digit())
}

fn parse_range(s: &str, lo: u32, hi: u32) -> bool {
    s.parse::<u32>().is_ok_and(|v| (lo..=hi).contains(&v))
}

fn strip_tz(value: &str) -> &str {
    if let Some(v) = value.strip_suffix('Z') {
        return v;
    }
    // +hh:mm / -hh:mm offsets.
    if value.len() > 6 {
        let (head, tail) = value.split_at(value.len() - 6);
        if (tail.starts_with('+') || tail.starts_with('-')) && tail.as_bytes()[3] == b':' {
            return head;
        }
    }
    value
}

fn parse_date(value: &str) -> bool {
    let v = strip_tz(value);
    let v = v.strip_prefix('-').unwrap_or(v);
    let parts: Vec<&str> = v.splitn(3, '-').collect();
    matches!(parts.as_slice(), [y, m, d]
        if y.len() >= 4 && y.parse::<u32>().is_ok() && parse_range(m, 1, 12) && parse_range(d, 1, 31))
}

fn parse_time(value: &str) -> bool {
    let v = strip_tz(value);
    let parts: Vec<&str> = v.splitn(3, ':').collect();
    match parts.as_slice() {
        [h, m, s] => {
            parse_range(h, 0, 23)
                && parse_range(m, 0, 59)
                && s.split('.')
                    .next()
                    .is_some_and(|sec| parse_range(sec, 0, 59))
        }
        _ => false,
    }
}

fn split_date_time(value: &str) -> bool {
    match value.split_once('T') {
        Some((d, t)) => parse_date(d) && parse_time(t),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;

    const PO: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:element name="PO">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="OrderNo" type="xs:positiveInteger"/>
            <xs:element name="Date" type="xs:date"/>
            <xs:element name="Line" maxOccurs="unbounded">
              <xs:complexType>
                <xs:sequence>
                  <xs:element name="Item" type="xs:string"/>
                  <xs:element name="Qty" type="QtyType"/>
                </xs:sequence>
                <xs:attribute name="no" type="xs:positiveInteger" use="required"/>
              </xs:complexType>
            </xs:element>
            <xs:element name="Note" type="xs:string" minOccurs="0"/>
          </xs:sequence>
          <xs:attribute name="currency" type="xs:string" fixed="USD"/>
        </xs:complexType>
      </xs:element>
      <xs:simpleType name="QtyType">
        <xs:restriction base="xs:integer">
          <xs:minInclusive value="1"/>
          <xs:maxInclusive value="100"/>
        </xs:restriction>
      </xs:simpleType>
    </xs:schema>"#;

    fn check(doc: &str) -> ValidationReport {
        let schema = parse_schema(PO).unwrap();
        let document = Document::parse(doc).unwrap();
        validate(&document, &schema).unwrap()
    }

    const VALID: &str = r#"<PO currency="USD">
      <OrderNo>42</OrderNo>
      <Date>2005-04-05</Date>
      <Line no="1"><Item>bolt</Item><Qty>5</Qty></Line>
      <Line no="2"><Item>nut</Item><Qty>100</Qty></Line>
      <Note>rush order</Note>
    </PO>"#;

    #[test]
    fn valid_document_passes() {
        let report = check(VALID);
        assert!(report.is_valid(), "{report}");
        assert_eq!(report.to_string(), "valid");
    }

    #[test]
    fn optional_elements_may_be_absent() {
        let report = check(
            r#"<PO><OrderNo>1</OrderNo><Date>2005-01-01</Date>
               <Line no="1"><Item>x</Item><Qty>1</Qty></Line></PO>"#,
        );
        assert!(report.is_valid(), "{report}");
    }

    #[test]
    fn missing_required_element_is_reported() {
        let report = check(
            r#"<PO><Date>2005-01-01</Date>
            <Line no="1"><Item>x</Item><Qty>1</Qty></Line></PO>"#,
        );
        assert!(!report.is_valid());
        assert!(report.to_string().contains("<OrderNo>"), "{report}");
    }

    #[test]
    fn wrong_order_is_reported() {
        let report = check(
            r#"<PO><Date>2005-01-01</Date><OrderNo>1</OrderNo>
            <Line no="1"><Item>x</Item><Qty>1</Qty></Line></PO>"#,
        );
        assert!(!report.is_valid());
    }

    #[test]
    fn unexpected_element_is_reported() {
        let report = check(
            r#"<PO><OrderNo>1</OrderNo><Date>2005-01-01</Date>
            <Line no="1"><Item>x</Item><Qty>1</Qty></Line><Bogus/></PO>"#,
        );
        assert!(
            report.to_string().contains("unexpected element <Bogus>"),
            "{report}"
        );
    }

    #[test]
    fn bad_simple_values_are_reported_with_paths() {
        let report = check(
            r#"<PO><OrderNo>-3</OrderNo><Date>not-a-date</Date>
            <Line no="1"><Item>x</Item><Qty>1</Qty></Line></PO>"#,
        );
        let text = report.to_string();
        assert!(text.contains("PO/OrderNo"), "{text}");
        assert!(text.contains("positiveInteger"), "{text}");
        assert!(text.contains("PO/Date"), "{text}");
    }

    #[test]
    fn facets_are_enforced() {
        let report = check(
            r#"<PO><OrderNo>1</OrderNo><Date>2005-01-01</Date>
            <Line no="1"><Item>x</Item><Qty>500</Qty></Line></PO>"#,
        );
        assert!(report.to_string().contains("MaxInclusive"), "{report}");
        let report = check(
            r#"<PO><OrderNo>1</OrderNo><Date>2005-01-01</Date>
            <Line no="1"><Item>x</Item><Qty>0</Qty></Line></PO>"#,
        );
        assert!(report.to_string().contains("MinInclusive"), "{report}");
    }

    #[test]
    fn attribute_rules_are_enforced() {
        // Missing required attribute.
        let report = check(
            r#"<PO><OrderNo>1</OrderNo><Date>2005-01-01</Date>
            <Line><Item>x</Item><Qty>1</Qty></Line></PO>"#,
        );
        assert!(
            report
                .to_string()
                .contains("missing required attribute \"no\""),
            "{report}"
        );
        // Fixed value violated.
        let report = check(
            r#"<PO currency="EUR"><OrderNo>1</OrderNo><Date>2005-01-01</Date>
            <Line no="1"><Item>x</Item><Qty>1</Qty></Line></PO>"#,
        );
        assert!(report.to_string().contains("fixed"), "{report}");
        // Unknown attribute.
        let report = check(
            r#"<PO zzz="1"><OrderNo>1</OrderNo><Date>2005-01-01</Date>
            <Line no="1"><Item>x</Item><Qty>1</Qty></Line></PO>"#,
        );
        assert!(
            report.to_string().contains("unexpected attribute \"zzz\""),
            "{report}"
        );
    }

    #[test]
    fn text_inside_element_only_content_is_reported() {
        let report = check(
            r#"<PO><OrderNo>1</OrderNo><Date>2005-01-01</Date>
            <Line no="1"><Item>x</Item><Qty>1</Qty></Line>stray text</PO>"#,
        );
        assert!(report.to_string().contains("character data"), "{report}");
    }

    #[test]
    fn unknown_root_is_reported() {
        let schema = parse_schema(PO).unwrap();
        let doc = Document::parse("<Invoice/>").unwrap();
        let report = validate(&doc, &schema).unwrap();
        assert!(report.to_string().contains("no global element"), "{report}");
    }

    #[test]
    fn choice_and_all_content_models() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="r"><xs:complexType>
            <xs:choice maxOccurs="unbounded">
              <xs:element name="a" type="xs:string"/>
              <xs:element name="b" type="xs:integer"/>
            </xs:choice>
          </xs:complexType></xs:element>
        </xs:schema>"#;
        let schema = parse_schema(src).unwrap();
        let ok = Document::parse("<r><b>1</b><a>x</a><b>2</b></r>").unwrap();
        assert!(validate(&ok, &schema).unwrap().is_valid());
        let bad = Document::parse("<r><c/></r>").unwrap();
        assert!(!validate(&bad, &schema).unwrap().is_valid());

        let src_all = r#"<xs:schema xmlns:xs="x">
          <xs:element name="r"><xs:complexType>
            <xs:all>
              <xs:element name="a" type="xs:string"/>
              <xs:element name="b" type="xs:integer"/>
            </xs:all>
          </xs:complexType></xs:element>
        </xs:schema>"#;
        let schema_all = parse_schema(src_all).unwrap();
        // Any order is fine in an all-group.
        let ok = Document::parse("<r><b>1</b><a>x</a></r>").unwrap();
        assert!(validate(&ok, &schema_all).unwrap().is_valid());
        let missing = Document::parse("<r><a>x</a></r>").unwrap();
        assert!(validate(&missing, &schema_all)
            .unwrap()
            .to_string()
            .contains("missing <b>"));
    }

    #[test]
    fn builtin_value_spaces() {
        use BuiltinType::*;
        assert!(check_builtin(Boolean, "true"));
        assert!(check_builtin(Boolean, "0"));
        assert!(!check_builtin(Boolean, "yes"));
        assert!(check_builtin(Integer, "-42"));
        assert!(!check_builtin(Integer, "4.2"));
        assert!(check_builtin(Decimal, "-3.14"));
        assert!(check_builtin(Decimal, ".5"));
        assert!(!check_builtin(Decimal, "1e3"));
        assert!(check_builtin(Date, "2005-04-05"));
        assert!(check_builtin(Date, "2005-04-05Z"));
        assert!(check_builtin(Date, "2005-04-05+05:30"));
        assert!(!check_builtin(Date, "2005-13-01"));
        assert!(check_builtin(DateTime, "2005-04-05T12:30:00"));
        assert!(!check_builtin(DateTime, "2005-04-05"));
        assert!(check_builtin(Time, "23:59:59.5"));
        assert!(!check_builtin(Time, "24:00:00"));
        assert!(check_builtin(GYear, "2005"));
        assert!(check_builtin(GMonth, "--07"));
        assert!(check_builtin(GMonthDay, "--07-04"));
        assert!(check_builtin(GDay, "---31"));
        assert!(check_builtin(UnsignedByte, "255"));
        assert!(!check_builtin(UnsignedByte, "256"));
        assert!(check_builtin(Float, "INF"));
        assert!(check_builtin(Id, "valid_name"));
        assert!(!check_builtin(Id, "1bad"));
        assert!(check_builtin(Duration, "P1Y2M"));
        assert!(!check_builtin(Duration, "1Y"));
    }

    #[test]
    fn enumeration_and_length_facets() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="Size">
            <xs:restriction base="xs:string">
              <xs:enumeration value="S"/><xs:enumeration value="M"/><xs:enumeration value="L"/>
            </xs:restriction>
          </xs:simpleType>
          <xs:simpleType name="Code">
            <xs:restriction base="xs:string">
              <xs:length value="3"/>
            </xs:restriction>
          </xs:simpleType>
          <xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element name="size" type="Size"/>
            <xs:element name="code" type="Code"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let schema = parse_schema(src).unwrap();
        let ok = Document::parse("<r><size>M</size><code>abc</code></r>").unwrap();
        assert!(validate(&ok, &schema).unwrap().is_valid());
        let bad = Document::parse("<r><size>XL</size><code>toolong</code></r>").unwrap();
        let text = validate(&bad, &schema).unwrap().to_string();
        assert!(text.contains("enumerated"), "{text}");
        assert!(text.contains("Length"), "{text}");
    }

    #[test]
    fn validates_corpus_style_instances_through_groups() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:group name="Addr"><xs:sequence>
            <xs:element name="street" type="xs:string"/>
            <xs:element name="city" type="xs:string"/>
          </xs:sequence></xs:group>
          <xs:element name="contact"><xs:complexType><xs:sequence>
            <xs:element name="name" type="xs:string"/>
            <xs:group ref="Addr"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let schema = parse_schema(src).unwrap();
        let ok =
            Document::parse("<contact><name>n</name><street>s</street><city>c</city></contact>")
                .unwrap();
        assert!(validate(&ok, &schema).unwrap().is_valid());
        let bad = Document::parse("<contact><name>n</name><city>c</city></contact>").unwrap();
        assert!(!validate(&bad, &schema).unwrap().is_valid());
    }

    #[test]
    fn list_and_union_values() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="Ints"><xs:list itemType="xs:int"/></xs:simpleType>
          <xs:simpleType name="IntOrBool"><xs:union memberTypes="xs:int xs:boolean"/></xs:simpleType>
          <xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element name="l" type="Ints"/>
            <xs:element name="u" type="IntOrBool"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let schema = parse_schema(src).unwrap();
        let ok = Document::parse("<r><l>1 2 3</l><u>true</u></r>").unwrap();
        assert!(validate(&ok, &schema).unwrap().is_valid());
        let bad = Document::parse("<r><l>1 x 3</l><u>maybe</u></r>").unwrap();
        let report = validate(&bad, &schema).unwrap();
        assert_eq!(report.errors.len(), 2, "{report}");
    }
}
