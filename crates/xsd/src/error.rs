//! Error type for XSD parsing, resolution, and tree compilation.

use qmatch_xml::error::Position;
use qmatch_xml::XmlError;
use std::fmt;

/// An error produced while reading or compiling an XML Schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XsdError {
    /// The underlying document was not well-formed XML.
    Xml(XmlError),
    /// The document root is not `xs:schema`.
    NotASchema {
        /// The root element's name as written.
        found: String,
    },
    /// A schema construct was malformed (bad attribute value, missing
    /// required attribute, unexpected child, ...).
    Invalid {
        /// Human-readable description.
        message: String,
        /// Position of the offending element, if known.
        position: Option<Position>,
    },
    /// A `type="..."` reference names a type that is not declared and is not
    /// a built-in.
    UnresolvedType {
        /// The referenced type name (local part).
        name: String,
    },
    /// An element/attribute `ref="..."` names a missing global declaration.
    UnresolvedRef {
        /// The referenced declaration name.
        name: String,
    },
    /// The same global name was declared twice in one symbol space.
    DuplicateGlobal {
        /// Which symbol space (`element`, `attribute`, `type`).
        space: &'static str,
        /// The repeated name.
        name: String,
    },
    /// The schema has no global element declaration to use as a tree root.
    NoRootElement,
    /// The document or the compiled schema tree exceeded a configured
    /// [`IngestLimits`](qmatch_xml::IngestLimits) bound.
    LimitExceeded {
        /// Name of the offending limit (the `IngestLimits` field name,
        /// e.g. `max_nodes`).
        limit: &'static str,
        /// The configured bound.
        limit_value: u64,
        /// The observed value that crossed it.
        actual: u64,
        /// Byte offset of the first offending input byte, where the
        /// violation maps to a concrete document position. `None` for
        /// limits on derived quantities (compiled-tree node count and
        /// depth, which named-type expansion can inflate far from any
        /// single input byte).
        offset: Option<usize>,
    },
}

impl XsdError {
    /// Convenience constructor for [`XsdError::Invalid`].
    pub fn invalid(message: impl Into<String>, position: Option<Position>) -> Self {
        XsdError::Invalid {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for XsdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XsdError::Xml(e) => write!(f, "{e}"),
            XsdError::NotASchema { found } => {
                write!(
                    f,
                    "document root is <{found}>, expected an xs:schema element"
                )
            }
            XsdError::Invalid {
                message,
                position: Some(p),
            } => {
                write!(f, "invalid schema at {p}: {message}")
            }
            XsdError::Invalid {
                message,
                position: None,
            } => write!(f, "invalid schema: {message}"),
            XsdError::UnresolvedType { name } => write!(f, "unresolved type reference {name:?}"),
            XsdError::UnresolvedRef { name } => {
                write!(f, "unresolved element/attribute reference {name:?}")
            }
            XsdError::DuplicateGlobal { space, name } => {
                write!(f, "duplicate global {space} declaration {name:?}")
            }
            XsdError::NoRootElement => write!(f, "schema declares no global element"),
            XsdError::LimitExceeded {
                limit,
                limit_value,
                actual,
                offset,
            } => {
                write!(
                    f,
                    "schema exceeds the {limit} ingestion limit ({actual} > {limit_value})"
                )?;
                if let Some(o) = offset {
                    write!(f, ", first offending byte at offset {o}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for XsdError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XsdError::Xml(e) => Some(e),
            _ => None,
        }
    }
}

impl From<XmlError> for XsdError {
    fn from(e: XmlError) -> Self {
        // Surface limit violations uniformly so callers can match one
        // variant regardless of which pipeline stage tripped the limit.
        if let qmatch_xml::XmlErrorKind::LimitExceeded {
            limit,
            limit_value,
            actual,
            offset,
        } = e.kind()
        {
            // Keep the first offending byte from the reader; fall back to
            // the error position so the offset survives the conversion.
            return XsdError::LimitExceeded {
                limit,
                limit_value: *limit_value,
                actual: *actual,
                offset: offset.or(Some(e.position().offset)),
            };
        }
        XsdError::Xml(e)
    }
}

/// Result alias for this crate.
pub type XsdResult<T> = Result<T, XsdError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_problem() {
        assert!(XsdError::NotASchema {
            found: "html".into()
        }
        .to_string()
        .contains("html"));
        assert!(XsdError::UnresolvedType {
            name: "POType".into()
        }
        .to_string()
        .contains("POType"));
        assert!(XsdError::UnresolvedRef {
            name: "item".into()
        }
        .to_string()
        .contains("item"));
        assert!(XsdError::DuplicateGlobal {
            space: "element",
            name: "PO".into()
        }
        .to_string()
        .contains("element"));
        assert!(XsdError::NoRootElement
            .to_string()
            .contains("global element"));
        assert!(XsdError::LimitExceeded {
            limit: "max_nodes",
            limit_value: 10,
            actual: 11,
            offset: None,
        }
        .to_string()
        .contains("max_nodes"));
        let positioned = XsdError::LimitExceeded {
            limit: "max_depth",
            limit_value: 2,
            actual: 3,
            offset: Some(17),
        }
        .to_string();
        assert!(
            positioned.contains("first offending byte at offset 17"),
            "{positioned}"
        );
    }

    #[test]
    fn xml_limit_errors_convert_to_the_typed_variant() {
        use qmatch_xml::error::{Position, XmlErrorKind};
        let xml = XmlError::new(
            XmlErrorKind::LimitExceeded {
                limit: "max_depth",
                limit_value: 512,
                actual: 513,
                offset: Some(4096),
            },
            Position::START,
        );
        let xsd: XsdError = xml.into();
        assert_eq!(
            xsd,
            XsdError::LimitExceeded {
                limit: "max_depth",
                limit_value: 512,
                actual: 513,
                offset: Some(4096),
            }
        );
        // An xml-layer error without its own offset falls back to the
        // error position's byte offset.
        let xml = XmlError::new(
            XmlErrorKind::LimitExceeded {
                limit: "max_depth",
                limit_value: 512,
                actual: 513,
                offset: None,
            },
            Position {
                line: 2,
                column: 3,
                offset: 99,
            },
        );
        let xsd: XsdError = xml.into();
        assert!(matches!(
            xsd,
            XsdError::LimitExceeded {
                offset: Some(99),
                ..
            }
        ));
    }

    #[test]
    fn invalid_with_position_shows_location() {
        let e = XsdError::invalid(
            "minOccurs is not a number",
            Some(Position {
                line: 4,
                column: 2,
                offset: 77,
            }),
        );
        assert!(e.to_string().contains("4:2"));
    }

    #[test]
    fn xml_errors_convert_and_chain() {
        use qmatch_xml::error::{Position, XmlErrorKind};
        let xml = XmlError::new(
            XmlErrorKind::BadDocumentStructure { detail: "no root" },
            Position::START,
        );
        let xsd: XsdError = xml.clone().into();
        assert_eq!(xsd.to_string(), xml.to_string());
        use std::error::Error;
        assert!(xsd.source().is_some());
    }
}
