//! Parses an XSD document (via the `qmatch-xml` DOM) into the [`Schema`] model.
//!
//! Names are matched on their *local* part, so any prefix convention
//! (`xs:`, `xsd:`, none) works. Type references are resolved to built-ins by
//! local name first, falling back to named-type references — this matches
//! how matching corpora use the schema language in practice.

use crate::error::{XsdError, XsdResult};
use crate::model::{
    AttributeDecl, AttributeUse, ComplexType, ElementDecl, Facet, MaxOccurs, Particle, Schema,
    SimpleType, TypeDef, TypeRef,
};
use crate::resolve;
use crate::types::BuiltinType;
use qmatch_xml::dom::{Document, Element};
use qmatch_xml::IngestLimits;

/// Parses and resolves a complete schema document.
///
/// This is the main entry point: it parses the XML, builds the model, and
/// runs reference [resolution](crate::resolve) so the returned schema is
/// internally consistent.
pub fn parse_schema(src: &str) -> XsdResult<Schema> {
    parse_schema_with_limits(src, &IngestLimits::default())
}

/// Like [`parse_schema`], with explicit [`IngestLimits`] for untrusted input.
pub fn parse_schema_with_limits(src: &str, limits: &IngestLimits) -> XsdResult<Schema> {
    let doc = Document::parse_with_limits(src, limits)?;
    let schema = schema_from_dom(doc.root())?;
    resolve::check(&schema)?;
    Ok(schema)
}

/// Builds the schema model from a parsed DOM without running resolution.
/// Exposed for tests and tooling that want to inspect partially-valid input.
pub fn schema_from_dom(root: &Element) -> XsdResult<Schema> {
    if root.name().local() != "schema" {
        return Err(XsdError::NotASchema {
            found: root.name().raw().to_owned(),
        });
    }
    let mut schema = Schema {
        target_namespace: root.attr("targetNamespace").map(str::to_owned),
        ..Schema::default()
    };
    for child in root.child_elements() {
        match child.name().local() {
            "element" => schema.elements.push(parse_element(child)?),
            "attribute" => schema.attributes.push(parse_attribute(child)?),
            "complexType" => {
                let name = require_attr(child, "name")?;
                schema
                    .types
                    .push((name, TypeDef::Complex(parse_complex_type(child)?)));
            }
            "simpleType" => {
                let name = require_attr(child, "name")?;
                schema
                    .types
                    .push((name, TypeDef::Simple(parse_simple_type(child)?)));
            }
            "group" => {
                let name = require_attr(child, "name")?;
                schema.groups.push((name, parse_group_body(child)?));
            }
            "attributeGroup" => {
                let name = require_attr(child, "name")?;
                schema
                    .attribute_groups
                    .push((name, parse_attribute_group_body(child)?));
            }
            "annotation" | "import" | "include" | "notation" => {
                // Annotations are documentation; import/include are external
                // (single-document corpora don't use them). Skipped.
            }
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported top-level schema construct <{other}>"),
                    Some(child.position()),
                ))
            }
        }
    }
    Ok(schema)
}

fn require_attr(el: &Element, name: &str) -> XsdResult<String> {
    el.attr(name).map(str::to_owned).ok_or_else(|| {
        XsdError::invalid(
            format!("<{}> is missing the required {name:?} attribute", el.name()),
            Some(el.position()),
        )
    })
}

fn parse_occurs_attrs(el: &Element) -> XsdResult<(u32, MaxOccurs)> {
    let min = match el.attr("minOccurs") {
        None => 1,
        Some(v) => v.parse::<u32>().map_err(|_| {
            XsdError::invalid(
                format!("minOccurs={v:?} is not a non-negative integer"),
                Some(el.position()),
            )
        })?,
    };
    let max = match el.attr("maxOccurs") {
        None => MaxOccurs::Bounded(1),
        Some("unbounded") => MaxOccurs::Unbounded,
        Some(v) => MaxOccurs::Bounded(v.parse::<u32>().map_err(|_| {
            XsdError::invalid(
                format!("maxOccurs={v:?} is not a non-negative integer or \"unbounded\""),
                Some(el.position()),
            )
        })?),
    };
    if let MaxOccurs::Bounded(b) = max {
        if b < min {
            return Err(XsdError::invalid(
                format!("maxOccurs ({b}) is less than minOccurs ({min})"),
                Some(el.position()),
            ));
        }
    }
    Ok((min, max))
}

/// Interprets a `type="..."` attribute value: built-in by local name first,
/// otherwise a named-type reference (also by local name).
pub fn parse_type_name(raw: &str) -> TypeRef {
    let local = raw.rsplit(':').next().unwrap_or(raw);
    match local.parse::<BuiltinType>() {
        Ok(builtin) => TypeRef::Builtin(builtin),
        Err(_) => TypeRef::Named(local.to_owned()),
    }
}

fn parse_element(el: &Element) -> XsdResult<ElementDecl> {
    let (min_occurs, max_occurs) = parse_occurs_attrs(el)?;
    let reference = el
        .attr("ref")
        .map(|r| r.rsplit(':').next().unwrap_or(r).to_owned());
    let name = match (el.attr("name"), &reference) {
        (Some(n), _) => n.to_owned(),
        (None, Some(r)) => r.clone(),
        (None, None) => {
            return Err(XsdError::invalid(
                "<element> needs a name or a ref attribute",
                Some(el.position()),
            ))
        }
    };
    let mut type_ref = match el.attr("type") {
        Some(t) => parse_type_name(t),
        None => TypeRef::Unspecified,
    };
    for child in el.child_elements() {
        match child.name().local() {
            "complexType" => {
                ensure_no_type_attr(el, &type_ref)?;
                type_ref = TypeRef::Inline(Box::new(TypeDef::Complex(parse_complex_type(child)?)));
            }
            "simpleType" => {
                ensure_no_type_attr(el, &type_ref)?;
                type_ref = TypeRef::Inline(Box::new(TypeDef::Simple(parse_simple_type(child)?)));
            }
            "annotation" | "key" | "keyref" | "unique" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <element>"),
                    Some(child.position()),
                ))
            }
        }
    }
    Ok(ElementDecl {
        name,
        reference,
        type_ref,
        min_occurs,
        max_occurs,
        nillable: el.attr("nillable") == Some("true"),
        default: el.attr("default").map(str::to_owned),
        fixed: el.attr("fixed").map(str::to_owned),
    })
}

fn ensure_no_type_attr(el: &Element, current: &TypeRef) -> XsdResult<()> {
    if matches!(current, TypeRef::Unspecified) {
        Ok(())
    } else {
        Err(XsdError::invalid(
            "element has both a type attribute and an inline type definition",
            Some(el.position()),
        ))
    }
}

fn parse_attribute(el: &Element) -> XsdResult<AttributeDecl> {
    let reference = el
        .attr("ref")
        .map(|r| r.rsplit(':').next().unwrap_or(r).to_owned());
    let name = match (el.attr("name"), &reference) {
        (Some(n), _) => n.to_owned(),
        (None, Some(r)) => r.clone(),
        (None, None) => {
            return Err(XsdError::invalid(
                "<attribute> needs a name or a ref attribute",
                Some(el.position()),
            ))
        }
    };
    let mut type_ref = match el.attr("type") {
        Some(t) => parse_type_name(t),
        None => TypeRef::Unspecified,
    };
    for child in el.child_elements() {
        match child.name().local() {
            "simpleType" => {
                type_ref = TypeRef::Inline(Box::new(TypeDef::Simple(parse_simple_type(child)?)));
            }
            "annotation" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <attribute>"),
                    Some(child.position()),
                ))
            }
        }
    }
    let required = match el.attr("use") {
        None | Some("optional") => AttributeUse::Optional,
        Some("required") => AttributeUse::Required,
        Some("prohibited") => AttributeUse::Prohibited,
        Some(other) => {
            return Err(XsdError::invalid(
                format!("unknown use={other:?}"),
                Some(el.position()),
            ))
        }
    };
    Ok(AttributeDecl {
        name,
        reference,
        type_ref,
        required,
        default: el.attr("default").map(str::to_owned),
        fixed: el.attr("fixed").map(str::to_owned),
    })
}

fn parse_complex_type(el: &Element) -> XsdResult<ComplexType> {
    let mut ct = ComplexType {
        mixed: el.attr("mixed") == Some("true"),
        ..ComplexType::default()
    };
    for child in el.child_elements() {
        match child.name().local() {
            "sequence" | "choice" | "all" => {
                if ct.content.is_some() {
                    return Err(XsdError::invalid(
                        "complexType has more than one content compositor",
                        Some(child.position()),
                    ));
                }
                ct.content = Some(parse_particle(child)?);
            }
            "attribute" => ct.attributes.push(parse_attribute(child)?),
            "attributeGroup" => {
                let target = require_attr(child, "ref")?;
                ct.attribute_group_refs
                    .push(target.rsplit(':').next().unwrap_or(&target).to_owned());
            }
            "simpleContent" => parse_simple_content(child, &mut ct)?,
            "complexContent" => parse_complex_content(child, &mut ct)?,
            "annotation" | "anyAttribute" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <complexType>"),
                    Some(child.position()),
                ))
            }
        }
    }
    Ok(ct)
}

fn parse_simple_content(el: &Element, ct: &mut ComplexType) -> XsdResult<()> {
    for child in el.child_elements() {
        match child.name().local() {
            "extension" | "restriction" => {
                let base = require_attr(child, "base")?;
                ct.simple_base = Some(parse_type_name(&base));
                for grand in child.child_elements() {
                    match grand.name().local() {
                        "attribute" => ct.attributes.push(parse_attribute(grand)?),
                        "annotation" => {}
                        _ => {} // facets on simpleContent restrictions are legal; ignored here
                    }
                }
            }
            "annotation" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <simpleContent>"),
                    Some(child.position()),
                ))
            }
        }
    }
    Ok(())
}

fn parse_complex_content(el: &Element, ct: &mut ComplexType) -> XsdResult<()> {
    for child in el.child_elements() {
        match child.name().local() {
            "extension" | "restriction" => {
                if child.name().local() == "extension" {
                    // An extension inherits the base's content model and
                    // attributes; record the base for tree compilation. A
                    // restriction redeclares its content in full, so only
                    // the local declarations matter.
                    let base = require_attr(child, "base")?;
                    ct.complex_base = Some(base.rsplit(':').next().unwrap_or(&base).to_owned());
                }
                for grand in child.child_elements() {
                    match grand.name().local() {
                        "sequence" | "choice" | "all" => ct.content = Some(parse_particle(grand)?),
                        "attribute" => ct.attributes.push(parse_attribute(grand)?),
                        "annotation" => {}
                        other => {
                            return Err(XsdError::invalid(
                                format!("unsupported child <{other}> of content derivation"),
                                Some(grand.position()),
                            ))
                        }
                    }
                }
            }
            "annotation" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <complexContent>"),
                    Some(child.position()),
                ))
            }
        }
    }
    Ok(())
}

fn parse_particle(el: &Element) -> XsdResult<Particle> {
    let (min_occurs, max_occurs) = parse_occurs_attrs(el)?;
    let mut items = Vec::new();
    for child in el.child_elements() {
        match child.name().local() {
            "element" => items.push(Particle::Element(parse_element(child)?)),
            "sequence" | "choice" | "all" => items.push(parse_particle(child)?),
            "group" => {
                let target = require_attr(child, "ref")?;
                let name = target.rsplit(':').next().unwrap_or(&target).to_owned();
                let (min_occurs, max_occurs) = parse_occurs_attrs(child)?;
                items.push(Particle::GroupRef {
                    name,
                    min_occurs,
                    max_occurs,
                });
            }
            "annotation" | "any" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <{}>", el.name().local()),
                    Some(child.position()),
                ))
            }
        }
    }
    Ok(match el.name().local() {
        "sequence" => Particle::Sequence {
            items,
            min_occurs,
            max_occurs,
        },
        "choice" => Particle::Choice {
            items,
            min_occurs,
            max_occurs,
        },
        "all" => Particle::All { items, min_occurs },
        other => {
            return Err(XsdError::invalid(
                format!("<{other}> is not a model group compositor"),
                Some(el.position()),
            ))
        }
    })
}

fn parse_simple_type(el: &Element) -> XsdResult<SimpleType> {
    for child in el.child_elements() {
        match child.name().local() {
            "restriction" => {
                let base = require_attr(child, "base")?;
                let mut facets = Vec::new();
                for facet_el in child.child_elements() {
                    if let Some(f) = parse_facet(facet_el)? {
                        facets.push(f);
                    }
                }
                return Ok(SimpleType::Restriction {
                    base: parse_type_name(&base),
                    facets,
                });
            }
            "list" => {
                let item = require_attr(child, "itemType")?;
                return Ok(SimpleType::List {
                    item: parse_type_name(&item),
                });
            }
            "union" => {
                let members = child
                    .attr("memberTypes")
                    .unwrap_or("")
                    .split_whitespace()
                    .map(parse_type_name)
                    .collect();
                return Ok(SimpleType::Union { members });
            }
            "annotation" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <simpleType>"),
                    Some(child.position()),
                ))
            }
        }
    }
    Err(XsdError::invalid(
        "<simpleType> needs a restriction, list, or union child",
        Some(el.position()),
    ))
}

fn parse_facet(el: &Element) -> XsdResult<Option<Facet>> {
    let value = || require_attr(el, "value");
    let numeric = |v: String| -> XsdResult<u32> {
        v.parse::<u32>().map_err(|_| {
            XsdError::invalid(
                format!("facet value {v:?} is not a non-negative integer"),
                Some(el.position()),
            )
        })
    };
    Ok(Some(match el.name().local() {
        "enumeration" => Facet::Enumeration(value()?),
        "pattern" => Facet::Pattern(value()?),
        "minInclusive" => Facet::MinInclusive(value()?),
        "maxInclusive" => Facet::MaxInclusive(value()?),
        "minExclusive" => Facet::MinExclusive(value()?),
        "maxExclusive" => Facet::MaxExclusive(value()?),
        "length" => Facet::Length(numeric(value()?)?),
        "minLength" => Facet::MinLength(numeric(value()?)?),
        "maxLength" => Facet::MaxLength(numeric(value()?)?),
        "totalDigits" => Facet::TotalDigits(numeric(value()?)?),
        "fractionDigits" => Facet::FractionDigits(numeric(value()?)?),
        "whiteSpace" => Facet::WhiteSpace(value()?),
        "annotation" => return Ok(None),
        other => {
            return Err(XsdError::invalid(
                format!("unsupported facet <{other}>"),
                Some(el.position()),
            ))
        }
    }))
}

/// Parses the body of a named `<xs:group>`: exactly one compositor.
fn parse_group_body(el: &Element) -> XsdResult<Particle> {
    for child in el.child_elements() {
        match child.name().local() {
            "sequence" | "choice" | "all" => return parse_particle(child),
            "annotation" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <group>"),
                    Some(child.position()),
                ))
            }
        }
    }
    Err(XsdError::invalid(
        "<group> needs a sequence, choice, or all child",
        Some(el.position()),
    ))
}

/// Parses the body of a named `<xs:attributeGroup>`: attribute declarations
/// (nested attribute-group refs are not supported in this subset).
fn parse_attribute_group_body(el: &Element) -> XsdResult<Vec<AttributeDecl>> {
    let mut out = Vec::new();
    for child in el.child_elements() {
        match child.name().local() {
            "attribute" => out.push(parse_attribute(child)?),
            "annotation" | "anyAttribute" => {}
            other => {
                return Err(XsdError::invalid(
                    format!("unsupported child <{other}> of <attributeGroup>"),
                    Some(child.position()),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PO: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema" targetNamespace="urn:po">
  <xs:element name="PO" type="POType"/>
  <xs:complexType name="POType">
    <xs:sequence>
      <xs:element name="OrderNo" type="xs:integer"/>
      <xs:element name="Lines" minOccurs="0" maxOccurs="unbounded">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="Item" type="xs:string"/>
            <xs:element name="Quantity" type="QtyType"/>
          </xs:sequence>
          <xs:attribute name="lineNo" type="xs:positiveInteger" use="required"/>
        </xs:complexType>
      </xs:element>
    </xs:sequence>
    <xs:attribute name="currency" type="xs:string" default="USD"/>
  </xs:complexType>
  <xs:simpleType name="QtyType">
    <xs:restriction base="xs:integer">
      <xs:minInclusive value="1"/>
      <xs:maxInclusive value="999"/>
    </xs:restriction>
  </xs:simpleType>
</xs:schema>"#;

    #[test]
    fn parses_full_purchase_order_schema() {
        let s = parse_schema(PO).unwrap();
        assert_eq!(s.target_namespace.as_deref(), Some("urn:po"));
        assert_eq!(s.elements.len(), 1);
        assert_eq!(s.types.len(), 2);
        let po = &s.elements[0];
        assert_eq!(po.name, "PO");
        assert_eq!(po.type_ref, TypeRef::Named("POType".into()));
    }

    #[test]
    fn complex_type_content_and_attributes() {
        let s = parse_schema(PO).unwrap();
        let TypeDef::Complex(ct) = s.type_by_name("POType").unwrap() else {
            panic!()
        };
        assert_eq!(ct.attributes.len(), 1);
        assert_eq!(ct.attributes[0].name, "currency");
        assert_eq!(ct.attributes[0].default.as_deref(), Some("USD"));
        let decls = ct.content.as_ref().unwrap().element_decls();
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[0].name, "OrderNo");
        assert_eq!(decls[0].type_ref, TypeRef::Builtin(BuiltinType::Integer));
        assert_eq!(decls[1].name, "Lines");
        assert_eq!(decls[1].min_occurs, 0);
        assert_eq!(decls[1].max_occurs, MaxOccurs::Unbounded);
    }

    #[test]
    fn inline_complex_type_with_required_attribute() {
        let s = parse_schema(PO).unwrap();
        let TypeDef::Complex(ct) = s.type_by_name("POType").unwrap() else {
            panic!()
        };
        let lines = ct.content.as_ref().unwrap().element_decls()[1];
        let TypeRef::Inline(inner) = &lines.type_ref else {
            panic!("expected inline type")
        };
        let TypeDef::Complex(inner_ct) = inner.as_ref() else {
            panic!()
        };
        assert_eq!(inner_ct.attributes[0].name, "lineNo");
        assert_eq!(inner_ct.attributes[0].required, AttributeUse::Required);
    }

    #[test]
    fn simple_type_restriction_facets() {
        let s = parse_schema(PO).unwrap();
        let TypeDef::Simple(SimpleType::Restriction { base, facets }) =
            s.type_by_name("QtyType").unwrap()
        else {
            panic!()
        };
        assert_eq!(*base, TypeRef::Builtin(BuiltinType::Integer));
        assert_eq!(
            facets,
            &vec![
                Facet::MinInclusive("1".into()),
                Facet::MaxInclusive("999".into())
            ]
        );
    }

    #[test]
    fn type_name_parsing_strips_prefix_and_detects_builtins() {
        assert_eq!(
            parse_type_name("xs:string"),
            TypeRef::Builtin(BuiltinType::String)
        );
        assert_eq!(
            parse_type_name("xsd:dateTime"),
            TypeRef::Builtin(BuiltinType::DateTime)
        );
        assert_eq!(
            parse_type_name("string"),
            TypeRef::Builtin(BuiltinType::String)
        );
        assert_eq!(
            parse_type_name("tns:POType"),
            TypeRef::Named("POType".into())
        );
        assert_eq!(parse_type_name("POType"), TypeRef::Named("POType".into()));
    }

    #[test]
    fn rejects_non_schema_root() {
        let err = parse_schema("<html/>").unwrap_err();
        assert!(matches!(err, XsdError::NotASchema { found } if found == "html"));
    }

    #[test]
    fn rejects_bad_occurs() {
        let src = r#"<xs:schema xmlns:xs="x"><xs:element name="a" minOccurs="two"/></xs:schema>"#;
        assert!(matches!(parse_schema(src), Err(XsdError::Invalid { .. })));
        let src2 = r#"<xs:schema xmlns:xs="x"><xs:element name="a" minOccurs="3" maxOccurs="2"/></xs:schema>"#;
        assert!(matches!(parse_schema(src2), Err(XsdError::Invalid { .. })));
    }

    #[test]
    fn rejects_element_without_name_or_ref() {
        let src = r#"<xs:schema xmlns:xs="x"><xs:element type="xs:string"/></xs:schema>"#;
        assert!(matches!(parse_schema(src), Err(XsdError::Invalid { .. })));
    }

    #[test]
    fn rejects_type_attr_plus_inline_type() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="a" type="xs:string"><xs:complexType/></xs:element>
        </xs:schema>"#;
        assert!(matches!(parse_schema(src), Err(XsdError::Invalid { .. })));
    }

    #[test]
    fn element_ref_uses_target_name() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="item" type="xs:string"/>
          <xs:element name="list">
            <xs:complexType><xs:sequence>
              <xs:element ref="item" maxOccurs="unbounded"/>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let s = parse_schema(src).unwrap();
        let list = s.element_by_name("list").unwrap();
        let TypeRef::Inline(t) = &list.type_ref else {
            panic!()
        };
        let TypeDef::Complex(ct) = t.as_ref() else {
            panic!()
        };
        let decls = ct.content.as_ref().unwrap().element_decls();
        assert_eq!(decls[0].name, "item");
        assert_eq!(decls[0].reference.as_deref(), Some("item"));
    }

    #[test]
    fn choice_and_all_compositors() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="r">
            <xs:complexType>
              <xs:choice minOccurs="0" maxOccurs="2">
                <xs:element name="a" type="xs:string"/>
                <xs:all><xs:element name="b" type="xs:int"/></xs:all>
              </xs:choice>
            </xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let s = parse_schema(src).unwrap();
        let TypeRef::Inline(t) = &s.elements[0].type_ref else {
            panic!()
        };
        let TypeDef::Complex(ct) = t.as_ref() else {
            panic!()
        };
        let Some(Particle::Choice {
            items,
            min_occurs,
            max_occurs,
        }) = &ct.content
        else {
            panic!()
        };
        assert_eq!(*min_occurs, 0);
        assert_eq!(*max_occurs, MaxOccurs::Bounded(2));
        assert_eq!(items.len(), 2);
        assert!(matches!(items[1], Particle::All { .. }));
    }

    #[test]
    fn simple_content_extension_collects_attributes() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:complexType name="Price">
            <xs:simpleContent>
              <xs:extension base="xs:decimal">
                <xs:attribute name="currency" type="xs:string"/>
              </xs:extension>
            </xs:simpleContent>
          </xs:complexType>
        </xs:schema>"#;
        let s = parse_schema(src).unwrap();
        let TypeDef::Complex(ct) = s.type_by_name("Price").unwrap() else {
            panic!()
        };
        assert_eq!(ct.simple_base, Some(TypeRef::Builtin(BuiltinType::Decimal)));
        assert_eq!(ct.attributes[0].name, "currency");
    }

    #[test]
    fn list_and_union_simple_types() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="Ints"><xs:list itemType="xs:int"/></xs:simpleType>
          <xs:simpleType name="NumOrStr"><xs:union memberTypes="xs:int xs:string"/></xs:simpleType>
          <xs:element name="root" type="Ints"/>
        </xs:schema>"#;
        let s = parse_schema(src).unwrap();
        assert!(matches!(
            s.type_by_name("Ints"),
            Some(TypeDef::Simple(SimpleType::List { .. }))
        ));
        let Some(TypeDef::Simple(SimpleType::Union { members })) = s.type_by_name("NumOrStr")
        else {
            panic!()
        };
        assert_eq!(members.len(), 2);
    }

    #[test]
    fn annotations_are_ignored_everywhere() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:annotation><xs:documentation>doc</xs:documentation></xs:annotation>
          <xs:element name="a">
            <xs:annotation><xs:documentation>doc</xs:documentation></xs:annotation>
            <xs:complexType>
              <xs:annotation><xs:documentation>doc</xs:documentation></xs:annotation>
              <xs:sequence>
                <xs:annotation><xs:documentation>doc</xs:documentation></xs:annotation>
                <xs:element name="b" type="xs:string"/>
              </xs:sequence>
            </xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let s = parse_schema(src).unwrap();
        assert_eq!(s.elements.len(), 1);
    }

    #[test]
    fn reports_xml_errors_with_positions() {
        let err = parse_schema("<xs:schema xmlns:xs=\"x\">\n<oops></xs:schema>").unwrap_err();
        assert!(matches!(err, XsdError::Xml(_)));
    }
}
