//! The XSD object model: declarations, types, particles, and facets.
//!
//! The model mirrors the source schema closely (references are kept by name
//! until [`resolve`](crate::resolve) checks them; [`tree`](crate::tree)
//! flattens everything into the schema tree).

use crate::types::BuiltinType;
use std::fmt;

/// A parsed schema document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    /// The `targetNamespace` attribute, if present.
    pub target_namespace: Option<String>,
    /// Global element declarations, in document order.
    pub elements: Vec<ElementDecl>,
    /// Global attribute declarations, in document order.
    pub attributes: Vec<AttributeDecl>,
    /// Named type definitions (complex and simple), in document order.
    pub types: Vec<(String, TypeDef)>,
    /// Named model groups (`xs:group`), in document order.
    pub groups: Vec<(String, Particle)>,
    /// Named attribute groups (`xs:attributeGroup`), in document order.
    pub attribute_groups: Vec<(String, Vec<AttributeDecl>)>,
}

impl Schema {
    /// Looks up a named type definition.
    pub fn type_by_name(&self, name: &str) -> Option<&TypeDef> {
        self.types.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    /// Looks up a global element declaration.
    pub fn element_by_name(&self, name: &str) -> Option<&ElementDecl> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Looks up a global attribute declaration.
    pub fn attribute_by_name(&self, name: &str) -> Option<&AttributeDecl> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Looks up a named model group.
    pub fn group_by_name(&self, name: &str) -> Option<&Particle> {
        self.groups.iter().find(|(n, _)| n == name).map(|(_, p)| p)
    }

    /// Looks up a named attribute group.
    pub fn attribute_group_by_name(&self, name: &str) -> Option<&[AttributeDecl]> {
        self.attribute_groups
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| a.as_slice())
    }
}

/// How an element or attribute refers to its type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRef {
    /// A built-in simple type, e.g. `xs:string`.
    Builtin(BuiltinType),
    /// A reference to a named type declared in this schema.
    Named(String),
    /// An anonymous type defined inline.
    Inline(Box<TypeDef>),
    /// No type given: XSD defaults to `anyType`.
    Unspecified,
}

/// A named or anonymous type definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeDef {
    /// A complex type (may nest elements and carry attributes).
    Complex(ComplexType),
    /// A simple type (restriction/list/union of simple content).
    Simple(SimpleType),
}

/// A complex type definition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ComplexType {
    /// The content particle (`sequence` / `choice` / `all`), if any.
    pub content: Option<Particle>,
    /// Attribute declarations on this type.
    pub attributes: Vec<AttributeDecl>,
    /// Referenced named attribute groups (`<xs:attributeGroup ref="..."/>`),
    /// expanded at tree compilation.
    pub attribute_group_refs: Vec<String>,
    /// The `mixed` attribute.
    pub mixed: bool,
    /// For `simpleContent` extensions: the base simple type.
    pub simple_base: Option<TypeRef>,
    /// For `complexContent` *extensions*: the named base complex type whose
    /// content and attributes this type inherits (spliced in ahead of the
    /// local declarations when the tree is compiled). `None` for plain
    /// types and for `complexContent` restrictions (which redeclare their
    /// content in full).
    pub complex_base: Option<String>,
}

/// A simple type definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleType {
    /// `<xs:restriction base="...">` with facets.
    Restriction {
        /// The restricted base type.
        base: TypeRef,
        /// Constraining facets in document order.
        facets: Vec<Facet>,
    },
    /// `<xs:list itemType="..."/>`.
    List {
        /// The list item type.
        item: TypeRef,
    },
    /// `<xs:union memberTypes="..."/>`.
    Union {
        /// The union member types.
        members: Vec<TypeRef>,
    },
}

/// A constraining facet on a simple-type restriction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Facet {
    /// `xs:enumeration`
    Enumeration(String),
    /// `xs:pattern`
    Pattern(String),
    /// `xs:minInclusive`
    MinInclusive(String),
    /// `xs:maxInclusive`
    MaxInclusive(String),
    /// `xs:minExclusive`
    MinExclusive(String),
    /// `xs:maxExclusive`
    MaxExclusive(String),
    /// `xs:length`
    Length(u32),
    /// `xs:minLength`
    MinLength(u32),
    /// `xs:maxLength`
    MaxLength(u32),
    /// `xs:totalDigits`
    TotalDigits(u32),
    /// `xs:fractionDigits`
    FractionDigits(u32),
    /// `xs:whiteSpace`
    WhiteSpace(String),
}

/// The `maxOccurs` attribute value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MaxOccurs {
    /// A finite bound.
    Bounded(u32),
    /// `maxOccurs="unbounded"`.
    Unbounded,
}

impl MaxOccurs {
    /// True if at least `n` occurrences are allowed.
    pub fn allows(self, n: u32) -> bool {
        match self {
            MaxOccurs::Bounded(b) => n <= b,
            MaxOccurs::Unbounded => true,
        }
    }
}

impl Default for MaxOccurs {
    fn default() -> Self {
        MaxOccurs::Bounded(1)
    }
}

impl fmt::Display for MaxOccurs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaxOccurs::Bounded(n) => write!(f, "{n}"),
            MaxOccurs::Unbounded => f.write_str("unbounded"),
        }
    }
}

/// A content-model particle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Particle {
    /// `<xs:sequence>`: ordered children.
    Sequence {
        /// Nested particles in order.
        items: Vec<Particle>,
        /// `minOccurs` on the compositor.
        min_occurs: u32,
        /// `maxOccurs` on the compositor.
        max_occurs: MaxOccurs,
    },
    /// `<xs:choice>`: one of the children.
    Choice {
        /// Alternative particles.
        items: Vec<Particle>,
        /// `minOccurs` on the compositor.
        min_occurs: u32,
        /// `maxOccurs` on the compositor.
        max_occurs: MaxOccurs,
    },
    /// `<xs:all>`: unordered children.
    All {
        /// Member particles.
        items: Vec<Particle>,
        /// `minOccurs` on the compositor.
        min_occurs: u32,
    },
    /// A local element declaration or element reference.
    Element(ElementDecl),
    /// `<xs:group ref="..."/>`: a reference to a named model group whose
    /// particle is spliced in at this position during tree compilation.
    GroupRef {
        /// The referenced group's name (local part).
        name: String,
        /// `minOccurs` on the reference.
        min_occurs: u32,
        /// `maxOccurs` on the reference.
        max_occurs: MaxOccurs,
    },
}

impl Particle {
    /// Iterates over every element declaration in this particle, depth-first,
    /// in document order (the order the paper's `order` property records).
    /// Group references are *not* expanded here (that needs the schema's
    /// group table — see the tree compiler); they contribute no declarations.
    pub fn element_decls(&self) -> Vec<&ElementDecl> {
        let mut out = Vec::new();
        self.collect_elements(&mut out);
        out
    }

    fn collect_elements<'p>(&'p self, out: &mut Vec<&'p ElementDecl>) {
        match self {
            Particle::Sequence { items, .. }
            | Particle::Choice { items, .. }
            | Particle::All { items, .. } => {
                for item in items {
                    item.collect_elements(out);
                }
            }
            Particle::Element(decl) => out.push(decl),
            Particle::GroupRef { .. } => {}
        }
    }
}

/// An element declaration (global or local).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementDecl {
    /// The element name; empty for pure `ref=` declarations until resolution.
    pub name: String,
    /// A `ref="..."` target, if this is a reference to a global element.
    pub reference: Option<String>,
    /// The declared type.
    pub type_ref: TypeRef,
    /// `minOccurs` (default 1).
    pub min_occurs: u32,
    /// `maxOccurs` (default 1).
    pub max_occurs: MaxOccurs,
    /// `nillable` (default false).
    pub nillable: bool,
    /// `default="..."`.
    pub default: Option<String>,
    /// `fixed="..."`.
    pub fixed: Option<String>,
}

impl ElementDecl {
    /// A minimal named element of unspecified type (builder-style helpers
    /// below fill in the rest).
    pub fn new(name: impl Into<String>) -> Self {
        ElementDecl {
            name: name.into(),
            reference: None,
            type_ref: TypeRef::Unspecified,
            min_occurs: 1,
            max_occurs: MaxOccurs::default(),
            nillable: false,
            default: None,
            fixed: None,
        }
    }

    /// Sets the type to a built-in (builder style).
    pub fn with_builtin(mut self, t: BuiltinType) -> Self {
        self.type_ref = TypeRef::Builtin(t);
        self
    }

    /// Sets occurrence bounds (builder style).
    pub fn with_occurs(mut self, min: u32, max: MaxOccurs) -> Self {
        self.min_occurs = min;
        self.max_occurs = max;
        self
    }
}

/// The `use` attribute of an attribute declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AttributeUse {
    /// `use="optional"` (the default).
    #[default]
    Optional,
    /// `use="required"`.
    Required,
    /// `use="prohibited"`.
    Prohibited,
}

/// An attribute declaration (global or local).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeDecl {
    /// The attribute name; empty for pure `ref=` declarations until resolution.
    pub name: String,
    /// A `ref="..."` target, if this is a reference to a global attribute.
    pub reference: Option<String>,
    /// The declared type.
    pub type_ref: TypeRef,
    /// The `use` attribute.
    pub required: AttributeUse,
    /// `default="..."`.
    pub default: Option<String>,
    /// `fixed="..."`.
    pub fixed: Option<String>,
}

impl AttributeDecl {
    /// A minimal named attribute of unspecified type.
    pub fn new(name: impl Into<String>) -> Self {
        AttributeDecl {
            name: name.into(),
            reference: None,
            type_ref: TypeRef::Unspecified,
            required: AttributeUse::default(),
            default: None,
            fixed: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_occurs_allows() {
        assert!(MaxOccurs::Bounded(3).allows(3));
        assert!(!MaxOccurs::Bounded(3).allows(4));
        assert!(MaxOccurs::Unbounded.allows(u32::MAX));
        assert_eq!(MaxOccurs::default(), MaxOccurs::Bounded(1));
    }

    #[test]
    fn max_occurs_display() {
        assert_eq!(MaxOccurs::Bounded(2).to_string(), "2");
        assert_eq!(MaxOccurs::Unbounded.to_string(), "unbounded");
    }

    #[test]
    fn particle_collects_elements_in_document_order() {
        let p = Particle::Sequence {
            items: vec![
                Particle::Element(ElementDecl::new("a")),
                Particle::Choice {
                    items: vec![
                        Particle::Element(ElementDecl::new("b")),
                        Particle::Element(ElementDecl::new("c")),
                    ],
                    min_occurs: 1,
                    max_occurs: MaxOccurs::Bounded(1),
                },
                Particle::Element(ElementDecl::new("d")),
            ],
            min_occurs: 1,
            max_occurs: MaxOccurs::Bounded(1),
        };
        let names: Vec<_> = p.element_decls().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c", "d"]);
    }

    #[test]
    fn schema_lookup_by_name() {
        let mut s = Schema::default();
        s.elements.push(ElementDecl::new("PO"));
        s.attributes.push(AttributeDecl::new("id"));
        s.types
            .push(("POType".into(), TypeDef::Complex(ComplexType::default())));
        assert!(s.element_by_name("PO").is_some());
        assert!(s.element_by_name("XX").is_none());
        assert!(s.attribute_by_name("id").is_some());
        assert!(s.type_by_name("POType").is_some());
        assert!(s.type_by_name("Other").is_none());
    }

    #[test]
    fn element_builder_sets_fields() {
        let e = ElementDecl::new("Qty")
            .with_builtin(BuiltinType::Integer)
            .with_occurs(0, MaxOccurs::Unbounded);
        assert_eq!(e.name, "Qty");
        assert_eq!(e.type_ref, TypeRef::Builtin(BuiltinType::Integer));
        assert_eq!(e.min_occurs, 0);
        assert_eq!(e.max_occurs, MaxOccurs::Unbounded);
        assert!(!e.nillable);
    }

    #[test]
    fn attribute_defaults_are_optional_untyped() {
        let a = AttributeDecl::new("unit");
        assert_eq!(a.required, AttributeUse::Optional);
        assert_eq!(a.type_ref, TypeRef::Unspecified);
    }
}
