//! Reference resolution: checks that every named type, element `ref`, and
//! attribute `ref` points at a declaration that exists, and that global
//! symbol spaces contain no duplicates.

use crate::error::{XsdError, XsdResult};
use crate::model::{
    AttributeDecl, ComplexType, ElementDecl, Particle, Schema, SimpleType, TypeDef, TypeRef,
};
use std::collections::HashSet;

/// Validates all intra-schema references. Called by
/// [`parse_schema`](crate::parser::parse_schema); callable directly on
/// programmatically-built schemas.
pub fn check(schema: &Schema) -> XsdResult<()> {
    check_duplicates(schema)?;
    for element in &schema.elements {
        check_element(schema, element)?;
    }
    for attribute in &schema.attributes {
        check_attribute(schema, attribute)?;
    }
    for (_, def) in &schema.types {
        check_typedef(schema, def)?;
    }
    for (_, particle) in &schema.groups {
        check_particle(schema, particle)?;
    }
    for (_, attributes) in &schema.attribute_groups {
        for attribute in attributes {
            check_attribute(schema, attribute)?;
        }
    }
    Ok(())
}

fn check_duplicates(schema: &Schema) -> XsdResult<()> {
    let mut seen = HashSet::new();
    for e in &schema.elements {
        if e.reference.is_none() && !seen.insert(e.name.as_str()) {
            return Err(XsdError::DuplicateGlobal {
                space: "element",
                name: e.name.clone(),
            });
        }
    }
    seen.clear();
    for a in &schema.attributes {
        if a.reference.is_none() && !seen.insert(a.name.as_str()) {
            return Err(XsdError::DuplicateGlobal {
                space: "attribute",
                name: a.name.clone(),
            });
        }
    }
    seen.clear();
    for (name, _) in &schema.types {
        if !seen.insert(name.as_str()) {
            return Err(XsdError::DuplicateGlobal {
                space: "type",
                name: name.clone(),
            });
        }
    }
    Ok(())
}

fn check_type_ref(schema: &Schema, type_ref: &TypeRef) -> XsdResult<()> {
    match type_ref {
        TypeRef::Builtin(_) | TypeRef::Unspecified => Ok(()),
        TypeRef::Named(name) => {
            if schema.type_by_name(name).is_some() {
                Ok(())
            } else {
                Err(XsdError::UnresolvedType { name: name.clone() })
            }
        }
        TypeRef::Inline(def) => check_typedef(schema, def),
    }
}

fn check_typedef(schema: &Schema, def: &TypeDef) -> XsdResult<()> {
    match def {
        TypeDef::Complex(ct) => check_complex(schema, ct),
        TypeDef::Simple(st) => check_simple(schema, st),
    }
}

fn check_complex(schema: &Schema, ct: &ComplexType) -> XsdResult<()> {
    if let Some(base) = &ct.simple_base {
        check_type_ref(schema, base)?;
    }
    if let Some(base) = &ct.complex_base {
        match schema.type_by_name(base) {
            Some(TypeDef::Complex(_)) => {}
            Some(TypeDef::Simple(_)) => {
                return Err(XsdError::invalid(
                    format!("complexContent base {base:?} is a simple type"),
                    None,
                ))
            }
            None => return Err(XsdError::UnresolvedType { name: base.clone() }),
        }
        // The base chain must terminate.
        effective_complex(schema, ct)?;
    }
    if let Some(content) = &ct.content {
        check_particle(schema, content)?;
    }
    for attribute in &ct.attributes {
        check_attribute(schema, attribute)?;
    }
    for group in &ct.attribute_group_refs {
        if schema.attribute_group_by_name(group).is_none() {
            return Err(XsdError::UnresolvedRef {
                name: group.clone(),
            });
        }
    }
    Ok(())
}

fn check_simple(schema: &Schema, st: &SimpleType) -> XsdResult<()> {
    match st {
        SimpleType::Restriction { base, .. } => check_type_ref(schema, base),
        SimpleType::List { item } => check_type_ref(schema, item),
        SimpleType::Union { members } => members.iter().try_for_each(|m| check_type_ref(schema, m)),
    }
}

/// Resolves the *effective* members of a complex type under
/// `complexContent` extension: content particles (outermost base first,
/// derived type last, per the XSD effective-content-model rules) and the
/// attribute declarations / attribute-group references accumulated along the
/// derivation chain. Errors on unresolved or cyclic base chains.
#[allow(clippy::type_complexity)]
pub fn effective_complex<'s>(
    schema: &'s Schema,
    ct: &'s ComplexType,
) -> XsdResult<(Vec<&'s Particle>, Vec<&'s AttributeDecl>, Vec<&'s str>)> {
    let mut chain: Vec<&'s ComplexType> = Vec::new();
    let mut names_on_path: Vec<&'s str> = Vec::new();
    let mut current = ct;
    loop {
        chain.push(current);
        let Some(base_name) = &current.complex_base else {
            break;
        };
        if names_on_path.iter().any(|n| n == base_name) {
            return Err(XsdError::invalid(
                format!("complexContent base chain through {base_name:?} is cyclic"),
                None,
            ));
        }
        match schema.type_by_name(base_name) {
            Some(TypeDef::Complex(base)) => {
                names_on_path.push(base_name);
                current = base;
            }
            Some(TypeDef::Simple(_)) => {
                return Err(XsdError::invalid(
                    format!("complexContent base {base_name:?} is a simple type"),
                    None,
                ))
            }
            None => {
                return Err(XsdError::UnresolvedType {
                    name: base_name.clone(),
                })
            }
        }
    }
    // Outermost base first.
    chain.reverse();
    let mut particles = Vec::new();
    let mut attributes = Vec::new();
    let mut groups = Vec::new();
    for member in chain {
        if let Some(content) = &member.content {
            particles.push(content);
        }
        attributes.extend(member.attributes.iter());
        groups.extend(member.attribute_group_refs.iter().map(String::as_str));
    }
    Ok((particles, attributes, groups))
}

fn check_particle(schema: &Schema, particle: &Particle) -> XsdResult<()> {
    match particle {
        Particle::Sequence { items, .. }
        | Particle::Choice { items, .. }
        | Particle::All { items, .. } => items.iter().try_for_each(|p| check_particle(schema, p)),
        Particle::Element(decl) => check_element(schema, decl),
        Particle::GroupRef { name, .. } => {
            if schema.group_by_name(name).is_some() {
                Ok(())
            } else {
                Err(XsdError::UnresolvedRef { name: name.clone() })
            }
        }
    }
}

fn check_element(schema: &Schema, decl: &ElementDecl) -> XsdResult<()> {
    if let Some(target) = &decl.reference {
        if schema.element_by_name(target).is_none() {
            return Err(XsdError::UnresolvedRef {
                name: target.clone(),
            });
        }
    }
    check_type_ref(schema, &decl.type_ref)
}

fn check_attribute(schema: &Schema, decl: &AttributeDecl) -> XsdResult<()> {
    if let Some(target) = &decl.reference {
        if schema.attribute_by_name(target).is_none() {
            return Err(XsdError::UnresolvedRef {
                name: target.clone(),
            });
        }
    }
    check_type_ref(schema, &decl.type_ref)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;

    #[test]
    fn detects_unresolved_type() {
        let src = r#"<xs:schema xmlns:xs="x"><xs:element name="a" type="Missing"/></xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::UnresolvedType { name }) if name == "Missing"
        ));
    }

    #[test]
    fn detects_unresolved_type_deep_in_particles() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="r"><xs:complexType><xs:sequence><xs:choice>
            <xs:element name="x" type="Nope"/>
          </xs:choice></xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::UnresolvedType { .. })
        ));
    }

    #[test]
    fn detects_unresolved_element_ref() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element ref="ghost"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::UnresolvedRef { name }) if name == "ghost"
        ));
    }

    #[test]
    fn detects_unresolved_attribute_ref() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="r"><xs:complexType>
            <xs:attribute ref="ghost"/>
          </xs:complexType></xs:element>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::UnresolvedRef { .. })
        ));
    }

    #[test]
    fn detects_duplicate_globals() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="a" type="xs:string"/>
          <xs:element name="a" type="xs:int"/>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::DuplicateGlobal {
                space: "element",
                ..
            })
        ));
        let src2 = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="T"><xs:restriction base="xs:string"/></xs:simpleType>
          <xs:complexType name="T"/>
          <xs:element name="a" type="xs:string"/>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src2),
            Err(XsdError::DuplicateGlobal { space: "type", .. })
        ));
    }

    #[test]
    fn detects_unresolved_in_named_types() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="Bad"><xs:restriction base="NoSuch"/></xs:simpleType>
          <xs:element name="a" type="xs:string"/>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::UnresolvedType { .. })
        ));
    }

    #[test]
    fn detects_unresolved_union_member_and_list_item() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="U"><xs:union memberTypes="xs:int NoSuch"/></xs:simpleType>
          <xs:element name="a" type="xs:string"/>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::UnresolvedType { .. })
        ));
        let src2 = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="L"><xs:list itemType="NoSuch"/></xs:simpleType>
          <xs:element name="a" type="xs:string"/>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src2),
            Err(XsdError::UnresolvedType { .. })
        ));
    }

    #[test]
    fn valid_cross_references_pass() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:attribute name="unit" type="xs:string"/>
          <xs:element name="leaf" type="xs:string"/>
          <xs:complexType name="Box">
            <xs:sequence><xs:element ref="leaf"/></xs:sequence>
            <xs:attribute ref="unit"/>
          </xs:complexType>
          <xs:element name="root" type="Box"/>
        </xs:schema>"#;
        assert!(check(&parse_schema(src).unwrap()).is_ok());
    }

    #[test]
    fn recursive_named_types_are_allowed() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:complexType name="Node">
            <xs:sequence>
              <xs:element name="child" type="Node" minOccurs="0"/>
            </xs:sequence>
          </xs:complexType>
          <xs:element name="tree" type="Node"/>
        </xs:schema>"#;
        assert!(parse_schema(src).is_ok());
    }
}
