#![warn(missing_docs)]

//! XML Schema (XSD) object model, parser, and schema-tree compiler.
//!
//! This crate turns an XSD document into the *schema tree* consumed by the
//! QMatch matchers. The pipeline is:
//!
//! ```text
//! &str ──qmatch-xml──► DOM ──parser──► Schema (model) ──resolve──► checked
//!      ──tree──► SchemaTree (label / properties / children / level per node)
//! ```
//!
//! Coverage targets the XSD subset that real-world schema-matching corpora
//! use (and that the paper's schemas need): global and local element
//! declarations, attributes, named and anonymous complex/simple types,
//! `sequence`/`choice`/`all` compositors, occurrence constraints,
//! `restriction` with common facets, element/attribute `ref=`s, and the full
//! set of built-in simple types with a generalization lattice (used for the
//! paper's *relaxed property match*).
//!
//! # Example
//!
//! ```
//! use qmatch_xsd::{parse_schema, SchemaTree};
//!
//! let xsd = r#"
//! <xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
//!   <xs:element name="PO">
//!     <xs:complexType>
//!       <xs:sequence>
//!         <xs:element name="OrderNo" type="xs:integer"/>
//!       </xs:sequence>
//!     </xs:complexType>
//!   </xs:element>
//! </xs:schema>"#;
//!
//! let schema = parse_schema(xsd).unwrap();
//! let tree = SchemaTree::compile(&schema).unwrap();
//! assert_eq!(tree.root().label, "PO");
//! assert_eq!(tree.node(tree.root().children[0]).label, "OrderNo");
//! ```

pub mod error;
pub mod model;
pub mod parser;
pub mod profile;
pub mod resolve;
pub mod tree;
pub mod types;
pub mod validate;
pub mod writer;

pub use error::{XsdError, XsdResult};
pub use model::{
    AttributeDecl, AttributeUse, ComplexType, ElementDecl, Facet, MaxOccurs, Particle, Schema,
    SimpleType, TypeDef, TypeRef,
};
pub use parser::{parse_schema, parse_schema_with_limits};
pub use profile::TreeProfile;
pub use qmatch_xml::IngestLimits;
pub use tree::{DataType, NodeId, NodeKind, Properties, SchemaNode, SchemaTree};
pub use types::BuiltinType;
pub use validate::{validate, ValidationError, ValidationReport};
pub use writer::write_schema;
