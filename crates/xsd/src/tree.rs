//! The schema tree: the representation the QMatch algorithms consume.
//!
//! Section 2.1 of the paper classifies each schema element along four axes —
//! label **L**, properties **P**, children **C**, and nesting level **H**.
//! [`SchemaTree::compile`] flattens a parsed [`Schema`] into an arena of
//! [`SchemaNode`]s carrying exactly those four axes: sub-elements and
//! attributes become children, compositors are flattened in document order
//! (recording the paper's `order` property), named types are expanded at
//! their use sites, and simple-type derivation chains are resolved to their
//! built-in base so the matchers can use the type lattice.

use crate::error::{XsdError, XsdResult};
use crate::model::{
    AttributeDecl, AttributeUse, ComplexType, ElementDecl, MaxOccurs, Particle, Schema, SimpleType,
    TypeDef, TypeRef,
};
use crate::types::BuiltinType;
use qmatch_xml::IngestLimits;
use std::fmt;

/// Index of a node within its [`SchemaTree`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The arena index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Whether a node came from an element or an attribute declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// An XML element.
    Element,
    /// An XML attribute.
    Attribute,
}

/// The resolved data type of a node — the `type` entry of the paper's
/// properties axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// A built-in simple type (possibly reached through restriction steps).
    Builtin(BuiltinType),
    /// A complex type; carries the declared name when the type was named.
    Complex(Option<String>),
}

impl DataType {
    /// The built-in simple type, if this is one.
    pub fn builtin(&self) -> Option<BuiltinType> {
        match self {
            DataType::Builtin(b) => Some(*b),
            DataType::Complex(_) => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Builtin(b) => write!(f, "{b}"),
            DataType::Complex(Some(name)) => write!(f, "complex:{name}"),
            DataType::Complex(None) => f.write_str("complex"),
        }
    }
}

/// The atomic properties of a node (the paper's **P** axis).
///
/// `Hash` (consistent with the derived `Eq`) lets consumers deduplicate
/// identical property profiles — the matchers score properties as a pure
/// function of the two profiles, so equal profiles always score equally.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Properties {
    /// Resolved data type.
    pub data_type: DataType,
    /// 1-based position among the parent's children (document order);
    /// 1 for a root.
    pub order: u32,
    /// Effective `minOccurs` (for attributes: 1 if required, else 0).
    pub min_occurs: u32,
    /// Effective `maxOccurs` (always 1 for attributes).
    pub max_occurs: MaxOccurs,
    /// `nillable` flag (elements only).
    pub nillable: bool,
    /// Declared default value.
    pub default: Option<String>,
    /// Declared fixed value.
    pub fixed: Option<String>,
}

impl Default for Properties {
    fn default() -> Self {
        Properties {
            data_type: DataType::Complex(None),
            order: 1,
            min_occurs: 1,
            max_occurs: MaxOccurs::Bounded(1),
            nillable: false,
            default: None,
            fixed: None,
        }
    }
}

/// One node of the schema tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaNode {
    /// The element/attribute name (the paper's **L** axis).
    pub label: String,
    /// Element or attribute.
    pub kind: NodeKind,
    /// The paper's **P** axis.
    pub properties: Properties,
    /// Depth from the root (root = 0) — the paper's **H** axis.
    pub level: u32,
    /// Parent node, if any.
    pub parent: Option<NodeId>,
    /// Children in document order (sub-elements first, then attributes) —
    /// the paper's **C** axis.
    pub children: Vec<NodeId>,
}

impl SchemaNode {
    /// True if the node has no children (paper: "leaf elements, that is
    /// elements with no children").
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// An arena-allocated schema tree rooted at a global element declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaTree {
    name: String,
    nodes: Vec<SchemaNode>,
}

impl SchemaTree {
    /// Compiles the first global element declaration of `schema`.
    pub fn compile(schema: &Schema) -> XsdResult<SchemaTree> {
        Self::compile_with_limits(schema, &IngestLimits::default())
    }

    /// Like [`SchemaTree::compile`], with explicit [`IngestLimits`].
    ///
    /// Named-type expansion can multiply a small schema document into a huge
    /// compiled tree (the schema-level analog of an entity-expansion bomb),
    /// so `max_nodes` and `max_depth` are enforced here as well as during
    /// XML parsing.
    pub fn compile_with_limits(schema: &Schema, limits: &IngestLimits) -> XsdResult<SchemaTree> {
        let root = schema.elements.first().ok_or(XsdError::NoRootElement)?;
        let name = root.name.clone();
        Self::compile_element_with_limits(schema, &name, limits)
    }

    /// Compiles the global element named `root_name`.
    pub fn compile_element(schema: &Schema, root_name: &str) -> XsdResult<SchemaTree> {
        Self::compile_element_with_limits(schema, root_name, &IngestLimits::default())
    }

    /// Like [`SchemaTree::compile_element`], with explicit [`IngestLimits`].
    pub fn compile_element_with_limits(
        schema: &Schema,
        root_name: &str,
        limits: &IngestLimits,
    ) -> XsdResult<SchemaTree> {
        let root = schema
            .element_by_name(root_name)
            .ok_or_else(|| XsdError::UnresolvedRef {
                name: root_name.to_owned(),
            })?;
        let mut builder = TreeBuilder {
            schema,
            limits: *limits,
            nodes: Vec::new(),
            named_on_path: Vec::new(),
        };
        builder.add_element(root, None, 1, 0)?;
        Ok(SchemaTree {
            name: root.name.clone(),
            nodes: builder.nodes,
        })
    }

    /// Builds a tree directly from `(label, parent)` pairs — used for
    /// illustration schemas given as plain trees (the paper's Figures 7/8)
    /// and by tests. The first entry is the root and must have `parent ==
    /// None`; every other entry's parent must precede it.
    ///
    /// # Panics
    /// Panics if the parent ordering invariant is violated.
    pub fn from_labels(name: &str, entries: &[(&str, Option<usize>)]) -> SchemaTree {
        let typed: Vec<(&str, Option<usize>, DataType)> = entries
            .iter()
            .map(|(label, parent)| (*label, *parent, DataType::Builtin(BuiltinType::String)))
            .collect();
        Self::from_labels_typed(name, &typed)
    }

    /// Like [`SchemaTree::from_labels`], but with an explicit data type per
    /// node (used where an illustration schema's property axis matters —
    /// the paper's Figure 2 assumes `OrderNo` is an integer, for example).
    /// Internal nodes are normalized to complex content regardless of the
    /// supplied type.
    ///
    /// # Panics
    /// Panics if the parent ordering invariant is violated.
    pub fn from_labels_typed(
        name: &str,
        entries: &[(&str, Option<usize>, DataType)],
    ) -> SchemaTree {
        let mut nodes: Vec<SchemaNode> = Vec::with_capacity(entries.len());
        for (i, (label, parent, data_type)) in entries.iter().enumerate() {
            let (level, parent_id) = match parent {
                None => {
                    assert_eq!(i, 0, "only the first entry may be the root");
                    (0, None)
                }
                Some(p) => {
                    assert!(*p < i, "parent {p} must precede child {i}");
                    (nodes[*p].level + 1, Some(NodeId(*p as u32)))
                }
            };
            let order = match parent_id {
                Some(pid) => nodes[pid.index()].children.len() as u32 + 1,
                None => 1,
            };
            nodes.push(SchemaNode {
                label: (*label).to_owned(),
                kind: NodeKind::Element,
                properties: Properties {
                    data_type: data_type.clone(),
                    order,
                    ..Properties::default()
                },
                level,
                parent: parent_id,
                children: Vec::new(),
            });
            if let Some(pid) = parent_id {
                let id = NodeId((nodes.len() - 1) as u32);
                nodes[pid.index()].children.push(id);
            }
        }
        assert!(!nodes.is_empty(), "a tree needs at least a root");
        // Internal nodes carry complex content, matching what compiling an
        // equivalent XSD would produce; only leaves keep the string type.
        for node in &mut nodes {
            if !node.children.is_empty() {
                node.properties.data_type = DataType::Complex(None);
            }
        }
        SchemaTree {
            name: name.to_owned(),
            nodes,
        }
    }

    /// The tree's name (the root element's name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root node.
    pub fn root(&self) -> &SchemaNode {
        &self.nodes[0]
    }

    /// The root's id.
    pub fn root_id(&self) -> NodeId {
        NodeId(0)
    }

    /// Borrows a node by id.
    pub fn node(&self, id: NodeId) -> &SchemaNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes in the tree (elements + attributes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree is empty (never: compilation requires a root).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of element nodes only (Table 1 counts elements).
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == NodeKind::Element)
            .count()
    }

    /// Maximum node level (Table 1's "max depth").
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.level).max().unwrap_or(0)
    }

    /// Per-node nesting levels as a dense table indexed by
    /// [`NodeId::index`]. Matchers that are called repeatedly on the same
    /// tree extract this once instead of chasing node references per pair.
    pub fn levels(&self) -> Vec<u32> {
        self.nodes.iter().map(|n| n.level).collect()
    }

    /// Per-node leaf flags as a dense table indexed by [`NodeId::index`]
    /// (the leaf/internal partition of the tree).
    pub fn leaf_flags(&self) -> Vec<bool> {
        self.nodes.iter().map(SchemaNode::is_leaf).collect()
    }

    /// Iterates over `(id, node)` pairs in pre-order (the arena is built in
    /// pre-order, so this is index order).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &SchemaNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All ids in the subtree rooted at `id`, pre-order.
    pub fn subtree_ids(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            out.push(cur);
            // Push in reverse so children pop in document order.
            for &c in self.node(cur).children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Number of nodes in the subtree rooted at `id`.
    pub fn subtree_size(&self, id: NodeId) -> usize {
        self.subtree_ids(id).len()
    }

    /// Finds the first node (pre-order) with the given label.
    pub fn find_by_label(&self, label: &str) -> Option<NodeId> {
        self.iter()
            .find(|(_, n)| n.label == label)
            .map(|(id, _)| id)
    }

    /// Finds the node at a slash-joined label path (e.g. `PO/Lines/Item`),
    /// the same representation gold standards and mappings use.
    pub fn find_by_path(&self, path: &str) -> Option<NodeId> {
        let mut segments = path.split('/');
        let root_label = segments.next()?;
        if self.root().label != root_label {
            return None;
        }
        let mut current = self.root_id();
        for segment in segments {
            current = *self
                .node(current)
                .children
                .iter()
                .find(|&&c| self.node(c).label == segment)?;
        }
        Some(current)
    }

    /// The path of labels from the root to `id`, inclusive.
    pub fn path_labels(&self, id: NodeId) -> Vec<&str> {
        let mut out = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let node = self.node(c);
            out.push(node.label.as_str());
            cur = node.parent;
        }
        out.reverse();
        out
    }
}

/// Recursive tree construction with a named-type cycle guard.
struct TreeBuilder<'s> {
    schema: &'s Schema,
    limits: IngestLimits,
    nodes: Vec<SchemaNode>,
    /// Named types currently being expanded on this path (cycle guard).
    named_on_path: Vec<&'s str>,
}

impl<'s> TreeBuilder<'s> {
    fn push_node(&mut self, node: SchemaNode) -> XsdResult<NodeId> {
        if self.nodes.len() >= self.limits.max_nodes {
            return Err(XsdError::LimitExceeded {
                limit: "max_nodes",
                limit_value: self.limits.max_nodes as u64,
                actual: self.nodes.len() as u64 + 1,
                offset: None,
            });
        }
        if node.level as usize > self.limits.max_depth {
            return Err(XsdError::LimitExceeded {
                limit: "max_depth",
                limit_value: self.limits.max_depth as u64,
                actual: node.level as u64,
                offset: None,
            });
        }
        let id = NodeId(self.nodes.len() as u32);
        if let Some(parent) = node.parent {
            self.nodes[parent.index()].children.push(id);
        }
        self.nodes.push(node);
        Ok(id)
    }

    fn add_element(
        &mut self,
        decl: &'s ElementDecl,
        parent: Option<NodeId>,
        order: u32,
        level: u32,
    ) -> XsdResult<NodeId> {
        // Follow a ref to the global declaration for type information, but
        // keep the occurrence constraints written at the use site.
        let target: &ElementDecl = match &decl.reference {
            Some(name) => self
                .schema
                .element_by_name(name)
                .ok_or_else(|| XsdError::UnresolvedRef { name: name.clone() })?,
            None => decl,
        };
        let (data_type, expand) = self.resolve_type(&target.type_ref)?;
        let id = self.push_node(SchemaNode {
            label: target.name.clone(),
            kind: NodeKind::Element,
            properties: Properties {
                data_type,
                order,
                min_occurs: decl.min_occurs,
                max_occurs: decl.max_occurs,
                nillable: target.nillable,
                default: target.default.clone(),
                fixed: target.fixed.clone(),
            },
            level,
            parent,
            children: Vec::new(),
        })?;
        if let Some((complex, guard_name)) = expand {
            if let Some(name) = guard_name {
                self.named_on_path.push(name);
            }
            self.add_complex_children(complex, id, level + 1)?;
            if guard_name.is_some() {
                self.named_on_path.pop();
            }
        }
        Ok(id)
    }

    /// Resolves a type reference to the node's [`DataType`] and, for complex
    /// types that should be expanded, the type to expand plus an optional
    /// cycle-guard name. Recursive named types are *not* re-expanded.
    #[allow(clippy::type_complexity)]
    fn resolve_type(
        &self,
        type_ref: &'s TypeRef,
    ) -> XsdResult<(DataType, Option<(&'s ComplexType, Option<&'s str>)>)> {
        match type_ref {
            TypeRef::Builtin(b) => Ok((DataType::Builtin(*b), None)),
            TypeRef::Unspecified => Ok((DataType::Builtin(BuiltinType::AnyType), None)),
            TypeRef::Inline(def) => self.resolve_typedef(def, None),
            TypeRef::Named(name) => {
                let def = self
                    .schema
                    .type_by_name(name)
                    .ok_or_else(|| XsdError::UnresolvedType { name: name.clone() })?;
                if self.named_on_path.contains(&name.as_str()) {
                    // Recursive use: keep the type name, stop expansion.
                    return Ok((DataType::Complex(Some(name.clone())), None));
                }
                let (dt, expand) = self.resolve_typedef(def, Some(name))?;
                Ok((dt, expand))
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn resolve_typedef(
        &self,
        def: &'s TypeDef,
        name: Option<&'s String>,
    ) -> XsdResult<(DataType, Option<(&'s ComplexType, Option<&'s str>)>)> {
        match def {
            TypeDef::Complex(ct) => {
                let dt = if let Some(base) = &ct.simple_base {
                    // simpleContent: the element's value type is the base.
                    self.resolve_simple_ref(base)?
                } else {
                    DataType::Complex(name.cloned())
                };
                Ok((dt, Some((ct, name.map(|n| n.as_str())))))
            }
            TypeDef::Simple(st) => Ok((self.resolve_simple(st)?, None)),
        }
    }

    /// Resolves a simple type to its built-in base (restrictions narrow, so
    /// the base is the nearest generalization; lists/unions collapse to
    /// `anySimpleType` as an honest upper bound).
    fn resolve_simple(&self, st: &SimpleType) -> XsdResult<DataType> {
        match st {
            SimpleType::Restriction { base, .. } => self.resolve_simple_ref(base),
            SimpleType::List { .. } | SimpleType::Union { .. } => {
                Ok(DataType::Builtin(BuiltinType::AnySimpleType))
            }
        }
    }

    fn resolve_simple_ref(&self, type_ref: &TypeRef) -> XsdResult<DataType> {
        match type_ref {
            TypeRef::Builtin(b) => Ok(DataType::Builtin(*b)),
            TypeRef::Unspecified => Ok(DataType::Builtin(BuiltinType::AnySimpleType)),
            TypeRef::Named(name) => {
                match self
                    .schema
                    .type_by_name(name)
                    .ok_or_else(|| XsdError::UnresolvedType { name: name.clone() })?
                {
                    TypeDef::Simple(st) => self.resolve_simple(st),
                    TypeDef::Complex(_) => Ok(DataType::Complex(Some(name.clone()))),
                }
            }
            TypeRef::Inline(def) => match def.as_ref() {
                TypeDef::Simple(st) => self.resolve_simple(st),
                TypeDef::Complex(_) => Ok(DataType::Complex(None)),
            },
        }
    }

    fn add_complex_children(
        &mut self,
        ct: &'s ComplexType,
        parent: NodeId,
        level: u32,
    ) -> XsdResult<()> {
        // Inherited members (complexContent extension) come first, exactly
        // as the effective content model orders them.
        let (particles, attributes, groups) = crate::resolve::effective_complex(self.schema, ct)?;
        let mut order = 1;
        for content in particles {
            let mut decls = Vec::new();
            self.collect_particle_elements(content, &mut Vec::new(), &mut decls)?;
            for decl in decls {
                self.add_element(decl, Some(parent), order, level)?;
                order += 1;
            }
        }
        for attr in attributes {
            if self.add_attribute(attr, parent, order, level)?.is_some() {
                order += 1;
            }
        }
        for group in groups {
            let attrs = self.schema.attribute_group_by_name(group).ok_or_else(|| {
                XsdError::UnresolvedRef {
                    name: group.to_owned(),
                }
            })?;
            for attr in attrs {
                if self.add_attribute(attr, parent, order, level)?.is_some() {
                    order += 1;
                }
            }
        }
        Ok(())
    }

    /// Collects element declarations from a particle in document order,
    /// splicing in named model groups at their reference sites. Recursive
    /// group references are an error (the instance set would be infinite).
    fn collect_particle_elements(
        &self,
        particle: &'s Particle,
        groups_on_path: &mut Vec<&'s str>,
        out: &mut Vec<&'s ElementDecl>,
    ) -> XsdResult<()> {
        match particle {
            Particle::Sequence { items, .. }
            | Particle::Choice { items, .. }
            | Particle::All { items, .. } => {
                for item in items {
                    self.collect_particle_elements(item, groups_on_path, out)?;
                }
                Ok(())
            }
            Particle::Element(decl) => {
                out.push(decl);
                Ok(())
            }
            Particle::GroupRef { name, .. } => {
                if groups_on_path.iter().any(|g| g == name) {
                    return Err(XsdError::invalid(
                        format!("model group {name:?} references itself"),
                        None,
                    ));
                }
                let body = self
                    .schema
                    .group_by_name(name)
                    .ok_or_else(|| XsdError::UnresolvedRef { name: name.clone() })?;
                groups_on_path.push(name);
                self.collect_particle_elements(body, groups_on_path, out)?;
                groups_on_path.pop();
                Ok(())
            }
        }
    }

    fn add_attribute(
        &mut self,
        decl: &'s AttributeDecl,
        parent: NodeId,
        order: u32,
        level: u32,
    ) -> XsdResult<Option<NodeId>> {
        // `use=` is a use-site property; a prohibited attribute never appears
        // in instances, and the paper's children axis counts present members
        // only, so it produces no node.
        if decl.required == AttributeUse::Prohibited {
            return Ok(None);
        }
        let target: &AttributeDecl = match &decl.reference {
            Some(name) => self
                .schema
                .attribute_by_name(name)
                .ok_or_else(|| XsdError::UnresolvedRef { name: name.clone() })?,
            None => decl,
        };
        let data_type = self.resolve_simple_ref(&target.type_ref)?;
        let min_occurs = match decl.required {
            AttributeUse::Required => 1,
            AttributeUse::Optional | AttributeUse::Prohibited => 0,
        };
        Ok(Some(self.push_node(SchemaNode {
            label: target.name.clone(),
            kind: NodeKind::Attribute,
            properties: Properties {
                data_type,
                order,
                min_occurs,
                max_occurs: MaxOccurs::Bounded(1),
                nillable: false,
                default: target.default.clone(),
                fixed: target.fixed.clone(),
            },
            level,
            parent: Some(parent),
            children: Vec::new(),
        })?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_schema;

    const PO: &str = r#"
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="PO">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="OrderNo" type="xs:integer"/>
        <xs:element name="Lines">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="Item" type="xs:string"/>
              <xs:element name="Quantity" type="Qty"/>
            </xs:sequence>
            <xs:attribute name="count" type="xs:int" use="required"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
      <xs:attribute name="currency" type="xs:string"/>
    </xs:complexType>
  </xs:element>
  <xs:simpleType name="Qty">
    <xs:restriction base="xs:positiveInteger"><xs:maxInclusive value="99"/></xs:restriction>
  </xs:simpleType>
</xs:schema>"#;

    fn po_tree() -> SchemaTree {
        SchemaTree::compile(&parse_schema(PO).unwrap()).unwrap()
    }

    #[test]
    fn compiles_nested_structure_with_levels() {
        let t = po_tree();
        assert_eq!(t.name(), "PO");
        assert_eq!(t.root().label, "PO");
        assert_eq!(t.root().level, 0);
        assert_eq!(t.len(), 7); // PO, OrderNo, Lines, Item, Quantity, count, currency
        assert_eq!(t.element_count(), 5);
        assert_eq!(t.max_depth(), 2);
        let lines = t.node(t.find_by_label("Lines").unwrap());
        assert_eq!(lines.level, 1);
        assert_eq!(lines.children.len(), 3); // Item, Quantity, count
        let item = t.node(t.find_by_label("Item").unwrap());
        assert_eq!(item.level, 2);
        assert!(item.is_leaf());
    }

    #[test]
    fn dense_level_and_leaf_tables_mirror_the_nodes() {
        let t = po_tree();
        let levels = t.levels();
        let leaves = t.leaf_flags();
        assert_eq!(levels.len(), t.len());
        assert_eq!(leaves.len(), t.len());
        for (id, node) in t.iter() {
            assert_eq!(levels[id.index()], node.level);
            assert_eq!(leaves[id.index()], node.is_leaf());
        }
        assert_eq!(levels[0], 0); // root
        assert_eq!(leaves.iter().filter(|l| **l).count(), 5); // OrderNo, Item, Quantity, count, currency
    }

    #[test]
    fn order_property_counts_document_position() {
        let t = po_tree();
        let order_no = t.node(t.find_by_label("OrderNo").unwrap());
        assert_eq!(order_no.properties.order, 1);
        let lines = t.node(t.find_by_label("Lines").unwrap());
        assert_eq!(lines.properties.order, 2);
        let currency = t.node(t.find_by_label("currency").unwrap());
        assert_eq!(currency.properties.order, 3); // after the two elements
    }

    #[test]
    fn attributes_become_children_with_occurrence_semantics() {
        let t = po_tree();
        let count = t.node(t.find_by_label("count").unwrap());
        assert_eq!(count.kind, NodeKind::Attribute);
        assert_eq!(count.properties.min_occurs, 1); // required
        assert_eq!(count.properties.max_occurs, MaxOccurs::Bounded(1));
        let currency = t.node(t.find_by_label("currency").unwrap());
        assert_eq!(currency.properties.min_occurs, 0); // optional
    }

    #[test]
    fn simple_type_chains_resolve_to_builtin_base() {
        let t = po_tree();
        let qty = t.node(t.find_by_label("Quantity").unwrap());
        assert_eq!(
            qty.properties.data_type,
            DataType::Builtin(BuiltinType::PositiveInteger)
        );
    }

    #[test]
    fn complex_nodes_record_type_name() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:complexType name="Addr"><xs:sequence>
            <xs:element name="street" type="xs:string"/>
          </xs:sequence></xs:complexType>
          <xs:element name="shipTo" type="Addr"/>
        </xs:schema>"#;
        let t = SchemaTree::compile(&parse_schema(src).unwrap()).unwrap();
        assert_eq!(
            t.root().properties.data_type,
            DataType::Complex(Some("Addr".into()))
        );
        assert_eq!(t.node(t.root().children[0]).label, "street");
    }

    #[test]
    fn recursive_types_stop_expanding() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:complexType name="Node"><xs:sequence>
            <xs:element name="value" type="xs:string"/>
            <xs:element name="child" type="Node" minOccurs="0"/>
          </xs:sequence></xs:complexType>
          <xs:element name="tree" type="Node"/>
        </xs:schema>"#;
        let t = SchemaTree::compile(&parse_schema(src).unwrap()).unwrap();
        // tree -> {value, child}; child is not expanded further.
        assert_eq!(t.len(), 3);
        let child = t.node(t.find_by_label("child").unwrap());
        assert!(child.is_leaf());
        assert_eq!(
            child.properties.data_type,
            DataType::Complex(Some("Node".into()))
        );
    }

    #[test]
    fn element_ref_takes_use_site_occurs_and_target_type() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="item" type="xs:string" nillable="true"/>
          <xs:element name="list"><xs:complexType><xs:sequence>
            <xs:element ref="item" minOccurs="2" maxOccurs="5"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let s = parse_schema(src).unwrap();
        let t = SchemaTree::compile_element(&s, "list").unwrap();
        let item = t.node(t.find_by_label("item").unwrap());
        assert_eq!(item.properties.min_occurs, 2);
        assert_eq!(item.properties.max_occurs, MaxOccurs::Bounded(5));
        assert!(item.properties.nillable); // from the global target
        assert_eq!(
            item.properties.data_type,
            DataType::Builtin(BuiltinType::String)
        );
    }

    #[test]
    fn compile_uses_first_global_element_and_named_lookup() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="first" type="xs:string"/>
          <xs:element name="second" type="xs:int"/>
        </xs:schema>"#;
        let s = parse_schema(src).unwrap();
        assert_eq!(SchemaTree::compile(&s).unwrap().name(), "first");
        assert_eq!(
            SchemaTree::compile_element(&s, "second").unwrap().name(),
            "second"
        );
        assert!(matches!(
            SchemaTree::compile_element(&s, "third"),
            Err(XsdError::UnresolvedRef { .. })
        ));
    }

    #[test]
    fn empty_schema_has_no_root() {
        let s = parse_schema(r#"<xs:schema xmlns:xs="x"/>"#).unwrap();
        assert!(matches!(
            SchemaTree::compile(&s),
            Err(XsdError::NoRootElement)
        ));
    }

    #[test]
    fn from_labels_builds_figure7_library() {
        // Paper Figure 7.
        let t = SchemaTree::from_labels(
            "Library",
            &[
                ("Library", None),
                ("Title", Some(0)),
                ("Book", Some(0)),
                ("number", Some(2)),
                ("character", Some(2)),
                ("Writer", Some(2)),
            ],
        );
        assert_eq!(t.len(), 6);
        assert_eq!(t.max_depth(), 2);
        assert_eq!(t.root().children.len(), 2);
        let book = t.node(t.find_by_label("Book").unwrap());
        assert_eq!(book.children.len(), 3);
        assert_eq!(t.node(book.children[2]).properties.order, 3);
    }

    #[test]
    fn subtree_ids_are_preorder() {
        let t = po_tree();
        let lines = t.find_by_label("Lines").unwrap();
        let labels: Vec<_> = t
            .subtree_ids(lines)
            .iter()
            .map(|&id| t.node(id).label.as_str())
            .collect();
        assert_eq!(labels, ["Lines", "Item", "Quantity", "count"]);
        assert_eq!(t.subtree_size(lines), 4);
        assert_eq!(t.subtree_size(t.root_id()), t.len());
    }

    #[test]
    fn find_by_path_resolves_and_rejects() {
        let t = po_tree();
        assert_eq!(t.find_by_path("PO"), Some(t.root_id()));
        let item = t.find_by_path("PO/Lines/Item").unwrap();
        assert_eq!(t.node(item).label, "Item");
        assert_eq!(t.path_labels(item).join("/"), "PO/Lines/Item");
        assert!(t.find_by_path("PO/Lines/Nope").is_none());
        assert!(t.find_by_path("Wrong/Lines/Item").is_none());
        assert!(t.find_by_path("").is_none());
        // Every node's own path resolves back to it.
        for (id, _) in t.iter() {
            assert_eq!(t.find_by_path(&t.path_labels(id).join("/")), Some(id));
        }
    }

    #[test]
    fn path_labels_walks_to_root() {
        let t = po_tree();
        let item = t.find_by_label("Item").unwrap();
        assert_eq!(t.path_labels(item), ["PO", "Lines", "Item"]);
        assert_eq!(t.path_labels(t.root_id()), ["PO"]);
    }

    #[test]
    fn unspecified_type_is_any_type() {
        let src = r#"<xs:schema xmlns:xs="x"><xs:element name="a"/></xs:schema>"#;
        let t = SchemaTree::compile(&parse_schema(src).unwrap()).unwrap();
        assert_eq!(
            t.root().properties.data_type,
            DataType::Builtin(BuiltinType::AnyType)
        );
    }

    #[test]
    fn node_limit_bounds_named_type_expansion() {
        // Five levels of named types, 4 children each: 1 + 4 + 16 + 64 +
        // 256 + 1024 = 1365 compiled nodes from a ~2 KB document — the
        // schema-level analog of an entity-expansion bomb.
        let mut src = String::from(r#"<xs:schema xmlns:xs="x">"#);
        src.push_str(r#"<xs:complexType name="T0"><xs:sequence>"#);
        for i in 0..4 {
            src.push_str(&format!(r#"<xs:element name="leaf{i}" type="xs:string"/>"#));
        }
        src.push_str("</xs:sequence></xs:complexType>");
        for level in 1..5 {
            src.push_str(&format!(r#"<xs:complexType name="T{level}"><xs:sequence>"#));
            for i in 0..4 {
                src.push_str(&format!(
                    r#"<xs:element name="n{level}_{i}" type="T{}"/>"#,
                    level - 1
                ));
            }
            src.push_str("</xs:sequence></xs:complexType>");
        }
        src.push_str(r#"<xs:element name="root" type="T4"/></xs:schema>"#);
        let schema = parse_schema(&src).unwrap();

        // Unrestricted compilation materializes the full expansion.
        let full = SchemaTree::compile(&schema).unwrap();
        assert_eq!(full.len(), 1365);

        // A node cap turns the bomb into a typed error.
        let limits = IngestLimits {
            max_nodes: 100,
            ..IngestLimits::default()
        };
        assert!(matches!(
            SchemaTree::compile_with_limits(&schema, &limits),
            Err(XsdError::LimitExceeded {
                limit: "max_nodes",
                limit_value: 100,
                ..
            })
        ));
        // Exactly enough room compiles.
        let roomy = IngestLimits {
            max_nodes: 1365,
            ..IngestLimits::default()
        };
        assert!(SchemaTree::compile_with_limits(&schema, &roomy).is_ok());
    }

    #[test]
    fn depth_limit_bounds_named_type_chains() {
        // A chain of named types nests one level per type without any
        // recursion the cycle guard would catch.
        let mut src = String::from(r#"<xs:schema xmlns:xs="x">"#);
        src.push_str(r#"<xs:complexType name="D0"><xs:sequence><xs:element name="leaf" type="xs:string"/></xs:sequence></xs:complexType>"#);
        for level in 1..8 {
            src.push_str(&format!(
                r#"<xs:complexType name="D{level}"><xs:sequence><xs:element name="c{level}" type="D{}"/></xs:sequence></xs:complexType>"#,
                level - 1
            ));
        }
        src.push_str(r#"<xs:element name="root" type="D7"/></xs:schema>"#);
        let schema = parse_schema(&src).unwrap();
        // root(0) c7(1) c6(2) ... c1(7) leaf(8): depth 8.
        let tight = IngestLimits {
            max_depth: 7,
            ..IngestLimits::default()
        };
        assert!(matches!(
            SchemaTree::compile_with_limits(&schema, &tight),
            Err(XsdError::LimitExceeded {
                limit: "max_depth",
                limit_value: 7,
                actual: 8,
                offset: None,
            })
        ));
        let enough = IngestLimits {
            max_depth: 8,
            ..IngestLimits::default()
        };
        let t = SchemaTree::compile_with_limits(&schema, &enough).unwrap();
        assert_eq!(t.max_depth(), 8);
    }

    #[test]
    fn list_and_union_collapse_to_any_simple_type() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="L"><xs:list itemType="xs:int"/></xs:simpleType>
          <xs:element name="a" type="L"/>
        </xs:schema>"#;
        let t = SchemaTree::compile(&parse_schema(src).unwrap()).unwrap();
        assert_eq!(
            t.root().properties.data_type,
            DataType::Builtin(BuiltinType::AnySimpleType)
        );
    }
}

#[cfg(test)]
mod group_tests {
    use super::*;
    use crate::parser::parse_schema;

    const GROUPED: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:group name="AddressFields">
        <xs:sequence>
          <xs:element name="Street" type="xs:string"/>
          <xs:element name="City" type="xs:string"/>
        </xs:sequence>
      </xs:group>
      <xs:attributeGroup name="Audit">
        <xs:attribute name="createdBy" type="xs:string" use="required"/>
        <xs:attribute name="createdOn" type="xs:date"/>
      </xs:attributeGroup>
      <xs:element name="Customer">
        <xs:complexType>
          <xs:sequence>
            <xs:element name="Name" type="xs:string"/>
            <xs:group ref="AddressFields"/>
            <xs:element name="Phone" type="xs:string" minOccurs="0"/>
          </xs:sequence>
          <xs:attributeGroup ref="Audit"/>
        </xs:complexType>
      </xs:element>
    </xs:schema>"#;

    #[test]
    fn model_groups_splice_into_document_order() {
        let tree = SchemaTree::compile(&parse_schema(GROUPED).unwrap()).unwrap();
        let labels: Vec<&str> = tree
            .root()
            .children
            .iter()
            .map(|&c| tree.node(c).label.as_str())
            .collect();
        assert_eq!(
            labels,
            ["Name", "Street", "City", "Phone", "createdBy", "createdOn"]
        );
        // Order numbers follow the spliced sequence.
        for (i, &c) in tree.root().children.iter().enumerate() {
            assert_eq!(tree.node(c).properties.order, i as u32 + 1);
        }
    }

    #[test]
    fn attribute_groups_expand_with_use_semantics() {
        let tree = SchemaTree::compile(&parse_schema(GROUPED).unwrap()).unwrap();
        let created_by = tree.node(tree.find_by_label("createdBy").unwrap());
        assert_eq!(created_by.kind, NodeKind::Attribute);
        assert_eq!(created_by.properties.min_occurs, 1);
        let created_on = tree.node(tree.find_by_label("createdOn").unwrap());
        assert_eq!(created_on.properties.min_occurs, 0);
        assert_eq!(
            created_on.properties.data_type,
            DataType::Builtin(BuiltinType::Date)
        );
    }

    #[test]
    fn unresolved_group_refs_are_rejected() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="a"><xs:complexType><xs:sequence>
            <xs:group ref="Ghost"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::UnresolvedRef { name }) if name == "Ghost"
        ));
        let src2 = r#"<xs:schema xmlns:xs="x">
          <xs:element name="a"><xs:complexType>
            <xs:attributeGroup ref="Ghost"/>
          </xs:complexType></xs:element>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src2),
            Err(XsdError::UnresolvedRef { .. })
        ));
    }

    #[test]
    fn self_referential_group_is_rejected_at_compile() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:group name="Loop"><xs:sequence>
            <xs:group ref="Loop"/>
          </xs:sequence></xs:group>
          <xs:element name="a"><xs:complexType><xs:sequence>
            <xs:group ref="Loop"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let schema = parse_schema(src).unwrap();
        assert!(matches!(
            SchemaTree::compile(&schema),
            Err(XsdError::Invalid { .. })
        ));
    }

    #[test]
    fn nested_groups_expand_transitively() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:group name="Inner"><xs:sequence>
            <xs:element name="x" type="xs:string"/>
          </xs:sequence></xs:group>
          <xs:group name="Outer"><xs:sequence>
            <xs:group ref="Inner"/>
            <xs:element name="y" type="xs:string"/>
          </xs:sequence></xs:group>
          <xs:element name="root"><xs:complexType><xs:sequence>
            <xs:group ref="Outer"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let tree = SchemaTree::compile(&parse_schema(src).unwrap()).unwrap();
        let labels: Vec<&str> = tree
            .root()
            .children
            .iter()
            .map(|&c| tree.node(c).label.as_str())
            .collect();
        assert_eq!(labels, ["x", "y"]);
    }

    #[test]
    fn groups_are_queryable_on_the_model() {
        let schema = parse_schema(GROUPED).unwrap();
        assert!(schema.group_by_name("AddressFields").is_some());
        assert!(schema.group_by_name("Nope").is_none());
        assert_eq!(schema.attribute_group_by_name("Audit").unwrap().len(), 2);
        let group = schema.group_by_name("AddressFields").unwrap();
        assert_eq!(group.element_decls().len(), 2);
    }
}

#[cfg(test)]
mod inheritance_tests {
    use super::*;
    use crate::parser::parse_schema;

    const DERIVED: &str = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
      <xs:complexType name="Base">
        <xs:sequence>
          <xs:element name="id" type="xs:ID"/>
          <xs:element name="name" type="xs:string"/>
        </xs:sequence>
        <xs:attribute name="version" type="xs:string"/>
      </xs:complexType>
      <xs:complexType name="Derived">
        <xs:complexContent>
          <xs:extension base="Base">
            <xs:sequence>
              <xs:element name="extra" type="xs:integer"/>
            </xs:sequence>
            <xs:attribute name="flag" type="xs:boolean"/>
          </xs:extension>
        </xs:complexContent>
      </xs:complexType>
      <xs:element name="thing" type="Derived"/>
    </xs:schema>"#;

    #[test]
    fn extension_inherits_base_members_in_order() {
        let tree = SchemaTree::compile(&parse_schema(DERIVED).unwrap()).unwrap();
        let labels: Vec<&str> = tree
            .root()
            .children
            .iter()
            .map(|&c| tree.node(c).label.as_str())
            .collect();
        // Base content first, derived content after; attributes likewise.
        assert_eq!(labels, ["id", "name", "extra", "version", "flag"]);
        let version = tree.node(tree.find_by_label("version").unwrap());
        assert_eq!(version.kind, NodeKind::Attribute);
    }

    #[test]
    fn multi_level_chains_accumulate() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:complexType name="A"><xs:sequence>
            <xs:element name="a" type="xs:string"/>
          </xs:sequence></xs:complexType>
          <xs:complexType name="B"><xs:complexContent><xs:extension base="A">
            <xs:sequence><xs:element name="b" type="xs:string"/></xs:sequence>
          </xs:extension></xs:complexContent></xs:complexType>
          <xs:complexType name="C"><xs:complexContent><xs:extension base="B">
            <xs:sequence><xs:element name="c" type="xs:string"/></xs:sequence>
          </xs:extension></xs:complexContent></xs:complexType>
          <xs:element name="r" type="C"/>
        </xs:schema>"#;
        let tree = SchemaTree::compile(&parse_schema(src).unwrap()).unwrap();
        let labels: Vec<&str> = tree
            .root()
            .children
            .iter()
            .map(|&c| tree.node(c).label.as_str())
            .collect();
        assert_eq!(labels, ["a", "b", "c"]);
    }

    #[test]
    fn cyclic_base_chain_is_rejected() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:complexType name="A"><xs:complexContent><xs:extension base="B">
            <xs:sequence><xs:element name="a" type="xs:string"/></xs:sequence>
          </xs:extension></xs:complexContent></xs:complexType>
          <xs:complexType name="B"><xs:complexContent><xs:extension base="A">
            <xs:sequence><xs:element name="b" type="xs:string"/></xs:sequence>
          </xs:extension></xs:complexContent></xs:complexType>
          <xs:element name="r" type="A"/>
        </xs:schema>"#;
        assert!(matches!(parse_schema(src), Err(XsdError::Invalid { .. })));
    }

    #[test]
    fn unknown_or_simple_base_is_rejected() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:complexType name="D"><xs:complexContent><xs:extension base="Ghost">
            <xs:sequence><xs:element name="x" type="xs:string"/></xs:sequence>
          </xs:extension></xs:complexContent></xs:complexType>
          <xs:element name="r" type="D"/>
        </xs:schema>"#;
        assert!(matches!(
            parse_schema(src),
            Err(XsdError::UnresolvedType { .. })
        ));
        let src2 = r#"<xs:schema xmlns:xs="x">
          <xs:simpleType name="S"><xs:restriction base="xs:string"/></xs:simpleType>
          <xs:complexType name="D"><xs:complexContent><xs:extension base="S">
            <xs:sequence><xs:element name="x" type="xs:string"/></xs:sequence>
          </xs:extension></xs:complexContent></xs:complexType>
          <xs:element name="r" type="D"/>
        </xs:schema>"#;
        assert!(matches!(parse_schema(src2), Err(XsdError::Invalid { .. })));
    }

    #[test]
    fn derived_instances_validate_and_generate() {
        use crate::validate::{parse_document, validate};
        let schema = parse_schema(DERIVED).unwrap();
        let ok = parse_document(
            r#"<thing version="1" flag="true">
                 <id>x1</id><name>n</name><extra>7</extra>
               </thing>"#,
        )
        .unwrap();
        assert!(validate(&ok, &schema).unwrap().is_valid());
        // Missing the inherited element is an error.
        let bad = parse_document("<thing><name>n</name><extra>7</extra></thing>").unwrap();
        let report = validate(&bad, &schema).unwrap();
        assert!(report.to_string().contains("<id>"), "{report}");
    }

    #[test]
    fn extension_round_trips_through_the_writer() {
        let original = parse_schema(DERIVED).unwrap();
        let rendered = crate::writer::write_schema(&original);
        let reparsed = parse_schema(&rendered).expect("rendered extension parses");
        assert_eq!(original, reparsed, "{rendered}");
    }
}
