//! Built-in XML Schema simple types and their generalization lattice.
//!
//! The paper's *relaxed property match* (§2.1) treats a property match as
//! relaxed "if the property value of the source is a generalization or a
//! specialization of the target property" — for the `type` property that
//! means walking the XSD built-in type hierarchy. This module encodes the
//! derivation tree of XML Schema Part 2 for the types that occur in schema
//! matching corpora.

use std::fmt;
use std::str::FromStr;

/// A built-in XML Schema simple type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // the variants mirror the XSD built-in type names 1:1
pub enum BuiltinType {
    AnyType,
    AnySimpleType,
    // String branch
    String,
    NormalizedString,
    Token,
    Language,
    Name,
    NcName,
    NmToken,
    Id,
    IdRef,
    Entity,
    // Numeric branch
    Decimal,
    Integer,
    NonPositiveInteger,
    NegativeInteger,
    NonNegativeInteger,
    PositiveInteger,
    Long,
    Int,
    Short,
    Byte,
    UnsignedLong,
    UnsignedInt,
    UnsignedShort,
    UnsignedByte,
    Float,
    Double,
    // Date/time branch
    DateTime,
    Date,
    Time,
    Duration,
    GYear,
    GYearMonth,
    GMonth,
    GMonthDay,
    GDay,
    // Other primitives
    Boolean,
    Base64Binary,
    HexBinary,
    AnyUri,
    QNameType,
    Notation,
}

impl BuiltinType {
    /// The direct base type in the XSD derivation hierarchy, or `None` for
    /// `anyType` (the root).
    pub fn base(self) -> Option<BuiltinType> {
        use BuiltinType::*;
        Some(match self {
            AnyType => return None,
            AnySimpleType => AnyType,
            // Primitives derive from anySimpleType.
            String | Decimal | Float | Double | Boolean | DateTime | Date | Time | Duration
            | GYear | GYearMonth | GMonth | GMonthDay | GDay | Base64Binary | HexBinary
            | AnyUri | QNameType | Notation => AnySimpleType,
            // String branch.
            NormalizedString => String,
            Token => NormalizedString,
            Language | NmToken | Name => Token,
            NcName => Name,
            Id | IdRef | Entity => NcName,
            // Numeric branch.
            Integer => Decimal,
            NonPositiveInteger | NonNegativeInteger | Long => Integer,
            NegativeInteger => NonPositiveInteger,
            PositiveInteger | UnsignedLong => NonNegativeInteger,
            Int => Long,
            Short => Int,
            Byte => Short,
            UnsignedInt => UnsignedLong,
            UnsignedShort => UnsignedInt,
            UnsignedByte => UnsignedShort,
        })
    }

    /// True if `self` is `other` or an ancestor of `other` in the derivation
    /// hierarchy (i.e. `self` is a *generalization* of `other`).
    pub fn generalizes(self, other: BuiltinType) -> bool {
        let mut cur = Some(other);
        while let Some(t) = cur {
            if t == self {
                return true;
            }
            cur = t.base();
        }
        false
    }

    /// True if the two types are related by derivation in either direction.
    ///
    /// This is the paper's condition for a *relaxed* match on the `type`
    /// property: one type is a generalization or specialization of the other.
    pub fn related(self, other: BuiltinType) -> bool {
        self.generalizes(other) || other.generalizes(self)
    }

    /// Number of derivation steps from `anyType` (0 for `anyType` itself).
    pub fn depth(self) -> u32 {
        let mut d = 0;
        let mut cur = self.base();
        while let Some(t) = cur {
            d += 1;
            cur = t.base();
        }
        d
    }

    /// The canonical XSD name, e.g. `nonNegativeInteger`.
    pub fn name(self) -> &'static str {
        use BuiltinType::*;
        match self {
            AnyType => "anyType",
            AnySimpleType => "anySimpleType",
            String => "string",
            NormalizedString => "normalizedString",
            Token => "token",
            Language => "language",
            Name => "Name",
            NcName => "NCName",
            NmToken => "NMTOKEN",
            Id => "ID",
            IdRef => "IDREF",
            Entity => "ENTITY",
            Decimal => "decimal",
            Integer => "integer",
            NonPositiveInteger => "nonPositiveInteger",
            NegativeInteger => "negativeInteger",
            NonNegativeInteger => "nonNegativeInteger",
            PositiveInteger => "positiveInteger",
            Long => "long",
            Int => "int",
            Short => "short",
            Byte => "byte",
            UnsignedLong => "unsignedLong",
            UnsignedInt => "unsignedInt",
            UnsignedShort => "unsignedShort",
            UnsignedByte => "unsignedByte",
            Float => "float",
            Double => "double",
            DateTime => "dateTime",
            Date => "date",
            Time => "time",
            Duration => "duration",
            GYear => "gYear",
            GYearMonth => "gYearMonth",
            GMonth => "gMonth",
            GMonthDay => "gMonthDay",
            GDay => "gDay",
            Boolean => "boolean",
            Base64Binary => "base64Binary",
            HexBinary => "hexBinary",
            AnyUri => "anyURI",
            QNameType => "QName",
            Notation => "NOTATION",
        }
    }

    /// All built-in types, for exhaustive tests and sweeps.
    pub fn all() -> &'static [BuiltinType] {
        use BuiltinType::*;
        &[
            AnyType,
            AnySimpleType,
            String,
            NormalizedString,
            Token,
            Language,
            Name,
            NcName,
            NmToken,
            Id,
            IdRef,
            Entity,
            Decimal,
            Integer,
            NonPositiveInteger,
            NegativeInteger,
            NonNegativeInteger,
            PositiveInteger,
            Long,
            Int,
            Short,
            Byte,
            UnsignedLong,
            UnsignedInt,
            UnsignedShort,
            UnsignedByte,
            Float,
            Double,
            DateTime,
            Date,
            Time,
            Duration,
            GYear,
            GYearMonth,
            GMonth,
            GMonthDay,
            GDay,
            Boolean,
            Base64Binary,
            HexBinary,
            AnyUri,
            QNameType,
            Notation,
        ]
    }
}

impl fmt::Display for BuiltinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when a name is not a built-in XSD type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotBuiltin(pub String);

impl fmt::Display for NotBuiltin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} is not a built-in XSD type", self.0)
    }
}

impl std::error::Error for NotBuiltin {}

impl FromStr for BuiltinType {
    type Err = NotBuiltin;

    /// Parses a built-in type from its local name (any `xs:`/`xsd:` prefix
    /// must already be stripped by the caller).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BuiltinType::all()
            .iter()
            .copied()
            .find(|t| t.name() == s)
            .ok_or_else(|| NotBuiltin(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_type_reaches_any_type() {
        for &t in BuiltinType::all() {
            assert!(
                BuiltinType::AnyType.generalizes(t),
                "{t} must derive from anyType"
            );
        }
    }

    #[test]
    fn depth_is_consistent_with_base() {
        for &t in BuiltinType::all() {
            match t.base() {
                Some(b) => assert_eq!(t.depth(), b.depth() + 1, "{t}"),
                None => assert_eq!(t.depth(), 0),
            }
        }
    }

    #[test]
    fn generalizes_is_reflexive_and_antisymmetric() {
        for &a in BuiltinType::all() {
            assert!(a.generalizes(a));
            for &b in BuiltinType::all() {
                if a != b && a.generalizes(b) {
                    assert!(
                        !b.generalizes(a),
                        "{a} and {b} cannot generalize each other"
                    );
                }
            }
        }
    }

    #[test]
    fn numeric_lattice_matches_the_spec() {
        use BuiltinType::*;
        assert!(Decimal.generalizes(Integer));
        assert!(Integer.generalizes(PositiveInteger));
        assert!(Integer.generalizes(Int));
        assert!(Long.generalizes(Short));
        assert!(!Int.generalizes(Long));
        assert!(NonNegativeInteger.generalizes(UnsignedByte));
        assert!(!NonPositiveInteger.generalizes(PositiveInteger));
    }

    #[test]
    fn string_lattice_matches_the_spec() {
        use BuiltinType::*;
        assert!(String.generalizes(Token));
        assert!(Token.generalizes(Id));
        assert!(NcName.generalizes(IdRef));
        assert!(!Token.generalizes(String));
        assert!(!String.generalizes(Decimal));
    }

    #[test]
    fn related_is_symmetric_and_excludes_siblings() {
        use BuiltinType::*;
        assert!(Integer.related(Decimal));
        assert!(Decimal.related(Integer));
        assert!(Id.related(String));
        // Siblings under a common ancestor are NOT related.
        assert!(!Int.related(UnsignedInt));
        assert!(!Date.related(Time));
        assert!(!Boolean.related(String));
    }

    #[test]
    fn names_round_trip_through_from_str() {
        for &t in BuiltinType::all() {
            assert_eq!(t.name().parse::<BuiltinType>().unwrap(), t);
        }
        assert!("notAType".parse::<BuiltinType>().is_err());
        // FromStr expects a local name without prefix.
        assert!("xs:string".parse::<BuiltinType>().is_err());
    }

    #[test]
    fn display_uses_canonical_name() {
        assert_eq!(
            BuiltinType::NonNegativeInteger.to_string(),
            "nonNegativeInteger"
        );
        assert_eq!(BuiltinType::AnyUri.to_string(), "anyURI");
    }
}
