//! Property-axis comparison (the paper's **P** axis).
//!
//! §2.1: a property match is *exact* when the two values are identical and
//! *relaxed* when one value is a generalization or a specialization of the
//! other — `minOccurs="0"` generalizes `minOccurs="1"`, a base type
//! generalizes its restrictions, `maxOccurs="unbounded"` generalizes any
//! bound, and so on. The order property is special: the paper defines its
//! relaxed match simply as "values not equal".

use crate::taxonomy::AxisGrade;
use qmatch_xsd::{DataType, MaxOccurs, Properties};

/// Canonical component scores.
const EXACT: f64 = 1.0;
const RELAXED: f64 = 0.5;

/// Relative importance of the property components within the axis. The type
/// dominates (it is the only component CUPID-style matchers use at all);
/// order, occurrence, and the value constraints share the rest.
const W_TYPE: f64 = 0.4;
const W_ORDER: f64 = 0.2;
const W_OCCURS: f64 = 0.2;
const W_MISC: f64 = 0.2;

/// The outcome of comparing two property sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropsMatch {
    /// Qualitative grade: exact iff every component is exact; none iff no
    /// component matches at all.
    pub grade: AxisGrade,
    /// Weighted component score in `[0, 1]`.
    pub score: f64,
}

/// Compares two property sets.
pub fn compare_properties(a: &Properties, b: &Properties) -> PropsMatch {
    let type_score = type_similarity(&a.data_type, &b.data_type);
    let order_score = if a.order == b.order { EXACT } else { RELAXED };
    let occurs_score =
        (occurs_min(a.min_occurs, b.min_occurs) + occurs_max(a.max_occurs, b.max_occurs)) / 2.0;
    let misc_score = (flag_score(a.nillable, b.nillable)
        + option_score(&a.default, &b.default)
        + option_score(&a.fixed, &b.fixed))
        / 3.0;

    let score =
        W_TYPE * type_score + W_ORDER * order_score + W_OCCURS * occurs_score + W_MISC * misc_score;
    let all_exact = [type_score, order_score, occurs_score, misc_score]
        .iter()
        .all(|&s| (s - EXACT).abs() < 1e-12);
    let grade = if all_exact {
        AxisGrade::Exact
    } else if score > 0.0 {
        AxisGrade::Relaxed
    } else {
        AxisGrade::None
    };
    PropsMatch { grade, score }
}

/// Type component: identical types are exact; lattice-related built-ins and
/// name-differing complex types are relaxed; a complex/simple mismatch does
/// not match.
pub fn type_similarity(a: &DataType, b: &DataType) -> f64 {
    match (a, b) {
        (DataType::Builtin(x), DataType::Builtin(y)) => {
            if x == y {
                EXACT
            } else if x.related(*y) {
                RELAXED
            } else {
                0.0
            }
        }
        (DataType::Complex(x), DataType::Complex(y)) => {
            if x == y && x.is_some() {
                EXACT
            } else if x == y {
                // Both anonymous: structurally the children axis decides;
                // treat the type names as trivially identical.
                EXACT
            } else {
                RELAXED
            }
        }
        _ => 0.0,
    }
}

/// `minOccurs` component: a smaller lower bound is a generalization.
fn occurs_min(a: u32, b: u32) -> f64 {
    if a == b {
        EXACT
    } else {
        RELAXED
    }
}

/// `maxOccurs` component: a larger (or unbounded) upper bound is a
/// generalization.
fn occurs_max(a: MaxOccurs, b: MaxOccurs) -> f64 {
    if a == b {
        EXACT
    } else {
        RELAXED
    }
}

fn flag_score(a: bool, b: bool) -> f64 {
    if a == b {
        EXACT
    } else {
        RELAXED
    }
}

fn option_score(a: &Option<String>, b: &Option<String>) -> f64 {
    match (a, b) {
        (None, None) => EXACT,
        (Some(x), Some(y)) if x == y => EXACT,
        _ => RELAXED,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_xsd::BuiltinType;

    fn props(data_type: DataType, order: u32, min: u32, max: MaxOccurs) -> Properties {
        Properties {
            data_type,
            order,
            min_occurs: min,
            max_occurs: max,
            ..Properties::default()
        }
    }

    fn int_props() -> Properties {
        props(
            DataType::Builtin(BuiltinType::Integer),
            1,
            1,
            MaxOccurs::Bounded(1),
        )
    }

    #[test]
    fn identical_properties_are_exact_with_score_one() {
        let a = int_props();
        let m = compare_properties(&a, &a.clone());
        assert_eq!(m.grade, AxisGrade::Exact);
        assert!((m.score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_orderno_example_is_exact() {
        // §2.1: both OrderNo elements have type=integer, order=1,
        // minOccurs=1 ⇒ exact along the properties axis.
        let a = int_props();
        let b = int_props();
        assert_eq!(compare_properties(&a, &b).grade, AxisGrade::Exact);
    }

    #[test]
    fn min_occurs_generalization_is_relaxed() {
        // §2.1: minOccurs=0 is a generalization of minOccurs=1.
        let a = props(
            DataType::Builtin(BuiltinType::Integer),
            1,
            0,
            MaxOccurs::Bounded(1),
        );
        let b = int_props();
        let m = compare_properties(&a, &b);
        assert_eq!(m.grade, AxisGrade::Relaxed);
        assert!(m.score < 1.0 && m.score > 0.5);
    }

    #[test]
    fn related_types_are_relaxed() {
        // integer restricts decimal: specialization ⇒ relaxed.
        let a = int_props();
        let b = props(
            DataType::Builtin(BuiltinType::Decimal),
            1,
            1,
            MaxOccurs::Bounded(1),
        );
        let m = compare_properties(&a, &b);
        assert_eq!(m.grade, AxisGrade::Relaxed);
    }

    #[test]
    fn unrelated_builtin_types_score_zero_on_type() {
        assert_eq!(
            type_similarity(
                &DataType::Builtin(BuiltinType::String),
                &DataType::Builtin(BuiltinType::Boolean)
            ),
            0.0
        );
        assert_eq!(
            type_similarity(
                &DataType::Builtin(BuiltinType::Integer),
                &DataType::Complex(None)
            ),
            0.0
        );
    }

    #[test]
    fn complex_type_names() {
        assert_eq!(
            type_similarity(
                &DataType::Complex(Some("POType".into())),
                &DataType::Complex(Some("POType".into()))
            ),
            EXACT
        );
        assert_eq!(
            type_similarity(&DataType::Complex(None), &DataType::Complex(None)),
            EXACT
        );
        assert_eq!(
            type_similarity(
                &DataType::Complex(Some("A".into())),
                &DataType::Complex(Some("B".into()))
            ),
            RELAXED
        );
        assert_eq!(
            type_similarity(
                &DataType::Complex(Some("A".into())),
                &DataType::Complex(None)
            ),
            RELAXED
        );
    }

    #[test]
    fn order_mismatch_is_relaxed_not_none() {
        // §2.1: "a relaxed match for the order property implies the order
        // values ... are not equal."
        let a = int_props();
        let mut b = int_props();
        b.order = 3;
        let m = compare_properties(&a, &b);
        assert_eq!(m.grade, AxisGrade::Relaxed);
        assert!(
            m.score >= 0.8,
            "only the order component degrades: {}",
            m.score
        );
    }

    #[test]
    fn unbounded_max_occurs_is_relaxed_generalization() {
        let a = props(
            DataType::Builtin(BuiltinType::Integer),
            1,
            1,
            MaxOccurs::Unbounded,
        );
        let b = int_props();
        assert_eq!(compare_properties(&a, &b).grade, AxisGrade::Relaxed);
    }

    #[test]
    fn default_and_fixed_values() {
        let a = int_props();
        let mut b = int_props();
        b.default = Some("0".into());
        let m = compare_properties(&a, &b);
        assert_eq!(m.grade, AxisGrade::Relaxed);
        let mut c = int_props();
        c.default = Some("0".into());
        let m2 = compare_properties(&b, &c);
        assert_eq!(m2.grade, AxisGrade::Exact);
    }

    #[test]
    fn nillable_mismatch_is_relaxed() {
        let a = int_props();
        let mut b = int_props();
        b.nillable = true;
        assert_eq!(compare_properties(&a, &b).grade, AxisGrade::Relaxed);
    }

    #[test]
    fn totally_incompatible_types_still_leave_partial_score() {
        // Even with a type mismatch the order/occurs components can match,
        // so the axis stays relaxed — the paper's properties axis has no
        // hard "none" unless literally nothing lines up.
        let a = int_props();
        let b = props(
            DataType::Builtin(BuiltinType::Boolean),
            1,
            1,
            MaxOccurs::Bounded(1),
        );
        let m = compare_properties(&a, &b);
        assert_eq!(m.grade, AxisGrade::Relaxed);
        assert!(m.score > 0.0 && m.score < 0.7);
    }

    #[test]
    fn score_is_symmetric() {
        let a = props(
            DataType::Builtin(BuiltinType::Int),
            2,
            0,
            MaxOccurs::Unbounded,
        );
        let b = props(
            DataType::Builtin(BuiltinType::Long),
            1,
            1,
            MaxOccurs::Bounded(3),
        );
        let ab = compare_properties(&a, &b);
        let ba = compare_properties(&b, &a);
        assert!((ab.score - ba.score).abs() < 1e-12);
        assert_eq!(ab.grade, ba.grade);
    }
}
