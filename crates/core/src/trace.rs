//! Zero-dependency pipeline observability: spans and sinks.
//!
//! The TreeMatch pipeline (Fig. 3: prepare → label matrix → wavefront QoM
//! passes → selection) emits one [`Span`] per phase of work through a
//! [`TraceSink`]. Instrumentation lives on the *coordinating* thread of
//! each phase — a wave's span is recorded once after its rows are joined,
//! never per cell — so tracing adds a handful of records per match, not per
//! node pair, and never perturbs scores (sinks only observe).
//!
//! The discipline is the same std-only, lock-free one as
//! `crates/serve/src/metrics.rs`: per-phase aggregates are plain relaxed
//! atomics, and the ordered span log of [`Recorder`] is a pre-allocated
//! slot array claimed by a fetch-add cursor — no locks on the record path,
//! ever. Three sinks cover the use cases:
//!
//! - no sink (the default) or [`NullSink`]: the disabled fast path. The
//!   engines poll [`Trace::start`], which is one `Option`/`enabled` check;
//!   no clock is read, nothing is allocated.
//! - [`Recorder`]: in-memory capture for `qmatch match --trace` and for
//!   `bench_treematch`'s per-phase JSON timings.
//! - the serve adapter (in `qmatch-serve`): per-phase histograms exported
//!   on `GET /metrics`.
//!
//! Sink contract (see DESIGN.md §13): `record` must be safe to call from
//! any thread, must not block the caller on a lock shared with readers,
//! and must tolerate spans arriving concurrently from overlapping matches
//! of the same session. Span *order* is deterministic per single match
//! call (phases run in pipeline order on one coordinating thread); spans
//! of concurrent matches or composite components may interleave.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The pipeline phases a [`Span`] can belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// [`MatchSession::prepare`](crate::session::MatchSession::prepare):
    /// `rows` = nodes in the tree, `cells` = distinct labels.
    Prepare,
    /// [`LabelMatrix`](crate::algorithms::LabelMatrix) construction:
    /// `cells` = distinct source × target label pairs, with the session
    /// cache hit/miss delta of this build.
    Labels,
    /// Similarity-matrix acquisition (arena reuse or fresh zeroed buffer):
    /// `rows` = matrix rows, `cells` = matrix cells. Split out so matrix
    /// allocation is no longer charged to the first wave.
    Alloc,
    /// One bottom-up wave of the hybrid DP: `wave` = height, `rows` =
    /// source nodes in the wave, `cells` = rows × target nodes.
    HybridWave,
    /// The single flat pass of the linguistic matcher.
    Linguistic,
    /// One bottom-up shape wave of the structural matcher.
    StructuralWave,
    /// One top-down context wave of the structural matcher.
    ContextWave,
    /// The per-cell aggregation of a composite match: `rows` = component
    /// count, `cells` = matrix cells combined.
    CompositeCombine,
    /// Mapping selection over a finished matrix
    /// ([`MatchSession::select_mapping`](crate::session::MatchSession::select_mapping)).
    Select,
    /// One served HTTP request (recorded by `qmatch-serve` workers).
    Request,
    /// Time a queued serve job waited in the bounded match-queue before a
    /// shard thread dequeued it (`wall` = queue wait).
    Queue,
    /// One shard-thread execution of a queued serve job (`wall` = time on
    /// the shard, excluding queue wait).
    Shard,
    /// A schema-evolution tree diff ([`crate::diff::TreeDiff::compute`]):
    /// `rows` = new-tree nodes, `cells` = edit ops, `skipped` = rows the
    /// recompute closure excludes.
    Diff,
    /// One pass of the CUPID structural-similarity propagation (`wave` = 0
    /// leaf init, 1 bottom-up flag pass, 2 adjust + recompute): `rows` =
    /// source nodes touched, `cells` = pairs scored in the pass.
    CupidWave,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 14] = [
        Phase::Prepare,
        Phase::Labels,
        Phase::Alloc,
        Phase::HybridWave,
        Phase::Linguistic,
        Phase::StructuralWave,
        Phase::ContextWave,
        Phase::CompositeCombine,
        Phase::Select,
        Phase::Request,
        Phase::Queue,
        Phase::Shard,
        Phase::Diff,
        Phase::CupidWave,
    ];

    /// Number of phases (array-sizing constant for sinks).
    pub const COUNT: usize = Phase::ALL.len();

    /// Stable snake_case name (used as the `phase` label in metrics).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Prepare => "prepare",
            Phase::Labels => "labels",
            Phase::Alloc => "alloc",
            Phase::HybridWave => "hybrid_wave",
            Phase::Linguistic => "linguistic",
            Phase::StructuralWave => "structural_wave",
            Phase::ContextWave => "context_wave",
            Phase::CompositeCombine => "composite_combine",
            Phase::Select => "select",
            Phase::Request => "request",
            Phase::Queue => "queue",
            Phase::Shard => "shard",
            Phase::Diff => "diff",
            Phase::CupidWave => "cupid_wave",
        }
    }

    /// Dense index into per-phase arrays (matches position in [`Phase::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Phase::Prepare => 0,
            Phase::Labels => 1,
            Phase::Alloc => 2,
            Phase::HybridWave => 3,
            Phase::Linguistic => 4,
            Phase::StructuralWave => 5,
            Phase::ContextWave => 6,
            Phase::CompositeCombine => 7,
            Phase::Select => 8,
            Phase::Request => 9,
            Phase::Queue => 10,
            Phase::Shard => 11,
            Phase::Diff => 12,
            Phase::CupidWave => 13,
        }
    }
}

/// One recorded unit of pipeline work.
///
/// `Copy` by design: spans carry no heap data, so recording is a plain
/// store into a pre-claimed slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span {
    /// Which phase this work belongs to.
    pub phase: Phase,
    /// Wave index for wavefront phases (0 otherwise).
    pub wave: u32,
    /// Phase-specific row count (see the [`Phase`] variants for semantics).
    pub rows: u64,
    /// Phase-specific pair/cell count.
    pub cells: u64,
    /// Label-cache hits attributable to this span (0 for cache-free phases).
    pub cache_hits: u64,
    /// Label-cache misses attributable to this span.
    pub cache_misses: u64,
    /// Cells the kernel skipped (band pruning / threshold prefilter) in
    /// this span — work that was provably unnecessary, not work lost.
    pub skipped: u64,
    /// Request correlation id threaded by servers: the numeric part of a
    /// minted `q-N` id, or an FNV-1a hash of a client-supplied
    /// `X-Request-Id`. `0` for spans not attributable to one request.
    pub request: u64,
    /// Wall time spent in the phase.
    pub wall: Duration,
}

impl Span {
    /// A zeroed span for a phase (slot initializer; also a convenient base
    /// to build real spans from).
    pub const fn empty(phase: Phase) -> Span {
        Span {
            phase,
            wave: 0,
            rows: 0,
            cells: 0,
            cache_hits: 0,
            cache_misses: 0,
            skipped: 0,
            request: 0,
            wall: Duration::ZERO,
        }
    }
}

/// Where spans go. Implementations must be cheap and lock-free on the
/// record path; see the module docs for the full contract.
pub trait TraceSink: Send + Sync {
    /// Whether recording is worth the clock reads. Polled once per phase
    /// *before* any timing work; a `false` here is the compiled-out fast
    /// path ([`NullSink`] always answers `false`).
    fn enabled(&self) -> bool {
        true
    }

    /// Accepts one finished span. May be called from any thread.
    fn record(&self, span: &Span);
}

/// The do-nothing sink: [`TraceSink::enabled`] is `false`, so instrumented
/// code never reads the clock. Installing `NullSink` is equivalent to
/// installing no sink at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _span: &Span) {}
}

/// The session's handle to its sink — the only thing instrumented code
/// touches. With no sink installed (or a disabled one), [`Trace::start`]
/// is a branch and [`Trace::finish`] a no-op.
#[derive(Clone, Default)]
pub struct Trace {
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Trace {
    /// A handle recording into `sink`.
    pub fn new(sink: Arc<dyn TraceSink>) -> Trace {
        Trace { sink: Some(sink) }
    }

    /// The disabled handle (no sink).
    pub fn disabled() -> Trace {
        Trace { sink: None }
    }

    /// Whether spans will actually be recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(&self.sink, Some(s) if s.enabled())
    }

    /// Begins timing a phase: `Some(now)` when a live sink is installed,
    /// `None` on the fast path (no clock read).
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.is_enabled() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finishes a phase started with [`Trace::start`]: fills in the wall
    /// time and hands the span to the sink. A `None` start is a no-op, so
    /// callers need no branch of their own.
    #[inline]
    pub fn finish(&self, started: Option<Instant>, mut span: Span) {
        if let (Some(t0), Some(sink)) = (started, &self.sink) {
            span.wall = t0.elapsed();
            sink.record(&span);
        }
    }

    /// Records a pre-timed span directly (for callers that measured wall
    /// time themselves, e.g. the serve request loop).
    #[inline]
    pub fn record(&self, span: &Span) {
        if let Some(sink) = &self.sink {
            if sink.enabled() {
                sink.record(span);
            }
        }
    }
}

/// Per-phase aggregate counters, summed over every span of that phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseStats {
    /// Spans recorded.
    pub count: u64,
    /// Total wall time, in microseconds.
    pub wall_us: u64,
    /// Summed `rows`.
    pub rows: u64,
    /// Summed `cells`.
    pub cells: u64,
    /// Summed cache hits.
    pub cache_hits: u64,
    /// Summed cache misses.
    pub cache_misses: u64,
    /// Summed skipped-cell counts.
    pub skipped: u64,
}

impl PhaseStats {
    /// Total wall time as milliseconds.
    pub fn wall_ms(&self) -> f64 {
        self.wall_us as f64 / 1000.0
    }
}

#[derive(Default)]
struct PhaseCells {
    count: AtomicU64,
    wall_us: AtomicU64,
    rows: AtomicU64,
    cells: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    skipped: AtomicU64,
}

/// A slot of the recorder's ordered log. The `UnsafeCell` is written
/// exactly once, by the thread that claimed the slot's index from the
/// cursor, and only read after `ready` is observed `true` with `Acquire`
/// ordering — the claim/publish pair makes the cell a single-writer,
/// publish-then-read cell, which is why the `Sync` impl below is sound.
struct Slot {
    ready: AtomicBool,
    span: UnsafeCell<Span>,
}

// SAFETY: `span` is written only by the unique claimant of this slot's
// index (the fetch-add cursor hands each index out once) and read only
// after the Release store of `ready` is observed with Acquire, so no two
// threads ever access the cell concurrently in conflicting modes.
unsafe impl Sync for Slot {}

/// The in-memory sink: an ordered span log plus per-phase aggregates,
/// both lock-free.
///
/// The log is a fixed-capacity slot array; recording claims an index with
/// one `fetch_add` and publishes with one `Release` store. Spans past the
/// capacity are dropped (counted in [`Recorder::dropped`]) rather than
/// blocking or reallocating — the record path must stay wait-free.
///
/// ```
/// use qmatch_core::trace::{Phase, Recorder, TraceSink};
/// use std::sync::Arc;
///
/// let recorder = Arc::new(Recorder::default());
/// let mut session = qmatch_core::MatchSession::new(Default::default());
/// session.set_trace_sink(recorder.clone());
/// let tree = qmatch_xsd::SchemaTree::from_labels("a", &[("a", None)]);
/// let p = session.prepare(&tree);
/// session.hybrid(&p, &p);
/// assert!(recorder.spans().iter().any(|s| s.phase == Phase::HybridWave));
/// ```
pub struct Recorder {
    slots: Box<[Slot]>,
    cursor: AtomicUsize,
    dropped: AtomicU64,
    totals: [PhaseCells; Phase::COUNT],
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::with_capacity(4096)
    }
}

impl Recorder {
    /// A recorder whose ordered log holds up to `capacity` spans.
    pub fn with_capacity(capacity: usize) -> Recorder {
        let slots = (0..capacity)
            .map(|_| Slot {
                ready: AtomicBool::new(false),
                span: UnsafeCell::new(Span::empty(Phase::Prepare)),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Recorder {
            slots,
            cursor: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            totals: Default::default(),
        }
    }

    /// Spans that arrived after the log filled up (aggregates still count
    /// them).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The recorded spans, in record order. Spans still being published by
    /// a racing writer are skipped; call from a quiescent point (after the
    /// match returned) for a complete log.
    pub fn spans(&self) -> Vec<Span> {
        let claimed = self.cursor.load(Ordering::Acquire).min(self.slots.len());
        self.slots[..claimed]
            .iter()
            .filter(|slot| slot.ready.load(Ordering::Acquire))
            // SAFETY: `ready` was observed true with Acquire, so the
            // claimant's write to the cell happened-before this read and
            // no further writes to this slot can occur.
            .map(|slot| unsafe { *slot.span.get() })
            .collect()
    }

    /// Aggregate counters for one phase.
    pub fn phase_stats(&self, phase: Phase) -> PhaseStats {
        let t = &self.totals[phase.index()];
        PhaseStats {
            count: t.count.load(Ordering::Relaxed),
            wall_us: t.wall_us.load(Ordering::Relaxed),
            rows: t.rows.load(Ordering::Relaxed),
            cells: t.cells.load(Ordering::Relaxed),
            cache_hits: t.cache_hits.load(Ordering::Relaxed),
            cache_misses: t.cache_misses.load(Ordering::Relaxed),
            skipped: t.skipped.load(Ordering::Relaxed),
        }
    }

    /// Clears the log and the aggregates. Only sound at a quiescent point
    /// (no match in flight on this recorder's session).
    pub fn reset(&self) {
        let claimed = self.cursor.load(Ordering::Acquire).min(self.slots.len());
        for slot in &self.slots[..claimed] {
            slot.ready.store(false, Ordering::Release);
        }
        self.cursor.store(0, Ordering::Release);
        self.dropped.store(0, Ordering::Relaxed);
        for t in &self.totals {
            t.count.store(0, Ordering::Relaxed);
            t.wall_us.store(0, Ordering::Relaxed);
            t.rows.store(0, Ordering::Relaxed);
            t.cells.store(0, Ordering::Relaxed);
            t.cache_hits.store(0, Ordering::Relaxed);
            t.cache_misses.store(0, Ordering::Relaxed);
            t.skipped.store(0, Ordering::Relaxed);
        }
    }

    /// The human-readable phase report consumed by `qmatch match --trace`:
    /// one row per phase with span counts, wall time, work sizes, and
    /// cache traffic, plus a traced-total line.
    pub fn report(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>6} {:>10} {:>10} {:>12} {:>10} {:>14}\n",
            "phase", "spans", "wall_ms", "rows", "pairs", "skipped", "cache hit/miss"
        ));
        let mut total_us = 0u64;
        let mut total_spans = 0u64;
        for phase in Phase::ALL {
            let s = self.phase_stats(phase);
            if s.count == 0 {
                continue;
            }
            total_us += s.wall_us;
            total_spans += s.count;
            out.push_str(&format!(
                "{:<18} {:>6} {:>10.3} {:>10} {:>12} {:>10} {:>7}/{}\n",
                phase.name(),
                s.count,
                s.wall_ms(),
                s.rows,
                s.cells,
                s.skipped,
                s.cache_hits,
                s.cache_misses,
            ));
        }
        out.push_str(&format!(
            "{:<18} {:>6} {:>10.3}\n",
            "total (traced)",
            total_spans,
            total_us as f64 / 1000.0
        ));
        if self.dropped() > 0 {
            out.push_str(&format!("({} spans dropped: log full)\n", self.dropped()));
        }
        out
    }
}

impl TraceSink for Recorder {
    fn record(&self, span: &Span) {
        let t = &self.totals[span.phase.index()];
        t.count.fetch_add(1, Ordering::Relaxed);
        t.wall_us
            .fetch_add(span.wall.as_micros() as u64, Ordering::Relaxed);
        t.rows.fetch_add(span.rows, Ordering::Relaxed);
        t.cells.fetch_add(span.cells, Ordering::Relaxed);
        t.cache_hits.fetch_add(span.cache_hits, Ordering::Relaxed);
        t.cache_misses
            .fetch_add(span.cache_misses, Ordering::Relaxed);
        t.skipped.fetch_add(span.skipped, Ordering::Relaxed);
        let idx = self.cursor.fetch_add(1, Ordering::AcqRel);
        if let Some(slot) = self.slots.get(idx) {
            // SAFETY: `idx` was handed out exactly once by the fetch-add,
            // so this thread is the slot's unique writer; readers wait for
            // the Release store below.
            unsafe { *slot.span.get() = *span };
            slot.ready.store(true, Ordering::Release);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(phase: Phase, us: u64) -> Span {
        Span {
            wall: Duration::from_micros(us),
            cells: 10,
            rows: 2,
            ..Span::empty(phase)
        }
    }

    #[test]
    fn null_sink_is_disabled_and_start_skips_the_clock() {
        let trace = Trace::new(Arc::new(NullSink));
        assert!(!trace.is_enabled());
        assert_eq!(trace.start(), None);
        // finish with a None start is a no-op (must not panic).
        trace.finish(None, Span::empty(Phase::Labels));
        assert!(!Trace::disabled().is_enabled());
    }

    #[test]
    fn recorder_keeps_order_and_aggregates() {
        let r = Recorder::with_capacity(8);
        r.record(&span(Phase::Prepare, 5));
        r.record(&span(Phase::Labels, 7));
        r.record(&span(Phase::HybridWave, 3));
        r.record(&span(Phase::HybridWave, 4));
        let spans = r.spans();
        assert_eq!(
            spans.iter().map(|s| s.phase).collect::<Vec<_>>(),
            [
                Phase::Prepare,
                Phase::Labels,
                Phase::HybridWave,
                Phase::HybridWave
            ]
        );
        let waves = r.phase_stats(Phase::HybridWave);
        assert_eq!(waves.count, 2);
        assert_eq!(waves.wall_us, 7);
        assert_eq!(waves.cells, 20);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn recorder_drops_past_capacity_but_still_counts() {
        let r = Recorder::with_capacity(2);
        for _ in 0..5 {
            r.record(&span(Phase::Select, 1));
        }
        assert_eq!(r.spans().len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.phase_stats(Phase::Select).count, 5, "aggregates see all");
    }

    #[test]
    fn recorder_reset_clears_everything() {
        let r = Recorder::with_capacity(4);
        r.record(&span(Phase::Prepare, 1));
        r.reset();
        assert!(r.spans().is_empty());
        assert_eq!(r.phase_stats(Phase::Prepare), PhaseStats::default());
        r.record(&span(Phase::Labels, 2));
        assert_eq!(r.spans().len(), 1);
    }

    #[test]
    fn recorder_is_safe_under_concurrent_recording() {
        let r = Arc::new(Recorder::with_capacity(1024));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        r.record(&span(Phase::HybridWave, 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.spans().len(), 400);
        assert_eq!(r.phase_stats(Phase::HybridWave).count, 400);
    }

    #[test]
    fn trace_finish_records_elapsed_wall() {
        let r = Arc::new(Recorder::default());
        let trace = Trace::new(r.clone());
        assert!(trace.is_enabled());
        let t0 = trace.start();
        assert!(t0.is_some());
        trace.finish(t0, Span::empty(Phase::Prepare));
        let spans = r.spans();
        assert_eq!(spans.len(), 1);
        // Wall time was filled in by finish (may round to 0 µs, but the
        // span itself must be present with the right phase).
        assert_eq!(spans[0].phase, Phase::Prepare);
    }

    #[test]
    fn phase_names_and_indices_are_dense_and_stable() {
        for (i, phase) in Phase::ALL.iter().enumerate() {
            assert_eq!(phase.index(), i);
        }
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "names are unique");
    }

    #[test]
    fn report_lists_active_phases_only() {
        let r = Recorder::default();
        r.record(&span(Phase::Labels, 1500));
        let report = r.report();
        assert!(report.contains("labels"));
        assert!(!report.contains("hybrid_wave"));
        assert!(report.contains("total (traced)"));
    }
}
