//! Label interning: every distinct raw label string is assigned a stable
//! [`Symbol`], and the case-folding and [`tokenize`] work for that label
//! happens exactly once, when the symbol is created.
//!
//! The interner is the substrate of the prepare-once/match-many session
//! architecture (see `session`): a [`crate::session::MatchSession`] owns one
//! [`Interner`] for its whole lifetime, so a schema corpus that reuses the
//! same vocabulary — the dominant production case — pays the linguistic
//! preprocessing once per distinct label, not once per node per match call.

use qmatch_lexicon::tokenize::{tokenize, Token};
use std::collections::HashMap;

/// An interned label. Two symbols from the same [`Interner`] are equal iff
/// their raw label strings are byte-identical; the symbol also keys the
/// session's cross-schema label-comparison cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub(crate) u32);

impl Symbol {
    /// The symbol's dense index into its interner's tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned label's precomputed forms.
#[derive(Debug, Clone)]
struct Entry {
    raw: String,
    folded: String,
    tokens: Vec<Token>,
}

/// Interns label strings and owns their case-folded and tokenized forms.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<String, u32>,
    entries: Vec<Entry>,
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `label`, folding and tokenizing it on first sight.
    pub fn intern(&mut self, label: &str) -> Symbol {
        if let Some(&id) = self.map.get(label) {
            return Symbol(id);
        }
        let id = self.entries.len() as u32;
        self.entries.push(Entry {
            raw: label.to_owned(),
            folded: label.to_lowercase(),
            tokens: tokenize(label),
        });
        self.map.insert(label.to_owned(), id);
        Symbol(id)
    }

    /// The raw label a symbol was interned from.
    pub fn raw(&self, symbol: Symbol) -> &str {
        &self.entries[symbol.index()].raw
    }

    /// The case-folded (lowercased) form, computed once at intern time.
    pub fn folded(&self, symbol: Symbol) -> &str {
        &self.entries[symbol.index()].folded
    }

    /// The [`tokenize`] output, computed once at intern time.
    pub fn tokens(&self, symbol: Symbol) -> &[Token] {
        &self.entries[symbol.index()].tokens
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_case_sensitive_on_raw() {
        let mut i = Interner::new();
        let a = i.intern("OrderNo");
        let b = i.intern("OrderNo");
        let c = i.intern("orderno");
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct raw spellings get distinct symbols");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn folded_and_tokens_are_precomputed() {
        let mut i = Interner::new();
        let s = i.intern("PurchaseOrderNo");
        assert_eq!(i.raw(s), "PurchaseOrderNo");
        assert_eq!(i.folded(s), "purchaseorderno");
        let toks: Vec<&str> = i.tokens(s).iter().map(Token::as_str).collect();
        assert_eq!(toks, ["purchase", "order", "no"]);
    }

    #[test]
    fn symbols_index_densely() {
        let mut i = Interner::new();
        assert!(i.is_empty());
        let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|l| i.intern(l)).collect();
        for (k, s) in syms.iter().enumerate() {
            assert_eq!(s.index(), k);
        }
    }
}
