//! Sublinear candidate generation for registry-scale top-k matching.
//!
//! `/v1/match/topk` (and any corpus-wide ranking) is O(registry) full DP
//! runs per query. This module trades that for an inverted index over
//! cheap per-schema signatures: folded distinct labels, their
//! [`tokenize`] tokens, character trigrams, consonant skeletons (stable
//! under vowel-dropping abbreviation), and thesaurus *concept* features
//! (each token's synonym-set representative plus its hypernym ancestors,
//! via [`Thesaurus::canonical_folded`]), plus node-count and max-depth
//! bands. A query walks the posting lists of its own features, scores
//! every schema that shares at least one feature with Dice and overlap
//! coefficients over the two feature sets, and only the survivors run
//! the full banded DP. The root QoM is dominated by label similarity
//! (the paper's §4 weighting) — and the linguistic matcher scores labels
//! through the same thesaurus the concept features hash, so enriched
//! feature-set similarity is a faithful cheap proxy for the expensive
//! score even across synonym- and abbreviation-drifted label sets.
//!
//! Two determinism rules keep indexed serving bit-identical where it
//! matters:
//!
//! - The candidate predicate is *pair-local* — a pure function of the
//!   query and candidate signatures, never a top-N competition across the
//!   corpus. Partitioning a registry across shards therefore never
//!   changes the global candidate set: sharded and single-shard indexed
//!   rankings are byte-identical.
//! - Under [`IndexPolicy::Auto`] a corpus at or below
//!   [`IndexParams::floor`] is ranked exhaustively, so small registries
//!   return exactly the bytes they returned before the index existed
//!   (the lossless-fallback rule, DESIGN.md §16).
//!
//! [`tokenize`]: qmatch_lexicon::tokenize()
//! [`Thesaurus::canonical_folded`]: qmatch_lexicon::Thesaurus::canonical_folded

use crate::algorithms::MatchOutcome;
use crate::session::{MatchSession, PreparedSchema};
use qmatch_lexicon::name_match::NameMatcher;
use qmatch_lexicon::thesaurus::Thesaurus;
use qmatch_lexicon::tokenize::Token;
use std::collections::{HashMap, HashSet};
use std::str::FromStr;

/// FNV-1a 64-bit over a namespace byte plus content — the feature hash.
/// Stable across sessions and platforms (unlike interned `Symbol` ids,
/// which are session-local), so signatures built by different shard
/// sessions are directly comparable.
fn feature_hash(namespace: u8, bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    hash ^= namespace as u64;
    hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

const NS_LABEL: u8 = b'L';
const NS_TOKEN: u8 = b'T';
const NS_GRAM: u8 = b'G';
const NS_SKELETON: u8 = b'K';
const NS_CONCEPT: u8 = b'C';

/// First character plus following consonants, capped at four characters —
/// exactly the form vowel-dropping abbreviations take ("billing" and
/// "blln" both skeletonize to `blln`), so a label and its abbreviation
/// share the feature. Idempotent by construction.
fn skeleton(token: &str) -> String {
    let mut out = String::new();
    let mut chars = token.chars();
    if let Some(first) = chars.next() {
        out.push(first);
    }
    for c in chars {
        if !"aeiou".contains(c) && out.len() < 4 {
            out.push(c);
        }
    }
    out
}

/// Whether the candidate index may gate the full DP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexPolicy {
    /// Never consult the index: every target runs the full DP.
    #[default]
    Off,
    /// Consult the index only above the candidate floor
    /// ([`IndexParams::floor`]); smaller corpora rank exhaustively, so
    /// their results stay bit-identical to `Off`.
    Auto,
    /// Always consult the index, regardless of corpus size.
    Force,
}

impl IndexPolicy {
    /// The name as accepted by `--index` and the `index=` query parameter.
    pub fn name(self) -> &'static str {
        match self {
            IndexPolicy::Off => "off",
            IndexPolicy::Auto => "auto",
            IndexPolicy::Force => "force",
        }
    }

    /// Whether the index gates a corpus of `corpus_len` schemas under this
    /// policy.
    pub fn engages(self, corpus_len: usize, params: &IndexParams) -> bool {
        match self {
            IndexPolicy::Off => false,
            IndexPolicy::Auto => corpus_len > params.floor,
            IndexPolicy::Force => true,
        }
    }
}

impl FromStr for IndexPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<IndexPolicy, String> {
        match s {
            "off" => Ok(IndexPolicy::Off),
            "auto" => Ok(IndexPolicy::Auto),
            "force" => Ok(IndexPolicy::Force),
            other => Err(format!(
                "unknown index policy {other:?} (use off|auto|force)"
            )),
        }
    }
}

/// Prefilter thresholds for candidate generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndexParams {
    /// Minimum Dice coefficient over the combined feature sets for a
    /// schema to survive the prefilter.
    pub min_dice: f64,
    /// Minimum overlap coefficient (`|A∩B| / min(|A|,|B|)`) — an
    /// alternative admission path for size-asymmetric pairs, where a
    /// small schema contained in a large one scores a high QoM but Dice
    /// is diluted by the larger feature set. Either threshold admits.
    pub min_overlap: f64,
    /// Node-count band: candidates must have between `nodes / node_ratio`
    /// and `nodes * node_ratio` nodes.
    pub node_ratio: f64,
    /// Max-depth band: candidates must be within this many levels of the
    /// query's maximum depth.
    pub depth_band: u32,
    /// The lossless-fallback floor: under [`IndexPolicy::Auto`], corpora
    /// at or below this size are ranked exhaustively.
    pub floor: usize,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams {
            min_dice: 0.36,
            min_overlap: 0.40,
            node_ratio: 8.0,
            depth_band: 8,
            floor: 64,
        }
    }
}

/// The cheap per-schema signature the index stores and queries: the
/// sorted, deduplicated feature-hash set plus the structural band values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Signature {
    /// Sorted distinct hashes of folded labels, their tokens, character
    /// trigrams, consonant skeletons, and thesaurus concepts.
    features: Vec<u64>,
    /// Node count of the underlying tree.
    nodes: u32,
    /// Maximum nesting depth of the underlying tree (root = 0).
    depth: u32,
}

/// Pushes the concept features of one folded token: its synonym-set
/// representative (which short forms resolve through), plus the
/// representatives of its hypernym ancestors — so `po` (IS-A `order`) and
/// the `order` token of `PurchaseOrder` land on the same feature, as do
/// `book` and `article` through `publication`.
fn push_concepts(features: &mut Vec<u64>, thesaurus: &Thesaurus, token: &str) {
    let canonical_of = |t: &str| thesaurus.canonical_folded(t).map(str::to_owned);
    if let Some(canon) = canonical_of(token) {
        features.push(feature_hash(NS_CONCEPT, canon.as_bytes()));
        for ancestor in thesaurus.ancestors_folded(&canon) {
            let canon = canonical_of(&ancestor).unwrap_or(ancestor);
            features.push(feature_hash(NS_CONCEPT, canon.as_bytes()));
        }
    }
    for ancestor in thesaurus.ancestors_folded(token) {
        let canon = canonical_of(&ancestor).unwrap_or(ancestor);
        features.push(feature_hash(NS_CONCEPT, canon.as_bytes()));
    }
}

/// Pushes every feature one distinct folded label contributes: the label
/// hash, per-token hashes with consonant skeletons and thesaurus concepts,
/// and the character trigrams. A pure function of `(label, tokens,
/// thesaurus)` — both [`Signature::of`] and [`Signature::evolved`] build
/// their feature sets exclusively through this, which is what makes the
/// incremental union below exact.
fn push_label_features(
    features: &mut Vec<u64>,
    thesaurus: &Thesaurus,
    label: &str,
    label_tokens: &[Token],
) {
    let bytes = label.as_bytes();
    features.push(feature_hash(NS_LABEL, bytes));
    for token in label_tokens {
        let token = token.as_str();
        features.push(feature_hash(NS_TOKEN, token.as_bytes()));
        if token.len() >= 3 {
            features.push(feature_hash(NS_SKELETON, skeleton(token).as_bytes()));
        }
        push_concepts(features, thesaurus, token);
    }
    if bytes.len() < 3 {
        features.push(feature_hash(NS_GRAM, bytes));
    } else {
        for gram in bytes.windows(3) {
            features.push(feature_hash(NS_GRAM, gram));
        }
    }
}

impl Signature {
    /// Extracts the signature of a prepared schema. The matcher supplies
    /// the thesaurus the concept features hash through — use the same
    /// matcher (or one built from the same tables) on the insert and
    /// query sides, as [`MatchSession::signature`] does automatically.
    /// Given equal thesauri, signatures are a pure function of the tree:
    /// different sessions produce identical signatures.
    pub fn of(prepared: &PreparedSchema<'_>, matcher: &NameMatcher) -> Signature {
        let thesaurus = matcher.thesaurus();
        let folded = prepared.distinct_folded();
        let tokens = prepared.distinct_tokens();
        let mut features = Vec::with_capacity(folded.len() * 8);
        for (label, label_tokens) in folded.iter().zip(tokens) {
            push_label_features(&mut features, thesaurus, label, label_tokens);
        }
        features.sort_unstable();
        features.dedup();
        Signature {
            features,
            nodes: prepared.tree().len() as u32,
            depth: prepared.tree().max_depth(),
        }
    }

    /// Updates `self` (the signature of the *old* revision, built with the
    /// same `matcher`) across a schema evolution, without re-hashing the
    /// unchanged labels. The feature set is a deduplicated union over the
    /// distinct folded labels, so:
    ///
    /// - equal label sets reuse the old features verbatim (only the
    ///   node-count and depth bands change);
    /// - added labels merge in exactly their `push_label_features`
    ///   contribution;
    /// - removed labels return `None` — a deduplicated union cannot be
    ///   subtracted from (another label may contribute the same feature),
    ///   so the caller must rebuild with [`Signature::of`].
    ///
    /// When `Some`, the result is identical to `Signature::of(new,
    /// matcher)`.
    pub fn evolved(
        &self,
        old: &PreparedSchema<'_>,
        new: &PreparedSchema<'_>,
        matcher: &NameMatcher,
    ) -> Option<Signature> {
        let old_set: HashSet<&str> = old.distinct_folded().iter().map(String::as_str).collect();
        let new_set: HashSet<&str> = new.distinct_folded().iter().map(String::as_str).collect();
        if !old_set.iter().all(|label| new_set.contains(label)) {
            return None;
        }
        let mut features = self.features.clone();
        let thesaurus = matcher.thesaurus();
        let mut added = false;
        for (label, tokens) in new.distinct_folded().iter().zip(new.distinct_tokens()) {
            if !old_set.contains(label.as_str()) {
                push_label_features(&mut features, thesaurus, label, tokens);
                added = true;
            }
        }
        if added {
            features.sort_unstable();
            features.dedup();
        }
        Some(Signature {
            features,
            nodes: new.tree().len() as u32,
            depth: new.tree().max_depth(),
        })
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when the signature carries no features (an empty tree cannot
    /// exist, so this is only reachable through manual construction).
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Node count of the signed tree.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Maximum depth of the signed tree.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of features the two sorted feature sets share.
    fn shared_features(&self, other: &Signature) -> usize {
        let (mut i, mut j, mut shared) = (0usize, 0usize, 0usize);
        while i < self.features.len() && j < other.features.len() {
            match self.features[i].cmp(&other.features[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared
    }

    /// Dice coefficient between the two feature sets: `2|A∩B| / (|A|+|B|)`.
    pub fn dice(&self, other: &Signature) -> f64 {
        dice_from_shared(
            self.shared_features(other),
            self.features.len(),
            other.features.len(),
        )
    }

    /// Overlap coefficient between the two feature sets:
    /// `|A∩B| / min(|A|,|B|)`.
    pub fn overlap(&self, other: &Signature) -> f64 {
        let min_len = self.features.len().min(other.features.len());
        if min_len == 0 {
            return 0.0;
        }
        self.shared_features(other) as f64 / min_len as f64
    }

    /// Whether `candidate` survives every pair-local prefilter against
    /// this query signature. `shared` is the number of shared features
    /// (from the posting-list merge or a [`Signature::dice`]-style count).
    fn admits(&self, candidate: &Signature, shared: usize, params: &IndexParams) -> bool {
        let dice = dice_from_shared(shared, self.features.len(), candidate.features.len());
        let min_len = self.features.len().min(candidate.features.len());
        let overlap = if min_len == 0 {
            0.0
        } else {
            shared as f64 / min_len as f64
        };
        if dice < params.min_dice && overlap < params.min_overlap {
            return false;
        }
        let (lo, hi) = (
            (self.nodes as f64 / params.node_ratio).floor() as u32,
            (self.nodes as f64 * params.node_ratio).ceil() as u32,
        );
        if candidate.nodes < lo || candidate.nodes > hi {
            return false;
        }
        self.depth.abs_diff(candidate.depth) <= params.depth_band
    }
}

fn dice_from_shared(shared: usize, a: usize, b: usize) -> f64 {
    if a + b == 0 {
        return 0.0;
    }
    2.0 * shared as f64 / (a + b) as f64
}

/// Whether a single (source, target) pair survives the prefilter — the
/// pair-local predicate [`CorpusIndex::candidates`] applies through its
/// posting lists. Exposed for corpus-free callers (`qmatch evaluate
/// --index`).
pub fn pair_is_candidate(query: &Signature, candidate: &Signature, params: &IndexParams) -> bool {
    query.admits(candidate, query.shared_features(candidate), params)
}

/// The result of one candidate query: the surviving names plus the
/// counters the serve metrics export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    /// Surviving schema names, sorted (deterministic scan order for the
    /// DP loop that follows).
    pub names: Vec<String>,
    /// Indexed schemas that shared at least one feature with the query
    /// and were therefore Dice-scored.
    pub scored: usize,
    /// Indexed schemas the prefilters excluded from the DP.
    pub pruned: usize,
}

/// One slot of the index: a name and its signature.
struct Doc {
    name: String,
    signature: Signature,
}

/// An inverted index from signature features to schema ids, with
/// replace-aware registration and pair-local candidate prefilters.
///
/// Maintained incrementally: a serve shard inserts on every PUT/replay
/// and queries on every indexed topk. All lookups are deterministic —
/// candidate sets depend only on the set of (name, signature) pairs
/// registered, not on insertion order or hash-map iteration order.
pub struct CorpusIndex {
    params: IndexParams,
    docs: Vec<Option<Doc>>,
    by_name: HashMap<String, u32>,
    postings: HashMap<u64, Vec<u32>>,
    free: Vec<u32>,
}

impl Default for CorpusIndex {
    fn default() -> Self {
        CorpusIndex::new(IndexParams::default())
    }
}

impl CorpusIndex {
    /// An empty index with explicit prefilter parameters.
    pub fn new(params: IndexParams) -> CorpusIndex {
        CorpusIndex {
            params,
            docs: Vec::new(),
            by_name: HashMap::new(),
            postings: HashMap::new(),
            free: Vec::new(),
        }
    }

    /// The prefilter parameters this index applies.
    pub fn params(&self) -> &IndexParams {
        &self.params
    }

    /// Number of indexed schemas.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// True when nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// The signature registered under `name`, if any — the seed for
    /// [`Signature::evolved`] on the serve hot-update path.
    pub fn get(&self, name: &str) -> Option<&Signature> {
        let id = *self.by_name.get(name)?;
        Some(
            &self.docs[id as usize]
                .as_ref()
                .expect("doc slot in sync")
                .signature,
        )
    }

    /// Indexes (or replaces) a schema's signature under `name`.
    pub fn insert(&mut self, name: &str, signature: Signature) {
        self.remove(name);
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                self.docs.push(None);
                (self.docs.len() - 1) as u32
            }
        };
        for &feature in &signature.features {
            self.postings.entry(feature).or_default().push(id);
        }
        self.by_name.insert(name.to_owned(), id);
        self.docs[id as usize] = Some(Doc {
            name: name.to_owned(),
            signature,
        });
    }

    /// Drops a schema from the index; returns whether it was present.
    pub fn remove(&mut self, name: &str) -> bool {
        let Some(id) = self.by_name.remove(name) else {
            return false;
        };
        let doc = self.docs[id as usize].take().expect("doc slot in sync");
        for feature in &doc.signature.features {
            if let Some(list) = self.postings.get_mut(feature) {
                list.retain(|&d| d != id);
                if list.is_empty() {
                    self.postings.remove(feature);
                }
            }
        }
        self.free.push(id);
        true
    }

    /// The candidate set for `query`: every indexed schema sharing at
    /// least one feature is Dice-scored through the posting lists, and
    /// the pair-local prefilters ([`IndexParams`]) decide survival. Cost
    /// is the total length of the query features' posting lists — no DP,
    /// no string work.
    pub fn candidates(&self, query: &Signature) -> CandidateSet {
        let mut shared = vec![0u32; self.docs.len()];
        for feature in &query.features {
            if let Some(list) = self.postings.get(feature) {
                for &id in list {
                    shared[id as usize] += 1;
                }
            }
        }
        let mut names = Vec::new();
        let mut scored = 0usize;
        for (id, count) in shared.iter().enumerate() {
            if *count == 0 {
                continue;
            }
            scored += 1;
            let doc = self.docs[id].as_ref().expect("posted doc exists");
            if query.admits(&doc.signature, *count as usize, &self.params) {
                names.push(doc.name.clone());
            }
        }
        names.sort_unstable();
        CandidateSet {
            pruned: self.len() - names.len(),
            names,
            scored,
        }
    }
}

impl MatchSession {
    /// The candidate-index signature of a prepared schema, built through
    /// this session's matcher ([`Signature::of`] with
    /// [`MatchSession::matcher`]) — sessions sharing thesaurus tables
    /// produce identical signatures.
    pub fn signature(&self, prepared: &PreparedSchema<'_>) -> Signature {
        Signature::of(prepared, self.matcher())
    }

    /// [`Signature::evolved`] through this session's matcher: incrementally
    /// updates a resident signature across a schema revision, or `None`
    /// when labels were removed and the caller must re-sign from scratch.
    pub fn signature_evolved(
        &self,
        old_signature: &Signature,
        old: &PreparedSchema<'_>,
        new: &PreparedSchema<'_>,
    ) -> Option<Signature> {
        old_signature.evolved(old, new, self.matcher())
    }

    /// Ranks `corpus` against `source` by hybrid root QoM and returns the
    /// top `k` as `(name, total_qom)` — descending score, ties broken by
    /// lexicographically smaller name. Entries named exactly like
    /// `exclude` (the source's own registry name, if any) are skipped.
    ///
    /// Under [`IndexPolicy::Off`] — and under [`IndexPolicy::Auto`] when
    /// the corpus is at or below [`IndexParams::floor`] — every entry runs
    /// the full DP. Otherwise a throwaway [`CorpusIndex`] gates the DP to
    /// the candidate set (callers ranking the same corpus repeatedly
    /// should maintain a [`CorpusIndex`] themselves, as the serve shards
    /// do).
    pub fn topk(
        &self,
        source: &PreparedSchema<'_>,
        corpus: &[(&str, &PreparedSchema<'_>)],
        k: usize,
        exclude: Option<&str>,
        policy: IndexPolicy,
    ) -> Vec<(String, f64)> {
        let params = IndexParams::default();
        let candidate_names = if policy.engages(corpus.len(), &params) {
            let mut index = CorpusIndex::new(params);
            for (name, prepared) in corpus {
                index.insert(name, self.signature(prepared));
            }
            Some(index.candidates(&self.signature(source)).names)
        } else {
            None
        };
        let mut ranking: Vec<(String, f64)> = Vec::new();
        for (name, prepared) in corpus {
            if Some(*name) == exclude {
                continue;
            }
            if let Some(names) = &candidate_names {
                if names.binary_search_by(|n| n.as_str().cmp(name)).is_err() {
                    continue;
                }
            }
            let outcome = self.hybrid(source, prepared);
            ranking.push(((*name).to_owned(), outcome.total_qom));
            self.recycle(outcome);
        }
        ranking.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranking.truncate(k);
        ranking
    }

    /// [`MatchSession::match_corpus`] with an [`IndexPolicy`] gate: pairs
    /// the prefilter prunes return `None` instead of paying the full DP.
    /// `Off` (and `Auto` at or below the floor) runs every pair, so the
    /// `Some` outcomes are bit-identical to [`MatchSession::match_corpus`].
    pub fn match_corpus_indexed(
        &self,
        pairs: &[(&PreparedSchema<'_>, &PreparedSchema<'_>)],
        policy: IndexPolicy,
    ) -> Vec<Option<MatchOutcome>> {
        let params = IndexParams::default();
        if !policy.engages(pairs.len(), &params) {
            return self.match_corpus(pairs).into_iter().map(Some).collect();
        }
        let admitted: Vec<bool> = pairs
            .iter()
            .map(|(s, t)| pair_is_candidate(&self.signature(s), &self.signature(t), &params))
            .collect();
        let survivors: Vec<(&PreparedSchema<'_>, &PreparedSchema<'_>)> = pairs
            .iter()
            .zip(&admitted)
            .filter(|(_, &a)| a)
            .map(|(pair, _)| *pair)
            .collect();
        let mut outcomes = self.match_corpus(&survivors).into_iter();
        admitted
            .into_iter()
            .map(|a| a.then(|| outcomes.next().expect("one outcome per survivor")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MatchConfig;
    use qmatch_xsd::SchemaTree;

    fn po() -> SchemaTree {
        SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("BillingAddress", Some(0)),
                ("ShippingAddress", Some(0)),
            ],
        )
    }

    fn order() -> SchemaTree {
        SchemaTree::from_labels(
            "Order",
            &[
                ("Order", None),
                ("OrderNo", Some(0)),
                ("BillingAddress", Some(0)),
            ],
        )
    }

    fn book() -> SchemaTree {
        SchemaTree::from_labels(
            "Book",
            &[("Book", None), ("Title", Some(0)), ("Isbn", Some(0))],
        )
    }

    #[test]
    fn policy_parses_and_round_trips() {
        for (name, policy) in [
            ("off", IndexPolicy::Off),
            ("auto", IndexPolicy::Auto),
            ("force", IndexPolicy::Force),
        ] {
            assert_eq!(name.parse::<IndexPolicy>().unwrap(), policy);
            assert_eq!(policy.name(), name);
        }
        assert!("banana".parse::<IndexPolicy>().is_err());
        let params = IndexParams::default();
        assert!(!IndexPolicy::Off.engages(1_000_000, &params));
        assert!(IndexPolicy::Force.engages(1, &params));
        assert!(!IndexPolicy::Auto.engages(params.floor, &params));
        assert!(IndexPolicy::Auto.engages(params.floor + 1, &params));
    }

    #[test]
    fn signatures_are_session_independent() {
        let tree = po();
        let a = MatchSession::new(MatchConfig::default());
        let b = MatchSession::new(MatchConfig::default());
        // Warm b's interner with other labels first, so the Symbol ids of
        // the PO labels differ between the two sessions.
        let other = book();
        let _ = b.prepare(&other);
        let sig_a = a.signature(&a.prepare(&tree));
        let sig_b = b.signature(&b.prepare(&tree));
        assert_eq!(sig_a, sig_b);
        assert_eq!(sig_a.nodes(), 4);
        assert_eq!(sig_a.depth(), 1);
        assert!(sig_a.len() > 4, "labels + tokens + trigrams");
    }

    #[test]
    fn evolved_signatures_match_from_scratch_builds() {
        let session = MatchSession::new(MatchConfig::default());
        let old_tree = po();
        let old = session.prepare(&old_tree);
        let old_sig = session.signature(&old);
        // Additions only: incremental merge equals a fresh signature.
        let grown = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("BillingAddress", Some(0)),
                ("ShippingAddress", Some(0)),
                ("DeliveryDate", Some(0)),
            ],
        );
        let new = session.prepare(&grown);
        let evolved = session
            .signature_evolved(&old_sig, &old, &new)
            .expect("additions merge incrementally");
        assert_eq!(evolved, session.signature(&new));
        // Equal label sets (structure-only change): features reused, bands
        // updated.
        let reshaped = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("BillingAddress", Some(1)),
                ("ShippingAddress", Some(2)),
            ],
        );
        let deep = session.prepare(&reshaped);
        let evolved = session
            .signature_evolved(&old_sig, &old, &deep)
            .expect("equal label sets reuse features");
        assert_eq!(evolved, session.signature(&deep));
        assert_eq!(evolved.depth(), 3);
        // A removed label forces a rebuild.
        let shrunk = order();
        let small = session.prepare(&shrunk);
        assert!(session.signature_evolved(&old_sig, &old, &small).is_none());
    }

    #[test]
    fn dice_is_symmetric_and_bounded() {
        let session = MatchSession::new(MatchConfig::default());
        let (po, order, book) = (po(), order(), book());
        let sig_po = session.signature(&session.prepare(&po));
        let sig_order = session.signature(&session.prepare(&order));
        let sig_book = session.signature(&session.prepare(&book));
        assert_eq!(sig_po.dice(&sig_po), 1.0);
        assert!((sig_po.dice(&sig_order) - sig_order.dice(&sig_po)).abs() < 1e-12);
        assert!(sig_po.dice(&sig_order) > sig_po.dice(&sig_book));
        assert!(
            sig_po.dice(&sig_book) < 0.2,
            "unrelated schemas share little"
        );
    }

    #[test]
    fn index_inserts_replaces_and_removes() {
        let session = MatchSession::new(MatchConfig::default());
        let (po, order, book) = (po(), order(), book());
        let mut index = CorpusIndex::default();
        index.insert("po", session.signature(&session.prepare(&po)));
        index.insert("order", session.signature(&session.prepare(&order)));
        index.insert("book", session.signature(&session.prepare(&book)));
        assert_eq!(index.len(), 3);
        let query = session.signature(&session.prepare(&po));
        let cands = index.candidates(&query);
        assert!(cands.names.contains(&"po".to_owned()));
        assert!(cands.names.contains(&"order".to_owned()));
        assert!(!cands.names.contains(&"book".to_owned()), "{cands:?}");
        assert_eq!(cands.pruned + cands.names.len(), 3);
        // Replacing a name with an unrelated signature removes the old
        // postings: "order" stops being a candidate for PO queries.
        index.insert("order", session.signature(&session.prepare(&book)));
        assert_eq!(index.len(), 3);
        assert!(!index.candidates(&query).names.contains(&"order".to_owned()));
        assert!(index.remove("order"));
        assert!(!index.remove("order"));
        assert_eq!(index.len(), 2);
        // The freed slot is recycled without disturbing other docs.
        index.insert("order2", session.signature(&session.prepare(&order)));
        let cands = index.candidates(&query);
        assert_eq!(cands.names, vec!["order2".to_owned(), "po".to_owned()]);
    }

    #[test]
    fn candidate_sets_are_insertion_order_independent() {
        let session = MatchSession::new(MatchConfig::default());
        let trees = [("po", po()), ("order", order()), ("book", book())];
        let query = session.signature(&session.prepare(&trees[0].1));
        let mut forward = CorpusIndex::default();
        for (name, tree) in &trees {
            forward.insert(name, session.signature(&session.prepare(tree)));
        }
        let mut reverse = CorpusIndex::default();
        for (name, tree) in trees.iter().rev() {
            reverse.insert(name, session.signature(&session.prepare(tree)));
        }
        assert_eq!(forward.candidates(&query), reverse.candidates(&query));
    }

    #[test]
    fn bands_prune_structural_outliers() {
        let params = IndexParams {
            node_ratio: 2.0,
            depth_band: 1,
            ..IndexParams::default()
        };
        let session = MatchSession::new(MatchConfig::default());
        let small = po();
        // A deep chain reusing the same labels: high Dice, wrong shape.
        let deep = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("BillingAddress", Some(1)),
                ("ShippingAddress", Some(2)),
                ("OrderNo", Some(3)),
                ("BillingAddress", Some(4)),
                ("ShippingAddress", Some(5)),
                ("OrderNo", Some(6)),
                ("BillingAddress", Some(7)),
            ],
        );
        let q = session.signature(&session.prepare(&small));
        let d = session.signature(&session.prepare(&deep));
        assert!(q.dice(&d) > params.min_dice);
        assert!(!pair_is_candidate(&q, &d, &params), "depth band prunes");
        assert!(pair_is_candidate(
            &q,
            &d,
            &IndexParams {
                depth_band: 8,
                node_ratio: 8.0,
                ..params
            }
        ));
    }

    #[test]
    fn topk_off_auto_below_floor_and_force_agree_on_small_corpora() {
        let session = MatchSession::new(MatchConfig::default());
        let (po_t, order_t, book_t) = (po(), order(), book());
        let (p, o, b) = (
            session.prepare(&po_t),
            session.prepare(&order_t),
            session.prepare(&book_t),
        );
        let corpus: Vec<(&str, &PreparedSchema)> = vec![("po", &p), ("order", &o), ("book", &b)];
        let off = session.topk(&p, &corpus, 5, Some("po"), IndexPolicy::Off);
        let auto = session.topk(&p, &corpus, 5, Some("po"), IndexPolicy::Auto);
        assert_eq!(off, auto, "below the floor, auto is exhaustive");
        assert_eq!(off[0].0, "order");
        assert_eq!(off.len(), 2);
        let force = session.topk(&p, &corpus, 5, Some("po"), IndexPolicy::Force);
        assert_eq!(force.len(), 1, "force prunes the unrelated book schema");
        assert_eq!(force[0], off[0]);
    }

    #[test]
    fn match_corpus_indexed_prunes_only_under_pressure() {
        let session = MatchSession::new(MatchConfig::default());
        let (po_t, order_t, book_t) = (po(), order(), book());
        let (p, o, b) = (
            session.prepare(&po_t),
            session.prepare(&order_t),
            session.prepare(&book_t),
        );
        let pairs: Vec<(&PreparedSchema, &PreparedSchema)> = vec![(&p, &o), (&p, &b)];
        let off = session.match_corpus_indexed(&pairs, IndexPolicy::Off);
        assert!(off.iter().all(Option::is_some));
        let auto = session.match_corpus_indexed(&pairs, IndexPolicy::Auto);
        assert!(
            auto.iter().all(Option::is_some),
            "two pairs sit below the floor"
        );
        let force = session.match_corpus_indexed(&pairs, IndexPolicy::Force);
        assert!(force[0].is_some(), "po/order survives the prefilter");
        assert!(force[1].is_none(), "po/book is pruned");
        let exhaustive = session.match_corpus(&pairs);
        assert_eq!(
            force[0].as_ref().unwrap().total_qom,
            exhaustive[0].total_qom,
            "surviving pairs score bit-identically"
        );
    }
}
