//! The quantitative match model (paper §3) and algorithm configuration.
//!
//! The central quantity is the node QoM (Equations 1/6):
//!
//! ```text
//! QoM(n1,n2) = WL·QoML + WP·QoMP + WH·QoMH + WC·QoMC
//! ```
//!
//! with the children axis computed from the subtree weight `Rw` (Eq. 3) and
//! the cardinality ratio `Rs` (Eq. 4) as `QoMC = (Rw + Rs)/2` (Eq. 5), and
//! leaves using Eq. 2 with constant `C = WH + WC` (leaves match exactly by
//! default on the children and level axes, so a perfect leaf scores 1.0).

use crate::matrix::Precision;

/// The per-axis weights of Equation 1. They must sum to 1 so that a total
/// exact match always scores exactly 1.0.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weights {
    /// Label-axis weight `WL`.
    pub label: f64,
    /// Properties-axis weight `WP`.
    pub properties: f64,
    /// Level-axis weight `WH`.
    pub level: f64,
    /// Children-axis weight `WC`.
    pub children: f64,
}

impl Weights {
    /// The paper's chosen weights (Table 2): `WL=0.3, WP=0.2, WH=0.1,
    /// WC=0.4`.
    pub const PAPER: Weights = Weights {
        label: 0.3,
        properties: 0.2,
        level: 0.1,
        children: 0.4,
    };

    /// Creates a weight vector, checking the unit-sum invariant.
    pub fn new(
        label: f64,
        properties: f64,
        level: f64,
        children: f64,
    ) -> Result<Weights, WeightError> {
        let w = Weights {
            label,
            properties,
            level,
            children,
        };
        w.validate()?;
        Ok(w)
    }

    /// Checks non-negativity and unit sum (within 1e-9).
    pub fn validate(&self) -> Result<(), WeightError> {
        let parts = [self.label, self.properties, self.level, self.children];
        if parts.iter().any(|&p| p < 0.0 || !p.is_finite()) {
            return Err(WeightError::Negative);
        }
        let sum: f64 = parts.iter().sum();
        if (sum - 1.0).abs() > 1e-9 {
            return Err(WeightError::NotUnitSum { sum });
        }
        Ok(())
    }

    /// The leaf constant `C` of Equation 2: leaves match exactly by default
    /// on the children and level axes.
    pub fn leaf_constant(&self) -> f64 {
        self.level + self.children
    }

    /// Node QoM, Equation 1/6.
    pub fn qom(&self, label: f64, properties: f64, level: f64, children: f64) -> f64 {
        self.label * label
            + self.properties * properties
            + self.level * level
            + self.children * children
    }

    /// Leaf QoM, Equation 2: `WL·QoML + WP·QoMP + C`.
    pub fn leaf_qom(&self, label: f64, properties: f64) -> f64 {
        self.label * label + self.properties * properties + self.leaf_constant()
    }

    /// The acceptance threshold for extracting correspondences from hybrid
    /// QoM scores under these weights.
    ///
    /// Equation 2 gives *every* leaf pair the constant `C = WH + WC` for
    /// free, and an unrelated-but-typed leaf pair typically adds `≈0.7·WP`
    /// on the properties axis. Accepting a pair therefore requires it to
    /// clear that structural floor with real label evidence: the cut is
    /// placed at `C + 0.8·WP + 0.4·WL`, i.e. a pair must earn at least a
    /// moderate label match (0.4) on top of near-exact properties. For the
    /// paper's Table 2 weights this evaluates to 0.78.
    pub fn acceptance_threshold(&self) -> f64 {
        self.leaf_constant() + 0.8 * self.properties + 0.4 * self.label
    }
}

impl Default for Weights {
    fn default() -> Self {
        Weights::PAPER
    }
}

/// Why a weight vector was rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightError {
    /// A component was negative or non-finite.
    Negative,
    /// The components do not sum to 1.
    NotUnitSum {
        /// The actual sum.
        sum: f64,
    },
}

impl std::fmt::Display for WeightError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WeightError::Negative => f.write_str("weights must be finite and non-negative"),
            WeightError::NotUnitSum { sum } => {
                write!(f, "weights must sum to 1 (got {sum})")
            }
        }
    }
}

impl std::error::Error for WeightError {}

/// The children-axis score of Equation 5 from the subtree weight (Eq. 3)
/// and the cardinality ratio (Eq. 4).
///
/// `qom_sum` is the sum of the QoMs of the source children that found a
/// partner above the threshold, `matched` is how many did, and
/// `source_children` is `|Ns|`. A node with no children scores exact (1.0)
/// by the leaf-default convention.
pub fn children_qom(qom_sum: f64, matched: usize, source_children: usize) -> f64 {
    if source_children == 0 {
        return 1.0;
    }
    let n = source_children as f64;
    let rw = qom_sum / n; // Eq. 3
    let rs = matched as f64 / n; // Eq. 4
    (rw + rs) / 2.0 // Eq. 5
}

/// Which linguistic resources the matchers may use (for the linguistic
/// ablation experiment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LexiconMode {
    /// Thesaurus plus fuzzy string metrics (the paper's configuration).
    #[default]
    Full,
    /// Fuzzy string metrics only (empty thesaurus).
    FuzzyOnly,
    /// Exact (case-normalized) string equality only.
    ExactOnly,
}

/// Parameters of the full-fidelity CUPID matcher
/// ([`Algorithm::Cupid`](crate::algorithms::Algorithm::Cupid)): the
/// similarity-propagation thresholds and adjustment factors of Madhavan,
/// Bernstein & Rahm (VLDB 2001), defaulting to the values the CUPID paper
/// recommends.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CupidParams {
    /// Acceptance threshold: a leaf pair with `wsim ≥ th_accept` is a
    /// *strong link* (feeds internal ssim and the leaf mapping).
    pub th_accept: f64,
    /// High-propagation threshold: an internal pair with `wsim > th_high`
    /// increases the ssim of every leaf pair beneath it by `c_inc`.
    pub th_high: f64,
    /// Low-propagation threshold: an internal pair with `wsim < th_low`
    /// decreases the ssim of every leaf pair beneath it by `c_dec`.
    pub th_low: f64,
    /// Multiplicative ssim increase applied per high-confidence ancestor
    /// pair (must be ≥ 1; results are capped at 1.0).
    pub c_inc: f64,
    /// Multiplicative ssim decrease applied per low-confidence ancestor
    /// pair (must be in `(0, 1]`).
    pub c_dec: f64,
    /// Structural weight in `wsim = w_struct·ssim + (1 − w_struct)·lsim`.
    pub w_struct: f64,
}

impl CupidParams {
    /// The CUPID paper's recommended operating point.
    pub const PAPER: CupidParams = CupidParams {
        th_accept: 0.7,
        th_high: 0.6,
        th_low: 0.35,
        c_inc: 1.2,
        c_dec: 0.9,
        w_struct: 0.2,
    };

    /// Checks every parameter's domain (thresholds finite in `[0, 1]` with
    /// `th_low ≤ th_high`, `c_inc ≥ 1`, `0 < c_dec ≤ 1`, `w_struct` in
    /// `[0, 1]`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let unit = |param: &'static str, value: f64| {
            if !value.is_finite() || !(0.0..=1.0).contains(&value) {
                Err(ConfigError::Cupid {
                    param,
                    value,
                    expected: "a finite value in [0, 1]",
                })
            } else {
                Ok(())
            }
        };
        unit("th_accept", self.th_accept)?;
        unit("th_high", self.th_high)?;
        unit("th_low", self.th_low)?;
        unit("w_struct", self.w_struct)?;
        if self.th_low > self.th_high {
            return Err(ConfigError::Cupid {
                param: "th_low",
                value: self.th_low,
                expected: "at most th_high",
            });
        }
        if !self.c_inc.is_finite() || self.c_inc < 1.0 {
            return Err(ConfigError::Cupid {
                param: "c_inc",
                value: self.c_inc,
                expected: "a finite value >= 1",
            });
        }
        if !self.c_dec.is_finite() || self.c_dec <= 0.0 || self.c_dec > 1.0 {
            return Err(ConfigError::Cupid {
                param: "c_dec",
                value: self.c_dec,
                expected: "a finite value in (0, 1]",
            });
        }
        Ok(())
    }
}

impl Default for CupidParams {
    fn default() -> Self {
        CupidParams::PAPER
    }
}

/// Configuration shared by all match algorithms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchConfig {
    /// The axis weights (Eq. 1); defaults to the paper's Table 2 values.
    pub weights: Weights,
    /// The child-match threshold of Figure 3: a child pair contributes to
    /// `Rw`/`Rs` only when its QoM reaches this value.
    pub threshold: f64,
    /// Linguistic resources to use.
    pub lexicon: LexiconMode,
    /// Similarity-matrix storage precision. `F64` (default) is bit-identical
    /// to the paper arithmetic; `F32` halves the quadratic matrix footprint
    /// with a ≤1e-6 per-cell tolerance (see [`Precision`]).
    pub precision: Precision,
    /// The CUPID propagation parameters (used only by
    /// [`Algorithm::Cupid`](crate::algorithms::Algorithm::Cupid)).
    pub cupid: CupidParams,
}

impl Default for MatchConfig {
    fn default() -> Self {
        MatchConfig {
            weights: Weights::PAPER,
            threshold: 0.5,
            lexicon: LexiconMode::Full,
            precision: Precision::F64,
            cupid: CupidParams::PAPER,
        }
    }
}

impl MatchConfig {
    /// A config with custom weights, keeping the other defaults.
    pub fn with_weights(weights: Weights) -> MatchConfig {
        MatchConfig {
            weights,
            ..MatchConfig::default()
        }
    }

    /// A config with a custom child-match threshold.
    pub fn with_threshold(threshold: f64) -> MatchConfig {
        MatchConfig {
            threshold,
            ..MatchConfig::default()
        }
    }

    /// The validating builder — the v1 construction path. Every field
    /// defaults to [`MatchConfig::default`]; [`MatchConfigBuilder::build`]
    /// rejects weights that do not sum to 1 and thresholds outside `[0, 1]`.
    ///
    /// ```
    /// use qmatch_core::model::MatchConfig;
    ///
    /// let config = MatchConfig::builder()
    ///     .weights(0.25, 0.25, 0.25, 0.25)
    ///     .threshold(0.6)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(config.threshold, 0.6);
    /// assert!(MatchConfig::builder().threshold(1.5).build().is_err());
    /// ```
    pub fn builder() -> MatchConfigBuilder {
        MatchConfigBuilder {
            weights: Weights::PAPER,
            threshold: MatchConfig::default().threshold,
            lexicon: LexiconMode::Full,
            precision: Precision::F64,
            precision_raw: None,
            cupid: CupidParams::PAPER,
        }
    }
}

/// Builder returned by [`MatchConfig::builder`]; validation happens once,
/// in [`MatchConfigBuilder::build`].
#[derive(Debug, Clone)]
pub struct MatchConfigBuilder {
    weights: Weights,
    threshold: f64,
    lexicon: LexiconMode,
    precision: Precision,
    /// A raw `--precision`/`precision=` string awaiting validation in
    /// [`MatchConfigBuilder::build`].
    precision_raw: Option<String>,
    cupid: CupidParams,
}

impl MatchConfigBuilder {
    /// Sets the four axis weights (`WL`, `WP`, `WH`, `WC`) as raw values;
    /// the unit-sum and non-negativity checks run in
    /// [`MatchConfigBuilder::build`].
    pub fn weights(mut self, label: f64, properties: f64, level: f64, children: f64) -> Self {
        self.weights = Weights {
            label,
            properties,
            level,
            children,
        };
        self
    }

    /// Sets the weights from an existing (possibly pre-validated) vector.
    pub fn weight_vector(mut self, weights: Weights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the child-match threshold of Figure 3 (validated to `[0, 1]`).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Sets the linguistic-resource mode.
    pub fn lexicon(mut self, lexicon: LexiconMode) -> Self {
        self.lexicon = lexicon;
        self
    }

    /// Sets the similarity-matrix storage precision.
    pub fn precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the storage precision from its textual name (`"f64"`/`"f32"`,
    /// as taken by the `--precision` CLI flag and the `precision=` query
    /// parameter); anything else is rejected in
    /// [`MatchConfigBuilder::build`] with [`ConfigError::Precision`].
    pub fn precision_name(mut self, name: &str) -> Self {
        self.precision_raw = Some(name.to_owned());
        self
    }

    /// Sets the CUPID high-propagation threshold `th_high` (validated in
    /// [`MatchConfigBuilder::build`]).
    pub fn th_high(mut self, th_high: f64) -> Self {
        self.cupid.th_high = th_high;
        self
    }

    /// Sets the CUPID low-propagation threshold `th_low`.
    pub fn th_low(mut self, th_low: f64) -> Self {
        self.cupid.th_low = th_low;
        self
    }

    /// Sets the CUPID ssim increase factor `c_inc`.
    pub fn c_inc(mut self, c_inc: f64) -> Self {
        self.cupid.c_inc = c_inc;
        self
    }

    /// Sets the CUPID ssim decrease factor `c_dec`.
    pub fn c_dec(mut self, c_dec: f64) -> Self {
        self.cupid.c_dec = c_dec;
        self
    }

    /// Sets the full CUPID parameter block at once.
    pub fn cupid(mut self, cupid: CupidParams) -> Self {
        self.cupid = cupid;
        self
    }

    /// Validates and produces the config.
    pub fn build(mut self) -> Result<MatchConfig, ConfigError> {
        if let Some(raw) = self.precision_raw.take() {
            self.precision = raw.parse::<Precision>()?;
        }
        self.weights.validate().map_err(ConfigError::Weights)?;
        if !self.threshold.is_finite() || !(0.0..=1.0).contains(&self.threshold) {
            return Err(ConfigError::Threshold {
                value: self.threshold,
            });
        }
        self.cupid.validate()?;
        Ok(MatchConfig {
            weights: self.weights,
            threshold: self.threshold,
            lexicon: self.lexicon,
            precision: self.precision,
            cupid: self.cupid,
        })
    }
}

/// Why [`MatchConfigBuilder::build`] rejected a configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The weight vector failed validation (see [`WeightError`]).
    Weights(WeightError),
    /// The child-match threshold was not a finite value in `[0, 1]`.
    Threshold {
        /// The rejected value.
        value: f64,
    },
    /// The storage precision name was not `"f32"` or `"f64"`.
    Precision {
        /// The rejected name.
        value: String,
    },
    /// A CUPID propagation parameter was outside its domain (see
    /// [`CupidParams::validate`]).
    Cupid {
        /// Which parameter was rejected.
        param: &'static str,
        /// The rejected value.
        value: f64,
        /// The accepted domain, for the error message.
        expected: &'static str,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Weights(err) => write!(f, "invalid weights: {err}"),
            ConfigError::Threshold { value } => {
                write!(
                    f,
                    "threshold must be a finite value in [0, 1] (got {value})"
                )
            }
            ConfigError::Precision { value } => {
                write!(f, "precision must be \"f32\" or \"f64\" (got {value:?})")
            }
            ConfigError::Cupid {
                param,
                value,
                expected,
            } => {
                write!(f, "cupid {param} must be {expected} (got {value})")
            }
        }
    }
}

impl std::error::Error for ConfigError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConfigError::Weights(err) => Some(err),
            ConfigError::Threshold { .. }
            | ConfigError::Precision { .. }
            | ConfigError::Cupid { .. } => None,
        }
    }
}

impl std::str::FromStr for Precision {
    type Err = ConfigError;

    /// Parses the CLI/query-parameter spelling; the error is the same typed
    /// [`ConfigError::Precision`] that [`MatchConfigBuilder::build`] emits.
    fn from_str(s: &str) -> Result<Precision, ConfigError> {
        match s {
            "f64" => Ok(Precision::F64),
            "f32" => Ok(Precision::F32),
            other => Err(ConfigError::Precision {
                value: other.to_owned(),
            }),
        }
    }
}

impl From<WeightError> for ConfigError {
    fn from(err: WeightError) -> ConfigError {
        ConfigError::Weights(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_weights_are_valid_and_default() {
        assert!(Weights::PAPER.validate().is_ok());
        assert_eq!(Weights::default(), Weights::PAPER);
        assert!((Weights::PAPER.leaf_constant() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weights_must_sum_to_one() {
        assert!(Weights::new(0.25, 0.25, 0.25, 0.25).is_ok());
        assert!(matches!(
            Weights::new(0.3, 0.3, 0.3, 0.3),
            Err(WeightError::NotUnitSum { .. })
        ));
        assert!(matches!(
            Weights::new(-0.1, 0.5, 0.3, 0.3),
            Err(WeightError::Negative)
        ));
        assert!(matches!(
            Weights::new(f64::NAN, 0.5, 0.3, 0.2),
            Err(WeightError::Negative)
        ));
    }

    #[test]
    fn total_exact_match_scores_one() {
        // §3: "The highest match classification, total exact, will always
        // result in QoM = 1."
        let w = Weights::PAPER;
        assert!((w.qom(1.0, 1.0, 1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((w.leaf_qom(1.0, 1.0) - 1.0).abs() < 1e-12);
        let w2 = Weights::new(0.4, 0.1, 0.2, 0.3).unwrap();
        assert!((w2.qom(1.0, 1.0, 1.0, 1.0) - 1.0).abs() < 1e-12);
        assert!((w2.leaf_qom(1.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn leaf_equation_matches_node_equation_with_default_axes() {
        // Eq. 2 is Eq. 1 with QoMH = QoMC = 1.
        let w = Weights::PAPER;
        for (l, p) in [(0.0, 0.0), (0.5, 1.0), (1.0, 0.3)] {
            assert!((w.leaf_qom(l, p) - w.qom(l, p, 1.0, 1.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn children_qom_equations() {
        // Worked example: 3 children, all matched, child QoMs 1.0, 0.8, 0.9.
        let qomc = children_qom(2.7, 3, 3);
        assert!((qomc - (0.9 + 1.0) / 2.0).abs() < 1e-12);
        // Partial: 1 of 2 matched with QoM 0.8: Rw=0.4, Rs=0.5.
        assert!((children_qom(0.8, 1, 2) - 0.45).abs() < 1e-12);
        // No children: exact by default.
        assert!((children_qom(0.0, 0, 0) - 1.0).abs() < 1e-12);
        // Nothing matched.
        assert!((children_qom(0.0, 0, 4) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_children_make_qomc_one() {
        assert!((children_qom(5.0, 5, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn config_builders() {
        let c = MatchConfig::default();
        assert_eq!(c.threshold, 0.5);
        assert_eq!(c.lexicon, LexiconMode::Full);
        let w = Weights::new(0.25, 0.25, 0.25, 0.25).unwrap();
        assert_eq!(MatchConfig::with_weights(w).weights, w);
        assert_eq!(MatchConfig::with_threshold(0.7).threshold, 0.7);
    }

    #[test]
    fn builder_defaults_match_default_config() {
        assert_eq!(
            MatchConfig::builder().build().unwrap(),
            MatchConfig::default()
        );
    }

    #[test]
    fn builder_rejects_bad_weights_and_thresholds() {
        assert!(matches!(
            MatchConfig::builder().weights(0.3, 0.3, 0.3, 0.3).build(),
            Err(ConfigError::Weights(WeightError::NotUnitSum { .. }))
        ));
        assert!(matches!(
            MatchConfig::builder().weights(-0.1, 0.5, 0.3, 0.3).build(),
            Err(ConfigError::Weights(WeightError::Negative))
        ));
        for bad in [-0.01, 1.01, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                MatchConfig::builder().threshold(bad).build(),
                Err(ConfigError::Threshold { .. })
            ));
        }
        for ok in [0.0, 0.5, 1.0] {
            assert_eq!(
                MatchConfig::builder()
                    .threshold(ok)
                    .build()
                    .unwrap()
                    .threshold,
                ok
            );
        }
    }

    #[test]
    fn builder_accepts_full_customization() {
        let w = Weights::new(0.4, 0.1, 0.2, 0.3).unwrap();
        let config = MatchConfig::builder()
            .weight_vector(w)
            .threshold(0.7)
            .lexicon(LexiconMode::ExactOnly)
            .build()
            .unwrap();
        assert_eq!(config.weights, w);
        assert_eq!(config.threshold, 0.7);
        assert_eq!(config.lexicon, LexiconMode::ExactOnly);
    }

    #[test]
    fn builder_precision_paths() {
        assert_eq!(MatchConfig::default().precision, Precision::F64);
        let c = MatchConfig::builder()
            .precision(Precision::F32)
            .build()
            .unwrap();
        assert_eq!(c.precision, Precision::F32);
        let c = MatchConfig::builder()
            .precision_name("f32")
            .build()
            .unwrap();
        assert_eq!(c.precision, Precision::F32);
        assert!(matches!(
            MatchConfig::builder().precision_name("f16").build(),
            Err(ConfigError::Precision { value }) if value == "f16"
        ));
        assert!(matches!(
            "bogus".parse::<Precision>(),
            Err(ConfigError::Precision { .. })
        ));
        assert_eq!("f64".parse::<Precision>().unwrap(), Precision::F64);
        assert_eq!(Precision::F32.name(), "f32");
    }

    #[test]
    fn builder_sets_and_validates_cupid_knobs() {
        let config = MatchConfig::builder()
            .th_high(0.65)
            .th_low(0.3)
            .c_inc(1.3)
            .c_dec(0.8)
            .build()
            .unwrap();
        assert_eq!(
            config.cupid,
            CupidParams {
                th_high: 0.65,
                th_low: 0.3,
                c_inc: 1.3,
                c_dec: 0.8,
                ..CupidParams::PAPER
            }
        );
        let block = CupidParams {
            th_accept: 0.8,
            ..CupidParams::PAPER
        };
        assert_eq!(
            MatchConfig::builder().cupid(block).build().unwrap().cupid,
            block
        );
        // Each knob's domain is enforced at build time, with the offending
        // parameter named in the error.
        let cases = [
            ("th_high", MatchConfig::builder().th_high(1.5).build()),
            ("th_low", MatchConfig::builder().th_low(-0.1).build()),
            // th_low above th_high is rejected even with both in [0, 1].
            (
                "th_low",
                MatchConfig::builder().th_low(0.9).th_high(0.4).build(),
            ),
            ("c_inc", MatchConfig::builder().c_inc(0.9).build()),
            ("c_dec", MatchConfig::builder().c_dec(0.0).build()),
            ("c_dec", MatchConfig::builder().c_dec(1.1).build()),
            ("c_inc", MatchConfig::builder().c_inc(f64::NAN).build()),
        ];
        for (expected_param, result) in cases {
            match result {
                Err(ConfigError::Cupid { param, .. }) => assert_eq!(param, expected_param),
                other => panic!("{expected_param}: expected a cupid error, got {other:?}"),
            }
        }
    }

    #[test]
    fn config_error_messages_and_source() {
        use std::error::Error;
        let e = ConfigError::Threshold { value: 1.5 };
        assert!(e.to_string().contains("1.5"));
        assert!(e.source().is_none());
        let e = ConfigError::from(WeightError::Negative);
        assert!(e.to_string().contains("invalid weights"));
        assert!(e.source().is_some());
    }

    #[test]
    fn weight_error_messages() {
        assert!(WeightError::Negative.to_string().contains("non-negative"));
        assert!(WeightError::NotUnitSum { sum: 1.2 }
            .to_string()
            .contains("1.2"));
    }
}
