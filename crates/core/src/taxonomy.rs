//! The XML match taxonomy (paper §2): qualitative grades per axis and their
//! combination into the four sub-tree match categories.

use std::fmt;

/// The grade of a match along an atomic-valued axis (label, properties,
/// level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AxisGrade {
    /// Identical values (label: exact string/synonym/ontology match).
    Exact,
    /// Some degree of match, not exact (label: hypernym/acronym; properties:
    /// generalization/specialization). For the level axis relaxed is
    /// synonymous with no match.
    Relaxed,
    /// No match.
    None,
}

impl AxisGrade {
    /// Derives the grade from a numeric axis score on the canonical scale
    /// (1.0 = exact).
    pub fn from_score(score: f64) -> AxisGrade {
        if score >= 0.999 {
            AxisGrade::Exact
        } else if score > 0.0 {
            AxisGrade::Relaxed
        } else {
            AxisGrade::None
        }
    }

    /// The weaker (worse) of two grades.
    pub fn worst(self, other: AxisGrade) -> AxisGrade {
        self.max(other)
    }
}

impl fmt::Display for AxisGrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AxisGrade::Exact => "exact",
            AxisGrade::Relaxed => "relaxed",
            AxisGrade::None => "none",
        })
    }
}

/// The grade of the set-valued children axis (paper §2.1, "Coverage Match"
/// crossed with child quality in §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoverageGrade {
    /// All source children match, all of those matches exact.
    TotalExact,
    /// All source children match, at least one relaxed.
    TotalRelaxed,
    /// Some (not all) children match, all of those matches exact.
    PartialExact,
    /// Some (not all) children match, at least one relaxed.
    PartialRelaxed,
    /// No child matches.
    None,
}

impl CoverageGrade {
    /// Classifies coverage from match counts: `matched` of `total` source
    /// children found a partner, and `any_relaxed` reports whether any of
    /// those partnered matches was itself non-exact.
    pub fn classify(total: usize, matched: usize, any_relaxed: bool) -> CoverageGrade {
        debug_assert!(matched <= total);
        if total == 0 {
            // A leaf has exact coverage by default (paper Eq. 2's constant).
            return CoverageGrade::TotalExact;
        }
        match (matched == total, matched == 0, any_relaxed) {
            (_, true, _) => CoverageGrade::None,
            (true, _, false) => CoverageGrade::TotalExact,
            (true, _, true) => CoverageGrade::TotalRelaxed,
            (false, _, false) => CoverageGrade::PartialExact,
            (false, _, true) => CoverageGrade::PartialRelaxed,
        }
    }

    /// True for the two total grades.
    pub fn is_total(self) -> bool {
        matches!(
            self,
            CoverageGrade::TotalExact | CoverageGrade::TotalRelaxed
        )
    }

    /// True for the two exact grades.
    pub fn is_exact(self) -> bool {
        matches!(
            self,
            CoverageGrade::TotalExact | CoverageGrade::PartialExact
        )
    }
}

impl fmt::Display for CoverageGrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CoverageGrade::TotalExact => "total exact",
            CoverageGrade::TotalRelaxed => "total relaxed",
            CoverageGrade::PartialExact => "partial exact",
            CoverageGrade::PartialRelaxed => "partial relaxed",
            CoverageGrade::None => "none",
        })
    }
}

/// The combined category of a node match (paper §2.2): the children-axis
/// coverage refined by the atomic axes. A match is *total exact* only when
/// every axis is exact; one relaxed atomic axis (or relaxed coverage)
/// demotes it to *total relaxed*, and partial coverage yields the partial
/// categories analogously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MatchCategory {
    /// Exact along label, properties, level; total exact children.
    TotalExact,
    /// Total children coverage with at least one relaxed axis or child.
    TotalRelaxed,
    /// Exact atomic axes, partial exact children.
    PartialExact,
    /// Partial children coverage with at least one relaxed axis or child.
    PartialRelaxed,
    /// Nothing matches.
    None,
}

impl MatchCategory {
    /// Combines the atomic-axis grades with the children coverage grade
    /// (paper §2.2, "Subtree Match").
    pub fn combine(
        label: AxisGrade,
        properties: AxisGrade,
        level: AxisGrade,
        children: CoverageGrade,
    ) -> MatchCategory {
        if children == CoverageGrade::None
            && label == AxisGrade::None
            && properties == AxisGrade::None
        {
            return MatchCategory::None;
        }
        // The level axis has no "none": relaxed IS no-match (paper §2.1), so
        // it can demote exact→relaxed but never match→none.
        let atomic_worst = label.worst(properties).worst(level);
        let atomic_exact = atomic_worst == AxisGrade::Exact;
        match (children.is_total(), children.is_exact() && atomic_exact) {
            (true, true) => MatchCategory::TotalExact,
            (true, false) => MatchCategory::TotalRelaxed,
            (false, true) => MatchCategory::PartialExact,
            (false, false) => MatchCategory::PartialRelaxed,
        }
    }

    /// The "goodness" rank: total exact outranks total relaxed and partial
    /// exact, which outrank partial relaxed, which outranks none. (§3 notes
    /// the total-relaxed vs partial-exact distinction needs the quantitative
    /// model; the qualitative order here follows the enum declaration.)
    pub fn rank(self) -> u8 {
        match self {
            MatchCategory::TotalExact => 4,
            MatchCategory::TotalRelaxed => 3,
            MatchCategory::PartialExact => 2,
            MatchCategory::PartialRelaxed => 1,
            MatchCategory::None => 0,
        }
    }
}

impl fmt::Display for MatchCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatchCategory::TotalExact => "total exact",
            MatchCategory::TotalRelaxed => "total relaxed",
            MatchCategory::PartialExact => "partial exact",
            MatchCategory::PartialRelaxed => "partial relaxed",
            MatchCategory::None => "none",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_grade_from_score() {
        assert_eq!(AxisGrade::from_score(1.0), AxisGrade::Exact);
        assert_eq!(AxisGrade::from_score(0.9991), AxisGrade::Exact);
        assert_eq!(AxisGrade::from_score(0.85), AxisGrade::Relaxed);
        assert_eq!(AxisGrade::from_score(0.001), AxisGrade::Relaxed);
        assert_eq!(AxisGrade::from_score(0.0), AxisGrade::None);
    }

    #[test]
    fn axis_worst_takes_the_weaker() {
        assert_eq!(
            AxisGrade::Exact.worst(AxisGrade::Relaxed),
            AxisGrade::Relaxed
        );
        assert_eq!(AxisGrade::Relaxed.worst(AxisGrade::None), AxisGrade::None);
        assert_eq!(AxisGrade::Exact.worst(AxisGrade::Exact), AxisGrade::Exact);
    }

    #[test]
    fn coverage_classification() {
        use CoverageGrade::*;
        assert_eq!(CoverageGrade::classify(3, 3, false), TotalExact);
        assert_eq!(CoverageGrade::classify(3, 3, true), TotalRelaxed);
        assert_eq!(CoverageGrade::classify(3, 2, false), PartialExact);
        assert_eq!(CoverageGrade::classify(3, 1, true), PartialRelaxed);
        assert_eq!(CoverageGrade::classify(3, 0, false), None);
        // Leaves: exact by default.
        assert_eq!(CoverageGrade::classify(0, 0, false), TotalExact);
    }

    #[test]
    fn coverage_predicates() {
        assert!(CoverageGrade::TotalExact.is_total());
        assert!(CoverageGrade::TotalRelaxed.is_total());
        assert!(!CoverageGrade::PartialExact.is_total());
        assert!(CoverageGrade::PartialExact.is_exact());
        assert!(!CoverageGrade::TotalRelaxed.is_exact());
        assert!(!CoverageGrade::None.is_total());
    }

    #[test]
    fn category_combination_paper_cases() {
        use AxisGrade::*;
        // All exact ⇒ total exact (§2.2).
        assert_eq!(
            MatchCategory::combine(Exact, Exact, Exact, CoverageGrade::TotalExact),
            MatchCategory::TotalExact
        );
        // One relaxed atomic axis ⇒ total relaxed.
        assert_eq!(
            MatchCategory::combine(Relaxed, Exact, Exact, CoverageGrade::TotalExact),
            MatchCategory::TotalRelaxed
        );
        // Total relaxed children ⇒ total relaxed.
        assert_eq!(
            MatchCategory::combine(Exact, Exact, Exact, CoverageGrade::TotalRelaxed),
            MatchCategory::TotalRelaxed
        );
        // Exact atomics + partial exact children ⇒ partial exact.
        assert_eq!(
            MatchCategory::combine(Exact, Exact, Exact, CoverageGrade::PartialExact),
            MatchCategory::PartialExact
        );
        // Relaxed anywhere + partial ⇒ partial relaxed.
        assert_eq!(
            MatchCategory::combine(Exact, Relaxed, Exact, CoverageGrade::PartialRelaxed),
            MatchCategory::PartialRelaxed
        );
    }

    #[test]
    fn lines_vs_items_worked_example() {
        // §2.2: Lines vs Items — relaxed label, exact properties, relaxed
        // (no) level match, total relaxed children ⇒ total relaxed.
        let cat = MatchCategory::combine(
            AxisGrade::Relaxed,
            AxisGrade::Exact,
            AxisGrade::Relaxed,
            CoverageGrade::TotalRelaxed,
        );
        assert_eq!(cat, MatchCategory::TotalRelaxed);
    }

    #[test]
    fn nothing_matching_is_none() {
        assert_eq!(
            MatchCategory::combine(
                AxisGrade::None,
                AxisGrade::None,
                AxisGrade::Relaxed,
                CoverageGrade::None
            ),
            MatchCategory::None
        );
    }

    #[test]
    fn rank_orders_goodness() {
        assert!(MatchCategory::TotalExact.rank() > MatchCategory::TotalRelaxed.rank());
        assert!(MatchCategory::TotalRelaxed.rank() > MatchCategory::PartialExact.rank());
        assert!(MatchCategory::PartialExact.rank() > MatchCategory::PartialRelaxed.rank());
        assert!(MatchCategory::PartialRelaxed.rank() > MatchCategory::None.rank());
    }

    #[test]
    fn displays_match_paper_vocabulary() {
        assert_eq!(AxisGrade::Relaxed.to_string(), "relaxed");
        assert_eq!(CoverageGrade::TotalRelaxed.to_string(), "total relaxed");
        assert_eq!(MatchCategory::PartialExact.to_string(), "partial exact");
    }
}
