//! Plain-text table rendering for the experiment binaries.
//!
//! The harness binaries print the paper's tables and figure series as
//! fixed-width text so the output can be diffed against EXPERIMENTS.md.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Table
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trailing spaces make diffs noisy; trim them.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// A horizontal ASCII bar chart — the paper's figures are bar charts, so the
/// experiment binaries can render the same visual shape in a terminal.
/// Handles negative values (Overall can dip below zero) by anchoring all
/// bars at a shared zero column.
#[derive(Debug, Clone)]
pub struct BarChart {
    width: usize,
    rows: Vec<(String, f64)>,
}

impl BarChart {
    /// A chart whose longest bar spans `width` characters.
    pub fn new(width: usize) -> BarChart {
        BarChart {
            width: width.max(8),
            rows: Vec::new(),
        }
    }

    /// Adds one labeled bar. Insert a row with an empty label to visually
    /// separate groups.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut BarChart {
        self.rows.push((label.into(), value));
        self
    }

    /// Renders the chart.
    pub fn render(&self) -> String {
        let numeric: Vec<f64> = self
            .rows
            .iter()
            .map(|(_, v)| *v)
            .filter(|v| v.is_finite())
            .collect();
        let lo = numeric.iter().copied().fold(0.0f64, f64::min);
        let hi = numeric.iter().copied().fold(0.0f64, f64::max);
        let span = (hi - lo).max(1e-9);
        let label_width = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let zero_col = ((0.0 - lo) / span * self.width as f64).round() as usize;
        let mut out = String::new();
        for (label, value) in &self.rows {
            if label.is_empty() {
                out.push('\n');
                continue;
            }
            let col = ((value - lo) / span * self.width as f64).round() as usize;
            let (start, end) = if col >= zero_col {
                (zero_col, col)
            } else {
                (col, zero_col)
            };
            let mut line = vec![b' '; self.width + 1];
            for cell in line.iter_mut().take(end).skip(start) {
                *cell = b'#';
            }
            // Zero marker, drawn only where no bar covers it.
            if zero_col <= self.width && line[zero_col] == b' ' {
                line[zero_col] = b'|';
            }
            let bar = String::from_utf8(line).expect("ascii");
            let _ = writeln!(out, "{label:<label_width$}  {bar} {value:.3}");
        }
        out
    }
}

/// Formats a float with three decimals (the precision the figures use).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["short", "1"]);
        t.row(["much-longer-name", "22"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // The value column starts at the same offset in both data rows.
        let offset = lines[2].find('1').unwrap();
        assert_eq!(lines[3].find("22").unwrap(), offset);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(["a", "b", "c"]);
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn no_trailing_whitespace() {
        let mut t = Table::new(["a", "bbbb"]);
        t.row(["x", "y"]);
        for line in t.render().lines() {
            assert_eq!(line, line.trim_end());
        }
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.5), "0.500");
        assert_eq!(f3(1.0), "1.000");
        assert_eq!(ms(std::time::Duration::from_micros(1500)), "1.500");
    }
}

#[cfg(test)]
mod bar_chart_tests {
    use super::*;

    #[test]
    fn bars_scale_to_width() {
        let mut c = BarChart::new(20);
        c.bar("full", 1.0).bar("half", 0.5).bar("none", 0.0);
        let out = c.render();
        let lines: Vec<&str> = out.lines().collect();
        let count_hashes = |l: &str| l.chars().filter(|&ch| ch == '#').count();
        assert_eq!(count_hashes(lines[0]), 20);
        assert_eq!(count_hashes(lines[1]), 10);
        assert_eq!(count_hashes(lines[2]), 0);
        assert!(lines[0].ends_with("1.000"));
    }

    #[test]
    fn negative_values_extend_left_of_zero() {
        let mut c = BarChart::new(20);
        c.bar("up", 0.5).bar("down", -0.5).bar("zero", 0.0);
        let out = c.render();
        let lines: Vec<&str> = out.lines().collect();
        // The zero row carries no bar, so its marker locates the zero column.
        let zero_col = lines[2].find('|').unwrap();
        let first_hash_down = lines[1].find('#').unwrap();
        assert!(first_hash_down < zero_col, "{out}");
        let first_hash_up = lines[0].find('#').unwrap();
        assert!(first_hash_up >= zero_col, "{out}");
    }

    #[test]
    fn empty_labels_separate_groups() {
        let mut c = BarChart::new(10);
        c.bar("a", 1.0).bar("", 0.0).bar("b", 0.5);
        assert_eq!(c.render().lines().count(), 3);
        assert_eq!(c.render().lines().nth(1).unwrap(), "");
    }

    #[test]
    fn labels_are_aligned() {
        let mut c = BarChart::new(10);
        c.bar("x", 1.0).bar("longer-label", 1.0);
        let out = c.render();
        let lines: Vec<&str> = out.lines().collect();
        // Bars cover the zero marker; alignment shows in the hash columns.
        assert_eq!(lines[0].find('#'), lines[1].find('#'));
    }
}
