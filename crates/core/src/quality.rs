//! The first-class quality-evaluation API: one place that turns an
//! [`Algorithm`] run into precision / recall / F1 / overall against a gold
//! mapping, with the typed gold-file parsing and the unified report schema
//! every evaluation surface (the `qmatch evaluate` CLI, `evaluate --all`,
//! `bench_quality`) renders.
//!
//! The module exists so that accuracy is measured the same way everywhere:
//! each algorithm's mapping is extracted by *its own* convention (CUPID is
//! leaf-anchored via
//! [`mapping_generation_leaves`](crate::algorithms::mapping_generation_leaves),
//! everything else is the greedy 1:1 extraction at the algorithm's default
//! acceptance threshold), and every consumer shares
//! [`default_threshold`] instead of hard-coding its own copy.

use crate::algorithms::{mapping_generation_leaves, Algorithm, CompositeError};
use crate::eval::{evaluate, GoldStandard, MatchQuality};
use crate::mapping::{extract_mapping, Mapping};
use crate::model::MatchConfig;
use crate::report::Table;
use crate::session::{MatchSession, PreparedSchema};
use std::fmt;

/// A gold-file parse error, carrying the file name and 1-based line so the
/// message renders as `file:line: what went wrong`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldParseError {
    /// The file (or other source descriptor) being parsed.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for GoldParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.file, self.line, self.message)
    }
}

impl std::error::Error for GoldParseError {}

/// Parses gold-standard text: one real match per line as
/// `source/path<TAB>target/path`, `#` comments, blank lines skipped.
/// Duplicate pairs are rejected (they would silently inflate nothing —
/// [`GoldStandard`] is a set — but they always indicate a curation mistake,
/// so the parser reports them with the line of the second occurrence).
pub fn parse_gold(file: &str, text: &str) -> Result<GoldStandard, GoldParseError> {
    let err = |line: usize, message: String| GoldParseError {
        file: file.to_owned(),
        line,
        message,
    };
    let mut gold = GoldStandard::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        if content.trim().is_empty() {
            continue;
        }
        // Split before trimming so that an empty field ("path<TAB>") is
        // reported as such rather than silently merged into its neighbour.
        let Some((source, target)) = content.split_once('\t') else {
            return Err(err(
                line,
                format!("expected 'source<TAB>target', got {:?}", content.trim()),
            ));
        };
        let (source, target) = (source.trim(), target.trim());
        if source.is_empty() || target.is_empty() {
            return Err(err(line, "empty path".to_owned()));
        }
        if gold.contains(source, target) {
            return Err(err(
                line,
                format!("duplicate gold pair {source:?} -> {target:?}"),
            ));
        }
        gold.add(source, target);
    }
    Ok(gold)
}

/// The default mapping-acceptance threshold of an algorithm — the single
/// source of truth the CLI, the serve handlers, and the quality harness all
/// share. Hybrid (and the COMA-style composite, which aggregates scores on
/// the same scale) cuts at the weight-derived acceptance threshold (0.78
/// for the paper's weights), CUPID at its `th_accept`, the baselines at
/// the values the experiments pin.
pub fn default_threshold(algorithm: &Algorithm, config: &MatchConfig) -> f64 {
    match algorithm {
        Algorithm::Hybrid | Algorithm::Composite { .. } => config.weights.acceptance_threshold(),
        Algorithm::Linguistic => 0.5,
        Algorithm::Structural => 0.95,
        Algorithm::Cupid => config.cupid.th_accept,
        Algorithm::TreeEdit => 0.5,
    }
}

/// Extracts the mapping an algorithm's outcome proposes, by that
/// algorithm's own convention: leaf-anchored generation for CUPID, greedy
/// 1:1 extraction at [`default_threshold`] for everything else.
pub fn extract_for(
    algorithm: &Algorithm,
    session: &MatchSession,
    source: &PreparedSchema,
    target: &PreparedSchema,
    matrix: &crate::matrix::SimMatrix,
) -> Mapping {
    let threshold = default_threshold(algorithm, session.config());
    match algorithm {
        Algorithm::Cupid => mapping_generation_leaves(source, target, matrix, threshold),
        _ => extract_mapping(matrix, threshold),
    }
}

/// One evaluated (pair, algorithm) cell of a quality report.
#[derive(Debug, Clone)]
pub struct QualityRow {
    /// The schema pair's display name (e.g. `po1-po2`).
    pub pair: String,
    /// The algorithm's stable name ([`Algorithm::name`]).
    pub algorithm: String,
    /// The extraction threshold the mapping used.
    pub threshold: f64,
    /// Precision / recall / overall plus the raw counts.
    pub quality: MatchQuality,
}

/// Runs an algorithm over a prepared pair and scores its mapping against
/// the gold standard — the one evaluation path every surface calls.
pub fn evaluate_algorithm(
    session: &MatchSession,
    algorithm: &Algorithm,
    pair: &str,
    source: &PreparedSchema,
    target: &PreparedSchema,
    gold: &GoldStandard,
) -> Result<QualityRow, CompositeError> {
    let outcome = session.run(algorithm, source, target)?;
    let mapping = extract_for(algorithm, session, source, target, &outcome.matrix);
    let quality = evaluate(&mapping, source.tree(), target.tree(), gold);
    let threshold = default_threshold(algorithm, session.config());
    session.recycle(outcome);
    Ok(QualityRow {
        pair: pair.to_owned(),
        algorithm: algorithm.name().to_owned(),
        threshold,
        quality,
    })
}

/// A deterministic multi-row quality report with the unified column schema
/// (`pair`, `algorithm`, `|R|`, `|P|`, `|I|`, precision, recall, F1,
/// overall) shared by single-pair `evaluate`, `evaluate --all`, and
/// `bench_quality`.
#[derive(Debug, Clone, Default)]
pub struct QualityReport {
    /// The evaluated rows, in insertion order.
    pub rows: Vec<QualityRow>,
}

impl QualityReport {
    /// An empty report.
    pub fn new() -> QualityReport {
        QualityReport::default()
    }

    /// Appends one evaluated row.
    pub fn push(&mut self, row: QualityRow) {
        self.rows.push(row);
    }

    /// Renders the unified table. Scores print with three decimals — enough
    /// to compare, short enough to stay byte-stable across platforms (the
    /// underlying arithmetic is deterministic).
    pub fn render(&self) -> String {
        let mut table = Table::new([
            "pair",
            "algorithm",
            "|R|",
            "|P|",
            "|I|",
            "precision",
            "recall",
            "f1",
            "overall",
        ]);
        for row in &self.rows {
            let q = &row.quality;
            table.row([
                row.pair.clone(),
                row.algorithm.clone(),
                q.real().to_string(),
                q.predicted().to_string(),
                q.true_positives.to_string(),
                format!("{:.3}", q.precision),
                format!("{:.3}", q.recall),
                format!("{:.3}", q.f1()),
                format!("{:.3}", q.overall),
            ]);
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_xsd::SchemaTree;

    fn po_pair() -> (SchemaTree, SchemaTree) {
        let s = SchemaTree::from_labels(
            "PO",
            &[("PO", None), ("OrderNo", Some(0)), ("Quantity", Some(0))],
        );
        let t = SchemaTree::from_labels(
            "Order",
            &[("Order", None), ("OrderNo", Some(0)), ("Qty", Some(0))],
        );
        (s, t)
    }

    #[test]
    fn parse_gold_accepts_the_file_format() {
        let gold = parse_gold("g.tsv", "# header\nA/x\tB/y\n\nC/z\tD/w # ok\n").unwrap();
        assert_eq!(gold.len(), 2);
        assert!(gold.contains("A/x", "B/y"));
    }

    #[test]
    fn parse_gold_rejects_duplicates_with_file_and_line() {
        let err = parse_gold("g.tsv", "A/x\tB/y\nC/z\tD/w\nA/x\tB/y\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.file, "g.tsv");
        let msg = err.to_string();
        assert!(msg.starts_with("g.tsv:3:"), "{msg}");
        assert!(msg.contains("duplicate"), "{msg}");
    }

    #[test]
    fn parse_gold_reports_malformed_lines() {
        let err = parse_gold("bad.tsv", "no tab here\n").unwrap_err();
        assert_eq!((err.file.as_str(), err.line), ("bad.tsv", 1));
        let err = parse_gold("bad.tsv", "A/x\t   \n").unwrap_err();
        assert!(err.message.contains("empty path"));
    }

    #[test]
    fn default_thresholds_are_algorithm_specific() {
        let config = MatchConfig::default();
        let hybrid = default_threshold(&Algorithm::Hybrid, &config);
        assert!((hybrid - 0.78).abs() < 1e-9, "{hybrid}");
        assert_eq!(default_threshold(&Algorithm::Cupid, &config), 0.7);
        assert_eq!(default_threshold(&Algorithm::Linguistic, &config), 0.5);
        assert_eq!(default_threshold(&Algorithm::Structural, &config), 0.95);
        assert_eq!(default_threshold(&Algorithm::TreeEdit, &config), 0.5);
    }

    #[test]
    fn evaluate_algorithm_scores_a_perfect_self_match() {
        let (s, _) = po_pair();
        let session = MatchSession::new(MatchConfig::default());
        let (sp, tp) = (session.prepare(&s), session.prepare(&s));
        let gold = GoldStandard::from_pairs([
            ("PO", "PO"),
            ("PO/OrderNo", "PO/OrderNo"),
            ("PO/Quantity", "PO/Quantity"),
        ]);
        let row =
            evaluate_algorithm(&session, &Algorithm::Hybrid, "self", &sp, &tp, &gold).unwrap();
        assert_eq!(row.quality.recall, 1.0);
        assert_eq!(row.quality.precision, 1.0);
        assert_eq!(row.algorithm, "hybrid");
    }

    #[test]
    fn cupid_rows_are_leaf_anchored() {
        let (s, _) = po_pair();
        let session = MatchSession::new(MatchConfig::default());
        let (sp, tp) = (session.prepare(&s), session.prepare(&s));
        let out = session.run(&Algorithm::Cupid, &sp, &tp).unwrap();
        let mapping = extract_for(&Algorithm::Cupid, &session, &sp, &tp, &out.matrix);
        assert!(!mapping.is_empty());
        for c in &mapping.pairs {
            assert!(sp.is_leaf(c.source));
        }
    }

    #[test]
    fn report_renders_the_unified_schema() {
        let mut report = QualityReport::new();
        report.push(QualityRow {
            pair: "po1-po2".into(),
            algorithm: "hybrid".into(),
            threshold: 0.78,
            quality: crate::eval::from_counts(8, 1, 1),
        });
        let text = report.render();
        for col in ["pair", "algorithm", "|R|", "|P|", "|I|", "f1", "overall"] {
            assert!(text.contains(col), "missing column {col}:\n{text}");
        }
        assert!(text.contains("po1-po2"));
        assert!(text.contains("0.889"), "precision 8/9:\n{text}");
    }
}
