#![warn(missing_docs)]

//! The paper's contribution: the QoM match taxonomy, the weight-based match
//! model, and the QMatch hybrid algorithm, together with the standalone
//! linguistic and structural matchers it is evaluated against.
//!
//! # Architecture
//!
//! - [`taxonomy`] — the qualitative grades of §2 (exact/relaxed per axis,
//!   total/partial coverage, and their combination into match categories).
//! - [`model`] — the quantitative weight model of §3 (Equations 1–6) and
//!   [`model::MatchConfig`].
//! - [`props`] — property-axis comparison (type lattice, occurrence
//!   constraints, order, nillable/default/fixed).
//! - [`matrix`] — the dense node-pair similarity matrix all algorithms emit,
//!   in either storage precision ([`matrix::Precision`]).
//! - [`arena`] — the session-owned buffer pool ([`arena::MatchArena`])
//!   reusing matrix and kernel-scratch allocations across matches.
//! - [`diff`] — deterministic tree diff between two schema revisions: a
//!   typed edit script ([`diff::EditOp`]) plus per-node dirty/recompute
//!   sets ([`diff::TreeDiff`]).
//! - [`evolve`] — schema evolution over a diff: incremental re-prepare and
//!   incremental re-match ([`evolve::Rematch`]), bit-identical to the
//!   from-scratch paths (DESIGN.md §17).
//! - [`algorithms`] — the engines behind [`algorithms::Algorithm`]:
//!   linguistic, structural, hybrid (Figure 3), COMA-style composite, and a
//!   tree-edit-distance baseline
//!   ([`algorithms::tree_edit_match`], related work \[15\]).
//! - [`par`] — scoped-thread wave execution behind the `parallel` feature
//!   (on by default; `--no-default-features` builds run sequentially and
//!   produce bit-identical matrices).
//! - [`intern`] — the label interner ([`intern::Symbol`]): case-folding and
//!   tokenization happen once per distinct label.
//! - [`session`] — the prepare-once/match-many API
//!   ([`session::MatchSession`], [`session::PreparedSchema`]) with the
//!   cross-schema label cache; the one-shot functions above are thin
//!   wrappers over an ephemeral session.
//! - [`mapping`] — extraction of 1:1 correspondences from a matrix.
//! - [`trace`] — zero-dependency pipeline observability: [`trace::Span`]s
//!   per phase through a [`trace::TraceSink`] (see DESIGN.md §13).
//! - [`eval`] — Precision / Recall / Overall (§5).
//! - [`quality`] — the evaluation surface on top of [`eval`]: per-algorithm
//!   mapping extraction, typed gold-file parsing, and the unified quality
//!   report (DESIGN.md §18).
//! - [`tuning`] — the weight-determination sweep behind Table 2.
//! - [`report`] — plain-text tables for the experiment binaries.
//!
//! # Example
//!
//! ```
//! use qmatch_core::algorithms::Algorithm;
//! use qmatch_core::model::MatchConfig;
//! use qmatch_core::session::MatchSession;
//! use qmatch_xsd::SchemaTree;
//!
//! let library = SchemaTree::from_labels("Library", &[
//!     ("Library", None), ("Title", Some(0)), ("Book", Some(0)),
//!     ("number", Some(2)), ("character", Some(2)), ("Writer", Some(2)),
//! ]);
//! let session = MatchSession::new(MatchConfig::default());
//! let prepared = session.prepare(&library);
//! let outcome = session.run(&Algorithm::Hybrid, &prepared, &prepared).unwrap();
//! assert!((outcome.total_qom - 1.0).abs() < 1e-9, "self-match is total exact");
//! ```

pub mod algorithms;
pub mod arena;
pub mod diff;
pub mod eval;
pub mod evolve;
pub mod explain;
pub mod index;
pub mod intern;
pub mod mapping;
pub mod matrix;
pub mod model;
pub mod par;
pub mod props;
pub mod quality;
pub mod report;
pub mod session;
pub mod taxonomy;
pub mod trace;
pub mod tuning;

#[allow(deprecated)]
pub use algorithms::{
    composite_match, hybrid_match, hybrid_match_sequential, linguistic_match,
    mapping_generation_leaves, match_many, match_many_with, structural_match, tree_edit_match,
    Aggregation, Algorithm, Component, CompositeError, LabelMatrix, MatchOutcome,
};
pub use arena::{ArenaStats, MatchArena};
pub use diff::{EditCounts, EditOp, TreeDiff};
pub use eval::{evaluate, GoldStandard, MatchQuality};
pub use evolve::{Rematch, EVOLVE_FALLBACK_THRESHOLD};
pub use explain::{explain_pair, Explanation};
pub use index::{
    pair_is_candidate, CandidateSet, CorpusIndex, IndexParams, IndexPolicy, Signature,
};
pub use intern::{Interner, Symbol};
pub use mapping::{extract_mapping, select, Correspondence, Mapping, Selection};
pub use matrix::{MatrixIndexError, Precision, SimMatrix};
pub use model::{ConfigError, CupidParams, LexiconMode, MatchConfig, MatchConfigBuilder, Weights};
pub use quality::{
    default_threshold, evaluate_algorithm, parse_gold, GoldParseError, QualityReport, QualityRow,
};
pub use session::{CacheStats, MatchSession, OwnedPreparedSchema, PreparedSchema};
pub use taxonomy::{AxisGrade, CoverageGrade, MatchCategory};
pub use trace::{NullSink, Phase, PhaseStats, Recorder, Span, Trace, TraceSink};
