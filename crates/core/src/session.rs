//! The prepare-once/match-many session architecture.
//!
//! The matching engines consume per-schema facts — labels, tokens, wave
//! schedules, leaf partitions, property profiles — that are pure functions
//! of the [`SchemaTree`]. Recomputing them on every `match` call is wasted
//! work in exactly the workload the ROADMAP targets: one schema matched
//! against a whole corpus, repeatedly. This module splits that work at a
//! hard boundary:
//!
//! - [`MatchSession::prepare`] builds a [`PreparedSchema`] once per tree:
//!   interned [`Symbol`]s and case-folded labels, [`tokenize`] output per
//!   distinct label, the bottom-up and top-down wave schedules, the
//!   leaf/internal partition, and the per-node property profile.
//! - [`MatchSession::match_pair`] (and the per-algorithm variants) run the
//!   engines over two prepared schemas, touching only integer indices and
//!   precomputed tables.
//!
//! The session also owns the cross-schema label cache: every distinct
//! `(Symbol, Symbol)` pair is compared at most once per session, so the
//! cache survives across pairs of a corpus — generalizing the per-pair
//! [`LabelMatrix`] precomputation. Cached entries are pure functions of the
//! two labels and the matcher, so cached and freshly computed runs are
//! bit-identical (property-tested in `tests/session_equivalence.rs`).
//!
//! [`tokenize`]: qmatch_lexicon::tokenize()

use crate::algorithms::{
    composite_match_impl, cupid_match_impl, hybrid_match_impl, linguistic_match_impl,
    matcher_for_mode, root_category_with_label, structural_match_impl, tree_edit_match,
    use_parallel, Aggregation, Algorithm, Component, CompositeError, LabelMatrix, MatchOutcome,
};
use crate::arena::{ArenaStats, MatchArena};
use crate::explain::{explain_with_label, Explanation};
use crate::intern::{Interner, Symbol};
use crate::mapping::{extract_mapping, Mapping};
use crate::matrix::{Precision, SimMatrix};
use crate::model::{LexiconMode, MatchConfig};
use crate::par;
use crate::taxonomy::MatchCategory;
use crate::trace::{Phase, Span, Trace, TraceSink};
use qmatch_lexicon::name_match::{LabelGrade, NameMatch, NameMatcher};
use qmatch_lexicon::tokenize::Token;
use qmatch_xsd::{NodeId, Properties, SchemaTree};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Everything the engines need from one schema, derived once.
///
/// Borrowing the tree keeps preparation allocation-light; the artifacts are
/// dense tables indexed by [`NodeId::index`], so the match hot path does no
/// hashing and no string work.
pub struct PreparedSchema<'t> {
    pub(crate) tree: &'t SchemaTree,
    /// Per-node interned label (session-global symbol).
    pub(crate) symbols: Vec<Symbol>,
    /// Distinct symbols of this tree in first-seen (pre-order) order.
    pub(crate) distinct: Vec<Symbol>,
    /// Per-node index into `distinct` (the tree-local dense label id).
    pub(crate) node_distinct: Vec<u32>,
    /// Case-folded form per distinct label (owned copy from the interner).
    pub(crate) distinct_folded: Vec<String>,
    /// Token sequence per distinct label (owned copy from the interner).
    pub(crate) distinct_tokens: Vec<Vec<Token>>,
    /// Bottom-up wave schedule: wave `k` holds the nodes of height `k`.
    pub(crate) waves_height: Vec<Vec<NodeId>>,
    /// Top-down wave schedule: wave `k` holds the nodes at level `k`.
    pub(crate) waves_depth: Vec<Vec<NodeId>>,
    /// Dense per-node nesting levels.
    pub(crate) levels: Vec<u32>,
    /// Dense per-node leaf flags.
    pub(crate) leaf_flags: Vec<bool>,
    /// The leaf partition (pre-order).
    pub(crate) leaves: Vec<NodeId>,
    /// The internal-node partition (pre-order).
    pub(crate) internals: Vec<NodeId>,
    /// Per-node property profile (dense pointer table into the tree).
    pub(crate) props: Vec<&'t Properties>,
    /// Per-node parent index (`u32::MAX` for the root).
    pub(crate) parents: Vec<u32>,
    /// Per-node index into `distinct_props` (the tree-local dense property
    /// profile id) — lets the kernels score properties once per distinct
    /// profile pair instead of once per node pair.
    pub(crate) node_props: Vec<u32>,
    /// Distinct property profiles in first-seen (pre-order) order.
    pub(crate) distinct_props: Vec<&'t Properties>,
}

impl<'t> PreparedSchema<'t> {
    /// The underlying tree.
    pub fn tree(&self) -> &'t SchemaTree {
        self.tree
    }

    /// The interned symbol of a node's label.
    pub fn symbol(&self, id: NodeId) -> Symbol {
        self.symbols[id.index()]
    }

    /// Number of distinct labels in this tree.
    pub fn distinct_labels(&self) -> usize {
        self.distinct.len()
    }

    /// The leaf nodes, in pre-order.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// The internal (non-leaf) nodes, in pre-order.
    pub fn internals(&self) -> &[NodeId] {
        &self.internals
    }

    /// Whether a node is a leaf (dense lookup).
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.leaf_flags[id.index()]
    }

    /// A node's nesting level (dense lookup).
    #[inline]
    pub fn level(&self, id: NodeId) -> u32 {
        self.levels[id.index()]
    }

    /// A node's property profile (dense lookup).
    #[inline]
    pub fn props(&self, id: NodeId) -> &'t Properties {
        self.props[id.index()]
    }

    /// Case-folded form of each distinct label, in first-seen (pre-order)
    /// order — the label set the candidate index signs.
    pub fn distinct_folded(&self) -> &[String] {
        &self.distinct_folded
    }

    /// Token sequence per distinct label, parallel to
    /// [`PreparedSchema::distinct_folded`].
    pub fn distinct_tokens(&self) -> &[Vec<Token>] {
        &self.distinct_tokens
    }

    pub(crate) fn waves_by_height(&self) -> &[Vec<NodeId>] {
        &self.waves_height
    }

    pub(crate) fn waves_by_depth(&self) -> &[Vec<NodeId>] {
        &self.waves_depth
    }

    /// Dense per-node nesting levels (kernel fast path).
    pub(crate) fn levels_raw(&self) -> &[u32] {
        &self.levels
    }

    /// Dense per-node leaf flags (kernel fast path).
    pub(crate) fn leaf_flags_raw(&self) -> &[bool] {
        &self.leaf_flags
    }

    /// Per-node parent index, `u32::MAX` for the root.
    pub(crate) fn parents_raw(&self) -> &[u32] {
        &self.parents
    }

    /// Per-node dense distinct-property-profile id.
    pub(crate) fn node_props_raw(&self) -> &[u32] {
        &self.node_props
    }

    /// Distinct property profiles, indexed by the ids in
    /// [`PreparedSchema::node_props_raw`].
    pub(crate) fn distinct_props_raw(&self) -> &[&'t Properties] {
        &self.distinct_props
    }

    /// Test support: asserts every derived table of `self` equals `other`'s,
    /// naming the first differing table. Pins the incremental re-prepare
    /// ([`MatchSession::reprepare`]) to the from-scratch
    /// [`MatchSession::prepare`] in property tests; not part of the stable
    /// API surface.
    #[doc(hidden)]
    pub fn assert_structural_eq(&self, other: &PreparedSchema<'_>) {
        assert_eq!(self.tree.len(), other.tree.len(), "tree length");
        assert_eq!(self.symbols, other.symbols, "symbols");
        assert_eq!(self.distinct, other.distinct, "distinct symbols");
        assert_eq!(self.node_distinct, other.node_distinct, "node_distinct");
        assert_eq!(self.distinct_folded, other.distinct_folded, "folded labels");
        assert_eq!(self.distinct_tokens, other.distinct_tokens, "tokens");
        assert_eq!(self.waves_height, other.waves_height, "waves_by_height");
        assert_eq!(self.waves_depth, other.waves_depth, "waves_by_depth");
        assert_eq!(self.levels, other.levels, "levels");
        assert_eq!(self.leaf_flags, other.leaf_flags, "leaf_flags");
        assert_eq!(self.leaves, other.leaves, "leaves");
        assert_eq!(self.internals, other.internals, "internals");
        assert_eq!(self.parents, other.parents, "parents");
        assert_eq!(self.node_props, other.node_props, "node_props");
        assert_eq!(self.props, other.props, "props");
        assert_eq!(self.distinct_props, other.distinct_props, "distinct_props");
    }
}

/// A [`PreparedSchema`] that keeps its [`SchemaTree`] alive through an
/// [`Arc`], so it has no outward lifetime and can live in long-lived
/// registries shared across worker threads (the serving workload).
///
/// Constructed by [`MatchSession::prepare_owned`]; borrow the engine-facing
/// view with [`OwnedPreparedSchema::prepared`].
pub struct OwnedPreparedSchema {
    /// Internally borrows from the `Arc` allocation in `tree` below. The
    /// `'static` lifetime is a private fiction: it never escapes this
    /// struct (`prepared()` re-shortens it to the borrow of `self`), and
    /// the field order makes the borrower drop before the owner.
    prepared: PreparedSchema<'static>,
    tree: Arc<SchemaTree>,
}

impl OwnedPreparedSchema {
    /// The engine-facing prepared view, borrowed no longer than `self`.
    pub fn prepared(&self) -> &PreparedSchema<'_> {
        // Covariance over the tree lifetime shortens `'static` to the
        // lifetime of `&self`, so callers can never outlive the `Arc`.
        &self.prepared
    }

    /// The shared tree this prepared schema keeps alive.
    pub fn tree_arc(&self) -> &Arc<SchemaTree> {
        &self.tree
    }

    /// Assembles an owned prepared schema from a prepared view borrowing the
    /// `Arc` allocation of `tree`. Upholds the same invariant as
    /// [`MatchSession::prepare_owned`]: `prepared` must have been built from
    /// a `&'static SchemaTree` fabricated from this very `Arc`.
    pub(crate) fn from_raw_parts(
        prepared: PreparedSchema<'static>,
        tree: Arc<SchemaTree>,
    ) -> OwnedPreparedSchema {
        OwnedPreparedSchema { prepared, tree }
    }
}

// Compile-time proof that the session types can be shared across worker
// threads: a serving registry holds one `MatchSession` plus prepared
// schemas behind `RwLock`/`Arc`, and that is only sound if these stay
// `Send + Sync` (no `Rc`, no un-synchronized interior mutability).
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MatchSession>();
    assert_send_sync::<PreparedSchema<'static>>();
    assert_send_sync::<OwnedPreparedSchema>();
    assert_send_sync::<CacheStats>();
};

/// Hit/miss counters of the session's cross-schema label cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Distinct-label-pair lookups answered from the cache.
    pub hits: u64,
    /// Distinct-label-pair lookups that had to run the linguistic matcher.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0.0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A long-lived matching context: configuration, the name matcher (with its
/// thesaurus), the label interner, and the cross-schema label cache.
///
/// ```
/// use qmatch_core::session::MatchSession;
/// use qmatch_core::model::MatchConfig;
/// use qmatch_xsd::SchemaTree;
///
/// let session = MatchSession::new(MatchConfig::default());
/// let a = SchemaTree::from_labels("a", &[("a", None), ("OrderNo", Some(0))]);
/// let b = SchemaTree::from_labels("b", &[("b", None), ("OrderNo", Some(0))]);
/// let (pa, pb) = (session.prepare(&a), session.prepare(&b));
/// let outcome = session.match_pair(&pa, &pb);
/// assert!(outcome.total_qom > 0.0);
/// // Prepared schemas are reusable: match again, labels come from cache.
/// let again = session.match_pair(&pa, &pb);
/// assert_eq!(outcome.matrix, again.matrix);
/// ```
pub struct MatchSession {
    config: MatchConfig,
    matcher: NameMatcher,
    interner: Mutex<Interner>,
    /// `(Symbol, Symbol) -> NameMatch`, shared across every pair matched in
    /// this session.
    labels: Mutex<HashMap<(u32, u32), NameMatch>>,
    hits: AtomicU64,
    misses: AtomicU64,
    trace: Trace,
    /// Pooled matrix/scratch buffers reused across matches (see
    /// [`MatchArena`]).
    arena: MatchArena,
}

impl MatchSession {
    /// A session with the standard matcher for the config's lexicon mode
    /// (the built-in thesaurus under [`LexiconMode::Full`], an empty one
    /// otherwise).
    pub fn new(config: MatchConfig) -> MatchSession {
        MatchSession::with_matcher(config, matcher_for_mode(config.lexicon))
    }

    /// A session over a caller-supplied matcher (custom thesaurus).
    pub fn with_matcher(config: MatchConfig, matcher: NameMatcher) -> MatchSession {
        MatchSession {
            config,
            matcher,
            interner: Mutex::new(Interner::new()),
            labels: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            trace: Trace::disabled(),
            arena: MatchArena::default(),
        }
    }

    /// Installs a [`TraceSink`]: every subsequent prepare/match/selection
    /// through this session emits per-phase [`Span`]s into it. Tracing only
    /// observes — scores are bit-identical with and without a sink.
    ///
    /// Takes `&mut self` so a sink can only be (re)wired before the session
    /// is shared; a running session's trace handle is immutable.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.trace = Trace::new(sink);
    }

    /// The session's trace handle, for callers that emit their own spans
    /// around session work (e.g. a server's request loop).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The session's configuration.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The session's name matcher.
    pub fn matcher(&self) -> &NameMatcher {
        &self.matcher
    }

    /// Reuse/allocation counters of the session's buffer arena.
    pub fn arena_stats(&self) -> ArenaStats {
        self.arena.stats()
    }

    /// The session's buffer arena (for the evolve engine, which drives the
    /// kernels directly).
    pub(crate) fn arena(&self) -> &MatchArena {
        &self.arena
    }

    /// The session's label interner (for the incremental re-prepare).
    pub(crate) fn interner(&self) -> &Mutex<Interner> {
        &self.interner
    }

    /// Returns a finished outcome's matrix buffer to the session arena so a
    /// later match of compatible precision can reuse it without allocating
    /// or re-zeroing. Purely an optimization — recycling never changes
    /// scores (property-tested: warm arena == cold arena, bit-identical).
    pub fn recycle(&self, outcome: MatchOutcome) {
        self.arena.put_matrix(outcome.matrix);
    }

    /// Cross-schema label-cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Derives every per-schema artifact the engines consume. Labels seen in
    /// earlier `prepare` calls reuse their interned fold/tokenize work.
    pub fn prepare<'t>(&self, tree: &'t SchemaTree) -> PreparedSchema<'t> {
        let t0 = self.trace.start();
        let mut symbols = Vec::with_capacity(tree.len());
        let mut distinct: Vec<Symbol> = Vec::new();
        let mut node_distinct = Vec::with_capacity(tree.len());
        let mut distinct_folded: Vec<String> = Vec::new();
        let mut distinct_tokens: Vec<Vec<Token>> = Vec::new();
        {
            let mut interner = self.interner.lock().expect("interner lock");
            // Tree-local dense ids in first-seen order, exactly as the
            // per-pair interning did, so the label table layout (and thus
            // every downstream float) is unchanged.
            let mut local: HashMap<Symbol, u32> = HashMap::new();
            for (_, node) in tree.iter() {
                let symbol = interner.intern(&node.label);
                symbols.push(symbol);
                let next = local.len() as u32;
                let id = *local.entry(symbol).or_insert(next);
                if id == next {
                    distinct.push(symbol);
                    distinct_folded.push(interner.folded(symbol).to_owned());
                    distinct_tokens.push(interner.tokens(symbol).to_vec());
                }
                node_distinct.push(id);
            }
        }
        let levels = tree.levels();
        let leaf_flags = tree.leaf_flags();
        let mut leaves = Vec::new();
        let mut internals = Vec::new();
        for (id, _) in tree.iter() {
            if leaf_flags[id.index()] {
                leaves.push(id);
            } else {
                internals.push(id);
            }
        }
        // Dense parent table (u32::MAX marks the root) and the distinct
        // property-profile dedup: properties scoring is a pure function of
        // the two profiles, so the kernels only score distinct pairs.
        let mut parents = Vec::with_capacity(tree.len());
        let mut node_props = Vec::with_capacity(tree.len());
        let mut distinct_props: Vec<&'t Properties> = Vec::new();
        let mut props_ids: HashMap<&'t Properties, u32> = HashMap::new();
        for (_, node) in tree.iter() {
            parents.push(node.parent.map_or(u32::MAX, |p| p.0));
            let next = props_ids.len() as u32;
            let id = *props_ids.entry(&node.properties).or_insert(next);
            if id == next {
                distinct_props.push(&node.properties);
            }
            node_props.push(id);
        }
        let prepared = PreparedSchema {
            tree,
            symbols,
            distinct,
            node_distinct,
            distinct_folded,
            distinct_tokens,
            waves_height: crate::algorithms::waves_by_height(tree),
            waves_depth: crate::algorithms::waves_by_depth(tree),
            levels,
            leaf_flags,
            leaves,
            internals,
            props: tree.iter().map(|(_, n)| &n.properties).collect(),
            parents,
            node_props,
            distinct_props,
        };
        self.trace.finish(
            t0,
            Span {
                rows: tree.len() as u64,
                cells: prepared.distinct.len() as u64,
                ..Span::empty(Phase::Prepare)
            },
        );
        prepared
    }

    /// Like [`MatchSession::prepare`], but the result owns the tree (via
    /// the `Arc`) instead of borrowing it, so it can be stored in a
    /// registry and shared across threads for the prepare-once/serve-many
    /// workload. Bit-identical to preparing the same tree by reference.
    pub fn prepare_owned(&self, tree: Arc<SchemaTree>) -> OwnedPreparedSchema {
        // SAFETY: the reference produced here points into the `Arc`
        // allocation, which is immutable (shared `Arc` contents are never
        // handed out mutably) and stays at a stable address for as long as
        // any clone of the `Arc` exists. The returned `OwnedPreparedSchema`
        // stores such a clone alongside the borrowing `PreparedSchema` and
        // only ever re-exposes it at the shorter lifetime of `&self`, so
        // the fabricated `'static` cannot be observed after the tree drops.
        let raw: &'static SchemaTree = unsafe { &*Arc::as_ptr(&tree) };
        let prepared = self.prepare(raw);
        OwnedPreparedSchema { prepared, tree }
    }

    /// Runs the QMatch hybrid algorithm over two prepared schemas — the
    /// session's default match operation.
    pub fn match_pair(&self, source: &PreparedSchema, target: &PreparedSchema) -> MatchOutcome {
        self.hybrid(source, target)
    }

    /// Runs any [`Algorithm`] over two prepared schemas — the consolidated
    /// v1 entry point replacing the per-algorithm free functions.
    ///
    /// Only [`Algorithm::Composite`] can fail (empty component list or
    /// mismatched weights); the other variants always return `Ok`.
    ///
    /// ```
    /// use qmatch_core::algorithms::Algorithm;
    /// use qmatch_core::model::MatchConfig;
    /// use qmatch_core::session::MatchSession;
    /// use qmatch_xsd::SchemaTree;
    ///
    /// let session = MatchSession::new(MatchConfig::default());
    /// let tree = SchemaTree::from_labels("a", &[("a", None), ("b", Some(0))]);
    /// let p = session.prepare(&tree);
    /// let outcome = session.run(&Algorithm::Hybrid, &p, &p).unwrap();
    /// assert!((outcome.total_qom - 1.0).abs() < 1e-9);
    /// ```
    pub fn run(
        &self,
        algorithm: &Algorithm,
        source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> Result<MatchOutcome, CompositeError> {
        self.run_with_precision(algorithm, source, target, self.config.precision)
    }

    /// [`MatchSession::run`] with a per-call storage-[`Precision`] override
    /// (the `precision=` query parameter of `/v1/match*`). The config's
    /// precision is untouched; only this call's matrix storage changes.
    ///
    /// The hybrid, linguistic, and structural kernels store in the requested
    /// precision natively; tree-edit and composite compute in `f64` and
    /// convert the finished matrix (identical rounding semantics: one
    /// nearest-`f32` round per cell).
    pub fn run_with_precision(
        &self,
        algorithm: &Algorithm,
        source: &PreparedSchema,
        target: &PreparedSchema,
        precision: Precision,
    ) -> Result<MatchOutcome, CompositeError> {
        match algorithm {
            Algorithm::Hybrid => Ok(self.hybrid_with(source, target, true, precision)),
            Algorithm::Linguistic => Ok(self.linguistic_with(source, target, true, precision)),
            Algorithm::Structural => Ok(self.structural_with(source, target, true, precision)),
            Algorithm::Cupid => Ok(self.cupid_with(source, target, true, precision)),
            Algorithm::TreeEdit => Ok(convert_outcome(
                tree_edit_match(source.tree(), target.tree(), &self.config),
                precision,
            )),
            Algorithm::Composite {
                components,
                aggregation,
            } => self
                .composite(source, target, components, aggregation)
                .map(|outcome| convert_outcome(outcome, precision)),
        }
    }

    /// [`MatchSession::run`] pinned to the sequential engines (bit-identical
    /// results; for determinism comparisons and single-thread baselines).
    /// [`Algorithm::Composite`] components keep their own scheduling — there
    /// is no sequential composite variant.
    pub fn run_sequential(
        &self,
        algorithm: &Algorithm,
        source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> Result<MatchOutcome, CompositeError> {
        match algorithm {
            Algorithm::Hybrid => Ok(self.hybrid_sequential(source, target)),
            Algorithm::Linguistic => Ok(self.linguistic_sequential(source, target)),
            Algorithm::Structural => Ok(self.structural_sequential(source, target)),
            Algorithm::Cupid => Ok(self.cupid_sequential(source, target)),
            other => self.run(other, source, target),
        }
    }

    /// The hybrid (QMatch) engine; parallel wavefront when worthwhile.
    pub fn hybrid(&self, source: &PreparedSchema, target: &PreparedSchema) -> MatchOutcome {
        self.hybrid_with(source, target, true, self.config.precision)
    }

    /// The hybrid engine, always sequential (bit-identical to
    /// [`MatchSession::hybrid`]).
    pub fn hybrid_sequential(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> MatchOutcome {
        self.hybrid_with(source, target, false, self.config.precision)
    }

    pub(crate) fn hybrid_with(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
        parallel: bool,
        precision: Precision,
    ) -> MatchOutcome {
        let labels = self.pair_labels(source, target);
        hybrid_match_impl(
            source,
            target,
            &self.config,
            &labels,
            parallel && use_parallel(source.tree(), target.tree()),
            &self.trace,
            &self.arena,
            precision,
        )
    }

    /// The flat linguistic matcher over prepared schemas.
    pub fn linguistic(&self, source: &PreparedSchema, target: &PreparedSchema) -> MatchOutcome {
        self.linguistic_with(source, target, true, self.config.precision)
    }

    /// The linguistic matcher, always sequential.
    pub fn linguistic_sequential(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> MatchOutcome {
        self.linguistic_with(source, target, false, self.config.precision)
    }

    fn linguistic_with(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
        parallel: bool,
        precision: Precision,
    ) -> MatchOutcome {
        let labels = self.pair_labels(source, target);
        linguistic_match_impl(
            source,
            target,
            &labels,
            parallel && use_parallel(source.tree(), target.tree()),
            &self.trace,
            &self.arena,
            precision,
        )
    }

    /// The full-fidelity CUPID engine ([`Algorithm::Cupid`]): similarity
    /// propagation over the prepared leaf sets, sharing the session label
    /// cache with the other engines.
    pub fn cupid(&self, source: &PreparedSchema, target: &PreparedSchema) -> MatchOutcome {
        self.cupid_with(source, target, true, self.config.precision)
    }

    /// The CUPID engine, always sequential (bit-identical to
    /// [`MatchSession::cupid`]).
    pub fn cupid_sequential(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> MatchOutcome {
        self.cupid_with(source, target, false, self.config.precision)
    }

    fn cupid_with(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
        parallel: bool,
        precision: Precision,
    ) -> MatchOutcome {
        let labels = self.pair_labels(source, target);
        cupid_match_impl(
            source,
            target,
            self.config.cupid,
            &labels,
            parallel && use_parallel(source.tree(), target.tree()),
            &self.trace,
            &self.arena,
            precision,
        )
    }

    /// The structural matcher over prepared schemas (labels unused — no
    /// cache traffic).
    pub fn structural(&self, source: &PreparedSchema, target: &PreparedSchema) -> MatchOutcome {
        self.structural_with(source, target, true, self.config.precision)
    }

    /// The structural matcher, always sequential.
    pub fn structural_sequential(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> MatchOutcome {
        self.structural_with(source, target, false, self.config.precision)
    }

    fn structural_with(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
        parallel: bool,
        precision: Precision,
    ) -> MatchOutcome {
        structural_match_impl(
            source,
            target,
            &self.config,
            parallel && use_parallel(source.tree(), target.tree()),
            &self.trace,
            &self.arena,
            precision,
        )
    }

    /// Extracts the 1:1 mapping from a finished similarity matrix at
    /// `threshold`, recording a [`Phase::Select`] span. Identical to
    /// [`extract_mapping`] — selection is deterministic and tracing only
    /// observes.
    pub fn select_mapping(&self, matrix: &SimMatrix, threshold: f64) -> Mapping {
        let t0 = self.trace.start();
        let mapping = extract_mapping(matrix, threshold);
        self.trace.finish(
            t0,
            Span {
                rows: matrix.rows() as u64,
                cells: (matrix.rows() * matrix.cols()) as u64,
                ..Span::empty(Phase::Select)
            },
        );
        mapping
    }

    /// COMA-style composite matching over prepared schemas; component
    /// matchers share this session's label cache.
    pub fn composite(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
        components: &[Component],
        aggregation: &Aggregation,
    ) -> Result<MatchOutcome, CompositeError> {
        composite_match_impl(self, source, target, components, aggregation)
    }

    /// Batch matching: the hybrid engine over every pair, parallel over the
    /// pairs with the `parallel` feature, outcomes in input order. Prepared
    /// schemas may repeat across pairs — that is the point.
    pub fn match_corpus(&self, pairs: &[(&PreparedSchema, &PreparedSchema)]) -> Vec<MatchOutcome> {
        par::map_rows(pairs.len(), cfg!(feature = "parallel"), |i| {
            let (source, target) = pairs[i];
            self.hybrid(source, target)
        })
    }

    /// Classifies the root pair on the paper's qualitative taxonomy (§2.2)
    /// from an existing hybrid outcome; the root-label comparison comes from
    /// the session cache.
    pub fn category(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
        outcome: &MatchOutcome,
    ) -> MatchCategory {
        let name = self.label_match(
            source,
            source.tree().root_id(),
            target,
            target.tree().root_id(),
        );
        root_category_with_label(
            source.tree(),
            target.tree(),
            &self.config,
            outcome,
            name.grade,
        )
    }

    /// Explains one node pair against an already-computed hybrid matrix,
    /// with the label axis served from the session cache.
    pub fn explain(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
        s: NodeId,
        t: NodeId,
        matrix: &SimMatrix,
    ) -> Explanation {
        let name = self.label_match(source, s, target, t);
        explain_with_label(
            source.tree(),
            target.tree(),
            s,
            t,
            &self.config,
            matrix,
            name,
        )
    }

    /// The label comparison for one node pair, through the session cache.
    pub fn label_match(
        &self,
        source: &PreparedSchema,
        s: NodeId,
        target: &PreparedSchema,
        t: NodeId,
    ) -> NameMatch {
        let i = source.node_distinct[s.index()] as usize;
        let j = target.node_distinct[t.index()] as usize;
        let key = (source.distinct[i].0, target.distinct[j].0);
        if let Some(&hit) = self.labels.lock().expect("label cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let computed = self.compare_distinct(source, i, target, j);
        self.labels
            .lock()
            .expect("label cache lock")
            .insert(key, computed);
        computed
    }

    /// Builds the dense per-pair label table from the session cache,
    /// computing (and caching) only the distinct pairs not seen before.
    pub(crate) fn pair_labels(
        &self,
        source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> LabelMatrix {
        let t0 = self.trace.start();
        let rows = source.distinct.len();
        let cols = target.distinct.len();
        let mut table: Vec<Option<NameMatch>> = Vec::with_capacity(rows * cols);
        let mut missing: Vec<usize> = Vec::new();
        {
            let cache = self.labels.lock().expect("label cache lock");
            for i in 0..rows {
                for j in 0..cols {
                    let key = (source.distinct[i].0, target.distinct[j].0);
                    match cache.get(&key) {
                        Some(&hit) => table.push(Some(hit)),
                        None => {
                            missing.push(i * cols + j);
                            table.push(None);
                        }
                    }
                }
            }
        }
        let miss_count = missing.len() as u64;
        self.hits
            .fetch_add(rows as u64 * cols as u64 - miss_count, Ordering::Relaxed);
        self.misses.fetch_add(miss_count, Ordering::Relaxed);
        if !missing.is_empty() {
            // Misses are pure label comparisons — safe to fan out; the
            // values are identical however they are scheduled.
            let parallel = cfg!(feature = "parallel") && missing.len() >= par::PAR_CELL_THRESHOLD;
            let computed: Vec<NameMatch> = par::map_rows(missing.len(), parallel, |k| {
                let idx = missing[k];
                self.compare_distinct(source, idx / cols, target, idx % cols)
            });
            let mut cache = self.labels.lock().expect("label cache lock");
            for (k, &idx) in missing.iter().enumerate() {
                let (i, j) = (idx / cols, idx % cols);
                cache.insert((source.distinct[i].0, target.distinct[j].0), computed[k]);
                table[idx] = Some(computed[k]);
            }
        }
        let matrix = LabelMatrix::from_parts(
            source.node_distinct.clone(),
            target.node_distinct.clone(),
            cols,
            table
                .into_iter()
                .map(|m| m.expect("table filled"))
                .collect(),
        );
        self.trace.finish(
            t0,
            Span {
                rows: rows as u64,
                cells: (rows * cols) as u64,
                cache_hits: rows as u64 * cols as u64 - miss_count,
                cache_misses: miss_count,
                ..Span::empty(Phase::Labels)
            },
        );
        matrix
    }

    /// The dense label matrix for a prepared pair — the reusable artifact
    /// [`MatchSession::rematch_evolved`] copies forward across revisions.
    pub fn label_matrix(&self, source: &PreparedSchema, target: &PreparedSchema) -> LabelMatrix {
        self.pair_labels(source, target)
    }

    /// Builds the label matrix for `(new_source, target)` by reusing
    /// `old_labels` — the matrix previously built for `(old_source,
    /// target)` in this session. Distinct labels present in both revisions
    /// copy their comparison row wholesale (label comparisons are pure in
    /// the symbol pair, so the copied row is bit-identical to a recompute);
    /// only the new revision's fresh labels go through the cache/compare
    /// path. Returns `None` when `old_labels` does not line up with
    /// `old_source`/`target`, in which case the caller must fall back to
    /// [`MatchSession::pair_labels`].
    pub(crate) fn pair_labels_evolved(
        &self,
        old_source: &PreparedSchema,
        old_labels: &LabelMatrix,
        new_source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> Option<LabelMatrix> {
        let rows = new_source.distinct.len();
        let cols = target.distinct.len();
        if old_labels.distinct_cols_raw() != cols
            || old_labels.distinct_rows_raw() != old_source.distinct.len()
        {
            return None;
        }
        let t0 = self.trace.start();
        let old_row: HashMap<Symbol, usize> = old_source
            .distinct
            .iter()
            .enumerate()
            .map(|(i, &symbol)| (symbol, i))
            .collect();
        let placeholder = NameMatch {
            grade: LabelGrade::None,
            score: 0.0,
        };
        let mut table: Vec<NameMatch> = Vec::with_capacity(rows * cols);
        let mut fresh: Vec<usize> = Vec::new();
        for i in 0..rows {
            match old_row.get(&new_source.distinct[i]) {
                Some(&old_i) => table.extend_from_slice(old_labels.distinct_row_raw(old_i)),
                None => {
                    fresh.push(i);
                    table.resize(table.len() + cols, placeholder);
                }
            }
        }
        let copied = (rows - fresh.len()) as u64 * cols as u64;
        let mut hit_count = 0u64;
        let mut miss_count = 0u64;
        for &i in &fresh {
            for j in 0..cols {
                let key = (new_source.distinct[i].0, target.distinct[j].0);
                let cached = self
                    .labels
                    .lock()
                    .expect("label cache lock")
                    .get(&key)
                    .copied();
                let value = match cached {
                    Some(hit) => {
                        hit_count += 1;
                        hit
                    }
                    None => {
                        miss_count += 1;
                        let computed = self.compare_distinct(new_source, i, target, j);
                        self.labels
                            .lock()
                            .expect("label cache lock")
                            .insert(key, computed);
                        computed
                    }
                };
                table[i * cols + j] = value;
            }
        }
        self.hits.fetch_add(hit_count, Ordering::Relaxed);
        self.misses.fetch_add(miss_count, Ordering::Relaxed);
        let matrix = LabelMatrix::from_parts(
            new_source.node_distinct.clone(),
            target.node_distinct.clone(),
            cols,
            table,
        );
        self.trace.finish(
            t0,
            Span {
                rows: rows as u64,
                cells: (rows * cols) as u64,
                skipped: copied,
                cache_hits: hit_count,
                cache_misses: miss_count,
                ..Span::empty(Phase::Labels)
            },
        );
        Some(matrix)
    }

    /// One distinct-label-pair comparison, off the prepared (pre-folded,
    /// pre-tokenized) forms — no per-call `to_lowercase`, no re-tokenizing.
    fn compare_distinct(
        &self,
        source: &PreparedSchema,
        i: usize,
        target: &PreparedSchema,
        j: usize,
    ) -> NameMatch {
        match self.config.lexicon {
            LexiconMode::ExactOnly => {
                if source.distinct_folded[i] == target.distinct_folded[j] {
                    NameMatch {
                        grade: LabelGrade::Exact,
                        score: 1.0,
                    }
                } else {
                    NameMatch {
                        grade: LabelGrade::None,
                        score: 0.0,
                    }
                }
            }
            LexiconMode::Full | LexiconMode::FuzzyOnly => self
                .matcher
                .compare_tokens(&source.distinct_tokens[i], &target.distinct_tokens[j]),
        }
    }
}

/// Converts an outcome's matrix storage to `precision` (no-op when it
/// already matches); used by the algorithms whose kernels compute in `f64`.
fn convert_outcome(outcome: MatchOutcome, precision: Precision) -> MatchOutcome {
    MatchOutcome {
        matrix: outcome.matrix.with_precision(precision),
        total_qom: outcome.total_qom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_xsd::SchemaTree;

    fn po() -> SchemaTree {
        SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
            ],
        )
    }

    fn purchase_order() -> SchemaTree {
        SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Items", Some(0)),
                ("Item", Some(2)),
                ("Qty", Some(2)),
            ],
        )
    }

    #[test]
    fn prepare_collects_the_artifacts() {
        let session = MatchSession::new(MatchConfig::default());
        let tree = po();
        let prepared = session.prepare(&tree);
        assert_eq!(prepared.distinct_labels(), 5);
        assert_eq!(prepared.leaves().len(), 3);
        assert_eq!(prepared.internals().len(), 2);
        assert!(prepared.is_leaf(NodeId(1)));
        assert!(!prepared.is_leaf(NodeId(2)));
        assert_eq!(prepared.level(NodeId(3)), 2);
        // Shared vocabulary across trees shares symbols.
        let other = purchase_order();
        let prepared2 = session.prepare(&other);
        assert_eq!(
            prepared.symbol(NodeId(1)),
            prepared2.symbol(NodeId(1)),
            "OrderNo interned once"
        );
        assert_ne!(prepared.symbol(NodeId(0)), prepared2.symbol(NodeId(0)));
    }

    #[test]
    fn cache_survives_across_pairs() {
        let session = MatchSession::new(MatchConfig::default());
        let (a, b) = (po(), purchase_order());
        let (pa, pb) = (session.prepare(&a), session.prepare(&b));
        let first = session.match_pair(&pa, &pb);
        let after_first = session.cache_stats();
        assert_eq!(after_first.hits, 0);
        assert_eq!(after_first.misses, 25, "5x5 distinct pairs computed once");
        let second = session.match_pair(&pa, &pb);
        let after_second = session.cache_stats();
        assert_eq!(after_second.misses, 25, "no new label work");
        assert_eq!(after_second.hits, 25);
        assert_eq!(first.matrix, second.matrix);
        assert!(after_second.hit_rate() > 0.49 && after_second.hit_rate() < 0.51);
    }

    #[test]
    fn label_match_agrees_with_pair_table() {
        let session = MatchSession::new(MatchConfig::default());
        let (a, b) = (po(), purchase_order());
        let (pa, pb) = (session.prepare(&a), session.prepare(&b));
        let table = session.pair_labels(&pa, &pb);
        for (sid, _) in a.iter() {
            for (tid, _) in b.iter() {
                assert_eq!(session.label_match(&pa, sid, &pb, tid), table.get(sid, tid));
            }
        }
    }

    #[test]
    fn category_and_explain_run_off_the_session() {
        let session = MatchSession::new(MatchConfig::default());
        let (a, b) = (po(), purchase_order());
        let (pa, pb) = (session.prepare(&a), session.prepare(&b));
        let outcome = session.match_pair(&pa, &pb);
        let category = session.category(&pa, &pb, &outcome);
        assert_eq!(
            category,
            crate::algorithms::hybrid_root_category_from(&a, &b, &MatchConfig::default(), &outcome)
        );
        let explanation = session.explain(&pa, &pb, a.root_id(), b.root_id(), &outcome.matrix);
        let direct = crate::explain::explain_with_matrix(
            &a,
            &b,
            a.root_id(),
            b.root_id(),
            &MatchConfig::default(),
            &outcome.matrix,
        );
        assert_eq!(explanation, direct);
    }

    #[test]
    fn match_corpus_reuses_prepared_schemas() {
        let session = MatchSession::new(MatchConfig::default());
        let (a, b) = (po(), purchase_order());
        let (pa, pb) = (session.prepare(&a), session.prepare(&b));
        let outcomes = session.match_corpus(&[(&pa, &pb), (&pa, &pa), (&pb, &pa)]);
        assert_eq!(outcomes.len(), 3);
        assert!((outcomes[1].total_qom - 1.0).abs() < 1e-9, "self-match");
        let single = session.hybrid(&pa, &pb);
        assert_eq!(outcomes[0].matrix, single.matrix);
    }

    #[test]
    fn prepare_owned_matches_borrowed_bit_for_bit() {
        let session = MatchSession::new(MatchConfig::default());
        let (a, b) = (po(), purchase_order());
        let (pa, pb) = (session.prepare(&a), session.prepare(&b));
        let expected = session.match_pair(&pa, &pb);
        let oa = session.prepare_owned(Arc::new(po()));
        let ob = session.prepare_owned(Arc::new(purchase_order()));
        let got = session.match_pair(oa.prepared(), ob.prepared());
        assert_eq!(expected.matrix, got.matrix);
        assert_eq!(expected.total_qom, got.total_qom);
        assert_eq!(oa.tree_arc().len(), 5);
    }

    #[test]
    fn owned_prepared_schemas_are_shareable_across_threads() {
        let session = Arc::new(MatchSession::new(MatchConfig::default()));
        let oa = Arc::new(session.prepare_owned(Arc::new(po())));
        let ob = Arc::new(session.prepare_owned(Arc::new(purchase_order())));
        let baseline = session.match_pair(oa.prepared(), ob.prepared());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (session, oa, ob) = (session.clone(), oa.clone(), ob.clone());
                std::thread::spawn(move || session.match_pair(oa.prepared(), ob.prepared()))
            })
            .collect();
        for h in handles {
            let outcome = h.join().expect("worker thread");
            assert_eq!(outcome.matrix, baseline.matrix);
        }
    }

    #[test]
    fn exact_only_mode_uses_prefolded_labels() {
        let config = MatchConfig {
            lexicon: LexiconMode::ExactOnly,
            ..MatchConfig::default()
        };
        let session = MatchSession::new(config);
        let a = SchemaTree::from_labels("writer", &[("writer", None)]);
        let b = SchemaTree::from_labels("WRITER", &[("WRITER", None)]);
        let (pa, pb) = (session.prepare(&a), session.prepare(&b));
        let m = session.label_match(&pa, NodeId(0), &pb, NodeId(0));
        assert_eq!(m.grade, LabelGrade::Exact);
        let c = SchemaTree::from_labels("Author", &[("Author", None)]);
        let pc = session.prepare(&c);
        assert_eq!(
            session.label_match(&pa, NodeId(0), &pc, NodeId(0)).grade,
            LabelGrade::None,
            "no thesaurus in exact-only mode"
        );
    }
}
