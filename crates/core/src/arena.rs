//! Buffer pooling across matches: the [`MatchArena`].
//!
//! The dominant allocation of a match is the dense similarity matrix —
//! ~775 MB of `f64` for the 9841-node bench pair — and a corpus workload
//! (`match_corpus`, `/v1/match/topk`) used to allocate *and zero* a fresh
//! one per pair. The arena, owned by
//! [`MatchSession`](crate::session::MatchSession), pools those buffers plus
//! the per-thread row scratch of the hybrid kernel:
//!
//! - matrix buffers are returned via
//!   [`MatchSession::recycle`](crate::session::MatchSession::recycle) once a
//!   caller is done with an outcome, and handed back **without re-zeroing**
//!   — sound because every engine commits every row/cell of the matrix it
//!   takes (the wavefront covers all source nodes; the flat engines write
//!   all rows; the combiner writes all cells), an invariant documented on
//!   `SimMatrix::from_storage`-based construction;
//! - row scratch (children-pass accumulators) cycles automatically inside
//!   the kernel, one lease per worker thread per wave.
//!
//! Pools are bounded (a handful of buffers) so a burst of concurrent
//! matches cannot hoard memory; excess buffers are simply dropped.

use crate::matrix::{MatrixData, Precision, SimMatrix};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Most buffers a pool retains; extra returns are dropped.
const MAX_POOLED_MATRICES: usize = 4;
/// Row-scratch sets retained (bounded by worker-thread count in practice).
const MAX_POOLED_SCRATCH: usize = 32;

/// Counters describing how often the arena served a buffer from its pool
/// versus allocating a fresh one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Matrix buffers served from the pool (no allocation, no zeroing).
    pub matrix_reuses: u64,
    /// Matrix buffers freshly allocated (pool empty or wrong precision).
    pub matrix_allocs: u64,
}

/// Per-thread scratch for the hybrid kernel's children pass. Contents are
/// *stale* between leases; the kernel fills every entry it reads.
#[derive(Default)]
pub(crate) struct RowScratch {
    /// Per-target running QoM sum of matched source children.
    pub qsum: Vec<f64>,
    /// Per-target matched-children count.
    pub mcnt: Vec<u32>,
    /// Per-target best child score this pass (−1.0 = no child cleared the
    /// threshold).
    pub band: Vec<f64>,
}

impl RowScratch {
    /// Ensures each buffer holds exactly `cols` entries (values stale).
    pub(crate) fn ensure_cols(&mut self, cols: usize) {
        self.qsum.resize(cols, 0.0);
        self.mcnt.resize(cols, 0);
        self.band.resize(cols, 0.0);
    }
}

/// The session-owned buffer pool. See the module docs for the lifecycle.
pub struct MatchArena {
    f64_pool: Mutex<Vec<Vec<f64>>>,
    f32_pool: Mutex<Vec<Vec<f32>>>,
    scratch_pool: Mutex<Vec<RowScratch>>,
    reuses: AtomicU64,
    allocs: AtomicU64,
}

impl Default for MatchArena {
    fn default() -> Self {
        MatchArena {
            f64_pool: Mutex::new(Vec::new()),
            f32_pool: Mutex::new(Vec::new()),
            scratch_pool: Mutex::new(Vec::new()),
            reuses: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for MatchArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("MatchArena")
            .field("matrix_reuses", &stats.matrix_reuses)
            .field("matrix_allocs", &stats.matrix_allocs)
            .finish()
    }
}

impl MatchArena {
    /// Reuse/allocation counters so far.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            matrix_reuses: self.reuses.load(Ordering::Relaxed),
            matrix_allocs: self.allocs.load(Ordering::Relaxed),
        }
    }

    /// A `rows × cols` matrix in the requested precision, from the pool when
    /// possible.
    ///
    /// A pooled buffer is resized without re-zeroing its retained prefix:
    /// the caller (an engine) **must overwrite every cell** before the
    /// matrix escapes. Freshly allocated buffers are zeroed by `vec!`.
    pub(crate) fn take_matrix(&self, rows: usize, cols: usize, precision: Precision) -> SimMatrix {
        let len = rows * cols;
        let data = match precision {
            Precision::F64 => {
                let pooled = self.f64_pool.lock().expect("arena pool lock").pop();
                MatrixData::F64(match pooled {
                    Some(buf) => {
                        self.reuses.fetch_add(1, Ordering::Relaxed);
                        resize_stale(buf, len, 0.0)
                    }
                    None => {
                        self.allocs.fetch_add(1, Ordering::Relaxed);
                        vec![0.0; len]
                    }
                })
            }
            Precision::F32 => {
                let pooled = self.f32_pool.lock().expect("arena pool lock").pop();
                MatrixData::F32(match pooled {
                    Some(buf) => {
                        self.reuses.fetch_add(1, Ordering::Relaxed);
                        resize_stale(buf, len, 0.0)
                    }
                    None => {
                        self.allocs.fetch_add(1, Ordering::Relaxed);
                        vec![0.0; len]
                    }
                })
            }
        };
        SimMatrix::from_storage(rows, cols, data)
    }

    /// Returns a matrix's buffer to the pool (dropped if the pool is full).
    pub(crate) fn put_matrix(&self, matrix: SimMatrix) {
        match matrix.into_storage() {
            MatrixData::F64(buf) => {
                let mut pool = self.f64_pool.lock().expect("arena pool lock");
                if pool.len() < MAX_POOLED_MATRICES {
                    pool.push(buf);
                }
            }
            MatrixData::F32(buf) => {
                let mut pool = self.f32_pool.lock().expect("arena pool lock");
                if pool.len() < MAX_POOLED_MATRICES {
                    pool.push(buf);
                }
            }
        }
    }

    /// One row-scratch set sized for `cols` targets (contents stale).
    pub(crate) fn take_scratch(&self, cols: usize) -> RowScratch {
        let mut scratch = self
            .scratch_pool
            .lock()
            .expect("arena scratch lock")
            .pop()
            .unwrap_or_default();
        scratch.ensure_cols(cols);
        scratch
    }

    /// Returns a row-scratch set to the pool.
    pub(crate) fn put_scratch(&self, scratch: RowScratch) {
        let mut pool = self.scratch_pool.lock().expect("arena scratch lock");
        if pool.len() < MAX_POOLED_SCRATCH {
            pool.push(scratch);
        }
    }
}

/// Resizes a recycled buffer to `len` entries. Only the *appended* region
/// (if any) is initialized; the retained prefix keeps its stale values —
/// see the caller contract on [`MatchArena::take_matrix`].
fn resize_stale<T: Copy>(mut buf: Vec<T>, len: usize, fill: T) -> Vec<T> {
    if buf.len() > len {
        buf.truncate(len);
    } else if buf.len() < len {
        buf.resize(len, fill);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_xsd::NodeId;

    #[test]
    fn take_is_zeroed_when_fresh_and_counts_allocs() {
        let arena = MatchArena::default();
        let m = arena.take_matrix(2, 2, Precision::F64);
        assert_eq!(m.get(NodeId(1), NodeId(1)), 0.0);
        assert_eq!(
            arena.stats(),
            ArenaStats {
                matrix_reuses: 0,
                matrix_allocs: 1
            }
        );
    }

    #[test]
    fn recycled_buffer_is_reused_without_rezeroing() {
        let arena = MatchArena::default();
        let mut m = arena.take_matrix(2, 2, Precision::F64);
        m.set(NodeId(0), NodeId(0), 0.75);
        arena.put_matrix(m);
        let again = arena.take_matrix(2, 2, Precision::F64);
        // The stale value is visible — engines must overwrite every cell.
        assert_eq!(again.get(NodeId(0), NodeId(0)), 0.75);
        assert_eq!(arena.stats().matrix_reuses, 1);
    }

    #[test]
    fn recycled_buffer_grows_with_zeroed_tail() {
        let arena = MatchArena::default();
        let mut m = arena.take_matrix(1, 2, Precision::F64);
        m.set(NodeId(0), NodeId(1), 0.5);
        arena.put_matrix(m);
        let bigger = arena.take_matrix(2, 2, Precision::F64);
        assert_eq!(bigger.get(NodeId(1), NodeId(1)), 0.0, "appended region");
        arena.put_matrix(bigger);
        let smaller = arena.take_matrix(1, 1, Precision::F64);
        assert_eq!(smaller.rows() * smaller.cols(), 1);
    }

    #[test]
    fn precisions_pool_separately() {
        let arena = MatchArena::default();
        let m64 = arena.take_matrix(2, 2, Precision::F64);
        arena.put_matrix(m64);
        let m32 = arena.take_matrix(2, 2, Precision::F32);
        assert_eq!(m32.precision(), Precision::F32);
        // The f64 buffer could not serve the f32 request.
        assert_eq!(arena.stats().matrix_allocs, 2);
        assert_eq!(arena.stats().matrix_reuses, 0);
    }

    #[test]
    fn pool_is_bounded() {
        let arena = MatchArena::default();
        let matrices: Vec<_> = (0..MAX_POOLED_MATRICES + 3)
            .map(|_| arena.take_matrix(1, 1, Precision::F64))
            .collect();
        for m in matrices {
            arena.put_matrix(m);
        }
        let pooled = arena.f64_pool.lock().unwrap().len();
        assert_eq!(pooled, MAX_POOLED_MATRICES);
    }

    #[test]
    fn scratch_round_trips_and_resizes() {
        let arena = MatchArena::default();
        let mut s = arena.take_scratch(4);
        assert_eq!(s.qsum.len(), 4);
        s.band[0] = -1.0;
        arena.put_scratch(s);
        let s2 = arena.take_scratch(2);
        assert_eq!(s2.mcnt.len(), 2);
    }
}
