//! Tree-edit-distance matcher — the Nierman–Jagadish-style baseline from the
//! paper's related work ([15]: "a structure-based similarity algorithm that
//! determines a match between XML documents based on measuring the edit
//! distance for the rooted XML trees").
//!
//! The distance is Selkow's degree-2 variant, the standard simplification
//! used for XML: relabeling applies to node pairs, and insertion/deletion
//! applies to whole subtrees (costing the subtree size). Children sequences
//! are aligned with an edit DP, and node-pair distances are memoized
//! bottom-up, giving the same O(n·m) pair discipline as the other matchers.

use super::{postorder, MatchOutcome};
use crate::matrix::SimMatrix;
use crate::model::MatchConfig;
use qmatch_xsd::{NodeId, SchemaTree};

/// Runs the tree-edit matcher. Cell `(s, t)` holds the normalized
/// similarity `1 − dist(s,t) / (|s| + |t|)` of the two subtrees;
/// `total_qom` is the root similarity.
pub fn tree_edit_match(
    source: &SchemaTree,
    target: &SchemaTree,
    _config: &MatchConfig,
) -> MatchOutcome {
    let s_sizes: Vec<usize> = (0..source.len())
        .map(|i| source.subtree_size(NodeId(i as u32)))
        .collect();
    let t_sizes: Vec<usize> = (0..target.len())
        .map(|i| target.subtree_size(NodeId(i as u32)))
        .collect();

    // dist[s][t], filled bottom-up so children are ready before parents.
    let mut dist = vec![vec![0.0f64; target.len()]; source.len()];
    for &s in &postorder(source) {
        let sn = source.node(s);
        for &t in &postorder(target) {
            let tn = target.node(t);
            let relabel = if sn.label.eq_ignore_ascii_case(&tn.label) {
                0.0
            } else {
                1.0
            };
            let forest = forest_distance(&sn.children, &tn.children, &dist, &s_sizes, &t_sizes);
            dist[s.index()][t.index()] = relabel + forest;
        }
    }

    let mut matrix = SimMatrix::zeros(source.len(), target.len());
    for (s_idx, row) in dist.iter().enumerate() {
        for (t_idx, &d) in row.iter().enumerate() {
            let denom = (s_sizes[s_idx] + t_sizes[t_idx]) as f64;
            matrix.set(NodeId(s_idx as u32), NodeId(t_idx as u32), 1.0 - d / denom);
        }
    }
    let total_qom = matrix.get(source.root_id(), target.root_id());
    MatchOutcome { matrix, total_qom }
}

/// Edit-distance alignment of two child sequences where substituting child
/// pair `(i, j)` costs their (already computed) subtree distance, and
/// deleting/inserting a child costs its subtree size.
fn forest_distance(
    s_children: &[NodeId],
    t_children: &[NodeId],
    dist: &[Vec<f64>],
    s_sizes: &[usize],
    t_sizes: &[usize],
) -> f64 {
    let n = s_children.len();
    let m = t_children.len();
    let mut dp = vec![vec![0.0f64; m + 1]; n + 1];
    for i in 1..=n {
        dp[i][0] = dp[i - 1][0] + s_sizes[s_children[i - 1].index()] as f64;
    }
    for j in 1..=m {
        dp[0][j] = dp[0][j - 1] + t_sizes[t_children[j - 1].index()] as f64;
    }
    for i in 1..=n {
        for j in 1..=m {
            let del = dp[i - 1][j] + s_sizes[s_children[i - 1].index()] as f64;
            let ins = dp[i][j - 1] + t_sizes[t_children[j - 1].index()] as f64;
            let sub = dp[i - 1][j - 1] + dist[s_children[i - 1].index()][t_children[j - 1].index()];
            dp[i][j] = del.min(ins).min(sub);
        }
    }
    dp[n][m]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(entries: &[(&str, Option<usize>)]) -> SchemaTree {
        SchemaTree::from_labels(entries[0].0, entries)
    }

    #[test]
    fn identical_trees_have_distance_zero() {
        let t = tree(&[("a", None), ("b", Some(0)), ("c", Some(0)), ("d", Some(1))]);
        let out = tree_edit_match(&t, &t, &MatchConfig::default());
        assert!((out.total_qom - 1.0).abs() < 1e-12);
        out.matrix.assert_normalized();
    }

    #[test]
    fn single_relabel_costs_one() {
        let a = tree(&[("r", None), ("x", Some(0)), ("y", Some(0))]);
        let b = tree(&[("r", None), ("x", Some(0)), ("z", Some(0))]);
        let out = tree_edit_match(&a, &b, &MatchConfig::default());
        // dist = 1, sizes 3 + 3 ⇒ sim = 1 - 1/6.
        assert!((out.total_qom - (1.0 - 1.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn relabel_is_case_insensitive() {
        let a = tree(&[("Root", None)]);
        let b = tree(&[("ROOT", None)]);
        let out = tree_edit_match(&a, &b, &MatchConfig::default());
        assert!((out.total_qom - 1.0).abs() < 1e-12);
    }

    #[test]
    fn subtree_deletion_costs_its_size() {
        let a = tree(&[
            ("r", None),
            ("keep", Some(0)),
            ("extra", Some(0)),
            ("deep", Some(2)),
        ]);
        let b = tree(&[("r", None), ("keep", Some(0))]);
        let out = tree_edit_match(&a, &b, &MatchConfig::default());
        // Delete the 2-node "extra" subtree: dist 2, sizes 4 + 2 ⇒ 1 - 2/6.
        assert!((out.total_qom - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn completely_disjoint_trees_score_low() {
        let a = tree(&[("a", None), ("b", Some(0)), ("c", Some(0))]);
        let b = tree(&[("x", None), ("y", Some(0)), ("z", Some(0)), ("w", Some(0))]);
        let out = tree_edit_match(&a, &b, &MatchConfig::default());
        assert!(out.total_qom < 0.6, "{}", out.total_qom);
    }

    #[test]
    fn sibling_order_matters_in_the_ordered_distance() {
        let a = tree(&[("r", None), ("x", Some(0)), ("y", Some(0))]);
        let b = tree(&[("r", None), ("y", Some(0)), ("x", Some(0))]);
        let out = tree_edit_match(&a, &b, &MatchConfig::default());
        // Swapping needs two relabels (or delete+insert): dist 2 ⇒ 1 - 2/6.
        assert!((out.total_qom - (1.0 - 2.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn matrix_holds_all_subtree_pairs() {
        let a = tree(&[("r", None), ("x", Some(0))]);
        let b = tree(&[("r", None), ("x", Some(0))]);
        let out = tree_edit_match(&a, &b, &MatchConfig::default());
        // Leaf x vs leaf x: identical ⇒ 1.0.
        assert!((out.matrix.get(NodeId(1), NodeId(1)) - 1.0).abs() < 1e-12);
        // Root vs leaf x: relabel 0 (same label!) ... no: labels r vs x differ
        // ⇒ relabel 1 + delete child 1 = 2; sizes 2 + 1 ⇒ 1 - 2/3.
        assert!((out.matrix.get(NodeId(0), NodeId(1)) - (1.0 - 2.0 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn triangle_of_shapes_orders_sensibly() {
        let base = tree(&[("r", None), ("a", Some(0)), ("b", Some(0)), ("c", Some(0))]);
        let near = tree(&[("r", None), ("a", Some(0)), ("b", Some(0)), ("d", Some(0))]);
        let far = tree(&[("q", None), ("e", Some(0))]);
        let config = MatchConfig::default();
        let sim_near = tree_edit_match(&base, &near, &config).total_qom;
        let sim_far = tree_edit_match(&base, &far, &config).total_qom;
        assert!(sim_near > sim_far);
    }
}
