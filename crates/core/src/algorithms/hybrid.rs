//! QMatch — the hybrid match algorithm (paper Figure 3).
//!
//! A recursive depth-first TreeMatch that combines the linguistic label
//! comparison, the property model, the level check, and the recursively
//! computed children QoM with the axis weights of Equation 1. The recursion
//! of Figure 3 is evaluated here as a memoized bottom-up dynamic program
//! over all (source, target) node pairs, which makes every pair's QoM
//! available in one pass — the O(n·m) behaviour the paper reports.
//!
//! The DP is scheduled as a level-synchronous *wavefront*: source nodes are
//! grouped by subtree height, and every row of one wave is computed
//! out-of-place from the (already final) rows of lower waves, so the rows of
//! a wave can run on separate threads. Each cell's arithmetic is a pure
//! function of child rows, so the parallel schedule is bit-identical to the
//! sequential one ([`hybrid_match_sequential`], property-tested).
//!
//! Two deliberate refinements of the pseudo-code (documented in DESIGN.md):
//!
//! 1. Figure 3 sums *every* child pair whose QoM clears the threshold, which
//!    can push `Rw` above 1 when one source child matches several target
//!    children. This implementation takes the *best* matching target child
//!    per source child (the standard reading), keeping QoM within `[0, 1]`.
//! 2. Leaf pairs use Equation 2 directly (children and level exact by
//!    default), matching §2.2's "the nesting level for a leaf element is
//!    always set to 0".

use super::{compare_single_labels, matcher_for_mode, LabelMatrix, MatchOutcome};
use crate::arena::{MatchArena, RowScratch};
use crate::diff::TreeDiff;
use crate::matrix::{Precision, RawRows, Score, SimMatrix};
use crate::model::{children_qom, MatchConfig};
use crate::par;
use crate::props::compare_properties;
use crate::session::{MatchSession, PreparedSchema};
use crate::taxonomy::{AxisGrade, CoverageGrade, MatchCategory};
use crate::trace::{Phase, Span, Trace};
use qmatch_lexicon::name_match::LabelGrade;
use qmatch_xsd::{NodeId, SchemaTree};

/// Runs the QMatch hybrid algorithm. `total_qom` is the QoM of the two
/// roots — "the total match value for the entire source schema tree with
/// respect to the target schema tree" that Figure 3 presents to the user.
///
/// With the `parallel` feature (on by default) the label matrix and the DP
/// waves execute on scoped threads; the result is bit-identical to
/// [`hybrid_match_sequential`].
///
/// # Migration
///
/// Create a [`MatchSession`], [`prepare`](MatchSession::prepare) each
/// schema once, and call
/// [`session.run(&Algorithm::Hybrid, &s, &t)`](MatchSession::run) — the
/// prepared artifacts and the label cache are then reused across matches
/// instead of being rebuilt per call.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run(&Algorithm::Hybrid, ..) over prepared schemas"
)]
pub fn hybrid_match(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchOutcome {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.hybrid(&sp, &tp)
}

/// The always-sequential engine: same arithmetic, no threads. Kept compiled
/// in every build flavour so the two engines can be compared directly.
///
/// # Migration
///
/// Use [`MatchSession::run_sequential`] with
/// [`Algorithm::Hybrid`](super::Algorithm::Hybrid) over prepared schemas.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run_sequential(&Algorithm::Hybrid, ..) over prepared schemas"
)]
pub fn hybrid_match_sequential(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchOutcome {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.hybrid_sequential(&sp, &tp)
}

/// Like `hybrid_match`, but with a caller-supplied [`NameMatcher`](qmatch_lexicon::NameMatcher) (e.g.
/// one whose thesaurus was extended for the schemas' domain).
///
/// # Migration
///
/// Build the session with [`MatchSession::with_matcher`] and call
/// [`MatchSession::run`] — the custom matcher then also benefits from the
/// session's cross-schema label cache.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::with_matcher(..) + MatchSession::run(&Algorithm::Hybrid, ..)"
)]
pub fn hybrid_match_with(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
    matcher: &qmatch_lexicon::NameMatcher,
) -> MatchOutcome {
    let session = MatchSession::with_matcher(*config, matcher.clone());
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.hybrid(&sp, &tp)
}

/// Whether a pair is large enough for the fork/join overhead to pay off.
pub(crate) fn use_parallel(source: &SchemaTree, target: &SchemaTree) -> bool {
    cfg!(feature = "parallel") && source.len() * target.len() >= par::PAR_CELL_THRESHOLD
}

/// Slack added to the floating-point upper bounds of the band prefilter.
/// The bounds are weighted sums of values in `[0, 1]`, so their rounding
/// error is ≤ 1e-15, and an `f32`-stored child score sits within 2⁻²⁴ of its
/// `f64` value; 1e-6 covers both with orders of magnitude to spare, making
/// a pruned row *provably* free of threshold-clearing cells in either
/// precision.
const PRUNE_MARGIN: f64 = 1e-6;

/// The engine proper, over prepared artifacts: the wave schedule, leaf
/// flags, levels, parent links, and distinct property profiles all come
/// from the [`PreparedSchema`]s; the label axis from the session-built
/// `labels`; the output matrix and per-thread row scratch from the session
/// `arena`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn hybrid_match_impl(
    source: &PreparedSchema,
    target: &PreparedSchema,
    config: &MatchConfig,
    labels: &LabelMatrix,
    parallel: bool,
    trace: &Trace,
    arena: &MatchArena,
    precision: Precision,
) -> MatchOutcome {
    let (rows, cols) = (source.tree().len(), target.tree().len());
    // Matrix acquisition (arena pop, or zeroing rows × cols floats — real
    // time at 10⁴ nodes) and the per-pair score tables get their own Alloc
    // span, so the wave spans measure pure kernel time.
    let t0 = trace.start();
    let mut matrix = arena.take_matrix(rows, cols, precision);
    let tables = PairTables::build(source, target, labels);
    trace.finish(
        t0,
        Span {
            rows: rows as u64,
            cells: (rows * cols) as u64,
            ..Span::empty(Phase::Alloc)
        },
    );
    match precision {
        Precision::F64 => {
            run_waves::<f64>(source, config, &tables, parallel, trace, arena, &mut matrix)
        }
        Precision::F32 => {
            run_waves::<f32>(source, config, &tables, parallel, trace, arena, &mut matrix)
        }
    }
    let total_qom = matrix.get(source.tree().root_id(), target.tree().root_id());
    MatchOutcome { matrix, total_qom }
}

/// The incremental re-match engine (DESIGN.md §17). Rows outside the
/// diff's recompute closure are copied verbatim from `previous` (the
/// finished matrix of the *old* source against the same target) at their
/// old row indices; rows inside the closure rerun the standard
/// [`kernel_row`] wave by wave. Because a DP row is a pure function of the
/// node's own facts and its children's finalized rows, the result is
/// bit-identical to a full recompute — the property `tests` in
/// `qmatch-datasets` pin this over drift-generated mutation chains.
///
/// The caller ([`MatchSession::rematch_with_precision`]) guarantees:
/// `previous` has `diff.old_len()` rows, `target.tree().len()` columns, and
/// storage precision `precision`.
///
/// [`MatchSession::rematch_with_precision`]: crate::session::MatchSession::rematch_with_precision
#[allow(clippy::too_many_arguments)]
pub(crate) fn hybrid_rematch_impl(
    source: &PreparedSchema,
    target: &PreparedSchema,
    config: &MatchConfig,
    labels: &LabelMatrix,
    diff: &TreeDiff,
    previous: &SimMatrix,
    parallel: bool,
    trace: &Trace,
    arena: &MatchArena,
    precision: Precision,
) -> MatchOutcome {
    let (rows, cols) = (source.tree().len(), target.tree().len());
    debug_assert_eq!(previous.rows(), diff.old_len());
    debug_assert_eq!(previous.cols(), cols);
    debug_assert_eq!(previous.precision(), precision);
    let t0 = trace.start();
    let mut matrix = arena.take_matrix(rows, cols, precision);
    let tables = PairTables::build(source, target, labels);
    trace.finish(
        t0,
        Span {
            rows: rows as u64,
            cells: (rows * cols) as u64,
            ..Span::empty(Phase::Alloc)
        },
    );
    match precision {
        Precision::F64 => run_waves_incremental::<f64>(
            source,
            config,
            &tables,
            diff,
            previous,
            parallel,
            trace,
            arena,
            &mut matrix,
        ),
        Precision::F32 => run_waves_incremental::<f32>(
            source,
            config,
            &tables,
            diff,
            previous,
            parallel,
            trace,
            arena,
            &mut matrix,
        ),
    }
    let total_qom = matrix.get(source.tree().root_id(), target.tree().root_id());
    MatchOutcome { matrix, total_qom }
}

/// Wavefront driver of the incremental re-match: clean rows are copied
/// up-front (they are finalized facts of the previous revision and depend
/// on nothing computed here), then each bottom-up wave recomputes only its
/// closure rows. A recomputed row's children are either clean (copied
/// before the waves started) or members of earlier waves — finalized either
/// way, exactly the invariant [`kernel_row`] already relies on.
#[allow(clippy::too_many_arguments)]
fn run_waves_incremental<S: Score>(
    source: &PreparedSchema,
    config: &MatchConfig,
    tables: &PairTables,
    diff: &TreeDiff,
    previous: &SimMatrix,
    parallel: bool,
    trace: &Trace,
    arena: &MatchArena,
    matrix: &mut SimMatrix,
) {
    let (rows, cols) = (matrix.rows(), matrix.cols());
    let raw = RawRows::<S>::new(matrix).expect("matrix storage matches the kernel scalar");
    let prev = S::data_vec(previous).expect("previous matrix matches the kernel scalar");
    for r in 0..rows {
        let id = NodeId(r as u32);
        if diff.needs_recompute(id) {
            continue;
        }
        let old_r = diff
            .old_of(id)
            .expect("nodes outside the recompute closure are matched")
            .index();
        // SAFETY: single-threaded copy phase before any wave runs; each row
        // is written at most once and recomputed rows are never touched.
        unsafe {
            raw.row_mut(r)
                .copy_from_slice(&prev[old_r * cols..(old_r + 1) * cols]);
        }
    }
    for (w, wave) in source.waves_by_height().iter().enumerate() {
        let live: Vec<NodeId> = wave
            .iter()
            .copied()
            .filter(|&id| diff.needs_recompute(id))
            .collect();
        if live.is_empty() {
            continue;
        }
        let t0 = trace.start();
        let states = par::for_rows_with(
            live.len(),
            parallel,
            || (arena.take_scratch(cols), 0u64),
            |(scratch, skipped), i| {
                *skipped += kernel_row::<S>(&raw, live[i], source, config, tables, scratch);
            },
        );
        let mut skipped = 0u64;
        for (scratch, n) in states {
            arena.put_scratch(scratch);
            skipped += n;
        }
        trace.finish(
            t0,
            Span {
                wave: w as u32,
                rows: live.len() as u64,
                cells: (live.len() * cols) as u64,
                skipped,
                ..Span::empty(Phase::HybridWave)
            },
        );
    }
}

/// Per-pair lookup tables gathered once per match so the wave kernels run
/// tight loops over dense slices instead of chasing `NodeId`s. Label and
/// property scores are stored once per *distinct* pair — always as `f64`,
/// whatever the output precision — and the per-node index columns below
/// turn a cell visit into two contiguous-row gathers.
struct PairTables<'p> {
    /// Distinct label-pair scores, `… × label_cols` row-major.
    ltab: Vec<f64>,
    label_cols: usize,
    /// Per-node row/column indices into `ltab`.
    s_label: &'p [u32],
    t_label: &'p [u32],
    /// Per distinct source label: the best score over every distinct target
    /// label — the label-similarity upper bound of the band prefilter.
    lmax: Vec<f64>,
    /// Distinct property-profile scores, `… × prop_cols` row-major.
    ptab: Vec<f64>,
    prop_cols: usize,
    /// Per-node row/column indices into `ptab`.
    s_prop: &'p [u32],
    t_prop: &'p [u32],
    /// Per-target-node attributes read by the cell loop.
    t_leaf: &'p [bool],
    t_level: &'p [u32],
    /// Parent of every target node (`u32::MAX` for the root, which the
    /// scatter loops exclude): band scatters fold child cells up to these.
    t_parent: &'p [u32],
    /// Non-root target nodes split by kind, for the cross-kind prefilter.
    leaf_ts: Vec<u32>,
    internal_ts: Vec<u32>,
}

impl<'p> PairTables<'p> {
    fn build(
        source: &'p PreparedSchema<'_>,
        target: &'p PreparedSchema<'_>,
        labels: &'p LabelMatrix,
    ) -> PairTables<'p> {
        let ltab = labels.score_table();
        let label_cols = labels.distinct_cols_raw();
        let label_rows = ltab.len().checked_div(label_cols).unwrap_or(0);
        let mut lmax = vec![0.0f64; label_rows];
        for (r, best) in lmax.iter_mut().enumerate() {
            let row = &ltab[r * label_cols..(r + 1) * label_cols];
            *best = row.iter().fold(0.0f64, |a, &b| a.max(b));
        }

        let (sprops, tprops) = (source.distinct_props_raw(), target.distinct_props_raw());
        let prop_cols = tprops.len();
        let mut ptab = Vec::with_capacity(sprops.len() * prop_cols);
        for sp in sprops {
            for tp in tprops {
                ptab.push(compare_properties(sp, tp).score);
            }
        }

        let t_leaf = target.leaf_flags_raw();
        let (mut leaf_ts, mut internal_ts) = (Vec::new(), Vec::new());
        for t in 1..target.tree().len() as u32 {
            if t_leaf[t as usize] {
                leaf_ts.push(t);
            } else {
                internal_ts.push(t);
            }
        }

        PairTables {
            ltab,
            label_cols,
            s_label: labels.source_ids_raw(),
            t_label: labels.target_ids_raw(),
            lmax,
            ptab,
            prop_cols,
            s_prop: source.node_props_raw(),
            t_prop: target.node_props_raw(),
            t_leaf,
            t_level: target.levels_raw(),
            t_parent: target.parents_raw(),
            leaf_ts,
            internal_ts,
        }
    }

    /// The distinct-label score row for source node `s`.
    #[inline]
    fn label_row(&self, s: usize) -> &[f64] {
        let r = self.s_label[s] as usize * self.label_cols;
        &self.ltab[r..r + self.label_cols]
    }

    /// The distinct-props score row for source node `s`.
    #[inline]
    fn prop_row(&self, s: usize) -> &[f64] {
        let r = self.s_prop[s] as usize * self.prop_cols;
        &self.ptab[r..r + self.prop_cols]
    }
}

/// The wavefront driver, generic over the storage scalar. Rows are written
/// in place through [`RawRows`] — no per-row `Vec`, no copy-back — and each
/// wave reads only rows of strictly smaller height, already finalized by
/// earlier waves, so the parallel schedule stays bit-identical to the
/// sequential one.
#[allow(clippy::too_many_arguments)]
fn run_waves<S: Score>(
    source: &PreparedSchema,
    config: &MatchConfig,
    tables: &PairTables,
    parallel: bool,
    trace: &Trace,
    arena: &MatchArena,
    matrix: &mut SimMatrix,
) {
    let cols = matrix.cols();
    let raw = RawRows::<S>::new(matrix).expect("matrix storage matches the kernel scalar");
    for (w, wave) in source.waves_by_height().iter().enumerate() {
        // One span per wave, recorded by this coordinating thread after the
        // row join — never per cell. Workers lease one scratch set each and
        // count the cells their prefilters skipped.
        let t0 = trace.start();
        let states = par::for_rows_with(
            wave.len(),
            parallel,
            || (arena.take_scratch(cols), 0u64),
            |(scratch, skipped), i| {
                *skipped += kernel_row::<S>(&raw, wave[i], source, config, tables, scratch);
            },
        );
        let mut skipped = 0u64;
        for (scratch, n) in states {
            arena.put_scratch(scratch);
            skipped += n;
        }
        trace.finish(
            t0,
            Span {
                wave: w as u32,
                rows: wave.len() as u64,
                cells: (wave.len() * cols) as u64,
                skipped,
                ..Span::empty(Phase::HybridWave)
            },
        );
    }
}

/// One source node's full DP row, written in place. Returns the number of
/// cells the children-pass prefilters skipped.
///
/// Safety of the in-place write: each source node appears exactly once in
/// exactly one wave, so this worker holds the row exclusively; the children
/// pass reads only rows of strictly smaller subtree height, finalized
/// before this wave started.
fn kernel_row<S: Score>(
    raw: &RawRows<S>,
    s: NodeId,
    source: &PreparedSchema,
    config: &MatchConfig,
    tables: &PairTables,
    scratch: &mut RowScratch,
) -> u64 {
    let weights = config.weights;
    let cols = tables.t_label.len();
    let lrow = tables.label_row(s.index());
    let prow = tables.prop_row(s.index());
    let s_level = source.levels_raw()[s.index()];

    if source.leaf_flags_raw()[s.index()] {
        // Leaf source: Equation 2 against leaf targets; against a subtree
        // the children axis contributes 0 (footnote 1). Two gathers and a
        // weighted sum per cell.
        let row = unsafe { raw.row_mut(s.index()) };
        for t in 0..cols {
            let l = lrow[tables.t_label[t] as usize];
            let p = prow[tables.t_prop[t] as usize];
            let q = if tables.t_leaf[t] {
                weights.leaf_qom(l, p)
            } else {
                let qomh = if s_level == tables.t_level[t] {
                    1.0
                } else {
                    0.0
                };
                weights.qom(l, p, qomh, 0.0)
            };
            row[t] = S::from_f64(q);
        }
        return 0;
    }

    let sn = source.tree().node(s);
    let skipped = children_pass::<S>(raw, sn, source, config, tables, scratch);
    let n_children = sn.children.len();
    let row = unsafe { raw.row_mut(s.index()) };
    for t in 0..cols {
        let l = lrow[tables.t_label[t] as usize];
        let p = prow[tables.t_prop[t] as usize];
        let qomh = if s_level == tables.t_level[t] {
            1.0
        } else {
            0.0
        };
        let qomc = if tables.t_leaf[t] {
            // Subtree against a leaf: no coverage (footnote 1 allows the
            // comparison; the children axis simply contributes 0).
            0.0
        } else {
            children_qom(scratch.qsum[t], scratch.mcnt[t] as usize, n_children)
        };
        row[t] = S::from_f64(weights.qom(l, p, qomh, qomc));
    }
    skipped
}

/// The children pass for an internal source node. For every source child, a
/// *band scatter* folds the child's (finalized) row up to each target
/// parent — `band[p]` ends as the best threshold-clearing score among `p`'s
/// children, or −1 when none clears — and the band then accumulates into
/// the per-target QoM sum and matched count. Accumulation runs in
/// source-child order, so the `f64` sums are bit-identical to the reference
/// recursion's (max is order-free; the sum is not).
///
/// Two prefilters skip cells that provably cannot clear the Figure 3
/// threshold (bounds padded by [`PRUNE_MARGIN`]):
///
/// - a child whose best label score caps its QoM below the threshold skips
///   its entire row;
/// - a child whose *cross-kind* bound (no children credit) falls below the
///   threshold scans only same-kind targets.
///
/// Returns the number of cells skipped (never read).
fn children_pass<S: Score>(
    raw: &RawRows<S>,
    sn: &qmatch_xsd::SchemaNode,
    source: &PreparedSchema,
    config: &MatchConfig,
    tables: &PairTables,
    scratch: &mut RowScratch,
) -> u64 {
    let w = config.weights;
    let threshold = config.threshold;
    let cols = tables.t_label.len();
    scratch.qsum[..cols].fill(0.0);
    scratch.mcnt[..cols].fill(0);
    let mut skipped = 0u64;
    let scan = (cols - 1) as u64; // non-root targets per child row
    for &cs in &sn.children {
        let lmax = tables.lmax[tables.s_label[cs.index()] as usize];
        let full_ub = w.label * lmax + (w.properties + w.level + w.children) + PRUNE_MARGIN;
        if full_ub < threshold {
            // No cell in this child's row can clear the threshold.
            skipped += scan;
            continue;
        }
        // SAFETY: `cs` has strictly smaller subtree height than its parent,
        // so its row was finalized by an earlier wave; nothing writes it now.
        let child_row = unsafe { raw.row(cs.index()) };
        let band = &mut scratch.band[..cols];
        band.fill(-1.0);
        let cross_ub = w.label * lmax + (w.properties + w.level) + PRUNE_MARGIN;
        if cross_ub < threshold {
            // Cross-kind pairs carry no children credit, so only same-kind
            // targets can clear: scan just those.
            let kin = if source.leaf_flags_raw()[cs.index()] {
                &tables.leaf_ts
            } else {
                &tables.internal_ts
            };
            skipped += scan - kin.len() as u64;
            for &t in kin {
                let v = S::to_f64(child_row[t as usize]);
                if v >= threshold {
                    let p = tables.t_parent[t as usize] as usize;
                    if band[p] < v {
                        band[p] = v;
                    }
                }
            }
        } else {
            // The fast path: one contiguous scan of the child row.
            for (t, &cell) in child_row.iter().enumerate().skip(1) {
                let v = S::to_f64(cell);
                if v >= threshold {
                    let p = tables.t_parent[t] as usize;
                    if band[p] < v {
                        band[p] = v;
                    }
                }
            }
        }
        // Fold the band into the accumulators. A kept band value is the
        // overall per-parent max (kept values ≥ threshold dominate the
        // dropped ones), so this reproduces the reference `best ≥ threshold`
        // gate exactly; −1 marks parents with no clearing child.
        for (t, &b) in band.iter().enumerate() {
            if b >= 0.0 {
                scratch.qsum[t] += b;
                scratch.mcnt[t] += 1;
            }
        }
    }
    skipped
}

/// Classifies the match between the two roots on the paper's qualitative
/// taxonomy (§2.2), using the same per-axis evidence the quantitative run
/// uses. Runs a full hybrid match internally; when an outcome is already at
/// hand, use [`hybrid_root_category_from`] instead.
pub fn hybrid_root_category(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchCategory {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    let outcome = session.hybrid(&sp, &tp);
    hybrid_root_category_from(source, target, config, &outcome)
}

/// Classifies the root pair from an existing hybrid [`MatchOutcome`] —
/// no rerun of the match; only the root labels are re-compared.
pub fn hybrid_root_category_from(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
    outcome: &MatchOutcome,
) -> MatchCategory {
    let (sn, tn) = (source.node(source.root_id()), target.node(target.root_id()));
    let matcher = matcher_for_mode(config.lexicon);
    let grade = compare_single_labels(&sn.label, &tn.label, config.lexicon, &matcher).grade;
    root_category_with_label(source, target, config, outcome, grade)
}

/// The taxonomy classification with the root-label grade supplied by the
/// caller — the session path serves it from its cross-schema cache instead
/// of re-running the matcher.
pub(crate) fn root_category_with_label(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
    outcome: &MatchOutcome,
    root_label: LabelGrade,
) -> MatchCategory {
    let (s, t) = (source.root_id(), target.root_id());
    let (sn, tn) = (source.node(s), target.node(t));

    let label = match root_label {
        LabelGrade::Exact => AxisGrade::Exact,
        LabelGrade::Relaxed => AxisGrade::Relaxed,
        LabelGrade::None => AxisGrade::None,
    };
    let props = compare_properties(&sn.properties, &tn.properties).grade;
    let level = if sn.level == tn.level {
        AxisGrade::Exact
    } else {
        AxisGrade::Relaxed
    };

    // §2.2 matches a child subtree "with all sub-trees in the [target]
    // schema" (PurchaseInfo finds its counterpart in the Purchase Order
    // *root*), so qualitative coverage considers every target node, not
    // only the root's children as the quantitative recursion does.
    let mut matched = 0usize;
    let mut any_relaxed = false;
    for &cs in &sn.children {
        let best = target
            .iter()
            .map(|(t_id, _)| outcome.matrix.get(cs, t_id))
            .fold(0.0f64, f64::max);
        if best >= config.threshold {
            matched += 1;
            if best < 0.999 {
                any_relaxed = true;
            }
        }
    }
    let coverage = CoverageGrade::classify(sn.children.len(), matched, any_relaxed);
    MatchCategory::combine(label, props, level, coverage)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the one-shot wrappers stay covered until removal
    use super::*;
    use crate::model::Weights;
    use qmatch_xsd::{parse_schema, SchemaTree};

    fn library() -> SchemaTree {
        SchemaTree::from_labels(
            "Library",
            &[
                ("Library", None),
                ("Title", Some(0)),
                ("Book", Some(0)),
                ("number", Some(2)),
                ("character", Some(2)),
                ("Writer", Some(2)),
            ],
        )
    }

    fn human() -> SchemaTree {
        SchemaTree::from_labels(
            "human",
            &[
                ("human", None),
                ("head", Some(0)),
                ("body", Some(0)),
                ("hands", Some(2)),
                ("man", Some(2)),
                ("legs", Some(2)),
            ],
        )
    }

    #[test]
    fn self_match_is_total_exact_scoring_one() {
        let t = library();
        let out = hybrid_match(&t, &t, &MatchConfig::default());
        assert!((out.total_qom - 1.0).abs() < 1e-9, "{}", out.total_qom);
        assert_eq!(
            hybrid_root_category(&t, &t, &MatchConfig::default()),
            MatchCategory::TotalExact
        );
        out.matrix.assert_normalized();
    }

    #[test]
    fn sequential_engine_agrees_exactly() {
        let (lib, hum) = (library(), human());
        let config = MatchConfig::default();
        let a = hybrid_match(&lib, &hum, &config);
        let b = hybrid_match_sequential(&lib, &hum, &config);
        assert_eq!(a.matrix, b.matrix, "bit-identical matrices");
        assert_eq!(a.total_qom, b.total_qom);
    }

    #[test]
    fn root_category_from_outcome_matches_rerun() {
        let (lib, hum) = (library(), human());
        let config = MatchConfig::default();
        let outcome = hybrid_match(&lib, &hum, &config);
        assert_eq!(
            hybrid_root_category_from(&lib, &hum, &config, &outcome),
            hybrid_root_category(&lib, &hum, &config)
        );
    }

    #[test]
    fn figure9_hybrid_sits_between_the_two_extremes() {
        use crate::algorithms::{linguistic_match, structural_match};
        let (lib, hum) = (library(), human());
        let config = MatchConfig::default();
        let l = linguistic_match(&lib, &hum, &config).total_qom;
        let s = structural_match(&lib, &hum, &config).total_qom;
        let h = hybrid_match(&lib, &hum, &config).total_qom;
        assert!(l < 0.4, "linguistic low: {l}");
        assert!(s > 0.9, "structural high: {s}");
        assert!(h > l && h < s, "hybrid {h} must sit between {l} and {s}");
        // §5.1: the hybrid gravitates toward the higher individual value.
        assert!(
            h > (l + s) / 2.0 - 0.15,
            "hybrid {h} should not collapse to the low end"
        );
    }

    #[test]
    fn leaf_pairs_use_equation_two() {
        let a = SchemaTree::from_labels("x", &[("x", None), ("OrderNo", Some(0))]);
        let b = SchemaTree::from_labels("y", &[("y", None), ("OrderNo", Some(0))]);
        let out = hybrid_match(&a, &b, &MatchConfig::default());
        let sa = a.find_by_label("OrderNo").unwrap();
        let tb = b.find_by_label("OrderNo").unwrap();
        // Identical leaf (label 1.0, props 1.0): Eq. 2 gives exactly 1.0.
        assert!((out.matrix.get(sa, tb) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_gates_children_contributions() {
        let a = SchemaTree::from_labels("r", &[("r", None), ("alpha", Some(0))]);
        let b = SchemaTree::from_labels("r", &[("r", None), ("omega", Some(0))]);
        let strict = MatchConfig {
            threshold: 0.99,
            ..MatchConfig::default()
        };
        let lax = MatchConfig {
            threshold: 0.0,
            ..MatchConfig::default()
        };
        let out_strict = hybrid_match(&a, &b, &strict);
        let out_lax = hybrid_match(&a, &b, &lax);
        assert!(out_lax.total_qom > out_strict.total_qom);
    }

    #[test]
    fn weights_shift_the_balance() {
        let (lib, hum) = (library(), human());
        // All weight on the label axis: disparate labels sink the score.
        let label_heavy = MatchConfig::with_weights(Weights::new(1.0, 0.0, 0.0, 0.0).unwrap());
        // All weight on the children axis: identical structure lifts it.
        let children_heavy = MatchConfig::with_weights(Weights::new(0.0, 0.0, 0.0, 1.0).unwrap());
        let low = hybrid_match(&lib, &hum, &label_heavy).total_qom;
        let high = hybrid_match(&lib, &hum, &children_heavy).total_qom;
        assert!(low < 0.3, "{low}");
        assert!(high > 0.6, "{high}");
    }

    #[test]
    fn paper_po_worked_example_produces_relaxed_match() {
        // A miniature of Figures 1/2: the roots match total relaxed (§2.2).
        let po = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
                ("UnitOfMeasure", Some(2)),
            ],
        );
        let purchase_order = SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Items", Some(0)),
                ("Item#", Some(2)),
                ("Qty", Some(2)),
                ("UOM", Some(2)),
            ],
        );
        let config = MatchConfig::default();
        let out = hybrid_match(&po, &purchase_order, &config);
        assert!(
            out.total_qom > 0.6,
            "closely related schemas: {}",
            out.total_qom
        );
        assert!(out.total_qom < 1.0, "but not exact: {}", out.total_qom);
        let cat = hybrid_root_category(&po, &purchase_order, &config);
        assert_eq!(cat, MatchCategory::TotalRelaxed);
    }

    #[test]
    fn leaf_vs_subtree_gets_no_children_credit() {
        let leaf = SchemaTree::from_labels("r", &[("r", None), ("x", Some(0))]);
        let deep = SchemaTree::from_labels("r", &[("r", None), ("x", Some(0)), ("y", Some(1))]);
        let out = hybrid_match(&leaf, &deep, &MatchConfig::default());
        let s_x = leaf.find_by_label("x").unwrap();
        let t_x = deep.find_by_label("x").unwrap();
        // Label exact + level exact + whatever the property axis yields
        // (the leaf is a string, the subtree complex), children axis 0.
        let props =
            compare_properties(&leaf.node(s_x).properties, &deep.node(t_x).properties).score;
        let expected = 0.3 + 0.2 * props + 0.1;
        assert!((out.matrix.get(s_x, t_x) - expected).abs() < 1e-9);
    }

    #[test]
    fn works_on_compiled_xsd_schemas() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="PO"><xs:complexType><xs:sequence>
            <xs:element name="OrderNo" type="xs:integer"/>
            <xs:element name="PurchaseDate" type="xs:date"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let tgt = r#"<xs:schema xmlns:xs="x">
          <xs:element name="PurchaseOrder"><xs:complexType><xs:sequence>
            <xs:element name="OrderNo" type="xs:integer"/>
            <xs:element name="Date" type="xs:date"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let s = SchemaTree::compile(&parse_schema(src).unwrap()).unwrap();
        let t = SchemaTree::compile(&parse_schema(tgt).unwrap()).unwrap();
        let out = hybrid_match(&s, &t, &MatchConfig::default());
        assert!(out.total_qom > 0.75, "{}", out.total_qom);
        let s_date = s.find_by_label("PurchaseDate").unwrap();
        let t_date = t.find_by_label("Date").unwrap();
        assert!(out.matrix.get(s_date, t_date) > 0.6, "relaxed leaf pair");
    }

    #[test]
    fn asymmetric_directions_can_differ_on_partial_coverage() {
        // Source ⊂ target: all source children covered; reverse is partial.
        let small = SchemaTree::from_labels("r", &[("r", None), ("a", Some(0))]);
        let big = SchemaTree::from_labels(
            "r",
            &[("r", None), ("a", Some(0)), ("b", Some(0)), ("c", Some(0))],
        );
        let config = MatchConfig::default();
        let fwd = hybrid_match(&small, &big, &config).total_qom;
        let rev = hybrid_match(&big, &small, &config).total_qom;
        assert!(fwd > rev, "total coverage {fwd} must beat partial {rev}");
    }
}
