//! QMatch — the hybrid match algorithm (paper Figure 3).
//!
//! A recursive depth-first TreeMatch that combines the linguistic label
//! comparison, the property model, the level check, and the recursively
//! computed children QoM with the axis weights of Equation 1. The recursion
//! of Figure 3 is evaluated here as a memoized bottom-up dynamic program
//! over all (source, target) node pairs, which makes every pair's QoM
//! available in one pass — the O(n·m) behaviour the paper reports.
//!
//! The DP is scheduled as a level-synchronous *wavefront*: source nodes are
//! grouped by subtree height, and every row of one wave is computed
//! out-of-place from the (already final) rows of lower waves, so the rows of
//! a wave can run on separate threads. Each cell's arithmetic is a pure
//! function of child rows, so the parallel schedule is bit-identical to the
//! sequential one ([`hybrid_match_sequential`], property-tested).
//!
//! Two deliberate refinements of the pseudo-code (documented in DESIGN.md):
//!
//! 1. Figure 3 sums *every* child pair whose QoM clears the threshold, which
//!    can push `Rw` above 1 when one source child matches several target
//!    children. This implementation takes the *best* matching target child
//!    per source child (the standard reading), keeping QoM within `[0, 1]`.
//! 2. Leaf pairs use Equation 2 directly (children and level exact by
//!    default), matching §2.2's "the nesting level for a leaf element is
//!    always set to 0".

use super::{compare_single_labels, matcher_for_mode, LabelMatrix, MatchOutcome};
use crate::matrix::SimMatrix;
use crate::model::{children_qom, MatchConfig};
use crate::par;
use crate::props::compare_properties;
use crate::session::{MatchSession, PreparedSchema};
use crate::taxonomy::{AxisGrade, CoverageGrade, MatchCategory};
use crate::trace::{Phase, Span, Trace};
use qmatch_lexicon::name_match::LabelGrade;
use qmatch_xsd::{NodeId, SchemaTree};

/// Runs the QMatch hybrid algorithm. `total_qom` is the QoM of the two
/// roots — "the total match value for the entire source schema tree with
/// respect to the target schema tree" that Figure 3 presents to the user.
///
/// With the `parallel` feature (on by default) the label matrix and the DP
/// waves execute on scoped threads; the result is bit-identical to
/// [`hybrid_match_sequential`].
///
/// # Migration
///
/// Create a [`MatchSession`], [`prepare`](MatchSession::prepare) each
/// schema once, and call
/// [`session.run(&Algorithm::Hybrid, &s, &t)`](MatchSession::run) — the
/// prepared artifacts and the label cache are then reused across matches
/// instead of being rebuilt per call.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run(&Algorithm::Hybrid, ..) over prepared schemas"
)]
pub fn hybrid_match(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchOutcome {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.hybrid(&sp, &tp)
}

/// The always-sequential engine: same arithmetic, no threads. Kept compiled
/// in every build flavour so the two engines can be compared directly.
///
/// # Migration
///
/// Use [`MatchSession::run_sequential`] with
/// [`Algorithm::Hybrid`](super::Algorithm::Hybrid) over prepared schemas.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run_sequential(&Algorithm::Hybrid, ..) over prepared schemas"
)]
pub fn hybrid_match_sequential(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchOutcome {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.hybrid_sequential(&sp, &tp)
}

/// Like `hybrid_match`, but with a caller-supplied [`NameMatcher`](qmatch_lexicon::NameMatcher) (e.g.
/// one whose thesaurus was extended for the schemas' domain).
///
/// # Migration
///
/// Build the session with [`MatchSession::with_matcher`] and call
/// [`MatchSession::run`] — the custom matcher then also benefits from the
/// session's cross-schema label cache.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::with_matcher(..) + MatchSession::run(&Algorithm::Hybrid, ..)"
)]
pub fn hybrid_match_with(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
    matcher: &qmatch_lexicon::NameMatcher,
) -> MatchOutcome {
    let session = MatchSession::with_matcher(*config, matcher.clone());
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.hybrid(&sp, &tp)
}

/// Whether a pair is large enough for the fork/join overhead to pay off.
pub(crate) fn use_parallel(source: &SchemaTree, target: &SchemaTree) -> bool {
    cfg!(feature = "parallel") && source.len() * target.len() >= par::PAR_CELL_THRESHOLD
}

/// The engine proper, over prepared artifacts: the wave schedule, leaf
/// flags, levels, and property profiles all come from the
/// [`PreparedSchema`]s; the label axis from the session-built `labels`.
pub(crate) fn hybrid_match_impl(
    source: &PreparedSchema,
    target: &PreparedSchema,
    config: &MatchConfig,
    labels: &LabelMatrix,
    parallel: bool,
    trace: &Trace,
) -> MatchOutcome {
    let cols = target.tree().len();
    // The output-matrix allocation (zeroing rows × cols floats — real time
    // at 10⁴ nodes) is charged to the leaf wave's span, so the wave spans
    // together account for the whole match.
    let mut alloc_start = trace.start();
    let mut matrix = SimMatrix::zeros(source.tree().len(), cols);
    for (w, wave) in source.waves_by_height().iter().enumerate() {
        // One span per wave, recorded by this coordinating thread after the
        // row join — never per cell, and nothing here touches the scores.
        let t0 = alloc_start.take().or_else(|| trace.start());
        let rows = par::map_rows(wave.len(), parallel, |i| {
            hybrid_row(source, target, wave[i], config, labels, &matrix)
        });
        for (&s, row) in wave.iter().zip(&rows) {
            matrix.set_row(s, row);
        }
        trace.finish(
            t0,
            Span {
                wave: w as u32,
                rows: wave.len() as u64,
                cells: (wave.len() * cols) as u64,
                ..Span::empty(Phase::HybridWave)
            },
        );
    }
    let total_qom = matrix.get(source.tree().root_id(), target.tree().root_id());
    MatchOutcome { matrix, total_qom }
}

/// One source node's full row of the DP: the QoM against every target node.
/// Reads only rows of strictly smaller height, which previous waves have
/// already finalized.
fn hybrid_row(
    source: &PreparedSchema,
    target: &PreparedSchema,
    s: NodeId,
    config: &MatchConfig,
    labels: &LabelMatrix,
    matrix: &SimMatrix,
) -> Vec<f64> {
    let weights = config.weights;
    let sn = source.tree().node(s);
    let s_leaf = source.is_leaf(s);
    let s_level = source.level(s);
    let s_props = source.props(s);
    (0..target.tree().len() as u32)
        .map(|t| {
            let t = NodeId(t);
            let label = labels.get(s, t).score;
            let props = compare_properties(s_props, target.props(t)).score;
            let t_leaf = target.is_leaf(t);
            if s_leaf && t_leaf {
                // Equation 2: leaves are exact by default on C and H.
                weights.leaf_qom(label, props)
            } else {
                let tn = target.tree().node(t);
                let (qom_sum, matched) = best_child_matches(matrix, sn, tn, config);
                let qomc = if s_leaf != t_leaf {
                    // Leaf against subtree: no coverage (footnote 1 allows
                    // comparing them; the children axis simply contributes 0).
                    0.0
                } else {
                    children_qom(qom_sum, matched, sn.children.len())
                };
                let qomh = if s_level == target.level(t) { 1.0 } else { 0.0 };
                weights.qom(label, props, qomh, qomc)
            }
        })
        .collect()
}

/// For each source child, the best QoM among the target children; children
/// clear the Figure 3 threshold or contribute nothing. Returns the kept sum
/// and the matched count (`|Ncs|`).
fn best_child_matches(
    matrix: &SimMatrix,
    sn: &qmatch_xsd::SchemaNode,
    tn: &qmatch_xsd::SchemaNode,
    config: &MatchConfig,
) -> (f64, usize) {
    let mut qom_sum = 0.0;
    let mut matched = 0usize;
    for &cs in &sn.children {
        let best = tn
            .children
            .iter()
            .map(|&ct| matrix.get(cs, ct))
            .fold(0.0f64, f64::max);
        if best >= config.threshold {
            qom_sum += best;
            matched += 1;
        }
    }
    (qom_sum, matched)
}

/// Classifies the match between the two roots on the paper's qualitative
/// taxonomy (§2.2), using the same per-axis evidence the quantitative run
/// uses. Runs a full hybrid match internally; when an outcome is already at
/// hand, use [`hybrid_root_category_from`] instead.
pub fn hybrid_root_category(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchCategory {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    let outcome = session.hybrid(&sp, &tp);
    hybrid_root_category_from(source, target, config, &outcome)
}

/// Classifies the root pair from an existing hybrid [`MatchOutcome`] —
/// no rerun of the match; only the root labels are re-compared.
pub fn hybrid_root_category_from(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
    outcome: &MatchOutcome,
) -> MatchCategory {
    let (sn, tn) = (source.node(source.root_id()), target.node(target.root_id()));
    let matcher = matcher_for_mode(config.lexicon);
    let grade = compare_single_labels(&sn.label, &tn.label, config.lexicon, &matcher).grade;
    root_category_with_label(source, target, config, outcome, grade)
}

/// The taxonomy classification with the root-label grade supplied by the
/// caller — the session path serves it from its cross-schema cache instead
/// of re-running the matcher.
pub(crate) fn root_category_with_label(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
    outcome: &MatchOutcome,
    root_label: LabelGrade,
) -> MatchCategory {
    let (s, t) = (source.root_id(), target.root_id());
    let (sn, tn) = (source.node(s), target.node(t));

    let label = match root_label {
        LabelGrade::Exact => AxisGrade::Exact,
        LabelGrade::Relaxed => AxisGrade::Relaxed,
        LabelGrade::None => AxisGrade::None,
    };
    let props = compare_properties(&sn.properties, &tn.properties).grade;
    let level = if sn.level == tn.level {
        AxisGrade::Exact
    } else {
        AxisGrade::Relaxed
    };

    // §2.2 matches a child subtree "with all sub-trees in the [target]
    // schema" (PurchaseInfo finds its counterpart in the Purchase Order
    // *root*), so qualitative coverage considers every target node, not
    // only the root's children as the quantitative recursion does.
    let mut matched = 0usize;
    let mut any_relaxed = false;
    for &cs in &sn.children {
        let best = target
            .iter()
            .map(|(t_id, _)| outcome.matrix.get(cs, t_id))
            .fold(0.0f64, f64::max);
        if best >= config.threshold {
            matched += 1;
            if best < 0.999 {
                any_relaxed = true;
            }
        }
    }
    let coverage = CoverageGrade::classify(sn.children.len(), matched, any_relaxed);
    MatchCategory::combine(label, props, level, coverage)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the one-shot wrappers stay covered until removal
    use super::*;
    use crate::model::Weights;
    use qmatch_xsd::{parse_schema, SchemaTree};

    fn library() -> SchemaTree {
        SchemaTree::from_labels(
            "Library",
            &[
                ("Library", None),
                ("Title", Some(0)),
                ("Book", Some(0)),
                ("number", Some(2)),
                ("character", Some(2)),
                ("Writer", Some(2)),
            ],
        )
    }

    fn human() -> SchemaTree {
        SchemaTree::from_labels(
            "human",
            &[
                ("human", None),
                ("head", Some(0)),
                ("body", Some(0)),
                ("hands", Some(2)),
                ("man", Some(2)),
                ("legs", Some(2)),
            ],
        )
    }

    #[test]
    fn self_match_is_total_exact_scoring_one() {
        let t = library();
        let out = hybrid_match(&t, &t, &MatchConfig::default());
        assert!((out.total_qom - 1.0).abs() < 1e-9, "{}", out.total_qom);
        assert_eq!(
            hybrid_root_category(&t, &t, &MatchConfig::default()),
            MatchCategory::TotalExact
        );
        out.matrix.assert_normalized();
    }

    #[test]
    fn sequential_engine_agrees_exactly() {
        let (lib, hum) = (library(), human());
        let config = MatchConfig::default();
        let a = hybrid_match(&lib, &hum, &config);
        let b = hybrid_match_sequential(&lib, &hum, &config);
        assert_eq!(a.matrix, b.matrix, "bit-identical matrices");
        assert_eq!(a.total_qom, b.total_qom);
    }

    #[test]
    fn root_category_from_outcome_matches_rerun() {
        let (lib, hum) = (library(), human());
        let config = MatchConfig::default();
        let outcome = hybrid_match(&lib, &hum, &config);
        assert_eq!(
            hybrid_root_category_from(&lib, &hum, &config, &outcome),
            hybrid_root_category(&lib, &hum, &config)
        );
    }

    #[test]
    fn figure9_hybrid_sits_between_the_two_extremes() {
        use crate::algorithms::{linguistic_match, structural_match};
        let (lib, hum) = (library(), human());
        let config = MatchConfig::default();
        let l = linguistic_match(&lib, &hum, &config).total_qom;
        let s = structural_match(&lib, &hum, &config).total_qom;
        let h = hybrid_match(&lib, &hum, &config).total_qom;
        assert!(l < 0.4, "linguistic low: {l}");
        assert!(s > 0.9, "structural high: {s}");
        assert!(h > l && h < s, "hybrid {h} must sit between {l} and {s}");
        // §5.1: the hybrid gravitates toward the higher individual value.
        assert!(
            h > (l + s) / 2.0 - 0.15,
            "hybrid {h} should not collapse to the low end"
        );
    }

    #[test]
    fn leaf_pairs_use_equation_two() {
        let a = SchemaTree::from_labels("x", &[("x", None), ("OrderNo", Some(0))]);
        let b = SchemaTree::from_labels("y", &[("y", None), ("OrderNo", Some(0))]);
        let out = hybrid_match(&a, &b, &MatchConfig::default());
        let sa = a.find_by_label("OrderNo").unwrap();
        let tb = b.find_by_label("OrderNo").unwrap();
        // Identical leaf (label 1.0, props 1.0): Eq. 2 gives exactly 1.0.
        assert!((out.matrix.get(sa, tb) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn threshold_gates_children_contributions() {
        let a = SchemaTree::from_labels("r", &[("r", None), ("alpha", Some(0))]);
        let b = SchemaTree::from_labels("r", &[("r", None), ("omega", Some(0))]);
        let strict = MatchConfig {
            threshold: 0.99,
            ..MatchConfig::default()
        };
        let lax = MatchConfig {
            threshold: 0.0,
            ..MatchConfig::default()
        };
        let out_strict = hybrid_match(&a, &b, &strict);
        let out_lax = hybrid_match(&a, &b, &lax);
        assert!(out_lax.total_qom > out_strict.total_qom);
    }

    #[test]
    fn weights_shift_the_balance() {
        let (lib, hum) = (library(), human());
        // All weight on the label axis: disparate labels sink the score.
        let label_heavy = MatchConfig::with_weights(Weights::new(1.0, 0.0, 0.0, 0.0).unwrap());
        // All weight on the children axis: identical structure lifts it.
        let children_heavy = MatchConfig::with_weights(Weights::new(0.0, 0.0, 0.0, 1.0).unwrap());
        let low = hybrid_match(&lib, &hum, &label_heavy).total_qom;
        let high = hybrid_match(&lib, &hum, &children_heavy).total_qom;
        assert!(low < 0.3, "{low}");
        assert!(high > 0.6, "{high}");
    }

    #[test]
    fn paper_po_worked_example_produces_relaxed_match() {
        // A miniature of Figures 1/2: the roots match total relaxed (§2.2).
        let po = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
                ("UnitOfMeasure", Some(2)),
            ],
        );
        let purchase_order = SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Items", Some(0)),
                ("Item#", Some(2)),
                ("Qty", Some(2)),
                ("UOM", Some(2)),
            ],
        );
        let config = MatchConfig::default();
        let out = hybrid_match(&po, &purchase_order, &config);
        assert!(
            out.total_qom > 0.6,
            "closely related schemas: {}",
            out.total_qom
        );
        assert!(out.total_qom < 1.0, "but not exact: {}", out.total_qom);
        let cat = hybrid_root_category(&po, &purchase_order, &config);
        assert_eq!(cat, MatchCategory::TotalRelaxed);
    }

    #[test]
    fn leaf_vs_subtree_gets_no_children_credit() {
        let leaf = SchemaTree::from_labels("r", &[("r", None), ("x", Some(0))]);
        let deep = SchemaTree::from_labels("r", &[("r", None), ("x", Some(0)), ("y", Some(1))]);
        let out = hybrid_match(&leaf, &deep, &MatchConfig::default());
        let s_x = leaf.find_by_label("x").unwrap();
        let t_x = deep.find_by_label("x").unwrap();
        // Label exact + level exact + whatever the property axis yields
        // (the leaf is a string, the subtree complex), children axis 0.
        let props =
            compare_properties(&leaf.node(s_x).properties, &deep.node(t_x).properties).score;
        let expected = 0.3 + 0.2 * props + 0.1;
        assert!((out.matrix.get(s_x, t_x) - expected).abs() < 1e-9);
    }

    #[test]
    fn works_on_compiled_xsd_schemas() {
        let src = r#"<xs:schema xmlns:xs="x">
          <xs:element name="PO"><xs:complexType><xs:sequence>
            <xs:element name="OrderNo" type="xs:integer"/>
            <xs:element name="PurchaseDate" type="xs:date"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let tgt = r#"<xs:schema xmlns:xs="x">
          <xs:element name="PurchaseOrder"><xs:complexType><xs:sequence>
            <xs:element name="OrderNo" type="xs:integer"/>
            <xs:element name="Date" type="xs:date"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let s = SchemaTree::compile(&parse_schema(src).unwrap()).unwrap();
        let t = SchemaTree::compile(&parse_schema(tgt).unwrap()).unwrap();
        let out = hybrid_match(&s, &t, &MatchConfig::default());
        assert!(out.total_qom > 0.75, "{}", out.total_qom);
        let s_date = s.find_by_label("PurchaseDate").unwrap();
        let t_date = t.find_by_label("Date").unwrap();
        assert!(out.matrix.get(s_date, t_date) > 0.6, "relaxed leaf pair");
    }

    #[test]
    fn asymmetric_directions_can_differ_on_partial_coverage() {
        // Source ⊂ target: all source children covered; reverse is partial.
        let small = SchemaTree::from_labels("r", &[("r", None), ("a", Some(0))]);
        let big = SchemaTree::from_labels(
            "r",
            &[("r", None), ("a", Some(0)), ("b", Some(0)), ("c", Some(0))],
        );
        let config = MatchConfig::default();
        let fwd = hybrid_match(&small, &big, &config).total_qom;
        let rev = hybrid_match(&big, &small, &config).total_qom;
        assert!(fwd > rev, "total coverage {fwd} must beat partial {rev}");
    }
}
