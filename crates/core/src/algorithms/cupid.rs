//! The full-fidelity CUPID matcher (Madhavan, Bernstein & Rahm, VLDB 2001).
//!
//! Unlike the flat [`linguistic`](super::linguistic) baseline (which reuses
//! only CUPID's *name* matching), this engine implements the defining piece
//! of the algorithm: structural similarity propagation. Leaf pairs start
//! from data-type compatibility, internal pairs score by the fraction of
//! strongly-linked leaves in their subtrees, and high/low-confidence
//! ancestor pairs push their confidence back down onto the leaves
//! (`th_high`/`th_low` thresholds, `c_inc`/`c_dec` multiplicative
//! adjustment) before a final `recompute_wsim` pass rebuilds every weighted
//! similarity from the adjusted leaves.
//!
//! The classic formulation mutates leaf ssim *during* a post-order sweep.
//! That mutation is schedule-independent in disguise: the sweep's internal
//! ssim reads leaf **wsim**, which the sweep never updates (only the final
//! recompute does), so each ancestor pair's increase/decrease decision
//! depends solely on the immutable leaf initialization. This engine
//! exploits that: the sweep only *flags* each pair, and every leaf pair
//! then applies its net adjustment `ssim · c_inc^inc · c_dec^dec` (capped
//! at 1.0) in one deterministic step. The result is bit-identical whether
//! pairs are visited sequentially in post-order, in bottom-up waves, or by
//! parallel row — the property the par==seq tests pin.

use super::{LabelMatrix, MatchOutcome};
use crate::arena::MatchArena;
use crate::mapping::{Correspondence, Mapping};
use crate::matrix::{Precision, RawRows, Score, SimMatrix};
use crate::model::CupidParams;
use crate::par;
use crate::props::type_similarity;
use crate::session::PreparedSchema;
use crate::trace::{Phase, Span, Trace};
use qmatch_xsd::NodeId;

/// Immutable per-pair inputs shared by every propagation pass.
struct CupidCtx<'a> {
    params: CupidParams,
    /// Label (linguistic) similarity per node pair.
    labels: &'a LabelMatrix,
    /// Leaf descendants per source node (a leaf lists itself).
    source_leaves: Vec<Vec<NodeId>>,
    target_leaves: Vec<Vec<NodeId>>,
    /// Ancestor-or-self chains, node → root order.
    source_chain: Vec<Vec<u32>>,
    target_chain: Vec<Vec<u32>>,
    cols: usize,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn cupid_match_impl(
    source: &PreparedSchema,
    target: &PreparedSchema,
    params: CupidParams,
    labels: &LabelMatrix,
    parallel: bool,
    trace: &Trace,
    arena: &MatchArena,
    precision: Precision,
) -> MatchOutcome {
    let (rows_n, cols_n) = (source.tree().len(), target.tree().len());
    let t_alloc = trace.start();
    let mut matrix = arena.take_matrix(rows_n, cols_n, precision);
    trace.finish(
        t_alloc,
        Span {
            rows: rows_n as u64,
            cells: (rows_n * cols_n) as u64,
            ..Span::empty(Phase::Alloc)
        },
    );

    let ctx = CupidCtx {
        params,
        labels,
        source_leaves: leaf_descendants(source),
        target_leaves: leaf_descendants(target),
        source_chain: ancestor_chains(source),
        target_chain: ancestor_chains(target),
        cols: cols_n,
    };

    // Pass 0 — leaf initialization: ssim from data-type compatibility,
    // wsim = w_struct·ssim + (1 − w_struct)·lsim.
    let t0 = trace.start();
    let leaf_ssim = init_leaf_ssim(source, target, parallel);
    let leaf_wsim = weighted(&ctx, source, target, &leaf_ssim, parallel);
    trace.finish(
        t0,
        Span {
            wave: 0,
            rows: rows_n as u64,
            cells: (rows_n * cols_n) as u64,
            ..Span::empty(Phase::CupidWave)
        },
    );

    // Pass 1 — the propagation sweep: every non-leaf-pair scores by its
    // strong-link fraction and flags the leaves beneath it for
    // increase (+1), decrease (−1), or neither (0).
    let t1 = trace.start();
    let flags = flag_pass(&ctx, source, target, &leaf_wsim, parallel);
    trace.finish(
        t1,
        Span {
            wave: 1,
            rows: rows_n as u64,
            cells: (rows_n * cols_n) as u64,
            ..Span::empty(Phase::CupidWave)
        },
    );

    // Pass 2 — apply the net adjustment per leaf pair, then recompute every
    // wsim from the adjusted leaves (the classic `recompute_wsim`).
    let t2 = trace.start();
    let adjusted = adjust_leaf_ssim(&ctx, source, target, &leaf_ssim, &flags, parallel);
    let adjusted_wsim = weighted(&ctx, source, target, &adjusted, parallel);
    let final_wsim = recompute_wsim(&ctx, source, target, &adjusted_wsim, parallel);
    trace.finish(
        t2,
        Span {
            wave: 2,
            rows: rows_n as u64,
            cells: (rows_n * cols_n) as u64,
            ..Span::empty(Phase::CupidWave)
        },
    );

    match precision {
        Precision::F64 => fill_rows::<f64>(&final_wsim, parallel, &mut matrix),
        Precision::F32 => fill_rows::<f32>(&final_wsim, parallel, &mut matrix),
    }
    let total_qom = matrix.mean_best_per_source();
    MatchOutcome { matrix, total_qom }
}

/// CUPID's `mapping_generation_leaves`: a greedy 1:1 assignment restricted
/// to leaf×leaf pairs with `wsim ≥ th_accept` (internal correspondences are
/// implied by their leaves, never reported directly). The tie-break is the
/// same as [`crate::mapping::extract_mapping`]: descending score, then
/// source id, then target id.
pub fn mapping_generation_leaves(
    source: &PreparedSchema,
    target: &PreparedSchema,
    matrix: &SimMatrix,
    th_accept: f64,
) -> Mapping {
    let mut cells: Vec<Correspondence> = Vec::new();
    for &s in source.leaves() {
        for &t in target.leaves() {
            let score = matrix.get(s, t);
            if score >= th_accept {
                cells.push(Correspondence {
                    source: s,
                    target: t,
                    score,
                });
            }
        }
    }
    cells.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.source.cmp(&b.source))
            .then_with(|| a.target.cmp(&b.target))
    });
    let mut used_source = vec![false; matrix.rows()];
    let mut used_target = vec![false; matrix.cols()];
    let mut pairs = Vec::new();
    for cell in cells {
        if !used_source[cell.source.index()] && !used_target[cell.target.index()] {
            used_source[cell.source.index()] = true;
            used_target[cell.target.index()] = true;
            pairs.push(cell);
        }
    }
    Mapping { pairs }
}

/// Leaf descendants per node, in ascending leaf-id order; a leaf lists
/// itself, so mixed (internal, leaf) pairs fall out of the same formulas.
fn leaf_descendants(schema: &PreparedSchema) -> Vec<Vec<NodeId>> {
    let parents = schema.parents_raw();
    let mut lists = vec![Vec::new(); schema.tree().len()];
    for &leaf in schema.leaves() {
        let mut cur = leaf.index();
        loop {
            lists[cur].push(leaf);
            if cur == 0 {
                break;
            }
            cur = parents[cur] as usize;
        }
    }
    lists
}

/// Ancestor-or-self chain per node (node first, root last).
fn ancestor_chains(schema: &PreparedSchema) -> Vec<Vec<u32>> {
    let parents = schema.parents_raw();
    (0..schema.tree().len())
        .map(|idx| {
            let mut chain = vec![idx as u32];
            let mut cur = idx;
            while cur != 0 {
                cur = parents[cur] as usize;
                chain.push(cur as u32);
            }
            chain
        })
        .collect()
}

/// Dense leaf-pair ssim from data-type compatibility (non-leaf cells stay
/// zero and are never read).
fn init_leaf_ssim(source: &PreparedSchema, target: &PreparedSchema, parallel: bool) -> Vec<f64> {
    let cols = target.tree().len();
    let sleaf = source.leaf_flags_raw();
    let tleaf = target.leaf_flags_raw();
    let rows = par::map_rows(source.tree().len(), parallel, |s| {
        let mut row = vec![0.0f64; cols];
        if sleaf[s] {
            let sp = source.props(NodeId(s as u32));
            for (t, cell) in row.iter_mut().enumerate() {
                if tleaf[t] {
                    *cell =
                        type_similarity(&sp.data_type, &target.props(NodeId(t as u32)).data_type);
                }
            }
        }
        row
    });
    rows.concat()
}

/// `wsim = w_struct·ssim + (1 − w_struct)·lsim` for every leaf pair.
fn weighted(
    ctx: &CupidCtx<'_>,
    source: &PreparedSchema,
    target: &PreparedSchema,
    ssim: &[f64],
    parallel: bool,
) -> Vec<f64> {
    let cols = ctx.cols;
    let w = ctx.params.w_struct;
    let sleaf = source.leaf_flags_raw();
    let tleaf = target.leaf_flags_raw();
    let rows = par::map_rows(source.tree().len(), parallel, |s| {
        let mut row = vec![0.0f64; cols];
        if sleaf[s] {
            for (t, cell) in row.iter_mut().enumerate() {
                if tleaf[t] {
                    let lsim = ctx.labels.get(NodeId(s as u32), NodeId(t as u32)).score;
                    *cell = w * ssim[s * cols + t] + (1.0 - w) * lsim;
                }
            }
        }
        row
    });
    rows.concat()
}

/// The strong-link fraction of a pair: leaves (from either subtree) that
/// participate in at least one leaf link with `wsim ≥ th_accept`, over the
/// total leaf count of both subtrees.
fn strong_link_fraction(ctx: &CupidCtx<'_>, leaf_wsim: &[f64], s: usize, t: usize) -> f64 {
    let sl = &ctx.source_leaves[s];
    let tl = &ctx.target_leaves[t];
    if sl.is_empty() || tl.is_empty() {
        return 0.0;
    }
    let th = ctx.params.th_accept;
    let cols = ctx.cols;
    let mut strong_s = 0usize;
    let mut t_hit = vec![false; tl.len()];
    for &ls in sl {
        let row = &leaf_wsim[ls.index() * cols..];
        let mut hit = false;
        for (k, &lt) in tl.iter().enumerate() {
            if row[lt.index()] >= th {
                hit = true;
                t_hit[k] = true;
            }
        }
        if hit {
            strong_s += 1;
        }
    }
    let strong_t = t_hit.iter().filter(|&&h| h).count();
    (strong_s + strong_t) as f64 / (sl.len() + tl.len()) as f64
}

/// The propagation sweep: flags every non-leaf-pair `+1` (wsim > th_high),
/// `−1` (wsim < th_low), or `0`. Both-leaf pairs never propagate.
fn flag_pass(
    ctx: &CupidCtx<'_>,
    source: &PreparedSchema,
    target: &PreparedSchema,
    leaf_wsim: &[f64],
    parallel: bool,
) -> Vec<i8> {
    let cols = ctx.cols;
    let sleaf = source.leaf_flags_raw();
    let tleaf = target.leaf_flags_raw();
    let rows = par::map_rows(source.tree().len(), parallel, |s| {
        let mut row = vec![0i8; cols];
        for (t, cell) in row.iter_mut().enumerate() {
            if sleaf[s] && tleaf[t] {
                continue;
            }
            let ssim = strong_link_fraction(ctx, leaf_wsim, s, t);
            let lsim = ctx.labels.get(NodeId(s as u32), NodeId(t as u32)).score;
            let wsim = ctx.params.w_struct * ssim + (1.0 - ctx.params.w_struct) * lsim;
            if wsim > ctx.params.th_high {
                *cell = 1;
            } else if wsim < ctx.params.th_low {
                *cell = -1;
            }
        }
        row
    });
    rows.concat()
}

/// Applies each leaf pair's net adjustment: one `c_inc` per flagged-up
/// covering ancestor pair, one `c_dec` per flagged-down, capped into
/// `[0, 1]`. Covering pairs are ancestor-or-self on both sides, minus the
/// leaf pair itself.
fn adjust_leaf_ssim(
    ctx: &CupidCtx<'_>,
    source: &PreparedSchema,
    target: &PreparedSchema,
    leaf_ssim: &[f64],
    flags: &[i8],
    parallel: bool,
) -> Vec<f64> {
    let cols = ctx.cols;
    let sleaf = source.leaf_flags_raw();
    let tleaf = target.leaf_flags_raw();
    let rows = par::map_rows(source.tree().len(), parallel, |s| {
        let mut row = vec![0.0f64; cols];
        if sleaf[s] {
            for (t, cell) in row.iter_mut().enumerate() {
                if !tleaf[t] {
                    continue;
                }
                let (mut inc, mut dec) = (0i32, 0i32);
                for &a in &ctx.source_chain[s] {
                    for &b in &ctx.target_chain[t] {
                        if a as usize == s && b as usize == t {
                            continue;
                        }
                        match flags[a as usize * cols + b as usize] {
                            1 => inc += 1,
                            -1 => dec += 1,
                            _ => {}
                        }
                    }
                }
                let base = leaf_ssim[s * cols + t];
                *cell = (base * ctx.params.c_inc.powi(inc) * ctx.params.c_dec.powi(dec))
                    .clamp(0.0, 1.0);
            }
        }
        row
    });
    rows.concat()
}

/// The final `recompute_wsim`: non-leaf-pair ssim rebuilt from the adjusted
/// leaf wsim, leaf pairs taking their adjusted wsim directly.
fn recompute_wsim(
    ctx: &CupidCtx<'_>,
    source: &PreparedSchema,
    target: &PreparedSchema,
    adjusted_leaf_wsim: &[f64],
    parallel: bool,
) -> Vec<f64> {
    let cols = ctx.cols;
    let sleaf = source.leaf_flags_raw();
    let tleaf = target.leaf_flags_raw();
    let rows = par::map_rows(source.tree().len(), parallel, |s| {
        let mut row = vec![0.0f64; cols];
        for (t, cell) in row.iter_mut().enumerate() {
            if sleaf[s] && tleaf[t] {
                *cell = adjusted_leaf_wsim[s * cols + t];
            } else {
                let ssim = strong_link_fraction(ctx, adjusted_leaf_wsim, s, t);
                let lsim = ctx.labels.get(NodeId(s as u32), NodeId(t as u32)).score;
                *cell = ctx.params.w_struct * ssim + (1.0 - ctx.params.w_struct) * lsim;
            }
        }
        row
    });
    rows.concat()
}

/// Writes the finished wsim grid into the outcome matrix through
/// [`RawRows`], converting once per cell for `f32` storage.
fn fill_rows<S: Score>(wsim: &[f64], parallel: bool, matrix: &mut SimMatrix) {
    let rows_n = matrix.rows();
    let cols_n = matrix.cols();
    let raw = RawRows::<S>::new(matrix).expect("matrix storage matches the kernel scalar");
    par::for_rows_with(
        rows_n,
        parallel,
        || (),
        |_, s| {
            // SAFETY: each row index is visited exactly once, so no two
            // workers write the same row.
            let row = unsafe { raw.row_mut(s) };
            for (cell, &v) in row.iter_mut().zip(&wsim[s * cols_n..][..cols_n]) {
                *cell = S::from_f64(v);
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::Algorithm;
    use crate::model::MatchConfig;
    use crate::session::MatchSession;
    use qmatch_xsd::SchemaTree;

    fn po_like() -> (SchemaTree, SchemaTree) {
        let s = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Quantity", Some(2)),
                ("UnitOfMeasure", Some(2)),
            ],
        );
        let t = SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Items", Some(0)),
                ("Qty", Some(2)),
                ("UOM", Some(2)),
            ],
        );
        (s, t)
    }

    fn run(source: &SchemaTree, target: &SchemaTree) -> MatchOutcome {
        let session = MatchSession::new(MatchConfig::default());
        let (sp, tp) = (session.prepare(source), session.prepare(target));
        session.run(&Algorithm::Cupid, &sp, &tp).unwrap()
    }

    #[test]
    fn self_match_is_strong_everywhere() {
        let (s, _) = po_like();
        let out = run(&s, &s);
        out.matrix.assert_normalized();
        // Every diagonal leaf pair is an exact label + exact type: wsim 1.
        for id in [1u32, 3, 4] {
            assert!(
                out.matrix.get(NodeId(id), NodeId(id)) > 0.95,
                "leaf {id} self-similarity {}",
                out.matrix.get(NodeId(id), NodeId(id))
            );
        }
        assert!(out.total_qom > 0.9);
    }

    #[test]
    fn propagation_lifts_leaves_under_matching_parents() {
        let (s, t) = po_like();
        let session = MatchSession::new(MatchConfig::default());
        let (sp, tp) = (session.prepare(&s), session.prepare(&t));
        let out = session.run(&Algorithm::Cupid, &sp, &tp).unwrap();
        // Quantity/Qty sit under matching subtrees: their wsim must beat
        // the raw linguistic score thanks to the structural axis.
        let qty = out.matrix.get(NodeId(3), NodeId(3));
        assert!(qty > 0.7, "Quantity/Qty wsim {qty}");
        // Unrelated cross pair stays low.
        let cross = out.matrix.get(NodeId(3), NodeId(4));
        assert!(cross < qty, "Quantity/UOM {cross} < {qty}");
    }

    #[test]
    fn leaf_mapping_is_leaf_anchored_and_one_to_one() {
        let (s, t) = po_like();
        let session = MatchSession::new(MatchConfig::default());
        let (sp, tp) = (session.prepare(&s), session.prepare(&t));
        let out = session.run(&Algorithm::Cupid, &sp, &tp).unwrap();
        let mapping =
            mapping_generation_leaves(&sp, &tp, &out.matrix, session.config().cupid.th_accept);
        let mut seen_s = std::collections::HashSet::new();
        let mut seen_t = std::collections::HashSet::new();
        for c in &mapping.pairs {
            assert!(sp.is_leaf(c.source), "{:?} not a leaf", c.source);
            assert!(tp.is_leaf(c.target), "{:?} not a leaf", c.target);
            assert!(seen_s.insert(c.source) && seen_t.insert(c.target));
            assert!(c.score >= session.config().cupid.th_accept);
        }
        // OrderNo is an exact leaf match and must be found.
        assert!(mapping
            .pairs
            .iter()
            .any(|c| c.source == NodeId(1) && c.target == NodeId(1)));
    }

    #[test]
    fn sequential_engine_agrees_exactly() {
        let (s, t) = po_like();
        let session = MatchSession::new(MatchConfig::default());
        let (sp, tp) = (session.prepare(&s), session.prepare(&t));
        let a = session.run(&Algorithm::Cupid, &sp, &tp).unwrap();
        let b = session.run_sequential(&Algorithm::Cupid, &sp, &tp).unwrap();
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.total_qom, b.total_qom);
    }

    #[test]
    fn leaf_descendants_cover_subtrees() {
        let (s, _) = po_like();
        let session = MatchSession::new(MatchConfig::default());
        let sp = session.prepare(&s);
        let lists = leaf_descendants(&sp);
        // Root sees all three leaves; Lines sees its two; a leaf sees itself.
        assert_eq!(lists[0], vec![NodeId(1), NodeId(3), NodeId(4)]);
        assert_eq!(lists[2], vec![NodeId(3), NodeId(4)]);
        assert_eq!(lists[3], vec![NodeId(3)]);
    }
}
