//! The standalone structural matcher.
//!
//! Labels are ignored entirely; two nodes are similar when their *shapes*
//! agree — children (recursively), arity, properties (type/occurrence), and
//! nesting level. This is the paper's second baseline and the component that
//! lets QMatch match the structurally-identical but linguistically-disparate
//! schemas of Figures 7/8 (the Figure 9 experiment).
//!
//! The recursion mirrors CUPID's structural phase: similarity flows up from
//! the leaves through a greedy best-pair alignment of child sets, computed
//! bottom-up over all node pairs (the same memoized O(n·m) discipline as the
//! hybrid).

use super::{greedy_assignment, MatchOutcome};
use crate::arena::MatchArena;
use crate::matrix::{Precision, SimMatrix};
use crate::model::MatchConfig;
use crate::par;
use crate::props::compare_properties;
use crate::session::{MatchSession, PreparedSchema};
use crate::trace::{Phase, Span, Trace};
use qmatch_xsd::{NodeId, SchemaTree};

/// Component weights of the structural similarity. Children dominate, as in
/// the hybrid's weight model; the remainder splits between arity, the
/// property shape, and the level.
const W_CHILDREN: f64 = 0.45;
const W_ARITY: f64 = 0.15;
const W_PROPS: f64 = 0.25;
const W_LEVEL: f64 = 0.15;

/// Runs the structural matcher. `total_qom` is the similarity of the roots.
///
/// Both passes are wavefronted: the bottom-up shape DP by source-node
/// height, the top-down context blend by source-node depth. Bit-identical
/// to [`structural_match_sequential`].
///
/// # Migration
///
/// Use [`MatchSession::run`] with
/// [`Algorithm::Structural`](super::Algorithm::Structural) over prepared
/// schemas.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run(&Algorithm::Structural, ..) over prepared schemas"
)]
pub fn structural_match(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchOutcome {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.structural(&sp, &tp)
}

/// The always-sequential engine: same arithmetic, no threads.
///
/// # Migration
///
/// Use [`MatchSession::run_sequential`] with
/// [`Algorithm::Structural`](super::Algorithm::Structural).
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run_sequential(&Algorithm::Structural, ..) over prepared schemas"
)]
pub fn structural_match_sequential(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchOutcome {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.structural_sequential(&sp, &tp)
}

pub(crate) fn structural_match_impl(
    source: &PreparedSchema,
    target: &PreparedSchema,
    config: &MatchConfig,
    parallel: bool,
    trace: &Trace,
    arena: &MatchArena,
    precision: Precision,
) -> MatchOutcome {
    let (rows_n, cols_n) = (source.tree().len(), target.tree().len());
    // Both passes run in f64 (the context blend reads the shape matrix cell
    // by cell); an f32 request only converts the final matrix. The two big
    // intermediates come from — and the shape pass returns to — the arena.
    let t_alloc = trace.start();
    let mut matrix = arena.take_matrix(rows_n, cols_n, Precision::F64);
    let mut contextual = arena.take_matrix(rows_n, cols_n, Precision::F64);
    trace.finish(
        t_alloc,
        Span {
            rows: (2 * rows_n) as u64,
            cells: (2 * rows_n * cols_n) as u64,
            ..Span::empty(Phase::Alloc)
        },
    );
    for (w, wave) in source.waves_by_height().iter().enumerate() {
        let t0 = trace.start();
        let rows = par::map_rows(wave.len(), parallel, |i| {
            structural_row(source, target, wave[i], config, &matrix)
        });
        for (&s, row) in wave.iter().zip(&rows) {
            matrix.set_row(s, row);
        }
        trace.finish(
            t0,
            Span {
                wave: w as u32,
                rows: wave.len() as u64,
                cells: (wave.len() * cols_n) as u64,
                ..Span::empty(Phase::StructuralWave)
            },
        );
    }
    // Top-down context pass: a pair is only as believable as its parents.
    // Without labels, two same-typed leaves at the same level and order are
    // indistinguishable; blending in the (already contextualized) parent
    // pair's similarity disambiguates them the way CUPID's structural phase
    // propagates context. A row depends only on the parent's row, one depth
    // wave earlier.
    for (w, wave) in source.waves_by_depth().iter().enumerate() {
        let t0 = trace.start();
        let rows = par::map_rows(wave.len(), parallel, |i| {
            context_row(source, target, wave[i], &matrix, &contextual)
        });
        for (&s, row) in wave.iter().zip(&rows) {
            contextual.set_row(s, row);
        }
        trace.finish(
            t0,
            Span {
                wave: w as u32,
                rows: wave.len() as u64,
                cells: (wave.len() * cols_n) as u64,
                ..Span::empty(Phase::ContextWave)
            },
        );
    }
    // The shape matrix is internal: hand its buffer straight back.
    arena.put_matrix(matrix);
    let matrix = contextual.with_precision(precision);
    let total_qom = matrix.get(source.tree().root_id(), target.tree().root_id());
    MatchOutcome { matrix, total_qom }
}

/// One source node's row of the bottom-up shape DP.
fn structural_row(
    source: &PreparedSchema,
    target: &PreparedSchema,
    s: NodeId,
    config: &MatchConfig,
    matrix: &SimMatrix,
) -> Vec<f64> {
    let sn = source.tree().node(s);
    let s_leaf = source.is_leaf(s);
    let s_level = source.level(s);
    let s_props = source.props(s);
    (0..target.tree().len() as u32)
        .map(|t| {
            let t = NodeId(t);
            let t_props = target.props(t);
            match (s_leaf, target.is_leaf(t)) {
                // CUPID-style leaf similarity: the data type dominates (it
                // is the only structural evidence a leaf carries), with the
                // remaining properties and the nesting level refining it.
                (true, true) => {
                    let type_score =
                        crate::props::type_similarity(&s_props.data_type, &t_props.data_type);
                    let props_score = compare_properties(s_props, t_props).score;
                    let level_score = if s_level == target.level(t) { 1.0 } else { 0.0 };
                    0.6 * type_score + 0.2 * props_score + 0.2 * level_score
                }
                // A leaf carries no internal structure to align with a
                // subtree.
                (true, false) | (false, true) => 0.0,
                (false, false) => {
                    let tn = target.tree().node(t);
                    let scores: Vec<Vec<f64>> = sn
                        .children
                        .iter()
                        .map(|&cs| tn.children.iter().map(|&ct| matrix.get(cs, ct)).collect())
                        .collect();
                    let chosen = greedy_assignment(&scores);
                    let kept: f64 = chosen
                        .iter()
                        .filter(|(_, _, v)| *v >= config.threshold)
                        .map(|(_, _, v)| v)
                        .sum();
                    // Directional, like the paper's Rs (Eq. 4): the source's
                    // children must be covered; extra target children are
                    // not a penalty (the target schema may simply be richer).
                    let children_score = kept / sn.children.len() as f64;
                    let arity_score = arity_similarity(sn.children.len(), tn.children.len());
                    let props_score = compare_properties(s_props, t_props).score;
                    let level_score = if s_level == target.level(t) { 1.0 } else { 0.0 };
                    W_CHILDREN * children_score
                        + W_ARITY * arity_score
                        + W_PROPS * props_score
                        + W_LEVEL * level_score
                }
            }
        })
        .collect()
}

/// One source node's row of the top-down context blend.
fn context_row(
    source: &PreparedSchema,
    target: &PreparedSchema,
    s: NodeId,
    matrix: &SimMatrix,
    contextual: &SimMatrix,
) -> Vec<f64> {
    let sn = source.tree().node(s);
    (0..target.tree().len() as u32)
        .map(|t| {
            let t = NodeId(t);
            let tn = target.tree().node(t);
            let raw = matrix.get(s, t);
            match (sn.parent, tn.parent) {
                (None, None) => raw,
                (Some(ps), Some(pt)) => (1.0 - CONTEXT) * raw + CONTEXT * contextual.get(ps, pt),
                // A root never matches a non-root's context.
                _ => (1.0 - CONTEXT) * raw,
            }
        })
        .collect()
}

/// Weight of the parent-pair context in the top-down pass.
const CONTEXT: f64 = 0.25;

/// Directional arity fit: 1.0 when the target offers at least as many
/// children as the source needs, shrinking as the target falls short.
fn arity_similarity(source: usize, target: usize) -> f64 {
    match (source, target) {
        (0, 0) => 1.0,
        (0, _) | (_, 0) => 0.0,
        _ if target >= source => 1.0,
        _ => target as f64 / source as f64,
    }
}

/// Structural similarity of two specific nodes (exposed for diagnostics and
/// tests): equivalent to running the matcher and reading one cell.
#[cfg(test)]
#[allow(deprecated)]
pub(crate) fn pair_similarity(
    source: &SchemaTree,
    target: &SchemaTree,
    s: NodeId,
    t: NodeId,
    config: &MatchConfig,
) -> f64 {
    structural_match(source, target, config).matrix.get(s, t)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the one-shot wrappers stay covered until removal
    use super::*;
    use qmatch_xsd::SchemaTree;

    fn library() -> SchemaTree {
        SchemaTree::from_labels(
            "Library",
            &[
                ("Library", None),
                ("Title", Some(0)),
                ("Book", Some(0)),
                ("number", Some(2)),
                ("character", Some(2)),
                ("Writer", Some(2)),
            ],
        )
    }

    fn human() -> SchemaTree {
        SchemaTree::from_labels(
            "human",
            &[
                ("human", None),
                ("head", Some(0)),
                ("body", Some(0)),
                ("hands", Some(2)),
                ("man", Some(2)),
                ("legs", Some(2)),
            ],
        )
    }

    #[test]
    fn identical_shapes_score_one() {
        // Figures 7/8: structurally identical, linguistically different.
        let out = structural_match(&library(), &human(), &MatchConfig::default());
        assert!(
            (out.total_qom - 1.0).abs() < 1e-9,
            "identical shapes must be structurally perfect: {}",
            out.total_qom
        );
    }

    #[test]
    fn self_match_is_one_everywhere_on_diagonal_structure() {
        let t = library();
        let out = structural_match(&t, &t, &MatchConfig::default());
        assert!((out.total_qom - 1.0).abs() < 1e-9);
        out.matrix.assert_normalized();
    }

    #[test]
    fn sequential_engine_agrees_exactly() {
        let (s, t) = (library(), human());
        let config = MatchConfig::default();
        let a = structural_match(&s, &t, &config);
        let b = structural_match_sequential(&s, &t, &config);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.total_qom, b.total_qom);
    }

    #[test]
    fn different_shapes_score_lower() {
        let deep = SchemaTree::from_labels(
            "a",
            &[("a", None), ("b", Some(0)), ("c", Some(1)), ("d", Some(2))],
        );
        let wide = SchemaTree::from_labels(
            "a",
            &[("a", None), ("b", Some(0)), ("c", Some(0)), ("d", Some(0))],
        );
        let out = structural_match(&deep, &wide, &MatchConfig::default());
        assert!(out.total_qom < 0.8, "chain vs star: {}", out.total_qom);
    }

    #[test]
    fn leaf_vs_internal_gets_no_children_credit() {
        let leafy = SchemaTree::from_labels("x", &[("x", None)]);
        let nested = SchemaTree::from_labels("x", &[("x", None), ("y", Some(0))]);
        let out = structural_match(&leafy, &nested, &MatchConfig::default());
        // Children component 0, arity 0; props + level still match.
        assert!(out.total_qom < 0.5, "{}", out.total_qom);
    }

    #[test]
    fn arity_similarity_cases() {
        assert_eq!(arity_similarity(0, 0), 1.0);
        assert_eq!(arity_similarity(0, 3), 0.0);
        assert_eq!(arity_similarity(3, 0), 0.0);
        // Directional: a richer target fully covers the source's needs...
        assert_eq!(arity_similarity(2, 4), 1.0);
        // ...but a poorer target cannot.
        assert_eq!(arity_similarity(4, 2), 0.5);
        assert_eq!(arity_similarity(4, 4), 1.0);
    }

    #[test]
    fn level_mismatch_costs_the_level_component() {
        // Same subtree shape mounted at different depths.
        let shallow = SchemaTree::from_labels("r", &[("r", None), ("x", Some(0))]);
        let deep = SchemaTree::from_labels("r", &[("r", None), ("m", Some(0)), ("x", Some(1))]);
        let out = structural_match(&shallow, &deep, &MatchConfig::default());
        let s_x = shallow.find_by_label("x").unwrap();
        let d_x = deep.find_by_label("x").unwrap();
        let sim = out.matrix.get(s_x, d_x);
        assert!(
            sim < 1.0 && sim > 0.5,
            "leaf pair at different levels: {sim}"
        );
    }

    #[test]
    fn pair_similarity_matches_matrix_cell() {
        let (s, t) = (library(), human());
        let config = MatchConfig::default();
        let out = structural_match(&s, &t, &config);
        let a = s.find_by_label("Book").unwrap();
        let b = t.find_by_label("body").unwrap();
        assert_eq!(out.matrix.get(a, b), pair_similarity(&s, &t, a, b, &config));
    }

    #[test]
    fn labels_are_completely_ignored() {
        let named = library();
        let renamed = SchemaTree::from_labels(
            "zzz",
            &[
                ("zzz", None),
                ("q1", Some(0)),
                ("q2", Some(0)),
                ("q3", Some(2)),
                ("q4", Some(2)),
                ("q5", Some(2)),
            ],
        );
        let a = structural_match(&named, &renamed, &MatchConfig::default());
        let b = structural_match(&named, &named, &MatchConfig::default());
        assert!((a.total_qom - b.total_qom).abs() < 1e-12);
    }
}
