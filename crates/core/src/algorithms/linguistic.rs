//! The standalone linguistic matcher (CUPID-style name matching).
//!
//! Every source/target node pair is scored purely on its labels via the
//! lexicon ([`qmatch_lexicon::NameMatcher`]); structure is ignored entirely.
//! This is one of the two baselines the paper compares QMatch against, and
//! also the component QMatch uses internally for its label axis.

use super::{LabelMatrix, MatchOutcome};
use crate::arena::MatchArena;
use crate::matrix::{Precision, RawRows, Score, SimMatrix};
use crate::model::MatchConfig;
use crate::par;
use crate::session::{MatchSession, PreparedSchema};
use crate::trace::{Phase, Span, Trace};
use qmatch_xsd::SchemaTree;

/// Runs the linguistic matcher. The outcome's `total_qom` is the mean best
/// label similarity per source node (a flat matcher has no root recursion to
/// summarize with).
///
/// # Migration
///
/// Use [`MatchSession::run`] with
/// [`Algorithm::Linguistic`](super::Algorithm::Linguistic) over prepared
/// schemas; the label cache is then shared across matches.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run(&Algorithm::Linguistic, ..) over prepared schemas"
)]
pub fn linguistic_match(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchOutcome {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.linguistic(&sp, &tp)
}

/// The always-sequential engine: same arithmetic, no threads.
///
/// # Migration
///
/// Use [`MatchSession::run_sequential`] with
/// [`Algorithm::Linguistic`](super::Algorithm::Linguistic).
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run_sequential(&Algorithm::Linguistic, ..) over prepared schemas"
)]
pub fn linguistic_match_sequential(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
) -> MatchOutcome {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.linguistic_sequential(&sp, &tp)
}

/// Like `linguistic_match`, but with a caller-supplied
/// [`NameMatcher`](qmatch_lexicon::NameMatcher) (e.g. one whose thesaurus was extended for the schemas' domain).
///
/// # Migration
///
/// Build the session with [`MatchSession::with_matcher`] and call
/// [`MatchSession::run`].
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::with_matcher(..) + MatchSession::run(&Algorithm::Linguistic, ..)"
)]
pub fn linguistic_match_with(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
    matcher: &qmatch_lexicon::NameMatcher,
) -> MatchOutcome {
    let session = MatchSession::with_matcher(*config, matcher.clone());
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    session.linguistic(&sp, &tp)
}

pub(crate) fn linguistic_match_impl(
    source: &PreparedSchema,
    target: &PreparedSchema,
    labels: &LabelMatrix,
    parallel: bool,
    trace: &Trace,
    arena: &MatchArena,
    precision: Precision,
) -> MatchOutcome {
    let (rows_n, cols_n) = (source.tree().len(), target.tree().len());
    let t_alloc = trace.start();
    let mut matrix = arena.take_matrix(rows_n, cols_n, precision);
    trace.finish(
        t_alloc,
        Span {
            rows: rows_n as u64,
            cells: (rows_n * cols_n) as u64,
            ..Span::empty(Phase::Alloc)
        },
    );
    // A flat matcher: every row is independent, so this is one wave.
    let t0 = trace.start();
    match precision {
        Precision::F64 => fill_rows::<f64>(labels, parallel, &mut matrix),
        Precision::F32 => fill_rows::<f32>(labels, parallel, &mut matrix),
    }
    let total_qom = matrix.mean_best_per_source();
    trace.finish(
        t0,
        Span {
            rows: rows_n as u64,
            cells: (rows_n * cols_n) as u64,
            ..Span::empty(Phase::Linguistic)
        },
    );
    MatchOutcome { matrix, total_qom }
}

/// Writes every label score in place through [`RawRows`], gathering from the
/// distinct score table's contiguous rows.
fn fill_rows<S: Score>(labels: &LabelMatrix, parallel: bool, matrix: &mut SimMatrix) {
    let rows_n = matrix.rows();
    let ltab = labels.score_table();
    let lcols = labels.distinct_cols_raw();
    let (sids, tids) = (labels.source_ids_raw(), labels.target_ids_raw());
    let raw = RawRows::<S>::new(matrix).expect("matrix storage matches the kernel scalar");
    par::for_rows_with(
        rows_n,
        parallel,
        || (),
        |_, s| {
            // SAFETY: each row index is visited exactly once, so no two
            // workers write the same row.
            let row = unsafe { raw.row_mut(s) };
            let lrow = &ltab[sids[s] as usize * lcols..][..lcols];
            for (cell, &t) in row.iter_mut().zip(tids) {
                *cell = S::from_f64(lrow[t as usize]);
            }
        },
    );
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the one-shot wrappers stay covered until removal
    use super::*;
    use qmatch_xsd::SchemaTree;

    fn po_like() -> (SchemaTree, SchemaTree) {
        let s = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Quantity", Some(0)),
                ("UnitOfMeasure", Some(0)),
            ],
        );
        let t = SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Qty", Some(0)),
                ("UOM", Some(0)),
            ],
        );
        (s, t)
    }

    #[test]
    fn identical_labels_score_one() {
        let (s, t) = po_like();
        let out = linguistic_match(&s, &t, &MatchConfig::default());
        let s_orderno = s.find_by_label("OrderNo").unwrap();
        let t_orderno = t.find_by_label("OrderNo").unwrap();
        assert!((out.matrix.get(s_orderno, t_orderno) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_relaxed_pairs_score_high_but_below_exact() {
        let (s, t) = po_like();
        let out = linguistic_match(&s, &t, &MatchConfig::default());
        let qty = out.matrix.get(
            s.find_by_label("Quantity").unwrap(),
            t.find_by_label("Qty").unwrap(),
        );
        let uom = out.matrix.get(
            s.find_by_label("UnitOfMeasure").unwrap(),
            t.find_by_label("UOM").unwrap(),
        );
        assert!(qty > 0.7 && qty < 1.0, "Quantity/Qty = {qty}");
        assert!(uom > 0.7 && uom < 1.0, "UnitOfMeasure/UOM = {uom}");
    }

    #[test]
    fn total_is_mean_best_per_source() {
        let (s, t) = po_like();
        let out = linguistic_match(&s, &t, &MatchConfig::default());
        assert!((out.total_qom - out.matrix.mean_best_per_source()).abs() < 1e-12);
        assert!(
            out.total_qom > 0.7,
            "PO schemas are linguistically close: {}",
            out.total_qom
        );
    }

    #[test]
    fn disparate_schemas_score_low() {
        let library = SchemaTree::from_labels(
            "Library",
            &[
                ("Library", None),
                ("Title", Some(0)),
                ("Book", Some(0)),
                ("number", Some(2)),
                ("character", Some(2)),
                ("Writer", Some(2)),
            ],
        );
        let human = SchemaTree::from_labels(
            "human",
            &[
                ("human", None),
                ("head", Some(0)),
                ("body", Some(0)),
                ("hands", Some(2)),
                ("man", Some(2)),
                ("legs", Some(2)),
            ],
        );
        let out = linguistic_match(&library, &human, &MatchConfig::default());
        assert!(
            out.total_qom < 0.4,
            "Fig. 9's linguistic score must be low: {}",
            out.total_qom
        );
    }

    #[test]
    fn self_match_totals_one() {
        let (s, _) = po_like();
        let out = linguistic_match(&s, &s, &MatchConfig::default());
        assert!((out.total_qom - 1.0).abs() < 1e-9);
        out.matrix.assert_normalized();
    }

    #[test]
    fn sequential_engine_agrees_exactly() {
        let (s, t) = po_like();
        let config = MatchConfig::default();
        let a = linguistic_match(&s, &t, &config);
        let b = linguistic_match_sequential(&s, &t, &config);
        assert_eq!(a.matrix, b.matrix);
        assert_eq!(a.total_qom, b.total_qom);
    }

    #[test]
    fn matrix_dimensions_match_trees() {
        let (s, t) = po_like();
        let out = linguistic_match(&s, &t, &MatchConfig::default());
        assert_eq!(out.matrix.rows(), s.len());
        assert_eq!(out.matrix.cols(), t.len());
    }
}
