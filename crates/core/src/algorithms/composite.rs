//! COMA-style composite matching (the paper's §7 ongoing work: "evaluating
//! the quality of match and the performance of QMatch with other hybrid and
//! composite algorithms such as CUPID and COMA [5]").
//!
//! Where QMatch is a *hybrid* (one algorithm combining several kinds of
//! evidence inside its recursion), a *composite* matcher runs several
//! independent matchers and combines their similarity matrices afterwards.
//! This module implements the combination strategies COMA popularized —
//! max, min, average, and weighted sums — over any set of component
//! outcomes, so QMatch can be compared against (and itself participate in)
//! composite configurations.

use super::{tree_edit_match, MatchOutcome};
use crate::matrix::SimMatrix;
use crate::model::MatchConfig;
use crate::session::{MatchSession, PreparedSchema};
use crate::trace::{Phase, Span};
use qmatch_xsd::{NodeId, SchemaTree};

/// How component similarity matrices are aggregated per cell.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregation {
    /// Optimistic: the best component wins (`COMA`'s `Max`).
    Max,
    /// Pessimistic: all components must agree (`COMA`'s `Min`).
    Min,
    /// The arithmetic mean (`COMA`'s `Average`).
    Average,
    /// A weighted sum; the weights are normalized over their total, so any
    /// positive weights work. Must supply one weight per component.
    Weighted(Vec<f64>),
}

/// A component matcher usable inside a composite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Component {
    /// CUPID-style label matcher.
    Linguistic,
    /// Label-free structure matcher.
    Structural,
    /// QMatch itself (a hybrid inside a composite, as COMA allows).
    Hybrid,
    /// Tree-edit-distance baseline.
    TreeEdit,
}

impl Component {
    /// Runs the component one-shot (an ephemeral session per call; inside a
    /// composite, components share the composite's session instead).
    pub fn run(
        self,
        source: &SchemaTree,
        target: &SchemaTree,
        config: &MatchConfig,
    ) -> MatchOutcome {
        let session = MatchSession::new(*config);
        let (sp, tp) = (session.prepare(source), session.prepare(target));
        self.run_in(&session, &sp, &tp)
    }

    /// Runs the component inside a session, over prepared schemas (label
    /// comparisons come from the session's cross-schema cache).
    fn run_in(
        self,
        session: &MatchSession,
        source: &PreparedSchema,
        target: &PreparedSchema,
    ) -> MatchOutcome {
        match self {
            Component::Linguistic => session.linguistic(source, target),
            Component::Structural => session.structural(source, target),
            Component::Hybrid => session.hybrid(source, target),
            // The edit-distance baseline has no per-schema artifacts to
            // amortize; it runs straight off the trees.
            Component::TreeEdit => tree_edit_match(source.tree(), target.tree(), session.config()),
        }
    }
}

/// Errors from composite construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompositeError {
    /// No components were supplied.
    NoComponents,
    /// A `Weighted` aggregation's weight count differs from the component
    /// count, or the weights are non-positive.
    BadWeights {
        /// Human-readable description.
        detail: &'static str,
    },
}

impl std::fmt::Display for CompositeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompositeError::NoComponents => f.write_str("composite needs at least one component"),
            CompositeError::BadWeights { detail } => write!(f, "bad weights: {detail}"),
        }
    }
}

impl std::error::Error for CompositeError {}

/// Runs `components` and combines their matrices with `aggregation`.
///
/// The outcome's `total_qom` is the aggregated score of the two roots,
/// consistent with the recursive matchers.
///
/// # Migration
///
/// Use [`MatchSession::run`] with
/// [`Algorithm::Composite`](super::Algorithm::Composite) over prepared
/// schemas; components then share the session's label cache.
#[deprecated(
    since = "0.1.0",
    note = "use MatchSession::run(&Algorithm::Composite { .. }, ..) over prepared schemas"
)]
pub fn composite_match(
    source: &SchemaTree,
    target: &SchemaTree,
    config: &MatchConfig,
    components: &[Component],
    aggregation: &Aggregation,
) -> Result<MatchOutcome, CompositeError> {
    let session = MatchSession::new(*config);
    let (sp, tp) = (session.prepare(source), session.prepare(target));
    composite_match_impl(&session, &sp, &tp, components, aggregation)
}

pub(crate) fn composite_match_impl(
    session: &MatchSession,
    source: &PreparedSchema,
    target: &PreparedSchema,
    components: &[Component],
    aggregation: &Aggregation,
) -> Result<MatchOutcome, CompositeError> {
    if components.is_empty() {
        return Err(CompositeError::NoComponents);
    }
    if let Aggregation::Weighted(weights) = aggregation {
        if weights.len() != components.len() {
            return Err(CompositeError::BadWeights {
                detail: "need exactly one weight per component",
            });
        }
        if weights.iter().any(|&w| w <= 0.0 || !w.is_finite()) {
            return Err(CompositeError::BadWeights {
                detail: "weights must be positive and finite",
            });
        }
    }
    // Components are independent whole matchers — run them concurrently
    // (each may additionally wavefront internally). Their own spans record
    // through the shared session and may interleave across components.
    let outcomes: Vec<MatchOutcome> = crate::par::map_rows(
        components.len(),
        cfg!(feature = "parallel") && components.len() > 1,
        |i| components[i].run_in(session, source, target),
    );
    let t0 = session.trace().start();
    let matrix = combine(outcomes.iter().map(|o| &o.matrix), aggregation);
    let total_qom = matrix.get(source.tree().root_id(), target.tree().root_id());
    // The component matrices are spent once combined: recycle their buffers
    // into the session arena for the next match.
    for outcome in outcomes {
        session.recycle(outcome);
    }
    session.trace().finish(
        t0,
        Span {
            rows: components.len() as u64,
            cells: (matrix.rows() * matrix.cols()) as u64,
            ..Span::empty(Phase::CompositeCombine)
        },
    );
    Ok(MatchOutcome { matrix, total_qom })
}

/// Combines pre-computed matrices (all must share dimensions).
pub fn combine<'m>(
    matrices: impl IntoIterator<Item = &'m SimMatrix>,
    aggregation: &Aggregation,
) -> SimMatrix {
    let matrices: Vec<&SimMatrix> = matrices.into_iter().collect();
    assert!(!matrices.is_empty(), "combine needs at least one matrix");
    let (rows, cols) = (matrices[0].rows(), matrices[0].cols());
    for m in &matrices {
        assert_eq!(
            (m.rows(), m.cols()),
            (rows, cols),
            "matrix dimensions must agree"
        );
    }
    let weights: Option<Vec<f64>> = match aggregation {
        Aggregation::Weighted(w) => {
            let total: f64 = w.iter().sum();
            Some(w.iter().map(|x| x / total).collect())
        }
        _ => None,
    };
    let mut out = SimMatrix::zeros(rows, cols);
    for r in 0..rows {
        for c in 0..cols {
            let (source, target) = (NodeId(r as u32), NodeId(c as u32));
            let cells = matrices.iter().map(|m| m.get(source, target));
            let value = match aggregation {
                Aggregation::Max => cells.fold(0.0f64, f64::max),
                Aggregation::Min => cells.fold(1.0f64, f64::min),
                Aggregation::Average => cells.sum::<f64>() / matrices.len() as f64,
                Aggregation::Weighted(_) => {
                    let weights = weights.as_ref().expect("validated above");
                    cells.zip(weights).map(|(v, w)| v * w).sum()
                }
            };
            out.set(source, target, value);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the one-shot wrappers stay covered until removal
    use super::*;

    fn trees() -> (SchemaTree, SchemaTree) {
        let a = SchemaTree::from_labels(
            "PO",
            &[("PO", None), ("OrderNo", Some(0)), ("Quantity", Some(0))],
        );
        let b = SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Qty", Some(0)),
            ],
        );
        (a, b)
    }

    fn matrices() -> (SimMatrix, SimMatrix) {
        let mut a = SimMatrix::zeros(2, 2);
        a.set(NodeId(0), NodeId(0), 0.8);
        a.set(NodeId(1), NodeId(1), 0.2);
        let mut b = SimMatrix::zeros(2, 2);
        b.set(NodeId(0), NodeId(0), 0.4);
        b.set(NodeId(1), NodeId(1), 0.6);
        (a, b)
    }

    #[test]
    fn max_min_average_combinations() {
        let (a, b) = matrices();
        let max = combine([&a, &b], &Aggregation::Max);
        assert_eq!(max.get(NodeId(0), NodeId(0)), 0.8);
        assert_eq!(max.get(NodeId(1), NodeId(1)), 0.6);
        let min = combine([&a, &b], &Aggregation::Min);
        assert_eq!(min.get(NodeId(0), NodeId(0)), 0.4);
        assert_eq!(min.get(NodeId(1), NodeId(1)), 0.2);
        let avg = combine([&a, &b], &Aggregation::Average);
        assert!((avg.get(NodeId(0), NodeId(0)) - 0.6).abs() < 1e-12);
        assert!((avg.get(NodeId(1), NodeId(1)) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn weighted_combination_normalizes() {
        let (a, b) = matrices();
        // Weights 3:1 — no need to pre-normalize.
        let w = combine([&a, &b], &Aggregation::Weighted(vec![3.0, 1.0]));
        assert!((w.get(NodeId(0), NodeId(0)) - (0.75 * 0.8 + 0.25 * 0.4)).abs() < 1e-12);
    }

    #[test]
    fn single_matrix_is_identity_for_every_aggregation() {
        let (a, _) = matrices();
        for agg in [Aggregation::Max, Aggregation::Min, Aggregation::Average] {
            assert_eq!(combine([&a], &agg), a);
        }
        assert_eq!(combine([&a], &Aggregation::Weighted(vec![7.0])), a);
    }

    #[test]
    fn composite_runs_real_components() {
        let (s, t) = trees();
        let config = MatchConfig::default();
        let out = composite_match(
            &s,
            &t,
            &config,
            &[Component::Linguistic, Component::Structural],
            &Aggregation::Average,
        )
        .unwrap();
        out.matrix.assert_normalized();
        assert!(out.total_qom > 0.0);
    }

    #[test]
    fn composite_max_never_below_any_component() {
        let (s, t) = trees();
        let config = MatchConfig::default();
        let components = [
            Component::Linguistic,
            Component::Structural,
            Component::Hybrid,
        ];
        let out = composite_match(&s, &t, &config, &components, &Aggregation::Max).unwrap();
        for c in components {
            let alone = c.run(&s, &t, &config);
            for (sid, tid, v) in alone.matrix.iter() {
                assert!(out.matrix.get(sid, tid) + 1e-12 >= v);
            }
        }
    }

    #[test]
    fn composite_rejects_bad_inputs() {
        let (s, t) = trees();
        let config = MatchConfig::default();
        assert_eq!(
            composite_match(&s, &t, &config, &[], &Aggregation::Max).unwrap_err(),
            CompositeError::NoComponents
        );
        assert!(matches!(
            composite_match(
                &s,
                &t,
                &config,
                &[Component::Linguistic],
                &Aggregation::Weighted(vec![1.0, 2.0])
            ),
            Err(CompositeError::BadWeights { .. })
        ));
        assert!(matches!(
            composite_match(
                &s,
                &t,
                &config,
                &[Component::Linguistic],
                &Aggregation::Weighted(vec![0.0])
            ),
            Err(CompositeError::BadWeights { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn combine_panics_on_dimension_mismatch() {
        let a = SimMatrix::zeros(2, 2);
        let b = SimMatrix::zeros(3, 2);
        combine([&a, &b], &Aggregation::Max);
    }

    #[test]
    fn error_messages() {
        assert!(CompositeError::NoComponents
            .to_string()
            .contains("at least one"));
        assert!(CompositeError::BadWeights { detail: "x" }
            .to_string()
            .contains("x"));
    }
}
