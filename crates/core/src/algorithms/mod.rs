//! The match algorithms: linguistic, structural, hybrid (QMatch, Figure 3),
//! and a tree-edit-distance baseline.
//!
//! The engines are selected through the [`Algorithm`] enum and executed by
//! [`MatchSession::run`] over prepared schemas; every run returns a
//! [`MatchOutcome`] holding the full node-pair similarity matrix plus the
//! whole-schema QoM, so mapping extraction and evaluation treat them
//! uniformly. The old per-algorithm free functions (`hybrid_match`, …)
//! remain as `#[deprecated]` one-shot wrappers over an ephemeral session.
//!
//! The engines execute in level-synchronous *waves* (see DESIGN.md): the
//! label axis is precomputed into an immutable [`LabelMatrix`], and the
//! bottom-up TreeMatch recurrences fill whole source-node rows concurrently.
//! With the `parallel` feature disabled every wave runs sequentially and
//! produces bit-identical matrices.

mod composite;
mod cupid;
mod hybrid;
mod linguistic;
mod structural;
mod tree_edit;

#[allow(deprecated)]
pub use composite::composite_match;
pub use composite::{Aggregation, Component, CompositeError};
pub use cupid::mapping_generation_leaves;
#[allow(deprecated)]
pub use hybrid::{hybrid_match, hybrid_match_sequential, hybrid_match_with};
pub use hybrid::{hybrid_root_category, hybrid_root_category_from};
#[allow(deprecated)]
pub use linguistic::{linguistic_match, linguistic_match_sequential, linguistic_match_with};
#[allow(deprecated)]
pub use structural::{structural_match, structural_match_sequential};
pub use tree_edit::tree_edit_match;

pub(crate) use composite::composite_match_impl;
pub(crate) use cupid::cupid_match_impl;
pub(crate) use hybrid::{
    hybrid_match_impl, hybrid_rematch_impl, root_category_with_label, use_parallel,
};
pub(crate) use linguistic::linguistic_match_impl;
pub(crate) use structural::structural_match_impl;

use crate::matrix::SimMatrix;
use crate::model::{LexiconMode, MatchConfig};
use crate::session::{MatchSession, PreparedSchema};
use qmatch_lexicon::name_match::{LabelGrade, NameMatch, NameMatcher};
use qmatch_lexicon::thesaurus::Thesaurus;
use qmatch_lexicon::tokenize::tokenize;
use qmatch_xsd::{NodeId, SchemaTree};

/// Selects which engine [`MatchSession::run`] executes — the consolidated
/// v1 entry point replacing the per-algorithm free functions
/// (`hybrid_match`, `structural_match`, …, now `#[deprecated]` thin
/// wrappers).
///
/// Prepare each schema once with [`MatchSession::prepare`], then run any
/// algorithm over the prepared pair; label comparisons share the session's
/// cross-schema cache across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Algorithm {
    /// QMatch (paper Figure 3) — the session default.
    Hybrid,
    /// CUPID-style label matcher (labels only).
    Linguistic,
    /// Label-free structure matcher.
    Structural,
    /// Full-fidelity CUPID (Madhavan et al., VLDB 2001): structural
    /// similarity propagation with `th_high`/`th_low` thresholds and
    /// `c_inc`/`c_dec` adjustment over the leaf initialization (see
    /// [`crate::model::CupidParams`]).
    Cupid,
    /// Nierman–Jagadish-style tree-edit-distance baseline.
    TreeEdit,
    /// COMA-style composite: run several components, aggregate per cell.
    Composite {
        /// The component matchers to run.
        components: Vec<Component>,
        /// How the component matrices combine.
        aggregation: Aggregation,
    },
}

impl Algorithm {
    /// Stable lowercase name (CLI/HTTP `algo=` values).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Hybrid => "hybrid",
            Algorithm::Linguistic => "linguistic",
            Algorithm::Structural => "structural",
            Algorithm::Cupid => "cupid",
            Algorithm::TreeEdit => "tree-edit",
            Algorithm::Composite { .. } => "composite",
        }
    }
}

/// The result of running a match algorithm.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// Similarity for every (source node, target node) pair.
    pub matrix: SimMatrix,
    /// The whole-schema match value. For the recursive algorithms this is
    /// the QoM of the two roots (what Figure 3 "presents to the user"); for
    /// the flat linguistic matcher it is the mean best label similarity per
    /// source node.
    pub total_qom: f64,
}

/// The label matcher for a lexicon mode (with or without the thesaurus).
pub(crate) fn matcher_for_mode(mode: LexiconMode) -> NameMatcher {
    match mode {
        LexiconMode::Full => NameMatcher::with_default_thesaurus(),
        LexiconMode::FuzzyOnly | LexiconMode::ExactOnly => NameMatcher::new(Thesaurus::new()),
    }
}

/// Compares one label pair directly under a lexicon mode — the single-pair
/// (diagnostic) path; whole-schema runs go through [`LabelMatrix`], which
/// performs the identical computation per distinct pair.
pub(crate) fn compare_single_labels(
    a: &str,
    b: &str,
    mode: LexiconMode,
    matcher: &NameMatcher,
) -> NameMatch {
    match mode {
        LexiconMode::ExactOnly => {
            if a.to_lowercase() == b.to_lowercase() {
                NameMatch {
                    grade: LabelGrade::Exact,
                    score: 1.0,
                }
            } else {
                NameMatch {
                    grade: LabelGrade::None,
                    score: 0.0,
                }
            }
        }
        LexiconMode::Full | LexiconMode::FuzzyOnly => {
            matcher.compare_tokens(&tokenize(a), &tokenize(b))
        }
    }
}

/// Precomputed label-similarity matrix shared by the engines.
///
/// Each distinct source/target label pair is compared exactly once into a
/// dense `distinct_src × distinct_tgt` table of [`NameMatch`]es; lookups are
/// then two array reads and a multiply — no hashing, no mutation, no locks.
/// The table is built by [`crate::session::MatchSession`], whose
/// cross-schema `(Symbol, Symbol)` cache means a distinct pair already seen
/// in an earlier match of the same session is not even re-compared; these
/// constructors spin up an ephemeral session for the one-shot case.
pub struct LabelMatrix {
    source_ids: Vec<u32>,
    target_ids: Vec<u32>,
    distinct_cols: usize,
    table: Vec<NameMatch>,
}

impl LabelMatrix {
    /// Builds the matrix for a lexicon mode (constructing the matcher).
    pub fn new(source: &SchemaTree, target: &SchemaTree, mode: LexiconMode) -> LabelMatrix {
        Self::with_matcher(source, target, mode, &matcher_for_mode(mode))
    }

    /// Builds the matrix over a caller-supplied matcher (custom thesaurus).
    pub fn with_matcher(
        source: &SchemaTree,
        target: &SchemaTree,
        mode: LexiconMode,
        matcher: &NameMatcher,
    ) -> LabelMatrix {
        let config = MatchConfig {
            lexicon: mode,
            ..MatchConfig::default()
        };
        let session = MatchSession::with_matcher(config, matcher.clone());
        let (sp, tp) = (session.prepare(source), session.prepare(target));
        session.pair_labels(&sp, &tp)
    }

    /// Assembles a matrix from session-computed parts: per-node distinct
    /// ids for both trees and the dense distinct-pair table.
    pub(crate) fn from_parts(
        source_ids: Vec<u32>,
        target_ids: Vec<u32>,
        distinct_cols: usize,
        table: Vec<NameMatch>,
    ) -> LabelMatrix {
        LabelMatrix {
            source_ids,
            target_ids,
            distinct_cols,
            table,
        }
    }

    /// The label comparison for a source and a target node.
    #[inline]
    pub fn get(&self, s: NodeId, t: NodeId) -> NameMatch {
        let row = self.source_ids[s.index()] as usize;
        let col = self.target_ids[t.index()] as usize;
        self.table[row * self.distinct_cols + col]
    }

    /// Number of distinct label pairs held (the table size).
    pub fn distinct_pairs(&self) -> usize {
        self.table.len()
    }

    /// The distinct score table flattened to `f64`, row-major — the hybrid
    /// kernel gathers label scores from its contiguous rows instead of going
    /// through [`LabelMatrix::get`]'s `NodeId` arithmetic per cell.
    pub(crate) fn score_table(&self) -> Vec<f64> {
        self.table.iter().map(|m| m.score).collect()
    }

    /// Per-source-node row indices into the distinct table.
    pub(crate) fn source_ids_raw(&self) -> &[u32] {
        &self.source_ids
    }

    /// Per-target-node column indices into the distinct table.
    pub(crate) fn target_ids_raw(&self) -> &[u32] {
        &self.target_ids
    }

    /// Width (distinct target labels) of the distinct table.
    pub(crate) fn distinct_cols_raw(&self) -> usize {
        self.distinct_cols
    }

    /// Height (distinct source labels) of the distinct table.
    pub(crate) fn distinct_rows_raw(&self) -> usize {
        self.table
            .len()
            .checked_div(self.distinct_cols)
            .unwrap_or(0)
    }

    /// One distinct source label's comparison row — the unit the evolved
    /// label build copies wholesale for labels shared between revisions.
    pub(crate) fn distinct_row_raw(&self, row: usize) -> &[NameMatch] {
        &self.table[row * self.distinct_cols..(row + 1) * self.distinct_cols]
    }
}

// The full table is thousands of cells; a dimensional summary is what a
// debug dump of a containing struct (e.g. `evolve::Rematch`) wants.
impl std::fmt::Debug for LabelMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelMatrix")
            .field("source_nodes", &self.source_ids.len())
            .field("target_nodes", &self.target_ids.len())
            .field("distinct_rows", &self.distinct_rows_raw())
            .field("distinct_cols", &self.distinct_cols)
            .finish_non_exhaustive()
    }
}

/// Batch matching: runs the hybrid matcher over every pair, sharing one
/// matcher/thesaurus build and one session-wide label cache, in parallel
/// over the pairs with the `parallel` feature. Outcomes come back in input
/// order.
pub fn match_many(pairs: &[(SchemaTree, SchemaTree)], config: &MatchConfig) -> Vec<MatchOutcome> {
    match_many_with(pairs, config, &matcher_for_mode(config.lexicon))
}

/// [`match_many`] over a caller-supplied matcher (custom thesaurus).
pub fn match_many_with(
    pairs: &[(SchemaTree, SchemaTree)],
    config: &MatchConfig,
    matcher: &NameMatcher,
) -> Vec<MatchOutcome> {
    let session = MatchSession::with_matcher(*config, matcher.clone());
    let prepared: Vec<(PreparedSchema, PreparedSchema)> = pairs
        .iter()
        .map(|(source, target)| (session.prepare(source), session.prepare(target)))
        .collect();
    let refs: Vec<(&PreparedSchema, &PreparedSchema)> =
        prepared.iter().map(|(s, t)| (s, t)).collect();
    session.match_corpus(&refs)
}

/// Post-order traversal of a tree's node ids (children before parents).
pub(crate) fn postorder(tree: &SchemaTree) -> Vec<NodeId> {
    // The arena is built pre-order, so reversing index order yields a valid
    // bottom-up order (every child has a higher index than its parent).
    (0..tree.len() as u32).rev().map(NodeId).collect()
}

/// Bottom-up waves for the TreeMatch DP: wave `k` holds every node of
/// *height* `k` (leaves first). A row's recurrence reads only child rows,
/// which sit in strictly lower waves, so all rows of one wave can be
/// computed concurrently.
pub(crate) fn waves_by_height(tree: &SchemaTree) -> Vec<Vec<NodeId>> {
    let mut height = vec![0u32; tree.len()];
    for idx in (0..tree.len()).rev() {
        // Children have higher indices, so their heights are already final.
        let node = tree.node(NodeId(idx as u32));
        height[idx] = node
            .children
            .iter()
            .map(|c| height[c.index()] + 1)
            .max()
            .unwrap_or(0);
    }
    let max_height = height.iter().copied().max().unwrap_or(0) as usize;
    let mut waves = vec![Vec::new(); max_height + 1];
    for (idx, &h) in height.iter().enumerate() {
        waves[h as usize].push(NodeId(idx as u32));
    }
    waves
}

/// Top-down waves: wave `k` holds every node at nesting level `k`. A
/// context row reads only the parent's row, one wave earlier.
pub(crate) fn waves_by_depth(tree: &SchemaTree) -> Vec<Vec<NodeId>> {
    let max_level = tree.iter().map(|(_, n)| n.level).max().unwrap_or(0) as usize;
    let mut waves = vec![Vec::new(); max_level + 1];
    for (id, node) in tree.iter() {
        waves[node.level as usize].push(id);
    }
    waves
}

/// Greedy 1:1 assignment over the cross product of two id slices: pairs are
/// taken in descending score order, skipping already-used nodes. Returns the
/// chosen pairs `(source_child_index, target_child_index, score)`.
pub(crate) fn greedy_assignment(
    scores: &[Vec<f64>], // scores[i][j] for source child i vs target child j
) -> Vec<(usize, usize, f64)> {
    let rows = scores.len();
    let cols = scores.first().map_or(0, Vec::len);
    let mut pairs: Vec<(usize, usize, f64)> = Vec::with_capacity(rows * cols);
    for (i, row) in scores.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v > 0.0 {
                pairs.push((i, j, v));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut used_i = vec![false; rows];
    let mut used_j = vec![false; cols];
    let mut out = Vec::new();
    for (i, j, v) in pairs {
        if !used_i[i] && !used_j[j] {
            used_i[i] = true;
            used_j[j] = true;
            out.push((i, j, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the one-shot wrappers stay covered until removal
    use super::*;
    use qmatch_xsd::SchemaTree;

    fn tiny() -> SchemaTree {
        SchemaTree::from_labels(
            "r",
            &[("r", None), ("a", Some(0)), ("b", Some(0)), ("c", Some(1))],
        )
    }

    #[test]
    fn postorder_puts_children_before_parents() {
        let t = tiny();
        let order = postorder(&t);
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for (id, node) in t.iter() {
            for &child in &node.children {
                assert!(
                    pos(child) < pos(id),
                    "child {child:?} must precede parent {id:?}"
                );
            }
        }
    }

    #[test]
    fn waves_by_height_order_children_strictly_below_parents() {
        let t = tiny();
        let waves = waves_by_height(&t);
        let wave_of = |id: NodeId| {
            waves
                .iter()
                .position(|w| w.contains(&id))
                .expect("every node sits in exactly one wave")
        };
        let mut seen = 0;
        for w in &waves {
            seen += w.len();
        }
        assert_eq!(seen, t.len());
        for (id, node) in t.iter() {
            for &child in &node.children {
                assert!(wave_of(child) < wave_of(id), "{child:?} below {id:?}");
            }
        }
        // r has height 2 via a→c; leaves b and c share wave 0.
        assert_eq!(waves.len(), 3);
        assert_eq!(waves[0], vec![NodeId(2), NodeId(3)]);
        assert_eq!(waves[1], vec![NodeId(1)]);
        assert_eq!(waves[2], vec![NodeId(0)]);
    }

    #[test]
    fn waves_by_depth_put_parents_strictly_before_children() {
        let t = tiny();
        let waves = waves_by_depth(&t);
        assert_eq!(waves[0], vec![NodeId(0)]);
        assert_eq!(waves[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(waves[2], vec![NodeId(3)]);
    }

    #[test]
    fn label_matrix_is_indexed_by_distinct_labels() {
        let s = SchemaTree::from_labels("x", &[("x", None), ("dup", Some(0)), ("dup", Some(0))]);
        let t = tiny();
        let m = LabelMatrix::new(&s, &t, LexiconMode::Full);
        let m1 = m.get(NodeId(1), NodeId(0));
        let m2 = m.get(NodeId(2), NodeId(0));
        assert_eq!(m1, m2);
        // 2 distinct source labels × 4 distinct target labels.
        assert_eq!(m.distinct_pairs(), 8, "table covers distinct label pairs");
    }

    #[test]
    fn label_matrix_exact_only_mode_is_string_equality() {
        let s = SchemaTree::from_labels("x", &[("Writer", None)]);
        let t = SchemaTree::from_labels("y", &[("Author", None)]);
        let full = LabelMatrix::new(&s, &t, LexiconMode::Full);
        assert_eq!(full.get(NodeId(0), NodeId(0)).grade, LabelGrade::Exact);
        let exact = LabelMatrix::new(&s, &t, LexiconMode::ExactOnly);
        assert_eq!(exact.get(NodeId(0), NodeId(0)).grade, LabelGrade::None);
        let s2 = SchemaTree::from_labels("x", &[("writer", None)]);
        let t2 = SchemaTree::from_labels("y", &[("WRITER", None)]);
        let exact2 = LabelMatrix::new(&s2, &t2, LexiconMode::ExactOnly);
        assert_eq!(exact2.get(NodeId(0), NodeId(0)).grade, LabelGrade::Exact);
    }

    #[test]
    fn label_matrix_fuzzy_only_mode_loses_synonyms_keeps_fuzzy() {
        let s = SchemaTree::from_labels("x", &[("Writer", None), ("Quantety", Some(0))]);
        let t = SchemaTree::from_labels("y", &[("Author", None), ("Quantity", Some(0))]);
        let fuzzy = LabelMatrix::new(&s, &t, LexiconMode::FuzzyOnly);
        assert_eq!(fuzzy.get(NodeId(0), NodeId(0)).grade, LabelGrade::None);
        assert_eq!(fuzzy.get(NodeId(1), NodeId(1)).grade, LabelGrade::Relaxed);
    }

    #[test]
    fn label_matrix_agrees_with_single_pair_comparison() {
        let s = tiny();
        let t = SchemaTree::from_labels("q", &[("q", None), ("a", Some(0)), ("zz", Some(0))]);
        for mode in [
            LexiconMode::Full,
            LexiconMode::FuzzyOnly,
            LexiconMode::ExactOnly,
        ] {
            let matrix = LabelMatrix::new(&s, &t, mode);
            let matcher = matcher_for_mode(mode);
            for (sid, sn) in s.iter() {
                for (tid, tn) in t.iter() {
                    let direct = compare_single_labels(&sn.label, &tn.label, mode, &matcher);
                    assert_eq!(
                        matrix.get(sid, tid),
                        direct,
                        "{:?} vs {:?}",
                        sn.label,
                        tn.label
                    );
                }
            }
        }
    }

    #[test]
    fn match_many_matches_individual_runs() {
        let config = MatchConfig::default();
        let pairs = vec![
            (tiny(), tiny()),
            (
                SchemaTree::from_labels("a", &[("a", None), ("b", Some(0))]),
                tiny(),
            ),
        ];
        let batch = match_many(&pairs, &config);
        assert_eq!(batch.len(), 2);
        for (outcome, (s, t)) in batch.iter().zip(&pairs) {
            let single = hybrid_match(s, t, &config);
            assert_eq!(outcome.matrix, single.matrix, "batch == one-at-a-time");
            assert_eq!(outcome.total_qom, single.total_qom);
        }
    }

    #[test]
    fn greedy_assignment_takes_best_disjoint_pairs() {
        let scores = vec![vec![0.9, 0.8], vec![0.85, 0.1]];
        let picks = greedy_assignment(&scores);
        // (0,0,0.9) first; then (1,0) blocked, (1,1,0.1) taken.
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0], (0, 0, 0.9));
        assert_eq!(picks[1], (1, 1, 0.1));
    }

    #[test]
    fn greedy_assignment_skips_zero_scores() {
        let scores = vec![vec![0.0, 0.0], vec![0.0, 0.7]];
        let picks = greedy_assignment(&scores);
        assert_eq!(picks, vec![(1, 1, 0.7)]);
    }

    #[test]
    fn greedy_assignment_empty_inputs() {
        assert!(greedy_assignment(&[]).is_empty());
        assert!(greedy_assignment(&[vec![], vec![]]).is_empty());
    }
}
