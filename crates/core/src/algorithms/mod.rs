//! The match algorithms: linguistic, structural, hybrid (QMatch, Figure 3),
//! and a tree-edit-distance baseline.
//!
//! All algorithms share the same signature — two [`SchemaTree`]s and a
//! [`crate::model::MatchConfig`] — and return a [`MatchOutcome`] holding the full node-pair
//! similarity matrix plus the whole-schema QoM, so mapping extraction and
//! evaluation treat them uniformly.

mod composite;
mod hybrid;
mod linguistic;
mod structural;
mod tree_edit;

pub use composite::{composite_match, Aggregation, Component, CompositeError};
pub use hybrid::{hybrid_match, hybrid_match_with, hybrid_root_category};
pub use linguistic::{linguistic_match, linguistic_match_with};
pub use structural::structural_match;
pub use tree_edit::tree_edit_match;

use crate::matrix::SimMatrix;
use crate::model::LexiconMode;
use qmatch_lexicon::name_match::{LabelGrade, NameMatch, NameMatcher};
use qmatch_lexicon::thesaurus::Thesaurus;
use qmatch_lexicon::tokenize::{tokenize, Token};
use qmatch_xsd::{NodeId, SchemaTree};
use std::collections::HashMap;

/// The result of running a match algorithm.
#[derive(Debug, Clone)]
pub struct MatchOutcome {
    /// Similarity for every (source node, target node) pair.
    pub matrix: SimMatrix,
    /// The whole-schema match value. For the recursive algorithms this is
    /// the QoM of the two roots (what Figure 3 "presents to the user"); for
    /// the flat linguistic matcher it is the mean best label similarity per
    /// source node.
    pub total_qom: f64,
}

/// Label comparison oracle shared by the algorithms: interns each distinct
/// label, tokenizes it once, and caches one [`NameMatch`] per distinct label
/// pair. On the corpora this collapses the `n·m` node-pair label comparisons
/// to the (much smaller) number of distinct label pairs.
pub(crate) struct LabelOracle {
    mode: LexiconMode,
    matcher: NameMatcher,
    source_ids: Vec<u32>,
    target_ids: Vec<u32>,
    source_tokens: Vec<Vec<Token>>,
    target_tokens: Vec<Vec<Token>>,
    source_labels: Vec<String>,
    target_labels: Vec<String>,
    cache: HashMap<(u32, u32), NameMatch>,
}

impl LabelOracle {
    pub(crate) fn new(source: &SchemaTree, target: &SchemaTree, mode: LexiconMode) -> LabelOracle {
        let matcher = match mode {
            LexiconMode::Full => NameMatcher::with_default_thesaurus(),
            LexiconMode::FuzzyOnly | LexiconMode::ExactOnly => NameMatcher::new(Thesaurus::new()),
        };
        Self::with_matcher(source, target, mode, matcher)
    }

    /// An oracle over a caller-supplied matcher (custom thesaurus).
    pub(crate) fn with_matcher(
        source: &SchemaTree,
        target: &SchemaTree,
        mode: LexiconMode,
        matcher: NameMatcher,
    ) -> LabelOracle {
        let intern = |tree: &SchemaTree| {
            let mut table: HashMap<String, u32> = HashMap::new();
            let mut ids = Vec::with_capacity(tree.len());
            let mut tokens: Vec<Vec<Token>> = Vec::new();
            let mut labels: Vec<String> = Vec::new();
            for (_, node) in tree.iter() {
                let next = table.len() as u32;
                let id = *table.entry(node.label.clone()).or_insert(next);
                if id == next {
                    tokens.push(tokenize(&node.label));
                    labels.push(node.label.to_lowercase());
                }
                ids.push(id);
            }
            (ids, tokens, labels)
        };
        let (source_ids, source_tokens, source_labels) = intern(source);
        let (target_ids, target_tokens, target_labels) = intern(target);
        LabelOracle {
            mode,
            matcher,
            source_ids,
            target_ids,
            source_tokens,
            target_tokens,
            source_labels,
            target_labels,
            cache: HashMap::new(),
        }
    }

    /// Compares the labels of a source and a target node.
    pub(crate) fn compare(&mut self, s: NodeId, t: NodeId) -> NameMatch {
        let key = (self.source_ids[s.index()], self.target_ids[t.index()]);
        if let Some(hit) = self.cache.get(&key) {
            return *hit;
        }
        let result = match self.mode {
            LexiconMode::ExactOnly => {
                if self.source_labels[key.0 as usize] == self.target_labels[key.1 as usize] {
                    NameMatch {
                        grade: LabelGrade::Exact,
                        score: 1.0,
                    }
                } else {
                    NameMatch {
                        grade: LabelGrade::None,
                        score: 0.0,
                    }
                }
            }
            LexiconMode::Full | LexiconMode::FuzzyOnly => self.matcher.compare_tokens(
                &self.source_tokens[key.0 as usize],
                &self.target_tokens[key.1 as usize],
            ),
        };
        self.cache.insert(key, result);
        result
    }
}

/// Post-order traversal of a tree's node ids (children before parents).
pub(crate) fn postorder(tree: &SchemaTree) -> Vec<NodeId> {
    // The arena is built pre-order, so reversing index order yields a valid
    // bottom-up order (every child has a higher index than its parent).
    (0..tree.len() as u32).rev().map(NodeId).collect()
}

/// Greedy 1:1 assignment over the cross product of two id slices: pairs are
/// taken in descending score order, skipping already-used nodes. Returns the
/// chosen pairs `(source_child_index, target_child_index, score)`.
pub(crate) fn greedy_assignment(
    scores: &[Vec<f64>], // scores[i][j] for source child i vs target child j
) -> Vec<(usize, usize, f64)> {
    let rows = scores.len();
    let cols = scores.first().map_or(0, Vec::len);
    let mut pairs: Vec<(usize, usize, f64)> = Vec::with_capacity(rows * cols);
    for (i, row) in scores.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if v > 0.0 {
                pairs.push((i, j, v));
            }
        }
    }
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2));
    let mut used_i = vec![false; rows];
    let mut used_j = vec![false; cols];
    let mut out = Vec::new();
    for (i, j, v) in pairs {
        if !used_i[i] && !used_j[j] {
            used_i[i] = true;
            used_j[j] = true;
            out.push((i, j, v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmatch_xsd::SchemaTree;

    fn tiny() -> SchemaTree {
        SchemaTree::from_labels(
            "r",
            &[("r", None), ("a", Some(0)), ("b", Some(0)), ("c", Some(1))],
        )
    }

    #[test]
    fn postorder_puts_children_before_parents() {
        let t = tiny();
        let order = postorder(&t);
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for (id, node) in t.iter() {
            for &child in &node.children {
                assert!(
                    pos(child) < pos(id),
                    "child {child:?} must precede parent {id:?}"
                );
            }
        }
    }

    #[test]
    fn oracle_caches_by_label_not_node() {
        let s = SchemaTree::from_labels("x", &[("x", None), ("dup", Some(0)), ("dup", Some(0))]);
        let t = tiny();
        let mut o = LabelOracle::new(&s, &t, LexiconMode::Full);
        let m1 = o.compare(NodeId(1), NodeId(0));
        let m2 = o.compare(NodeId(2), NodeId(0));
        assert_eq!(m1, m2);
        assert_eq!(o.cache.len(), 1, "both node pairs share one label pair");
    }

    #[test]
    fn oracle_exact_only_mode_is_string_equality() {
        let s = SchemaTree::from_labels("x", &[("Writer", None)]);
        let t = SchemaTree::from_labels("y", &[("Author", None)]);
        let mut full = LabelOracle::new(&s, &t, LexiconMode::Full);
        assert_eq!(full.compare(NodeId(0), NodeId(0)).grade, LabelGrade::Exact);
        let mut exact = LabelOracle::new(&s, &t, LexiconMode::ExactOnly);
        assert_eq!(exact.compare(NodeId(0), NodeId(0)).grade, LabelGrade::None);
        let s2 = SchemaTree::from_labels("x", &[("writer", None)]);
        let t2 = SchemaTree::from_labels("y", &[("WRITER", None)]);
        let mut exact2 = LabelOracle::new(&s2, &t2, LexiconMode::ExactOnly);
        assert_eq!(
            exact2.compare(NodeId(0), NodeId(0)).grade,
            LabelGrade::Exact
        );
    }

    #[test]
    fn oracle_fuzzy_only_mode_loses_synonyms_keeps_fuzzy() {
        let s = SchemaTree::from_labels("x", &[("Writer", None), ("Quantety", Some(0))]);
        let t = SchemaTree::from_labels("y", &[("Author", None), ("Quantity", Some(0))]);
        let mut fuzzy = LabelOracle::new(&s, &t, LexiconMode::FuzzyOnly);
        assert_eq!(fuzzy.compare(NodeId(0), NodeId(0)).grade, LabelGrade::None);
        assert_eq!(
            fuzzy.compare(NodeId(1), NodeId(1)).grade,
            LabelGrade::Relaxed
        );
    }

    #[test]
    fn greedy_assignment_takes_best_disjoint_pairs() {
        let scores = vec![vec![0.9, 0.8], vec![0.85, 0.1]];
        let picks = greedy_assignment(&scores);
        // (0,0,0.9) first; then (1,0) blocked, (1,1,0.1) taken.
        assert_eq!(picks.len(), 2);
        assert_eq!(picks[0], (0, 0, 0.9));
        assert_eq!(picks[1], (1, 1, 0.1));
    }

    #[test]
    fn greedy_assignment_skips_zero_scores() {
        let scores = vec![vec![0.0, 0.0], vec![0.0, 0.7]];
        let picks = greedy_assignment(&scores);
        assert_eq!(picks, vec![(1, 1, 0.7)]);
    }

    #[test]
    fn greedy_assignment_empty_inputs() {
        assert!(greedy_assignment(&[]).is_empty());
        assert!(greedy_assignment(&[vec![], vec![]]).is_empty());
    }
}
