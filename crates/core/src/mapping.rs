//! Extraction of 1:1 correspondences from a similarity matrix.
//!
//! The evaluation (§5) compares the *set of matches* an algorithm returns
//! against a manually determined real set. This module turns a
//! [`SimMatrix`] into that set: pairs are taken greedily in descending score
//! order, each node used at most once, stopping below the acceptance
//! threshold.

use crate::matrix::SimMatrix;
use qmatch_xsd::{NodeId, SchemaTree};
use std::fmt;

/// One proposed correspondence.
#[derive(Debug, Clone, PartialEq)]
pub struct Correspondence {
    /// Source node.
    pub source: NodeId,
    /// Target node.
    pub target: NodeId,
    /// The matrix score that produced the pair.
    pub score: f64,
}

/// A set of 1:1 correspondences between two schema trees.
#[derive(Debug, Clone, Default)]
pub struct Mapping {
    /// Pairs in descending score order.
    pub pairs: Vec<Correspondence>,
}

impl Mapping {
    /// Number of proposed matches (the paper's `|P|`).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pair was proposed.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The target matched to `source`, if any.
    pub fn target_of(&self, source: NodeId) -> Option<NodeId> {
        self.pairs
            .iter()
            .find(|c| c.source == source)
            .map(|c| c.target)
    }

    /// Renders the mapping with label paths for human inspection.
    pub fn display<'m>(
        &'m self,
        source: &'m SchemaTree,
        target: &'m SchemaTree,
    ) -> MappingDisplay<'m> {
        MappingDisplay {
            mapping: self,
            source,
            target,
        }
    }

    /// Converts node pairs to `(source_path, target_path)` label-path pairs
    /// (the representation gold standards use).
    pub fn to_path_pairs(&self, source: &SchemaTree, target: &SchemaTree) -> Vec<(String, String)> {
        self.pairs
            .iter()
            .map(|c| (path_of(source, c.source), path_of(target, c.target)))
            .collect()
    }
}

/// The slash-joined label path of a node (e.g. `PO/Lines/Item`), the stable
/// key used by gold standards.
pub fn path_of(tree: &SchemaTree, id: NodeId) -> String {
    tree.path_labels(id).join("/")
}

/// Extracts a 1:1 mapping: all cells at or above `threshold`, taken greedily
/// by descending score with each source and target node used at most once.
pub fn extract_mapping(matrix: &SimMatrix, threshold: f64) -> Mapping {
    let mut cells: Vec<Correspondence> = matrix
        .iter()
        .filter(|&(_, _, score)| score >= threshold)
        .map(|(source, target, score)| Correspondence {
            source,
            target,
            score,
        })
        .collect();
    cells.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.source.cmp(&b.source))
            .then_with(|| a.target.cmp(&b.target))
    });
    let mut used_source = vec![false; matrix.rows()];
    let mut used_target = vec![false; matrix.cols()];
    let mut pairs = Vec::new();
    for cell in cells {
        if !used_source[cell.source.index()] && !used_target[cell.target.index()] {
            used_source[cell.source.index()] = true;
            used_target[cell.target.index()] = true;
            pairs.push(cell);
        }
    }
    Mapping { pairs }
}

/// COMA-style candidate selection strategies: how a similarity matrix is
/// reduced to a proposed match set. [`extract_mapping`] is the `OneToOne`
/// strategy; schema-matching UIs often prefer the more generous variants and
/// let the user prune.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Selection {
    /// Greedy stable 1:1 assignment (the default used in the experiments).
    OneToOne {
        /// Minimum accepted score.
        threshold: f64,
    },
    /// The best target per source node (an n:1 mapping — several source
    /// nodes may share a target).
    BestPerSource {
        /// Minimum accepted score.
        threshold: f64,
    },
    /// Every target within `delta` of the source's best candidate — the
    /// COMA `MaxDelta` strategy; produces an n:m candidate set.
    MaxDelta {
        /// Minimum accepted score.
        threshold: f64,
        /// Allowed gap below the row maximum.
        delta: f64,
    },
}

/// Reduces a matrix to a match set using the given strategy. Pairs are
/// ordered by descending score (ties broken by ids, deterministically).
pub fn select(matrix: &SimMatrix, selection: Selection) -> Mapping {
    match selection {
        Selection::OneToOne { threshold } => extract_mapping(matrix, threshold),
        Selection::BestPerSource { threshold } => {
            let mut pairs = Vec::new();
            for r in 0..matrix.rows() {
                let source = NodeId(r as u32);
                if let Some((target, score)) = matrix.best_for_source(source) {
                    if score >= threshold {
                        pairs.push(Correspondence {
                            source,
                            target,
                            score,
                        });
                    }
                }
            }
            sort_pairs(&mut pairs);
            Mapping { pairs }
        }
        Selection::MaxDelta { threshold, delta } => {
            let mut pairs = Vec::new();
            for r in 0..matrix.rows() {
                let source = NodeId(r as u32);
                let Some((_, best)) = matrix.best_for_source(source) else {
                    continue;
                };
                if best < threshold {
                    continue;
                }
                for c in 0..matrix.cols() {
                    let target = NodeId(c as u32);
                    let score = matrix.get(source, target);
                    if score >= threshold && score + delta >= best {
                        pairs.push(Correspondence {
                            source,
                            target,
                            score,
                        });
                    }
                }
            }
            sort_pairs(&mut pairs);
            Mapping { pairs }
        }
    }
}

fn sort_pairs(pairs: &mut [Correspondence]) {
    pairs.sort_by(|a, b| {
        b.score
            .total_cmp(&a.score)
            .then_with(|| a.source.cmp(&b.source))
            .then_with(|| a.target.cmp(&b.target))
    });
}

/// Human-readable mapping rendering (one `source -> target (score)` line per
/// pair).
pub struct MappingDisplay<'m> {
    mapping: &'m Mapping,
    source: &'m SchemaTree,
    target: &'m SchemaTree,
}

impl fmt::Display for MappingDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for c in &self.mapping.pairs {
            writeln!(
                f,
                "{} -> {}  ({:.3})",
                path_of(self.source, c.source),
                path_of(self.target, c.target),
                c.score
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix_3x3(values: [[f64; 3]; 3]) -> SimMatrix {
        let mut m = SimMatrix::zeros(3, 3);
        for (i, row) in values.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                m.set(NodeId(i as u32), NodeId(j as u32), v);
            }
        }
        m
    }

    #[test]
    fn extracts_best_disjoint_pairs_above_threshold() {
        let m = matrix_3x3([[0.9, 0.2, 0.0], [0.8, 0.7, 0.0], [0.0, 0.0, 0.4]]);
        let mapping = extract_mapping(&m, 0.5);
        assert_eq!(mapping.len(), 2);
        assert_eq!(mapping.pairs[0].source, NodeId(0));
        assert_eq!(mapping.pairs[0].target, NodeId(0));
        // Source 1 lost target 0 to source 0; falls back to target 1 at 0.7.
        assert_eq!(mapping.target_of(NodeId(1)), Some(NodeId(1)));
        // 0.4 is below the threshold.
        assert_eq!(mapping.target_of(NodeId(2)), None);
    }

    #[test]
    fn threshold_zero_matches_everything_possible() {
        let m = matrix_3x3([[0.1, 0.0, 0.0], [0.0, 0.2, 0.0], [0.0, 0.0, 0.3]]);
        let mapping = extract_mapping(&m, 0.0);
        // With threshold 0 every cell qualifies; a full 1:1 assignment exists.
        assert_eq!(mapping.len(), 3);
    }

    #[test]
    fn one_to_one_constraint_holds() {
        let m = matrix_3x3([[0.9, 0.9, 0.9], [0.9, 0.9, 0.9], [0.9, 0.9, 0.9]]);
        let mapping = extract_mapping(&m, 0.5);
        assert_eq!(mapping.len(), 3);
        let mut sources: Vec<_> = mapping.pairs.iter().map(|c| c.source).collect();
        let mut targets: Vec<_> = mapping.pairs.iter().map(|c| c.target).collect();
        sources.dedup();
        targets.sort();
        targets.dedup();
        assert_eq!(sources.len(), 3);
        assert_eq!(targets.len(), 3);
    }

    #[test]
    fn ties_break_deterministically() {
        let m = matrix_3x3([[0.9, 0.9, 0.0], [0.9, 0.9, 0.0], [0.0, 0.0, 0.0]]);
        let a = extract_mapping(&m, 0.5);
        let b = extract_mapping(&m, 0.5);
        assert_eq!(a.pairs, b.pairs);
        // Lowest source id wins the tie for target 0.
        assert_eq!(a.target_of(NodeId(0)), Some(NodeId(0)));
        assert_eq!(a.target_of(NodeId(1)), Some(NodeId(1)));
    }

    #[test]
    fn empty_matrix_yields_empty_mapping() {
        let mapping = extract_mapping(&SimMatrix::zeros(0, 0), 0.5);
        assert!(mapping.is_empty());
    }

    #[test]
    fn path_pairs_and_display_use_label_paths() {
        let s =
            SchemaTree::from_labels("PO", &[("PO", None), ("Lines", Some(0)), ("Item", Some(1))]);
        let t = SchemaTree::from_labels(
            "Order",
            &[("Order", None), ("Items", Some(0)), ("Item#", Some(1))],
        );
        let mut m = SimMatrix::zeros(3, 3);
        m.set(NodeId(2), NodeId(2), 0.8);
        let mapping = extract_mapping(&m, 0.5);
        let pairs = mapping.to_path_pairs(&s, &t);
        assert_eq!(
            pairs,
            vec![("PO/Lines/Item".to_owned(), "Order/Items/Item#".to_owned())]
        );
        let shown = mapping.display(&s, &t).to_string();
        assert!(
            shown.contains("PO/Lines/Item -> Order/Items/Item#"),
            "{shown}"
        );
        assert!(shown.contains("0.800"));
    }
}

#[cfg(test)]
mod selection_tests {
    use super::*;

    fn matrix() -> SimMatrix {
        // rows: 2 sources; cols: 3 targets
        let mut m = SimMatrix::zeros(2, 3);
        m.set(NodeId(0), NodeId(0), 0.9);
        m.set(NodeId(0), NodeId(1), 0.85);
        m.set(NodeId(0), NodeId(2), 0.3);
        m.set(NodeId(1), NodeId(0), 0.8);
        m.set(NodeId(1), NodeId(1), 0.6);
        m
    }

    #[test]
    fn one_to_one_matches_extract_mapping() {
        let m = matrix();
        let a = select(&m, Selection::OneToOne { threshold: 0.5 });
        let b = extract_mapping(&m, 0.5);
        assert_eq!(a.pairs, b.pairs);
        // Source 1 loses target 0 to source 0 and has no other candidate.
        assert_eq!(a.len(), 2);
        assert_eq!(a.target_of(NodeId(1)), Some(NodeId(1)));
    }

    #[test]
    fn best_per_source_allows_shared_targets() {
        let m = matrix();
        let mapping = select(&m, Selection::BestPerSource { threshold: 0.5 });
        assert_eq!(mapping.len(), 2);
        // Both sources pick target 0 — n:1 is allowed here.
        assert_eq!(mapping.target_of(NodeId(0)), Some(NodeId(0)));
        assert_eq!(mapping.target_of(NodeId(1)), Some(NodeId(0)));
    }

    #[test]
    fn max_delta_keeps_near_best_candidates() {
        let m = matrix();
        let mapping = select(
            &m,
            Selection::MaxDelta {
                threshold: 0.5,
                delta: 0.1,
            },
        );
        // Source 0: best 0.9, delta keeps 0.85 too; 0.3 is out.
        let source0: Vec<_> = mapping
            .pairs
            .iter()
            .filter(|c| c.source == NodeId(0))
            .collect();
        assert_eq!(source0.len(), 2);
        // Source 1: only 0.8 survives the threshold.
        let source1: Vec<_> = mapping
            .pairs
            .iter()
            .filter(|c| c.source == NodeId(1))
            .collect();
        assert_eq!(source1.len(), 1);
    }

    #[test]
    fn thresholds_gate_every_strategy() {
        let m = matrix();
        for strategy in [
            Selection::OneToOne { threshold: 0.95 },
            Selection::BestPerSource { threshold: 0.95 },
            Selection::MaxDelta {
                threshold: 0.95,
                delta: 0.5,
            },
        ] {
            assert!(select(&m, strategy).is_empty(), "{strategy:?}");
        }
    }

    #[test]
    fn results_are_sorted_by_score() {
        let m = matrix();
        for strategy in [
            Selection::BestPerSource { threshold: 0.0 },
            Selection::MaxDelta {
                threshold: 0.0,
                delta: 1.0,
            },
        ] {
            let mapping = select(&m, strategy);
            for w in mapping.pairs.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }
}
