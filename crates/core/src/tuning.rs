//! Weight determination (paper §5.1, Table 2).
//!
//! The paper selects the axis weights by sweeping candidate weight vectors
//! over schema pairs from several domains, comparing the QMatch output
//! against expected match values determined beforehand. This module
//! implements that sweep: a grid of unit-sum weight vectors is scored by the
//! *Overall* quality of the mapping each vector produces against the gold
//! standard, and the best vectors (and the per-axis ranges they span) are
//! reported.

use crate::eval::{evaluate, GoldStandard};
use crate::mapping::extract_mapping;
use crate::model::{MatchConfig, Weights};
use qmatch_xsd::SchemaTree;

/// One schema pair with its gold standard — a tuning task.
pub struct TuningTask<'a> {
    /// Human-readable pair name (e.g. `PO`).
    pub name: &'a str,
    /// Source schema.
    pub source: &'a SchemaTree,
    /// Target schema.
    pub target: &'a SchemaTree,
    /// Real matches.
    pub gold: &'a GoldStandard,
}

/// The score of one weight vector across all tasks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The weight vector evaluated.
    pub weights: Weights,
    /// Mean Overall quality across the tasks.
    pub mean_overall: f64,
}

/// Generates all unit-sum weight vectors on a grid with the given `step`
/// (e.g. 0.1 yields 286 vectors). Components are multiples of `step`.
pub fn weight_grid(step: f64) -> Vec<Weights> {
    assert!(step > 0.0 && step <= 0.5, "step must be in (0, 0.5]");
    let n = (1.0 / step).round() as u32;
    let mut out = Vec::new();
    for l in 0..=n {
        for p in 0..=n - l {
            for h in 0..=n - l - p {
                let c = n - l - p - h;
                let to_f = |x: u32| x as f64 / n as f64;
                // Construction guarantees the unit sum.
                out.push(Weights {
                    label: to_f(l),
                    properties: to_f(p),
                    level: to_f(h),
                    children: to_f(c),
                });
            }
        }
    }
    out
}

/// Scores one weight vector: the mean Overall across the tasks, matching
/// with the given threshold.
pub fn score_weights(weights: Weights, tasks: &[TuningTask<'_>], threshold: f64) -> f64 {
    if tasks.is_empty() {
        return 0.0;
    }
    let config = MatchConfig {
        weights,
        threshold,
        ..MatchConfig::default()
    };
    let session = crate::session::MatchSession::new(config);
    let total: f64 = tasks
        .iter()
        .map(|task| {
            let (sp, tp) = (session.prepare(task.source), session.prepare(task.target));
            let outcome = session.hybrid(&sp, &tp);
            // Extraction adapts to the weight vector: the leaf constant
            // C = WH + WC shifts every score, so a fixed cut would bias the
            // sweep toward label-heavy vectors.
            let mapping = extract_mapping(&outcome.matrix, weights.acceptance_threshold());
            evaluate(&mapping, task.source, task.target, task.gold).overall
        })
        .sum();
    total / tasks.len() as f64
}

/// Runs the full sweep, returning every grid point sorted best-first.
pub fn sweep(tasks: &[TuningTask<'_>], step: f64, threshold: f64) -> Vec<SweepPoint> {
    let mut points: Vec<SweepPoint> = weight_grid(step)
        .into_iter()
        .map(|weights| SweepPoint {
            weights,
            mean_overall: score_weights(weights, tasks, threshold),
        })
        .collect();
    points.sort_by(|a, b| b.mean_overall.total_cmp(&a.mean_overall));
    points
}

/// Calibrates the mapping-acceptance threshold for one task: grid-searches
/// thresholds (step 0.01 over `[0.3, 1.0]`) against the gold standard and
/// returns `(best_threshold, best_overall)` — the paper's §7 claim that QoM
/// is "a useful tool for tuning existing schema match algorithms to output
/// at desired levels of matching", made executable. Ties prefer the lowest
/// threshold (more recall at equal Overall).
pub fn calibrate_threshold(task: &TuningTask<'_>, config: &MatchConfig) -> (f64, f64) {
    let session = crate::session::MatchSession::new(*config);
    let (sp, tp) = (session.prepare(task.source), session.prepare(task.target));
    let outcome = session.hybrid(&sp, &tp);
    let mut best = (0.3, f64::NEG_INFINITY);
    for step in 0..=70 {
        let threshold = 0.3 + step as f64 / 100.0;
        let mapping = extract_mapping(&outcome.matrix, threshold);
        let overall = evaluate(&mapping, task.source, task.target, task.gold).overall;
        if overall > best.1 + 1e-12 {
            best = (threshold, overall);
        }
    }
    best
}

/// The per-axis min/max among the best `top_n` sweep points — the "ideal
/// ranges" §5.1 reports (label 0.25–0.4, properties/level 0.1–0.2, children
/// 0.3–0.5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisRanges {
    /// Label-axis range.
    pub label: (f64, f64),
    /// Properties-axis range.
    pub properties: (f64, f64),
    /// Level-axis range.
    pub level: (f64, f64),
    /// Children-axis range.
    pub children: (f64, f64),
}

/// Computes the per-axis ranges spanned by the best `top_n` points.
pub fn best_ranges(points: &[SweepPoint], top_n: usize) -> AxisRanges {
    let top = &points[..top_n.min(points.len())];
    let range = |get: fn(&Weights) -> f64| {
        let lo = top
            .iter()
            .map(|p| get(&p.weights))
            .fold(f64::INFINITY, f64::min);
        let hi = top
            .iter()
            .map(|p| get(&p.weights))
            .fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    };
    AxisRanges {
        label: range(|w| w.label),
        properties: range(|w| w.properties),
        level: range(|w| w.level),
        children: range(|w| w.children),
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the one-shot wrappers stay covered until removal
    use super::*;
    use crate::algorithms::hybrid_match;

    #[test]
    fn grid_is_unit_sum_and_complete() {
        let grid = weight_grid(0.1);
        // Compositions of 10 into 4 parts: C(13,3) = 286.
        assert_eq!(grid.len(), 286);
        for w in &grid {
            assert!(w.validate().is_ok(), "{w:?}");
        }
        // Extremes are present.
        assert!(grid.iter().any(|w| w.label == 1.0));
        assert!(grid.iter().any(|w| w.children == 1.0));
        // The paper's vector is on the grid.
        assert!(grid.iter().any(|w| (w.label - 0.3).abs() < 1e-9
            && (w.properties - 0.2).abs() < 1e-9
            && (w.level - 0.1).abs() < 1e-9
            && (w.children - 0.4).abs() < 1e-9));
    }

    #[test]
    fn coarser_grid_is_smaller() {
        // Compositions of 4 into 4 parts: C(7,3) = 35.
        assert_eq!(weight_grid(0.25).len(), 35);
        assert_eq!(weight_grid(0.5).len(), 10);
    }

    #[test]
    #[should_panic(expected = "step")]
    fn rejects_bad_step() {
        weight_grid(0.0);
    }

    fn tiny_task() -> (SchemaTree, SchemaTree, GoldStandard) {
        let s = SchemaTree::from_labels(
            "PO",
            &[("PO", None), ("OrderNo", Some(0)), ("Quantity", Some(0))],
        );
        let t = SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Qty", Some(0)),
            ],
        );
        let gold = GoldStandard::from_pairs([
            ("PO", "PurchaseOrder"),
            ("PO/OrderNo", "PurchaseOrder/OrderNo"),
            ("PO/Quantity", "PurchaseOrder/Qty"),
        ]);
        (s, t, gold)
    }

    #[test]
    fn paper_weights_score_well_on_a_sane_task() {
        let (s, t, gold) = tiny_task();
        let tasks = [TuningTask {
            name: "PO",
            source: &s,
            target: &t,
            gold: &gold,
        }];
        let score = score_weights(Weights::PAPER, &tasks, 0.5);
        assert!(
            score > 0.9,
            "paper weights should solve the tiny task: {score}"
        );
    }

    #[test]
    fn sweep_sorts_best_first_and_keeps_all_points() {
        let (s, t, gold) = tiny_task();
        let tasks = [TuningTask {
            name: "PO",
            source: &s,
            target: &t,
            gold: &gold,
        }];
        let points = sweep(&tasks, 0.25, 0.5);
        assert_eq!(points.len(), 35);
        for w in points.windows(2) {
            assert!(w[0].mean_overall >= w[1].mean_overall);
        }
    }

    #[test]
    fn best_ranges_cover_top_points() {
        let (s, t, gold) = tiny_task();
        let tasks = [TuningTask {
            name: "PO",
            source: &s,
            target: &t,
            gold: &gold,
        }];
        let points = sweep(&tasks, 0.25, 0.5);
        let ranges = best_ranges(&points, 5);
        assert!(ranges.label.0 <= ranges.label.1);
        assert!(ranges.children.0 <= ranges.children.1);
        assert!(ranges.label.1 <= 1.0 && ranges.label.0 >= 0.0);
    }

    #[test]
    fn calibrated_threshold_beats_or_ties_any_fixed_choice() {
        let (s, t, gold) = tiny_task();
        let task = TuningTask {
            name: "PO",
            source: &s,
            target: &t,
            gold: &gold,
        };
        let config = MatchConfig::default();
        let (threshold, best) = calibrate_threshold(&task, &config);
        assert!((0.3..=1.0).contains(&threshold));
        // No fixed grid threshold can do better than the calibrated one.
        let outcome = hybrid_match(&s, &t, &config);
        for step in 0..=70 {
            let fixed = 0.3 + step as f64 / 100.0;
            let mapping = extract_mapping(&outcome.matrix, fixed);
            let overall = evaluate(&mapping, &s, &t, &gold).overall;
            assert!(best + 1e-9 >= overall, "fixed {fixed} beats calibrated");
        }
        assert!(best > 0.9, "the tiny task is solvable: {best}");
    }

    #[test]
    fn empty_tasks_score_zero() {
        assert_eq!(score_weights(Weights::PAPER, &[], 0.5), 0.0);
    }
}
