//! Match-quality evaluation (paper §5, "Algorithm Quality").
//!
//! Given the real matches `R` (manually determined) and the predicted
//! matches `P`, with true positives `I = P ∩ R`, false positives
//! `F = P \ I`, and missed matches `M = R \ I`:
//!
//! ```text
//! Precision = |I| / |P|
//! Recall    = |I| / |R|
//! Overall   = 1 − (|F| + |M|) / |R|  =  Recall · (2 − 1/Precision)
//! ```
//!
//! Overall can be negative when more than half the predictions are wrong —
//! the paper keeps it that way (post-match repair effort exceeds doing the
//! match by hand), and so do we.

use crate::mapping::{path_of, Mapping};
use qmatch_xsd::SchemaTree;
use std::collections::HashSet;

/// The manually determined real matches for a schema pair, stored as
/// `(source label path, target label path)` pairs (stable across tree
/// recompilation, unlike node ids).
#[derive(Debug, Clone, Default)]
pub struct GoldStandard {
    pairs: HashSet<(String, String)>,
}

impl GoldStandard {
    /// An empty gold standard.
    pub fn new() -> GoldStandard {
        GoldStandard::default()
    }

    /// Builds from `(source_path, target_path)` pairs.
    pub fn from_pairs<I, A, B>(pairs: I) -> GoldStandard
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<String>,
        B: Into<String>,
    {
        GoldStandard {
            pairs: pairs
                .into_iter()
                .map(|(a, b)| (a.into(), b.into()))
                .collect(),
        }
    }

    /// Adds one real match.
    pub fn add(&mut self, source_path: &str, target_path: &str) {
        self.pairs
            .insert((source_path.to_owned(), target_path.to_owned()));
    }

    /// Number of real matches (the paper's `|R|`).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no real match is recorded.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership check.
    pub fn contains(&self, source_path: &str, target_path: &str) -> bool {
        // Owned-key lookup kept simple; gold standards are tiny.
        self.pairs
            .contains(&(source_path.to_owned(), target_path.to_owned()))
    }

    /// Iterates the real pairs.
    pub fn iter(&self) -> impl Iterator<Item = &(String, String)> {
        self.pairs.iter()
    }
}

/// Precision / Recall / Overall plus the raw counts they derive from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchQuality {
    /// `|I|` — correctly identified matches.
    pub true_positives: usize,
    /// `|F|` — predicted matches not in the real set.
    pub false_positives: usize,
    /// `|M|` — real matches the algorithm missed.
    pub false_negatives: usize,
    /// `|I| / |P|` (1.0 when nothing was predicted and nothing was real).
    pub precision: f64,
    /// `|I| / |R|`.
    pub recall: f64,
    /// `Recall · (2 − 1/Precision)`; may be negative.
    pub overall: f64,
}

impl MatchQuality {
    /// `|P|` — total predictions.
    pub fn predicted(&self) -> usize {
        self.true_positives + self.false_positives
    }

    /// `|R|` — total real matches.
    pub fn real(&self) -> usize {
        self.true_positives + self.false_negatives
    }

    /// F1 — not used by the paper, provided for completeness.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// Scores a predicted mapping against the gold standard.
pub fn evaluate(
    mapping: &Mapping,
    source: &SchemaTree,
    target: &SchemaTree,
    gold: &GoldStandard,
) -> MatchQuality {
    let mut true_positives = 0usize;
    let mut false_positives = 0usize;
    for c in &mapping.pairs {
        let key = (path_of(source, c.source), path_of(target, c.target));
        if gold.pairs.contains(&key) {
            true_positives += 1;
        } else {
            false_positives += 1;
        }
    }
    let false_negatives = gold.len() - true_positives;
    from_counts(true_positives, false_positives, false_negatives)
}

/// Builds the quality measures from raw counts.
pub fn from_counts(
    true_positives: usize,
    false_positives: usize,
    false_negatives: usize,
) -> MatchQuality {
    let predicted = true_positives + false_positives;
    let real = true_positives + false_negatives;
    let precision = if predicted == 0 {
        if real == 0 {
            1.0
        } else {
            0.0
        }
    } else {
        true_positives as f64 / predicted as f64
    };
    let recall = if real == 0 {
        1.0
    } else {
        true_positives as f64 / real as f64
    };
    let overall = if real == 0 {
        if predicted == 0 {
            1.0
        } else {
            // All predictions are spurious repair work.
            -(false_positives as f64)
        }
    } else {
        1.0 - (false_positives + false_negatives) as f64 / real as f64
    };
    MatchQuality {
        true_positives,
        false_positives,
        false_negatives,
        precision,
        recall,
        overall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::extract_mapping;
    use crate::matrix::SimMatrix;
    use qmatch_xsd::NodeId;

    fn trees() -> (SchemaTree, SchemaTree) {
        let s = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Qty", Some(0)),
                ("Extra", Some(0)),
            ],
        );
        let t = SchemaTree::from_labels(
            "Order",
            &[
                ("Order", None),
                ("OrderNo", Some(0)),
                ("Quantity", Some(0)),
                ("Other", Some(0)),
            ],
        );
        (s, t)
    }

    fn mapping_from(cells: &[(u32, u32, f64)]) -> Mapping {
        let mut m = SimMatrix::zeros(4, 4);
        for &(i, j, v) in cells {
            m.set(NodeId(i), NodeId(j), v);
        }
        extract_mapping(&m, 0.5)
    }

    #[test]
    fn perfect_prediction_scores_one_everywhere() {
        let (s, t) = trees();
        let gold = GoldStandard::from_pairs([
            ("PO", "Order"),
            ("PO/OrderNo", "Order/OrderNo"),
            ("PO/Qty", "Order/Quantity"),
        ]);
        let mapping = mapping_from(&[(0, 0, 0.9), (1, 1, 0.9), (2, 2, 0.9)]);
        let q = evaluate(&mapping, &s, &t, &gold);
        assert_eq!(q.true_positives, 3);
        assert_eq!(q.false_positives, 0);
        assert_eq!(q.false_negatives, 0);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.overall, 1.0);
        assert_eq!(q.f1(), 1.0);
    }

    #[test]
    fn paper_overall_identity_holds() {
        // Overall = Recall·(2 − 1/Precision) must equal 1 − (|F|+|M|)/|R|.
        for (tp, fp, fnn) in [(3, 1, 2), (5, 0, 5), (2, 2, 0), (1, 3, 4)] {
            let q = from_counts(tp, fp, fnn);
            let by_formula = q.recall * (2.0 - 1.0 / q.precision);
            assert!(
                (q.overall - by_formula).abs() < 1e-12,
                "tp={tp} fp={fp} fn={fnn}: {} vs {by_formula}",
                q.overall
            );
        }
    }

    #[test]
    fn overall_goes_negative_when_half_the_predictions_are_junk() {
        let q = from_counts(1, 4, 3);
        assert!(q.overall < 0.0, "{}", q.overall);
    }

    #[test]
    fn false_positive_and_negative_counting() {
        let (s, t) = trees();
        let gold = GoldStandard::from_pairs([
            ("PO/OrderNo", "Order/OrderNo"),
            ("PO/Qty", "Order/Quantity"),
        ]);
        // One right, one wrong (Extra->Other not in gold), one missed (Qty).
        let mapping = mapping_from(&[(1, 1, 0.9), (3, 3, 0.8)]);
        let q = evaluate(&mapping, &s, &t, &gold);
        assert_eq!(q.true_positives, 1);
        assert_eq!(q.false_positives, 1);
        assert_eq!(q.false_negatives, 1);
        assert_eq!(q.precision, 0.5);
        assert_eq!(q.recall, 0.5);
        assert!((q.overall - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cases() {
        // Nothing predicted, nothing real: vacuously perfect.
        let q = from_counts(0, 0, 0);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
        assert_eq!(q.overall, 1.0);
        // Nothing predicted, some real.
        let q2 = from_counts(0, 0, 5);
        assert_eq!(q2.precision, 0.0);
        assert_eq!(q2.recall, 0.0);
        assert_eq!(q2.overall, 0.0);
        assert_eq!(q2.f1(), 0.0);
        // Some predicted, nothing real.
        let q3 = from_counts(0, 3, 0);
        assert!(q3.overall < 0.0);
    }

    #[test]
    fn gold_standard_api() {
        let mut g = GoldStandard::new();
        assert!(g.is_empty());
        g.add("a/b", "x/y");
        g.add("a/b", "x/y"); // duplicate ignored
        assert_eq!(g.len(), 1);
        assert!(g.contains("a/b", "x/y"));
        assert!(!g.contains("a/b", "x/z"));
        assert_eq!(g.iter().count(), 1);
    }

    #[test]
    fn accessors_reconstruct_set_sizes() {
        let q = from_counts(4, 2, 3);
        assert_eq!(q.predicted(), 6);
        assert_eq!(q.real(), 7);
    }
}
