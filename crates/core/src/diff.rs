//! Deterministic tree diff between two revisions of a schema.
//!
//! Schema registries are not write-once: a resident schema is re-`PUT` with
//! a handful of labels renamed, a subtree added, a leaf dropped. The match
//! pipeline's artifacts (prepared tables, index signatures, DP matrices)
//! are pure functions of the tree, so knowing *what changed* is enough to
//! recompute only the affected slices — that is what [`crate::evolve`]
//! does. This module computes the change set: a typed edit script plus the
//! per-node dirty set and the old↔new node mapping the incremental paths
//! consume.
//!
//! # Anchoring
//!
//! Nodes are matched top-down from the roots (which always correspond):
//! within a matched parent pair, children are anchored **by label first**
//! (each old child claims the first unclaimed new child with the same
//! label), and the leftovers are then paired **positionally** — those become
//! [`EditOp::Rename`]s. Unmatched old subtrees whose shape and properties
//! reappear identically among the unmatched new subtrees are recognized as
//! [`EditOp::Move`]s; whatever remains is an [`EditOp::InsertSubtree`] /
//! [`EditOp::DeleteSubtree`]. The procedure is a pure function of the two
//! trees — no hashing with randomized state, no tie-breaking on pointer
//! identity — so the same pair of trees always yields the same script.
//!
//! # Dirty set and recompute closure
//!
//! A node of the *new* tree is **dirty** when its own match-relevant facts
//! changed: its label, its properties, its level (moves), or its child
//! list (a child inserted, deleted, moved in/out, or reordered — the
//! children axis of the QoM, and the order of the `f64` child-sum
//! accumulation, both depend on it). The **recompute closure** is the dirty
//! set plus all ancestors of dirty nodes: a DP row is a pure function of
//! the node's own facts and its children's finalized rows, so invalidation
//! propagates exactly one way — up the wavefront. Rows outside the closure
//! are bit-identical to their old-revision rows by construction (see
//! DESIGN.md §17).

use qmatch_xsd::{NodeId, SchemaTree};
use std::collections::HashMap;

/// One edit in the script produced by [`TreeDiff::compute`].
///
/// `Rename`, `Move`, `PropChange`, and `InsertSubtree` carry node ids of
/// the **new** tree; `DeleteSubtree` refers to the **old** tree (the
/// subtree has no counterpart in the new one). Paths are `/`-joined label
/// paths for human consumption (CLI, traces); the machine-facing mapping
/// lives in [`TreeDiff`].
#[derive(Debug, Clone, PartialEq)]
pub enum EditOp {
    /// A matched node's label changed.
    Rename {
        /// The node in the new tree.
        node: NodeId,
        /// Label path of the node in the new tree.
        path: String,
        /// The old label.
        from: String,
        /// The new label.
        to: String,
    },
    /// A matched subtree re-attached under a different parent, or a child
    /// re-ordered among its siblings (which changes the child-sum
    /// accumulation order of the parent's DP row).
    Move {
        /// The subtree root in the new tree.
        node: NodeId,
        /// Label path of the subtree root in the old tree.
        from_path: String,
        /// Label path of the subtree root in the new tree.
        to_path: String,
    },
    /// A subtree that exists only in the new tree.
    InsertSubtree {
        /// The subtree root in the new tree.
        root: NodeId,
        /// Label path of the subtree root in the new tree.
        path: String,
        /// Number of nodes in the inserted subtree.
        nodes: usize,
    },
    /// A subtree that exists only in the old tree.
    DeleteSubtree {
        /// The subtree root in the **old** tree.
        root: NodeId,
        /// Label path of the subtree root in the old tree.
        path: String,
        /// Number of nodes in the deleted subtree.
        nodes: usize,
    },
    /// A matched node's property profile changed.
    PropChange {
        /// The node in the new tree.
        node: NodeId,
        /// Label path of the node in the new tree.
        path: String,
    },
}

impl EditOp {
    /// Short lowercase tag (`rename` / `move` / `insert` / `delete` /
    /// `props`) for rendering and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            EditOp::Rename { .. } => "rename",
            EditOp::Move { .. } => "move",
            EditOp::InsertSubtree { .. } => "insert",
            EditOp::DeleteSubtree { .. } => "delete",
            EditOp::PropChange { .. } => "props",
        }
    }
}

impl std::fmt::Display for EditOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EditOp::Rename { path, from, to, .. } => {
                write!(f, "rename {path} : {from} -> {to}")
            }
            EditOp::Move {
                from_path, to_path, ..
            } => write!(f, "move   {from_path} -> {to_path}"),
            EditOp::InsertSubtree { path, nodes, .. } => {
                write!(f, "insert {path} ({nodes} node(s))")
            }
            EditOp::DeleteSubtree { path, nodes, .. } => {
                write!(f, "delete {path} ({nodes} node(s))")
            }
            EditOp::PropChange { path, .. } => write!(f, "props  {path}"),
        }
    }
}

/// The diff between an old and a new revision of a schema tree: the edit
/// script, the old↔new node mapping, and the dirty/recompute sets the
/// incremental re-prepare and re-match paths consume.
#[derive(Debug, Clone)]
pub struct TreeDiff {
    ops: Vec<EditOp>,
    /// New-tree index per old node; `u32::MAX` for deleted nodes.
    old_to_new: Vec<u32>,
    /// Old-tree index per new node; `u32::MAX` for inserted nodes.
    new_to_old: Vec<u32>,
    /// New-tree nodes whose label changed (subset of `dirty`); the
    /// incremental re-prepare uses this to reuse interned symbols.
    renamed: Vec<bool>,
    /// New-tree nodes whose own match-relevant facts changed.
    dirty: Vec<bool>,
    /// `dirty` plus all ancestors of dirty nodes — the rows the DP must
    /// recompute.
    recompute: Vec<bool>,
    dirty_count: usize,
    recompute_count: usize,
    /// Whether the old→new node mapping differs from the pre-order
    /// identity. When `false`, every structural table of the old prepared
    /// schema (waves, levels, leaf flags, parents) is reusable verbatim.
    shape_changed: bool,
}

impl TreeDiff {
    /// Diffs `old` against `new`. Deterministic: a pure function of the two
    /// trees.
    pub fn compute(old: &SchemaTree, new: &SchemaTree) -> TreeDiff {
        const NONE: u32 = u32::MAX;
        let (on, nn) = (old.len(), new.len());
        let mut old_to_new = vec![NONE; on];
        let mut new_to_old = vec![NONE; nn];
        let mut renamed = vec![false; nn];
        let mut dirty = vec![false; nn];
        // New-tree roots of subtrees matched as moves (kept out of the
        // insert/delete emission below).
        let mut moved_root = vec![false; nn];
        let mut reorder_moved = vec![false; nn];

        // ---- Top-down anchoring ----
        let mut stack = vec![(old.root_id(), new.root_id())];
        old_to_new[old.root_id().index()] = new.root_id().index() as u32;
        new_to_old[new.root_id().index()] = old.root_id().index() as u32;
        while let Some((o, n)) = stack.pop() {
            let oc = &old.node(o).children;
            let nc = &new.node(n).children;
            let mut claimed = vec![false; nc.len()];
            let mut pair = |oi: NodeId, ni: NodeId| {
                old_to_new[oi.index()] = ni.index() as u32;
                new_to_old[ni.index()] = oi.index() as u32;
            };
            // Pass 1: anchor by label, first unclaimed wins.
            let mut leftover_old: Vec<NodeId> = Vec::new();
            for &och in oc {
                let label = &old.node(och).label;
                match nc
                    .iter()
                    .enumerate()
                    .find(|(k, id)| !claimed[*k] && new.node(**id).label == *label)
                {
                    Some((k, &nch)) => {
                        claimed[k] = true;
                        pair(och, nch);
                    }
                    None => leftover_old.push(och),
                }
            }
            // Pass 2: pair leftovers positionally — these are renames.
            let leftover_new: Vec<usize> = (0..nc.len()).filter(|&k| !claimed[k]).collect();
            for (&och, &k) in leftover_old.iter().zip(&leftover_new) {
                claimed[k] = true;
                pair(och, nc[k]);
            }
            // Recurse into every matched pair, in new-tree child order so
            // op emission stays pre-order deterministic.
            for &nch in nc {
                let o_idx = new_to_old[nch.index()];
                if o_idx != NONE {
                    stack.push((NodeId(o_idx), nch));
                }
            }
        }

        // ---- Move extraction over the unmatched remainders ----
        // Key = the subtree's exact shape: (label, parent offset within the
        // subtree) in pre-order. Properties are verified pairwise on a key
        // hit; a mismatch leaves the pair as delete + insert.
        let subtree_key = |tree: &SchemaTree, root: NodeId| -> Vec<(String, usize)> {
            let ids = tree.subtree_ids(root);
            let local: HashMap<NodeId, usize> =
                ids.iter().enumerate().map(|(k, &id)| (id, k)).collect();
            ids.iter()
                .map(|&id| {
                    let node = tree.node(id);
                    let parent = node.parent.and_then(|p| local.get(&p).copied());
                    (node.label.clone(), parent.unwrap_or(0))
                })
                .collect()
        };
        let mut deleted_roots: Vec<NodeId> = Vec::new();
        for (id, node) in old.iter() {
            let inner = node.parent.is_some_and(|p| old_to_new[p.index()] == NONE);
            if old_to_new[id.index()] == NONE && !inner {
                deleted_roots.push(id);
            }
        }
        let mut by_key: HashMap<Vec<(String, usize)>, Vec<NodeId>> = HashMap::new();
        // Queue per key in old pre-order; earlier deletions claim first.
        for &root in deleted_roots.iter().rev() {
            by_key.entry(subtree_key(old, root)).or_default().push(root);
        }
        let inserted_roots: Vec<NodeId> = new
            .iter()
            .filter(|(id, node)| {
                new_to_old[id.index()] == NONE
                    && node.parent.is_none_or(|p| new_to_old[p.index()] != NONE)
            })
            .map(|(id, _)| id)
            .collect();
        for &nroot in &inserted_roots {
            let key = subtree_key(new, nroot);
            let Some(queue) = by_key.get_mut(&key) else {
                continue;
            };
            let Some(&oroot) = queue.last() else {
                continue;
            };
            let oids = old.subtree_ids(oroot);
            let nids = new.subtree_ids(nroot);
            debug_assert_eq!(oids.len(), nids.len(), "identical keys, identical sizes");
            let props_equal = oids
                .iter()
                .zip(&nids)
                .all(|(&oi, &ni)| old.node(oi).properties == new.node(ni).properties);
            if !props_equal {
                continue;
            }
            queue.pop();
            for (&oi, &ni) in oids.iter().zip(&nids) {
                old_to_new[oi.index()] = ni.index() as u32;
                new_to_old[ni.index()] = oi.index() as u32;
            }
            moved_root[nroot.index()] = true;
        }

        // ---- Dirty marking ----
        for (id, node) in new.iter() {
            let i = id.index();
            let o_idx = new_to_old[i];
            if o_idx == NONE {
                dirty[i] = true; // inserted
                if let Some(p) = node.parent {
                    if new_to_old[p.index()] != NONE {
                        dirty[p.index()] = true; // child list changed
                    }
                }
                continue;
            }
            let onode = old.node(NodeId(o_idx));
            if onode.label != node.label {
                renamed[i] = true;
                dirty[i] = true;
            }
            if onode.properties != node.properties {
                dirty[i] = true;
            }
            if onode.level != node.level {
                dirty[i] = true; // the level axis compares absolute levels
            }
        }
        for &oroot in &deleted_roots {
            if old_to_new[oroot.index()] != NONE {
                continue; // re-matched as a move
            }
            if let Some(op) = old.node(oroot).parent {
                let np = old_to_new[op.index()];
                if np != NONE {
                    dirty[np as usize] = true; // child list changed
                }
            }
        }
        // Moved subtrees: every node's level may have changed and both
        // attachment points lost/gained a child.
        for &nroot in &inserted_roots {
            if !moved_root[nroot.index()] {
                continue;
            }
            for id in new.subtree_ids(nroot) {
                dirty[id.index()] = true;
            }
            if let Some(p) = new.node(nroot).parent {
                dirty[p.index()] = true;
            }
            let oroot = NodeId(new_to_old[nroot.index()]);
            if let Some(op) = old.node(oroot).parent {
                let np = old_to_new[op.index()];
                if np != NONE {
                    dirty[np as usize] = true;
                }
            }
        }
        // Sibling reorders: the children-pass accumulates child sums in
        // source-child order, so a parent whose matched children appear in
        // a different relative order must recompute even though every
        // child's own row is unchanged.
        for (id, node) in new.iter() {
            if new_to_old[id.index()] == NONE {
                continue;
            }
            let mut max_seen: Option<u32> = None;
            for &ch in &node.children {
                let o_idx = new_to_old[ch.index()];
                if o_idx == NONE {
                    continue;
                }
                if max_seen.is_some_and(|m| o_idx < m) {
                    dirty[id.index()] = true;
                    if !moved_root[ch.index()] {
                        reorder_moved[ch.index()] = true;
                    }
                } else {
                    max_seen = Some(o_idx);
                }
            }
        }

        // ---- Recompute closure: dirty ∪ ancestors of dirty ----
        let mut recompute = dirty.clone();
        for (id, _) in new.iter() {
            if !dirty[id.index()] {
                continue;
            }
            let mut cur = new.node(id).parent;
            while let Some(p) = cur {
                if recompute[p.index()] {
                    break;
                }
                recompute[p.index()] = true;
                cur = new.node(p).parent;
            }
        }

        // ---- Edit script, in new-tree pre-order then old-tree pre-order ----
        let path = |tree: &SchemaTree, id: NodeId| tree.path_labels(id).join("/");
        let mut ops = Vec::new();
        for (id, node) in new.iter() {
            let i = id.index();
            let o_idx = new_to_old[i];
            if o_idx == NONE {
                let inner = node.parent.is_some_and(|p| new_to_old[p.index()] == NONE);
                if !inner {
                    ops.push(EditOp::InsertSubtree {
                        root: id,
                        path: path(new, id),
                        nodes: new.subtree_size(id),
                    });
                }
                continue;
            }
            let old_id = NodeId(o_idx);
            if moved_root[i] || reorder_moved[i] {
                ops.push(EditOp::Move {
                    node: id,
                    from_path: path(old, old_id),
                    to_path: path(new, id),
                });
            }
            if renamed[i] {
                ops.push(EditOp::Rename {
                    node: id,
                    path: path(new, id),
                    from: old.node(old_id).label.clone(),
                    to: node.label.clone(),
                });
            }
            if old.node(old_id).properties != node.properties {
                ops.push(EditOp::PropChange {
                    node: id,
                    path: path(new, id),
                });
            }
        }
        for (id, node) in old.iter() {
            let inner = node.parent.is_some_and(|p| old_to_new[p.index()] == NONE);
            if old_to_new[id.index()] == NONE && !inner {
                ops.push(EditOp::DeleteSubtree {
                    root: id,
                    path: path(old, id),
                    nodes: old.subtree_size(id),
                });
            }
        }

        // The identity test must look at the mapping, not the op list: a
        // delete under one parent plus an insert under another can leave
        // every node matched with per-parent order intact, yet shift the
        // global pre-order numbering (old 9 ↔ new 8, old 8 ↔ new 9) — the
        // old structural tables would silently describe the wrong ids.
        let shape_changed = on != nn || old_to_new.iter().enumerate().any(|(i, &v)| v != i as u32);
        let dirty_count = dirty.iter().filter(|&&d| d).count();
        let recompute_count = recompute.iter().filter(|&&d| d).count();
        TreeDiff {
            ops,
            old_to_new,
            new_to_old,
            renamed,
            dirty,
            recompute,
            dirty_count,
            recompute_count,
            shape_changed,
        }
    }

    /// The edit script, new-tree pre-order first, deletions last.
    pub fn ops(&self) -> &[EditOp] {
        &self.ops
    }

    /// `true` when the trees are identical node for node (no edits, empty
    /// dirty set, identity mapping).
    pub fn is_identity(&self) -> bool {
        self.ops.is_empty() && !self.shape_changed
    }

    /// Whether the old→new node mapping differs from the pre-order
    /// identity. Any structural edit (insert/delete/move/reorder) does
    /// this, but so does a delete-plus-insert under different parents that
    /// leaves every node matched — only `false` guarantees the old
    /// revision's structural tables (waves, levels, leaf flags, parents)
    /// are reusable verbatim.
    pub fn shape_changed(&self) -> bool {
        self.shape_changed
    }

    /// Number of nodes in the old tree.
    pub fn old_len(&self) -> usize {
        self.old_to_new.len()
    }

    /// Number of nodes in the new tree.
    pub fn new_len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Number of new-tree nodes whose own match-relevant facts changed.
    pub fn dirty_count(&self) -> usize {
        self.dirty_count
    }

    /// Size of the recompute closure (dirty nodes plus their ancestors).
    pub fn recompute_count(&self) -> usize {
        self.recompute_count
    }

    /// Dirty nodes as a fraction of the new tree.
    pub fn dirty_fraction(&self) -> f64 {
        self.dirty_count as f64 / self.new_to_old.len().max(1) as f64
    }

    /// Recompute closure as a fraction of the new tree — the quantity the
    /// incremental re-match compares against its fallback threshold.
    pub fn recompute_fraction(&self) -> f64 {
        self.recompute_count as f64 / self.new_to_old.len().max(1) as f64
    }

    /// The old-tree counterpart of a new-tree node, if it was matched.
    #[inline]
    pub fn old_of(&self, new_node: NodeId) -> Option<NodeId> {
        match self.new_to_old[new_node.index()] {
            u32::MAX => None,
            i => Some(NodeId(i)),
        }
    }

    /// The new-tree counterpart of an old-tree node, if it was matched.
    #[inline]
    pub fn new_of(&self, old_node: NodeId) -> Option<NodeId> {
        match self.old_to_new[old_node.index()] {
            u32::MAX => None,
            i => Some(NodeId(i)),
        }
    }

    /// Whether a new-tree node's label changed (subset of the dirty set).
    #[inline]
    pub fn is_renamed(&self, new_node: NodeId) -> bool {
        self.renamed[new_node.index()]
    }

    /// Whether a new-tree node is in the dirty set.
    #[inline]
    pub fn is_dirty(&self, new_node: NodeId) -> bool {
        self.dirty[new_node.index()]
    }

    /// Whether a new-tree node's DP row must be recomputed (dirty, or an
    /// ancestor of a dirty node).
    #[inline]
    pub fn needs_recompute(&self, new_node: NodeId) -> bool {
        self.recompute[new_node.index()]
    }

    /// Per-kind totals of the edit script (for CLI summaries and serve
    /// metrics).
    pub fn op_counts(&self) -> EditCounts {
        let mut c = EditCounts::default();
        for op in &self.ops {
            match op {
                EditOp::Rename { .. } => c.renames += 1,
                EditOp::Move { .. } => c.moves += 1,
                EditOp::InsertSubtree { nodes, .. } => {
                    c.inserts += 1;
                    c.inserted_nodes += nodes;
                }
                EditOp::DeleteSubtree { nodes, .. } => {
                    c.deletes += 1;
                    c.deleted_nodes += nodes;
                }
                EditOp::PropChange { .. } => c.prop_changes += 1,
            }
        }
        c
    }
}

/// Per-kind op totals of an edit script (see [`TreeDiff::op_counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EditCounts {
    /// Number of [`EditOp::Rename`] ops.
    pub renames: usize,
    /// Number of [`EditOp::Move`] ops.
    pub moves: usize,
    /// Number of [`EditOp::InsertSubtree`] ops.
    pub inserts: usize,
    /// Total nodes across inserted subtrees.
    pub inserted_nodes: usize,
    /// Number of [`EditOp::DeleteSubtree`] ops.
    pub deletes: usize,
    /// Total nodes across deleted subtrees.
    pub deleted_nodes: usize,
    /// Number of [`EditOp::PropChange`] ops.
    pub prop_changes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn po() -> SchemaTree {
        SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
            ],
        )
    }

    #[test]
    fn identical_trees_diff_to_identity() {
        let a = po();
        let diff = TreeDiff::compute(&a, &a);
        assert!(diff.is_identity());
        assert!(!diff.shape_changed());
        assert_eq!(diff.dirty_count(), 0);
        assert_eq!(diff.recompute_count(), 0);
        for (id, _) in a.iter() {
            assert_eq!(diff.old_of(id), Some(id), "identity mapping");
            assert_eq!(diff.new_of(id), Some(id));
            assert!(!diff.needs_recompute(id));
        }
    }

    #[test]
    fn rename_dirties_node_and_ancestors() {
        let old = po();
        let new = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Qty", Some(2)), // Quantity -> Qty
            ],
        );
        let diff = TreeDiff::compute(&old, &new);
        assert_eq!(diff.ops().len(), 1);
        assert!(
            matches!(&diff.ops()[0], EditOp::Rename { from, to, .. }
                if from == "Quantity" && to == "Qty"),
            "{:?}",
            diff.ops()
        );
        assert!(!diff.shape_changed());
        assert!(diff.is_renamed(NodeId(4)));
        assert!(diff.is_dirty(NodeId(4)));
        // Closure: the renamed leaf, its parent (Lines), and the root.
        assert!(diff.needs_recompute(NodeId(4)));
        assert!(diff.needs_recompute(NodeId(2)));
        assert!(diff.needs_recompute(NodeId(0)));
        assert!(!diff.needs_recompute(NodeId(1)), "OrderNo row is clean");
        assert!(!diff.needs_recompute(NodeId(3)), "Item row is clean");
        assert_eq!(diff.dirty_count(), 1);
        assert_eq!(diff.recompute_count(), 3);
    }

    #[test]
    fn insert_and_delete_are_subtree_ops() {
        let old = po();
        let new = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
                ("Ship", Some(0)),
                ("Carrier", Some(5)),
            ],
        );
        let diff = TreeDiff::compute(&old, &new);
        let counts = diff.op_counts();
        assert_eq!(counts.inserts, 1);
        assert_eq!(counts.inserted_nodes, 2, "Ship subtree counted once");
        assert!(diff.shape_changed());
        let back = TreeDiff::compute(&new, &old);
        assert_eq!(back.op_counts().deletes, 1);
        assert_eq!(back.op_counts().deleted_nodes, 2);
        // Deleting Ship dirties its former parent (the root) in the new tree.
        assert!(back.is_dirty(NodeId(0)));
    }

    #[test]
    fn pure_move_is_recognized() {
        let old = SchemaTree::from_labels(
            "R",
            &[
                ("R", None),
                ("A", Some(0)),
                ("Sub", Some(1)),
                ("Leaf", Some(2)),
                ("B", Some(0)),
            ],
        );
        let new = SchemaTree::from_labels(
            "R",
            &[
                ("R", None),
                ("A", Some(0)),
                ("B", Some(0)),
                ("Sub", Some(2)),
                ("Leaf", Some(3)),
            ],
        );
        let diff = TreeDiff::compute(&old, &new);
        let counts = diff.op_counts();
        assert_eq!(counts.moves, 1, "{:?}", diff.ops());
        assert_eq!(counts.inserts, 0);
        assert_eq!(counts.deletes, 0);
        // The moved subtree maps node-for-node.
        assert_eq!(diff.new_of(NodeId(2)), Some(NodeId(3)), "Sub");
        assert_eq!(diff.new_of(NodeId(3)), Some(NodeId(4)), "Leaf");
        // Both attachment points are dirty.
        assert!(diff.is_dirty(NodeId(1)), "old parent A");
        assert!(diff.is_dirty(NodeId(2)), "new parent B");
    }

    #[test]
    fn sibling_reorder_dirties_the_parent() {
        let old = SchemaTree::from_labels("R", &[("R", None), ("A", Some(0)), ("B", Some(0))]);
        let new = SchemaTree::from_labels("R", &[("R", None), ("B", Some(0)), ("A", Some(0))]);
        let diff = TreeDiff::compute(&old, &new);
        assert!(diff.is_dirty(NodeId(0)), "accumulation order changed");
        assert!(!diff.is_identity());
        assert_eq!(diff.op_counts().moves, 1, "{:?}", diff.ops());
        // The children's own rows are unchanged facts, but children of a
        // reordered parent still map by label.
        assert_eq!(diff.old_of(NodeId(1)), Some(NodeId(2)), "B");
        assert_eq!(diff.old_of(NodeId(2)), Some(NodeId(1)), "A");
    }

    #[test]
    fn root_rename_keeps_the_anchor() {
        let old = po();
        let new = SchemaTree::from_labels(
            "PurchaseOrder",
            &[
                ("PurchaseOrder", None),
                ("OrderNo", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Quantity", Some(2)),
            ],
        );
        let diff = TreeDiff::compute(&old, &new);
        assert_eq!(diff.op_counts().renames, 1);
        assert_eq!(diff.old_of(NodeId(0)), Some(NodeId(0)));
        assert_eq!(diff.recompute_count(), 1, "only the root row changes");
    }

    #[test]
    fn diff_is_deterministic() {
        let old = po();
        let new = SchemaTree::from_labels(
            "PO",
            &[
                ("PO", None),
                ("Number", Some(0)),
                ("Lines", Some(0)),
                ("Item", Some(2)),
                ("Extra", Some(2)),
            ],
        );
        let a = TreeDiff::compute(&old, &new);
        let b = TreeDiff::compute(&old, &new);
        assert_eq!(a.ops(), b.ops());
        assert_eq!(a.dirty_count(), b.dirty_count());
        assert_eq!(a.recompute_count(), b.recompute_count());
    }
}
